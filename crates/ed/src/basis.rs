//! Occupation-number basis with fermionic sign bookkeeping.
//!
//! Each spin species occupies its own `2^N`-dimensional Fock sector; a
//! many-body state is the pair `(up_mask, dn_mask)` with flat index
//! `up_mask · 2^N + dn_mask`. All Hamiltonian terms are same-spin bilinears
//! or density products, so inter-species anticommutation phases cancel and
//! the Jordan–Wigner string only needs to be tracked within a sector.

/// One spin sector of `n` orbitals: `2^n` occupation masks.
#[derive(Clone, Copy, Debug)]
pub struct Sector {
    /// Number of orbitals.
    pub n: usize,
}

impl Sector {
    /// Creates a sector (capped to keep dense ED tractable).
    pub fn new(n: usize) -> Self {
        assert!(n <= 10, "ED sector too large: {n} orbitals");
        Sector { n }
    }

    /// Sector dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// Occupation of orbital `i` in `mask`.
    #[inline]
    pub fn occupied(mask: usize, i: usize) -> bool {
        mask & (1 << i) != 0
    }

    /// Jordan–Wigner sign `(−1)^{#occupied orbitals below i}`.
    #[inline]
    pub fn jw_sign(mask: usize, i: usize) -> f64 {
        let below = mask & ((1 << i) - 1);
        if below.count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    }

    /// Applies `c_i` to `mask`: returns `(new_mask, sign)` or `None` if empty.
    #[inline]
    pub fn annihilate(mask: usize, i: usize) -> Option<(usize, f64)> {
        if Self::occupied(mask, i) {
            Some((mask ^ (1 << i), Self::jw_sign(mask, i)))
        } else {
            None
        }
    }

    /// Applies `c†_i` to `mask`: returns `(new_mask, sign)` or `None` if full.
    #[inline]
    pub fn create(mask: usize, i: usize) -> Option<(usize, f64)> {
        if Self::occupied(mask, i) {
            None
        } else {
            Some((mask | (1 << i), Self::jw_sign(mask, i)))
        }
    }

    /// Matrix element action of `c†_i c_j` on `mask`:
    /// `(new_mask, amplitude)` or `None`.
    #[inline]
    pub fn hop(mask: usize, i: usize, j: usize) -> Option<(usize, f64)> {
        let (m1, s1) = Self::annihilate(mask, j)?;
        let (m2, s2) = Self::create(m1, i)?;
        Some((m2, s1 * s2))
    }

    /// Number of particles in `mask`.
    #[inline]
    pub fn count(mask: usize) -> usize {
        mask.count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupation_and_count() {
        assert!(Sector::occupied(0b101, 0));
        assert!(!Sector::occupied(0b101, 1));
        assert_eq!(Sector::count(0b1011), 3);
    }

    #[test]
    fn jw_signs() {
        // mask 0b0110: orbitals 1,2 occupied.
        assert_eq!(Sector::jw_sign(0b0110, 0), 1.0); // none below 0
        assert_eq!(Sector::jw_sign(0b0110, 2), -1.0); // one below (orb 1)
        assert_eq!(Sector::jw_sign(0b0110, 3), 1.0); // two below
    }

    #[test]
    fn annihilate_create_roundtrip() {
        let (m, s1) = Sector::annihilate(0b101, 2).unwrap();
        assert_eq!(m, 0b001);
        let (m2, s2) = Sector::create(m, 2).unwrap();
        assert_eq!(m2, 0b101);
        assert_eq!(s1 * s2, 1.0, "c† c = n on occupied states");
        assert!(Sector::annihilate(0b100, 0).is_none());
        assert!(Sector::create(0b100, 2).is_none());
    }

    #[test]
    fn anticommutation_on_states() {
        // {c_0, c†_1} = 0: c_0 c†_1 |m⟩ = −c†_1 c_0 |m⟩ on states where
        // both act nontrivially.
        let m = 0b01; // orbital 0 occupied
        let path1 = Sector::create(m, 1)
            .and_then(|(m1, s1)| Sector::annihilate(m1, 0).map(|(m2, s2)| (m2, s1 * s2)));
        let path2 = Sector::annihilate(m, 0)
            .and_then(|(m1, s1)| Sector::create(m1, 1).map(|(m2, s2)| (m2, s1 * s2)));
        let (ma, sa) = path1.unwrap();
        let (mb, sb) = path2.unwrap();
        assert_eq!(ma, mb);
        assert_eq!(sa, -sb, "fermionic anticommutation sign");
    }

    #[test]
    fn hop_moves_particle_with_sign() {
        // c†_2 c_0 on 0b011 (orbitals 0,1): annihilate 0 (+1, no JW below),
        // create at 2 over mask 0b010 (one below ⇒ −1).
        let (m, s) = Sector::hop(0b011, 2, 0).unwrap();
        assert_eq!(m, 0b110);
        assert_eq!(s, -1.0);
        assert!(Sector::hop(0b011, 1, 0).is_none(), "target occupied");
        assert!(Sector::hop(0b100, 1, 0).is_none(), "source empty");
    }

    #[test]
    fn number_operator_via_hop() {
        // c†_i c_i = n_i with sign +1.
        let (m, s) = Sector::hop(0b101, 2, 2).unwrap();
        assert_eq!(m, 0b101);
        assert_eq!(s, 1.0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_sector_rejected() {
        let _ = Sector::new(20);
    }
}
