//! Exact diagonalisation of small Hubbard clusters.
//!
//! Ground truth for validating the DQMC engine: for clusters up to ~4 sites
//! the full many-body spectrum (Hilbert dimension `4^N`) fits comfortably in
//! a dense symmetric eigensolve, and every finite-temperature observable the
//! paper measures — densities, double occupancy, momentum distribution,
//! spin–spin correlations, energies — has an exact grand-canonical value
//!
//! ```text
//! ⟨O⟩ = Tr(O e^{−βH}) / Tr(e^{−βH})
//! ```
//!
//! computed in the eigenbasis. The Hamiltonian convention matches the DQMC
//! crate exactly: `H = −t Σ c†c + U Σ n₊n₋ − (μ̃ + U/2) Σ n`, so DQMC
//! results must converge to these values as `Δτ → 0`.

pub mod basis;
pub mod hamiltonian;
pub mod thermal;

pub use hamiltonian::HubbardEd;
pub use thermal::ThermalEnsemble;
