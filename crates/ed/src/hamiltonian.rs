//! Dense many-body Hubbard Hamiltonian for small clusters.

use crate::basis::Sector;
use lattice::Lattice;
use linalg::Matrix;

/// Exact-diagonalisation setup for a Hubbard cluster.
///
/// Hamiltonian (matching the DQMC convention):
/// `H = −t Σ_{⟨ij⟩σ} c†_{iσ}c_{jσ} + U Σ_i n_{i↑}n_{i↓} − (μ̃ + U/2) Σ_i n_i`.
#[derive(Clone, Debug)]
pub struct HubbardEd {
    lat: Lattice,
    u: f64,
    mu_tilde: f64,
    sector: Sector,
}

impl HubbardEd {
    /// Creates the ED problem. Caps at 5 sites (Hilbert dimension 1024).
    pub fn new(lat: Lattice, u: f64, mu_tilde: f64) -> Self {
        let n = lat.nsites();
        assert!(n <= 5, "dense ED capped at 5 sites (got {n})");
        HubbardEd {
            sector: Sector::new(n),
            lat,
            u,
            mu_tilde,
        }
    }

    /// Number of lattice sites.
    pub fn nsites(&self) -> usize {
        self.lat.nsites()
    }

    /// Many-body Hilbert dimension `4^N`.
    pub fn dim(&self) -> usize {
        self.sector.dim() * self.sector.dim()
    }

    /// The lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lat
    }

    /// Flat basis index of `(up_mask, dn_mask)`.
    #[inline]
    pub fn index(&self, up: usize, dn: usize) -> usize {
        up * self.sector.dim() + dn
    }

    /// Builds the dense Hamiltonian matrix.
    pub fn hamiltonian(&self) -> Matrix {
        let n = self.nsites();
        let sdim = self.sector.dim();
        let dim = self.dim();
        let mut hm = Matrix::zeros(dim, dim);
        // Single-particle hopping matrix (with bond multiplicity), no diag.
        let hop = self.lat.kinetic_matrix(0.0);
        let mu_eff = self.mu_tilde + self.u / 2.0;

        for up in 0..sdim {
            for dn in 0..sdim {
                let row = self.index(up, dn);
                // Diagonal: interaction + chemical potential.
                let mut diag = 0.0;
                for i in 0..n {
                    let nu_i = Sector::occupied(up, i) as usize as f64;
                    let nd_i = Sector::occupied(dn, i) as usize as f64;
                    diag += self.u * nu_i * nd_i - mu_eff * (nu_i + nd_i);
                }
                hm[(row, row)] += diag;
                // Hopping: up spin moves (dn fixed), then down spin.
                for i in 0..n {
                    for (j, _mult) in self.lat.neighbor_bonds(i) {
                        let amp = hop[(i, j)]; // −t × multiplicity
                        if let Some((up2, s)) = Sector::hop(up, i, j) {
                            let col = self.index(up2, dn);
                            hm[(col, row)] += amp * s;
                        }
                        if let Some((dn2, s)) = Sector::hop(dn, i, j) {
                            let col = self.index(up, dn2);
                            hm[(col, row)] += amp * s;
                        }
                    }
                }
            }
        }
        hm
    }

    /// Dense matrix of a same-spin bilinear `c†_{iσ} c_{jσ}`.
    pub fn bilinear(&self, i: usize, j: usize, up_spin: bool) -> Matrix {
        let sdim = self.sector.dim();
        let dim = self.dim();
        let mut m = Matrix::zeros(dim, dim);
        for up in 0..sdim {
            for dn in 0..sdim {
                let row = self.index(up, dn);
                if up_spin {
                    if let Some((up2, s)) = Sector::hop(up, i, j) {
                        m[(self.index(up2, dn), row)] += s;
                    }
                } else if let Some((dn2, s)) = Sector::hop(dn, i, j) {
                    m[(self.index(up, dn2), row)] += s;
                }
            }
        }
        m
    }

    /// Dense matrix of the annihilation operator `c_{i,up}` (up-first mode
    /// ordering, so no cross-sector Jordan–Wigner string is needed).
    pub fn annihilation_up(&self, i: usize) -> Matrix {
        let sdim = self.sector.dim();
        let dim = self.dim();
        let mut m = Matrix::zeros(dim, dim);
        for up in 0..sdim {
            for dn in 0..sdim {
                if let Some((up2, s)) = Sector::annihilate(up, i) {
                    m[(self.index(up2, dn), self.index(up, dn))] += s;
                }
            }
        }
        m
    }

    /// Dense diagonal matrix of `n_{i↑} n_{j↓}`-type or `n n` products:
    /// returns diag values of `n_{iσ} n_{jσ'}` over the basis.
    pub fn density_product_diag(&self, i: usize, i_up: bool, j: usize, j_up: bool) -> Vec<f64> {
        let sdim = self.sector.dim();
        let mut out = vec![0.0; self.dim()];
        for up in 0..sdim {
            for dn in 0..sdim {
                let ni = if i_up {
                    Sector::occupied(up, i)
                } else {
                    Sector::occupied(dn, i)
                } as usize as f64;
                let nj = if j_up {
                    Sector::occupied(up, j)
                } else {
                    Sector::occupied(dn, j)
                } as usize as f64;
                out[self.index(up, dn)] = ni * nj;
            }
        }
        out
    }

    /// Diagonal of the number operator `n_{iσ}`.
    pub fn density_diag(&self, i: usize, up_spin: bool) -> Vec<f64> {
        let sdim = self.sector.dim();
        let mut out = vec![0.0; self.dim()];
        for up in 0..sdim {
            for dn in 0..sdim {
                let occ = if up_spin {
                    Sector::occupied(up, i)
                } else {
                    Sector::occupied(dn, i)
                };
                out[self.index(up, dn)] = occ as usize as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamiltonian_is_symmetric() {
        let lat = Lattice::square(2, 1, 1.0);
        let ed = HubbardEd::new(lat, 4.0, 0.3);
        let h = ed.hamiltonian();
        assert_eq!(h.nrows(), 16);
        assert!(linalg::eig::is_symmetric(&h, 1e-13));
    }

    #[test]
    fn single_site_spectrum() {
        // One site, U, μ̃: states |0⟩, |↑⟩, |↓⟩, |↑↓⟩ with energies
        // 0, −μeff, −μeff, U − 2μeff (μeff = μ̃ + U/2).
        let lat = Lattice::square(1, 1, 1.0);
        let ed = HubbardEd::new(lat, 4.0, 0.5);
        let h = ed.hamiltonian();
        let e = linalg::eig::sym_eig(&h).unwrap();
        let mueff = 0.5 + 2.0;
        let mut expect = [0.0, -mueff, -mueff, 4.0 - 2.0 * mueff];
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in e.values.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn two_site_u0_spectrum_from_orbitals() {
        // U = 0, μ̃ = 0 ⇒ free fermions: many-body energies are sums of
        // single-particle energies ±2t (2-site ring has double bond).
        let lat = Lattice::square(2, 1, 1.0);
        let ed = HubbardEd::new(lat, 0.0, 0.0);
        let h = ed.hamiltonian();
        let e = linalg::eig::sym_eig(&h).unwrap();
        // Orbital energies: −2t, +2t per spin. Ground state: both spins in
        // −2t ⇒ E = −4.
        assert!((e.values[0] + 4.0).abs() < 1e-12, "{}", e.values[0]);
        // Highest: both spins in +2t ⇒ +4.
        assert!((e.values[255.min(e.values.len() - 1)] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn half_filled_two_site_ground_state_energy() {
        // Classic result for the 2-site Hubbard dimer at half filling with
        // hopping matrix element 2t (double bond): E₀ relative to the
        // half-filled atomic limit is U/2 − sqrt((U/2)² + (2·2t)²)… verify
        // against direct numerics by restricting to N₊=N₋=1 by hand.
        let lat = Lattice::square(2, 1, 1.0);
        let u = 4.0;
        let ed = HubbardEd::new(lat, u, 0.0);
        let h = ed.hamiltonian();
        let e = linalg::eig::sym_eig(&h).unwrap();
        // In the (N↑,N↓)=(1,1) sector with hopping th=2t=2: singlet energies
        // solve E(E−U) = 2·th² … ground: E = U/2 − sqrt((U/2)² + 4 th²).
        // Subtract the chemical-potential shift: each particle carries
        // −μeff = −(U/2): sector energies get −2·μeff = −U.
        let th = 2.0;
        let sector_e0 = u / 2.0 - ((u / 2.0) * (u / 2.0) + 4.0 * th * th).sqrt();
        let expect = sector_e0 - u; // μeff shift for 2 particles
        assert!(
            (e.values[0] - expect).abs() < 1e-10,
            "{} vs {expect}",
            e.values[0]
        );
    }

    #[test]
    fn bilinear_is_adjoint_pair() {
        let lat = Lattice::square(2, 1, 1.0);
        let ed = HubbardEd::new(lat, 4.0, 0.0);
        let a = ed.bilinear(0, 1, true);
        let b = ed.bilinear(1, 0, true);
        assert!(a.transpose().max_abs_diff(&b) < 1e-14, "(c†₀c₁)† = c†₁c₀");
    }

    #[test]
    fn density_diags_consistent() {
        let lat = Lattice::square(2, 1, 1.0);
        let ed = HubbardEd::new(lat, 4.0, 0.0);
        let n0 = ed.density_diag(0, true);
        let n0n1 = ed.density_product_diag(0, true, 1, false);
        // n₀↑ n₁↓ ≤ n₀↑ pointwise.
        for (a, b) in n0n1.iter().zip(n0.iter()) {
            assert!(a <= b);
        }
        // Bilinear c†₀c₀ diagonal equals density diag.
        let nb = ed.bilinear(0, 0, true);
        for idx in 0..ed.dim() {
            assert!((nb[(idx, idx)] - n0[idx]).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn large_cluster_rejected() {
        let _ = HubbardEd::new(Lattice::square(3, 2, 1.0), 1.0, 0.0);
    }
}
