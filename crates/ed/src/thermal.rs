//! Grand-canonical thermal averages in the exact eigenbasis.

use crate::hamiltonian::HubbardEd;
use lattice::fourier;
use linalg::blas3::{matmul, Op};
use linalg::{eig, Matrix};

/// Diagonalised Hubbard cluster at inverse temperature β.
#[derive(Clone, Debug)]
pub struct ThermalEnsemble {
    ed: HubbardEd,
    beta: f64,
    /// Eigenvalues (ascending).
    evals: Vec<f64>,
    /// Eigenvectors (columns).
    evecs: Matrix,
    /// Normalised Boltzmann weights.
    weights: Vec<f64>,
}

impl ThermalEnsemble {
    /// Diagonalises `H` and prepares Boltzmann weights at `beta`.
    pub fn new(ed: HubbardEd, beta: f64) -> Self {
        assert!(beta > 0.0);
        let h = ed.hamiltonian();
        let e = eig::sym_eig(&h).expect("ED eigensolve");
        // Shift by the ground state to avoid overflow in e^{−βE}.
        let e0 = e.values[0];
        let mut weights: Vec<f64> = e
            .values
            .iter()
            .map(|&ev| (-beta * (ev - e0)).exp())
            .collect();
        let z: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= z;
        }
        ThermalEnsemble {
            ed,
            beta,
            evals: e.values,
            evecs: e.vectors,
            weights,
        }
    }

    /// Inverse temperature.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The underlying ED problem.
    pub fn ed(&self) -> &HubbardEd {
        &self.ed
    }

    /// Thermal average of a dense operator.
    pub fn average(&self, op: &Matrix) -> f64 {
        // ⟨O⟩ = Σ_n w_n (Vᵀ O V)_{nn}
        let ov = matmul(op, Op::NoTrans, &self.evecs, Op::NoTrans);
        let mut acc = 0.0;
        for (n, &w) in self.weights.iter().enumerate() {
            acc += w * linalg::blas1::dot(self.evecs.col(n), ov.col(n));
        }
        acc
    }

    /// Thermal average of a diagonal operator.
    pub fn average_diag(&self, diag: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (n, &w) in self.weights.iter().enumerate() {
            let v = self.evecs.col(n);
            let mut x = 0.0;
            for (vi, di) in v.iter().zip(diag.iter()) {
                x += vi * vi * di;
            }
            acc += w * x;
        }
        acc
    }

    /// Thermal energy `⟨H⟩`.
    pub fn energy(&self) -> f64 {
        self.evals
            .iter()
            .zip(self.weights.iter())
            .map(|(e, w)| e * w)
            .sum()
    }

    /// Density per site `⟨n₊ + n₋⟩ / N`.
    pub fn density(&self) -> f64 {
        let n = self.ed.nsites();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.average_diag(&self.ed.density_diag(i, true));
            acc += self.average_diag(&self.ed.density_diag(i, false));
        }
        acc / n as f64
    }

    /// Double occupancy per site `⟨n₊n₋⟩ / N`.
    pub fn double_occupancy(&self) -> f64 {
        let n = self.ed.nsites();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.average_diag(&self.ed.density_product_diag(i, true, i, false));
        }
        acc / n as f64
    }

    /// Equal-time Green's function `G_σ[(i, j)] = ⟨c_{iσ} c†_{jσ}⟩`
    /// (up spin by symmetry; the Hamiltonian is spin-balanced).
    pub fn greens(&self) -> Matrix {
        let n = self.ed.nsites();
        Matrix::from_fn(n, n, |i, j| {
            // ⟨c_i c†_j⟩ = δ_ij − ⟨c†_j c_i⟩
            let delta = if i == j { 1.0 } else { 0.0 };
            delta - self.average(&self.ed.bilinear(j, i, true))
        })
    }

    /// Spin–spin correlation `⟨(n_{b↑}−n_{b↓})(n_{a↑}−n_{a↓})⟩` matrix.
    pub fn spin_correlation(&self) -> Matrix {
        let n = self.ed.nsites();
        Matrix::from_fn(n, n, |b, a| {
            let mut acc = 0.0;
            for &(su, s2u, sign) in &[
                (true, true, 1.0),
                (false, false, 1.0),
                (true, false, -1.0),
                (false, true, -1.0),
            ] {
                acc += sign * self.average_diag(&self.ed.density_product_diag(b, su, a, s2u));
            }
            acc
        })
    }

    /// Unequal-time Green's function
    /// `G_ij(τ) = ⟨c_{i↑}(τ) c†_{j↑}(0)⟩` for `τ ∈ [0, β]`, from the
    /// spectral (Lehmann) representation — the exact reference for the
    /// DQMC crate's dynamic measurements.
    pub fn greens_tau(&self, tau: f64) -> Matrix {
        assert!(
            (0.0..=self.beta + 1e-12).contains(&tau),
            "τ must lie in [0, β]"
        );
        let n = self.ed.nsites();
        let dim = self.ed.dim();
        let e0 = self.evals[0];
        // A_i = Vᵀ c_i V in the eigenbasis.
        let a: Vec<Matrix> = (0..n)
            .map(|i| {
                let c = self.ed.annihilation_up(i);
                let cv = matmul(&c, Op::NoTrans, &self.evecs, Op::NoTrans);
                matmul(&self.evecs, Op::Trans, &cv, Op::NoTrans)
            })
            .collect();
        let zshift: f64 = self
            .evals
            .iter()
            .map(|&ev| (-self.beta * (ev - e0)).exp())
            .sum();
        let mut g = Matrix::zeros(n, n);
        for m in 0..dim {
            let wm = (-(self.beta - tau) * (self.evals[m] - e0)).exp();
            if wm == 0.0 {
                continue;
            }
            for nn in 0..dim {
                let w = wm * (-tau * (self.evals[nn] - e0)).exp();
                if w == 0.0 {
                    continue;
                }
                for i in 0..n {
                    let aim = a[i][(m, nn)];
                    if aim == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        g[(i, j)] += w * aim * a[j][(m, nn)];
                    }
                }
            }
        }
        g.scale(1.0 / zshift);
        g
    }

    /// Local imaginary-time Green's function `G_loc(τ) = Tr G(τ)/N`.
    pub fn greens_tau_local(&self, tau: f64) -> f64 {
        let g = self.greens_tau(tau);
        (0..self.ed.nsites()).map(|i| g[(i, i)]).sum::<f64>() / self.ed.nsites() as f64
    }

    /// Momentum distribution on the lattice's k grid.
    pub fn momentum_distribution(&self) -> Matrix {
        let n = self.ed.nsites();
        // dm[(r, r')] = ⟨c†_{r'} c_r⟩ = δ − G.
        let g = self.greens();
        let mut dm = Matrix::identity(n);
        dm.axpy(-1.0, &g);
        fourier::momentum_distribution(self.ed.lattice(), &dm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice::Lattice;

    fn dimer(u: f64, mu_tilde: f64, beta: f64) -> ThermalEnsemble {
        ThermalEnsemble::new(
            HubbardEd::new(Lattice::square(2, 1, 1.0), u, mu_tilde),
            beta,
        )
    }

    #[test]
    fn weights_normalised() {
        let t = dimer(4.0, 0.0, 2.0);
        let s: f64 = t.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(t.weights[0] >= *t.weights.last().unwrap());
    }

    #[test]
    fn half_filling_density_exactly_one() {
        for &u in &[0.0, 2.0, 8.0] {
            let t = dimer(u, 0.0, 3.0);
            assert!((t.density() - 1.0).abs() < 1e-10, "U={u}: {}", t.density());
        }
    }

    #[test]
    fn single_site_analytics() {
        // One site: Z = 1 + 2e^{βμe} + e^{−β(U−2μe)}, μe = μ̃ + U/2.
        let u = 4.0;
        let mu_t = 0.7;
        let beta = 1.3;
        let t = ThermalEnsemble::new(HubbardEd::new(Lattice::square(1, 1, 1.0), u, mu_t), beta);
        let mue = mu_t + u / 2.0;
        let z = 1.0 + 2.0 * (beta * mue).exp() + (-beta * (u - 2.0 * mue)).exp();
        let rho = (2.0 * (beta * mue).exp() + 2.0 * (-beta * (u - 2.0 * mue)).exp()) / z;
        let docc = (-beta * (u - 2.0 * mue)).exp() / z;
        assert!(
            (t.density() - rho).abs() < 1e-10,
            "{} vs {rho}",
            t.density()
        );
        assert!((t.double_occupancy() - docc).abs() < 1e-10);
    }

    #[test]
    fn u0_greens_matches_free_fermions() {
        // U = 0: G must equal (I + e^{−βK})⁻¹ with K including −μeff = 0.
        let t = dimer(0.0, 0.0, 2.0);
        let k = t.ed().lattice().kinetic_matrix(0.0);
        let e = linalg::sym_expm(&k, -2.0).unwrap();
        let mut m = Matrix::identity(2);
        m.axpy(1.0, &e);
        let g_free = linalg::lu::inverse(&m).unwrap();
        let g_ed = t.greens();
        assert!(
            g_ed.max_abs_diff(&g_free) < 1e-10,
            "{}",
            g_ed.max_abs_diff(&g_free)
        );
    }

    #[test]
    fn greens_diagonal_matches_density() {
        let t = dimer(4.0, 0.3, 2.0);
        let g = t.greens();
        // ⟨n_σ⟩ per site = 1 − G_ii; total density = 2 × average over sites.
        let rho_from_g: f64 = (0..2).map(|i| 2.0 * (1.0 - g[(i, i)])).sum::<f64>() / 2.0;
        assert!((rho_from_g - t.density()).abs() < 1e-10);
    }

    #[test]
    fn spin_correlation_sum_rule() {
        // C(0) = ρ − 2·docc at any parameters.
        let t = dimer(5.0, 0.2, 1.7);
        let c = t.spin_correlation();
        let expect = t.density() - 2.0 * t.double_occupancy();
        // C(0) per site: average diagonal.
        let c00 = (c[(0, 0)] + c[(1, 1)]) / 2.0;
        assert!((c00 - expect).abs() < 1e-10, "{c00} vs {expect}");
    }

    #[test]
    fn strong_u_builds_antiferromagnetic_dimer_correlation() {
        let weak = dimer(0.0, 0.0, 4.0);
        let strong = dimer(8.0, 0.0, 4.0);
        let cw = weak.spin_correlation();
        let cs = strong.spin_correlation();
        // Nearest-neighbour spin correlation grows more negative with U.
        assert!(
            cs[(0, 1)] < cw[(0, 1)] - 0.1,
            "{} vs {}",
            cs[(0, 1)],
            cw[(0, 1)]
        );
    }

    #[test]
    fn energy_decreases_with_beta_ground_state_limit() {
        let hot = dimer(4.0, 0.0, 0.5);
        let cold = dimer(4.0, 0.0, 20.0);
        assert!(cold.energy() < hot.energy());
        // β → ∞ limit approaches E₀.
        assert!((cold.energy() - cold.evals[0]).abs() < 1e-3);
    }

    #[test]
    fn greens_tau_zero_matches_equal_time() {
        let t = dimer(4.0, 0.2, 2.0);
        let g0 = t.greens();
        let gt = t.greens_tau(0.0);
        assert!(gt.max_abs_diff(&g0) < 1e-10, "{}", gt.max_abs_diff(&g0));
    }

    #[test]
    fn greens_tau_beta_antiperiodicity() {
        // G(β)_ij = ⟨c†_j c_i⟩ = δ_ij − G(0)_ij.
        let t = dimer(4.0, 0.0, 2.0);
        let g0 = t.greens();
        let gb = t.greens_tau(t.beta());
        let mut expect = Matrix::identity(2);
        expect.axpy(-1.0, &g0);
        assert!(gb.max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    fn greens_tau_u0_matches_free_propagator() {
        // U = 0: G(τ) = e^{−τK}(I + e^{−βK})⁻¹ exactly.
        let t = dimer(0.0, 0.0, 2.0);
        let k = t.ed().lattice().kinetic_matrix(0.0);
        for &tau in &[0.3, 1.0, 1.7] {
            let gt = t.greens_tau(tau);
            let prop = linalg::sym_expm(&k, -tau).unwrap();
            let mut m = Matrix::identity(2);
            m.axpy(1.0, &linalg::sym_expm(&k, -2.0).unwrap());
            let g0 = linalg::lu::inverse(&m).unwrap();
            let expect = linalg::blas3::matmul(&prop, Op::NoTrans, &g0, Op::NoTrans);
            assert!(
                gt.max_abs_diff(&expect) < 1e-10,
                "τ={tau}: {}",
                gt.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn greens_tau_local_decays_from_zero() {
        let t = dimer(4.0, 0.0, 4.0);
        let g0 = t.greens_tau_local(0.0);
        let gmid = t.greens_tau_local(2.0);
        assert!(gmid < g0, "{gmid} !< {g0}");
        assert!(gmid > 0.0);
    }

    #[test]
    fn momentum_distribution_sums_to_density() {
        let t = dimer(3.0, 0.4, 2.0);
        let nk = t.momentum_distribution();
        // Σ_k n_k = N ⟨n⟩_σ-avg… with our conventions: Σ_k n_k = Σ_r ⟨c†c⟩
        // per spin = N·ρ/2.
        let total: f64 = nk.as_slice().iter().sum();
        assert!(
            (total - 2.0 * t.density() / 2.0 * 1.0).abs() < 1e-9,
            "{total}"
        );
    }
}
