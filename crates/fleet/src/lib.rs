//! Multi-process sweep sharding with byte-deterministic merge.
//!
//! One DQMC campaign, many OS processes: the grid is split into
//! contiguous (U, β) point blocks ([`sched::plan_shards`]), each block
//! becomes a [`ShardManifest`] handed to a supervised child process, each
//! child runs its points through a private [`sched::SweepService`] and
//! checkpoints a [`ShardReport`] after every finished point, and the
//! supervisor recombines the reports into the **exact bytes** the
//! single-process sweep would have produced.
//!
//! The identity is structural, not statistical. The shard unit is a whole
//! grid point, canonical point indices are the seed stream ids, and a
//! point summary is a pure function of (grid, seeds) — pinned by the
//! determinism test tier. Merging therefore reassembles finished
//! fragments in canonical order and emits them through the one shared
//! [`sched::observables_json_for`] formatter; no float is ever
//! re-associated across processes. Crashes, wedges, and respawns cannot
//! move the bytes either: a restarted child reruns only its unfinished
//! points, and those rerun to the same summaries the lost process would
//! have written.
//!
//! Layout:
//!
//! - [`manifest`]: `DQSM` work orders (grid text + point block +
//!   fingerprint);
//! - [`report`]: `DQSR` result/checkpoint files and the merge;
//! - [`child`]: the shard worker loop (resume, heartbeat, fault hooks);
//! - [`supervisor`]: process spawning, heartbeat watchdog,
//!   respawn-from-checkpoint, quarantine, and the health ledger.

pub mod child;
pub mod manifest;
pub mod report;
pub mod supervisor;

pub use child::{child_main, SCRIPTED_EXIT_CODE};
pub use manifest::ShardManifest;
pub use report::{merge_reports, MergeError, MergedReport, ShardReport};
pub use supervisor::{
    run_fleet, run_fleet_subset, ChildCommand, FleetConfig, FleetError, FleetOutcome,
};

use std::io::Write;
use std::path::Path;

/// Writes `bytes` atomically: temp file in the same directory, flush,
/// fsync, rename. Readers (supervisor polls, resumed children) see either
/// the old complete file or the new complete file, never a torn write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "fleet".to_string())
    ));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_contents_whole() {
        let dir = std::env::temp_dir().join(format!("fleet-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("x.bin");
        write_atomic(&path, b"first").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        write_atomic(&path, b"second-longer").expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second-longer");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
