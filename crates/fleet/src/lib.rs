//! Multi-process sweep sharding with byte-deterministic merge.
//!
//! One DQMC campaign, many OS processes: the grid is split into
//! contiguous (U, β) point blocks ([`sched::plan_shards`]), each block
//! becomes a [`ShardManifest`] handed to a supervised child process, each
//! child runs its points through a private [`sched::SweepService`] and
//! checkpoints a [`ShardReport`] after every finished point, and the
//! supervisor recombines the reports into the **exact bytes** the
//! single-process sweep would have produced.
//!
//! The identity is structural, not statistical. The shard unit is a whole
//! grid point, canonical point indices are the seed stream ids, and a
//! point summary is a pure function of (grid, seeds) — pinned by the
//! determinism test tier. Merging therefore reassembles finished
//! fragments in canonical order and emits them through the one shared
//! [`sched::observables_json_for`] formatter; no float is ever
//! re-associated across processes. Crashes, wedges, and respawns cannot
//! move the bytes either: a restarted child reruns only its unfinished
//! points, and those rerun to the same summaries the lost process would
//! have written.
//!
//! Layout:
//!
//! - [`manifest`]: `DQSM` work orders (grid text + point block +
//!   fingerprint);
//! - [`report`]: `DQSR` result/checkpoint files and the merge;
//! - [`child`]: the shard worker loop (resume, heartbeat, fault hooks);
//! - [`supervisor`]: process spawning, heartbeat watchdog,
//!   respawn-from-checkpoint, quarantine, and the health ledger.

pub mod child;
pub mod manifest;
pub mod report;
pub mod supervisor;

pub use child::{child_main, HEARTBEAT_EXIT_CODE, SCRIPTED_EXIT_CODE};
pub use manifest::ShardManifest;
pub use report::{merge_reports, MergeError, MergedReport, ShardReport};
pub use supervisor::{
    run_fleet, run_fleet_subset, ChildCommand, FleetConfig, FleetError, FleetOutcome,
};

// All fleet files — manifests, reports, heartbeats — publish through the
// workspace's single audited write path, `util::vfs::write_atomic`; the
// bespoke copy this crate once carried is gone.
