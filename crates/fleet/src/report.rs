//! `DQSR` shard reports: a child's results file, doubling as its
//! checkpoint — plus the byte-deterministic merge that recombines a
//! fleet's fragments into the single-process observables document.
//!
//! A report holds the shard's identity (shard / nshards / grid
//! fingerprint), the campaign header fields the merged JSON needs
//! (seed, chains, warmup, sweeps), the point indices the shard was
//! *assigned*, and the [`PointSummary`] fragments it has *finished*.
//! Children rewrite the file atomically after every completed point, so a
//! respawned child resumes by decoding its own partial report and
//! skipping the points already present. Restart safety needs no replay
//! log: a point summary is a pure function of (grid, seeds), so rerunning
//! an unfinished point from scratch reproduces the same bytes the dead
//! process would have written.
//!
//! # Why the merge is byte-identical
//!
//! The shard unit is a whole grid point: every chain of a point runs in
//! one process, pooled by the same `summarize_point` chain-order fold the
//! single-process sweep uses, under canonical point indices (the seed
//! stream ids). The determinism tier (`tests/sched_determinism.rs`) pins
//! that per-point summaries are independent of workers, devices,
//! preemption, and fault plans — so each fragment here is bit-equal to
//! its single-process counterpart. Merging is therefore pure
//! reassembly: validate coverage, sort fragments into canonical point
//! order, and emit them through the one shared
//! [`sched::observables_json_for`] formatter. There is no float
//! re-associtation anywhere in the merge path.

use sched::PointSummary;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use util::codec::{crc32, ByteReader, ByteWriter, CodecError};

use crate::manifest::split_checked_body;

/// Report magic: "DQSR" (DQmc Shard Report).
const MAGIC: &[u8; 4] = b"DQSR";
/// Report format version.
const VERSION: u32 = 1;

/// One shard's (possibly partial) results.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard id, `0..nshards`.
    pub shard: usize,
    /// Total shards in the fleet.
    pub nshards: usize,
    /// [`sched::grid_fingerprint`] of the campaign grid.
    pub fingerprint: u64,
    /// Campaign base seed (merged-JSON header field).
    pub seed: u64,
    /// Chains per point (merged-JSON header field).
    pub chains: usize,
    /// Warmup sweeps per chain (merged-JSON header field).
    pub warmup: usize,
    /// Measured sweeps per chain (merged-JSON header field).
    pub sweeps: usize,
    /// Canonical point indices this shard was assigned, ascending.
    pub assigned: Vec<usize>,
    /// Finished point summaries, in completion order. Observables-layer
    /// only: schedule diagnostics are zeroed by the codec.
    pub fragments: Vec<PointSummary>,
    /// Chains that exhausted their retry budget, summed over fragments.
    pub failed_chains: usize,
}

impl ShardReport {
    /// True once every assigned point has a fragment.
    pub fn is_complete(&self) -> bool {
        let mut done: Vec<usize> = self.fragments.iter().map(|f| f.point).collect();
        done.sort_unstable();
        done == self.assigned
    }

    /// Assigned points with no fragment yet, ascending.
    pub fn missing_points(&self) -> Vec<usize> {
        let done: Vec<usize> = self.fragments.iter().map(|f| f.point).collect();
        self.assigned
            .iter()
            .copied()
            .filter(|p| !done.contains(p))
            .collect()
    }

    /// Serialises the report: header, payload, CRC trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u64(self.shard as u64);
        w.put_u64(self.nshards as u64);
        w.put_u64(self.fingerprint);
        w.put_u64(self.seed);
        w.put_u64(self.chains as u64);
        w.put_u64(self.warmup as u64);
        w.put_u64(self.sweeps as u64);
        w.put_u64(self.failed_chains as u64);
        w.put_u64(self.assigned.len() as u64);
        for &p in &self.assigned {
            w.put_u64(p as u64);
        }
        w.put_u64(self.fragments.len() as u64);
        for f in &self.fragments {
            f.encode_observables(&mut w);
        }
        let body = w.into_bytes();
        let mut out = ByteWriter::new();
        out.put_bytes(&body);
        out.put_u32(crc32(&body));
        out.into_bytes()
    }

    /// Validates and decodes a report produced by [`ShardReport::encode`].
    pub fn decode(bytes: &[u8]) -> Result<ShardReport, CodecError> {
        let body = split_checked_body(bytes)?;
        let mut r = ByteReader::new(body);
        if r.get_bytes(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                found: version,
                expected: VERSION,
            });
        }
        let shard = r.get_u64()? as usize;
        let nshards = r.get_u64()? as usize;
        if nshards == 0 || shard >= nshards {
            return Err(CodecError::Invalid(format!(
                "shard {shard} outside fleet of {nshards}"
            )));
        }
        let fingerprint = r.get_u64()?;
        let seed = r.get_u64()?;
        let chains = r.get_u64()? as usize;
        let warmup = r.get_u64()? as usize;
        let sweeps = r.get_u64()? as usize;
        let failed_chains = r.get_u64()? as usize;
        let nassigned = r.get_u64()? as usize;
        let mut assigned = Vec::with_capacity(nassigned.min(1 << 20));
        for _ in 0..nassigned {
            assigned.push(r.get_u64()? as usize);
        }
        if !assigned.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::Invalid(
                "assigned points must be strictly ascending".into(),
            ));
        }
        let nfrag = r.get_u64()? as usize;
        let mut fragments = Vec::with_capacity(nfrag.min(1 << 20));
        for _ in 0..nfrag {
            let f = PointSummary::decode_observables(&mut r)?;
            if !assigned.contains(&f.point) {
                return Err(CodecError::Invalid(format!(
                    "fragment for point {} not in shard assignment",
                    f.point
                )));
            }
            fragments.push(f);
        }
        if !r.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "{} trailing report bytes",
                r.remaining()
            )));
        }
        Ok(ShardReport {
            shard,
            nshards,
            fingerprint,
            seed,
            chains,
            warmup,
            sweeps,
            assigned,
            fragments,
            failed_chains,
        })
    }

    /// Reads and decodes a report file.
    pub fn read(path: &Path) -> Result<ShardReport, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ShardReport::decode(&bytes).map_err(|e| format!("invalid report {}: {e}", path.display()))
    }

    /// Writes the report atomically and durably — the child's per-point
    /// checkpoint. Transient failures (a briefly-full disk, EIO) are
    /// retried with the workspace's deterministic bounded backoff before
    /// surfacing: losing a checkpoint costs a whole point rerun, so the
    /// child rides out short outages.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        util::vfs::write_atomic_retry(
            path,
            &self.encode(),
            util::vfs::RETRY_ATTEMPTS,
            util::vfs::RETRY_BASE_DELAY,
        )
    }
}

/// Why a set of shard reports refused to merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No reports were offered.
    Empty,
    /// Two reports disagree on a campaign-level field.
    HeaderMismatch(String),
    /// Two fragments (across or within reports) cover the same point.
    DuplicatePoint(usize),
    /// Assigned points remain unfinished after all reports merged.
    MissingPoints(Vec<usize>),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::HeaderMismatch(msg) => write!(f, "shard header mismatch: {msg}"),
            MergeError::DuplicatePoint(p) => {
                write!(f, "point {p} appears in more than one shard report")
            }
            MergeError::MissingPoints(pts) => {
                write!(f, "unfinished points after merge: {pts:?}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A fleet's recombined campaign: the same data a single-process
/// [`sched::SweepReport`] would carry at the observables layer.
#[derive(Clone, Debug)]
pub struct MergedReport {
    /// Campaign base seed.
    pub seed: u64,
    /// Chains per point.
    pub chains: usize,
    /// Warmup sweeps per chain.
    pub warmup: usize,
    /// Measured sweeps per chain.
    pub sweeps: usize,
    /// Point summaries in canonical (ascending index) order.
    pub points: Vec<PointSummary>,
    /// Retry-exhausted chains summed over shards.
    pub failed_chains: usize,
}

impl MergedReport {
    /// Emits the observables JSON document through the shared
    /// single-process formatter — the byte-identity anchor.
    pub fn observables_json(&self) -> String {
        sched::observables_json_for(
            self.seed,
            self.chains,
            self.warmup,
            self.sweeps,
            &self.points,
        )
    }
}

/// Recombines shard reports into one campaign report.
///
/// Validates that every report speaks for the same campaign (fingerprint
/// and header fields equal), that no point is claimed twice, and that the
/// union of fragments covers the union of assignments. Fragments are
/// reassembled in canonical point order; nothing is recomputed.
pub fn merge_reports(reports: &[ShardReport]) -> Result<MergedReport, MergeError> {
    let first = reports.first().ok_or(MergeError::Empty)?;
    let mut fragments: BTreeMap<usize, PointSummary> = BTreeMap::new();
    let mut assigned: Vec<usize> = Vec::new();
    let mut failed_chains = 0usize;
    for r in reports {
        if r.fingerprint != first.fingerprint {
            return Err(MergeError::HeaderMismatch(format!(
                "grid fingerprint {:#018x} (shard {}) != {:#018x} (shard {})",
                r.fingerprint, r.shard, first.fingerprint, first.shard
            )));
        }
        for (name, a, b) in [
            ("seed", r.seed, first.seed),
            ("chains", r.chains as u64, first.chains as u64),
            ("warmup", r.warmup as u64, first.warmup as u64),
            ("sweeps", r.sweeps as u64, first.sweeps as u64),
            ("nshards", r.nshards as u64, first.nshards as u64),
        ] {
            if a != b {
                return Err(MergeError::HeaderMismatch(format!(
                    "{name} {a} (shard {}) != {b} (shard {})",
                    r.shard, first.shard
                )));
            }
        }
        assigned.extend_from_slice(&r.assigned);
        failed_chains += r.failed_chains;
        for f in &r.fragments {
            if fragments.insert(f.point, f.clone()).is_some() {
                return Err(MergeError::DuplicatePoint(f.point));
            }
        }
    }
    assigned.sort_unstable();
    for w in assigned.windows(2) {
        if w[0] == w[1] {
            return Err(MergeError::DuplicatePoint(w[0]));
        }
    }
    let missing: Vec<usize> = assigned
        .iter()
        .copied()
        .filter(|p| !fragments.contains_key(p))
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::MissingPoints(missing));
    }
    Ok(MergedReport {
        seed: first.seed,
        chains: first.chains,
        warmup: first.warmup,
        sweeps: first.sweeps,
        points: fragments.into_values().collect(),
        failed_chains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(point: usize) -> PointSummary {
        PointSummary {
            point,
            u: 2.0 + point as f64,
            beta: 1.5,
            slices: 12,
            chains_ok: 2,
            chains_failed: 0,
            bin_count: 4,
            scalars: None,
            mean_acceptance: 0.0,
            max_wrap_error: 0.0,
            recovery_events: 0,
            preemptions: 0,
            device_quanta: 0,
            host_quanta: 0,
            device_seconds: 0.0,
        }
    }

    fn report(shard: usize, assigned: Vec<usize>, done: &[usize]) -> ShardReport {
        ShardReport {
            shard,
            nshards: 2,
            fingerprint: 7,
            seed: 42,
            chains: 2,
            warmup: 2,
            sweeps: 4,
            assigned,
            fragments: done.iter().map(|&p| summary(p)).collect(),
            failed_chains: 0,
        }
    }

    #[test]
    fn report_round_trips_and_rejects_corruption() {
        let r = report(0, vec![0, 1], &[1, 0]);
        let bytes = r.encode();
        let back = ShardReport::decode(&bytes).expect("round trip");
        assert_eq!(back.encode(), bytes, "decode∘encode is the identity");
        assert_eq!(back.assigned, r.assigned);
        assert_eq!(back.fragments.len(), r.fragments.len());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(ShardReport::decode(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn completeness_and_missing_points_track_fragments() {
        let partial = report(0, vec![0, 1, 2], &[1]);
        assert!(!partial.is_complete());
        assert_eq!(partial.missing_points(), vec![0, 2]);
        let full = report(0, vec![0, 1, 2], &[2, 0, 1]);
        assert!(full.is_complete());
        assert!(full.missing_points().is_empty());
    }

    #[test]
    fn merge_sorts_fragments_into_canonical_order() {
        let a = report(0, vec![0, 3], &[3, 0]);
        let b = report(1, vec![1, 2], &[2, 1]);
        let merged = merge_reports(&[b, a]).expect("merges");
        let order: Vec<usize> = merged.points.iter().map(|p| p.point).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_rejects_mismatch_duplicate_and_missing() {
        let a = report(0, vec![0, 1], &[0, 1]);
        let mut skewed = report(1, vec![2], &[2]);
        skewed.fingerprint = 8;
        assert!(matches!(
            merge_reports(&[a.clone(), skewed]),
            Err(MergeError::HeaderMismatch(_))
        ));
        let dup = report(1, vec![1, 2], &[1, 2]);
        assert!(matches!(
            merge_reports(&[a.clone(), dup]),
            Err(MergeError::DuplicatePoint(1))
        ));
        let partial = report(1, vec![2, 3], &[2]);
        match merge_reports(&[a, partial]) {
            Err(MergeError::MissingPoints(pts)) => assert_eq!(pts, vec![3]),
            other => panic!("expected MissingPoints, got {other:?}"),
        }
        assert!(matches!(merge_reports(&[]), Err(MergeError::Empty)));
    }
}
