//! The shard worker: what runs inside each fleet child process.
//!
//! A child is handed three paths — manifest in, report out, heartbeat
//! out — and nothing else; all campaign state reconstructs from the
//! manifest. It re-parses the grid text, verifies the physics fingerprint,
//! resumes from any partial report left by a previous incarnation, and
//! then runs one [`sched::SweepService`] campaign per remaining point,
//! atomically rewriting the report after each. The report *is* the
//! checkpoint: restart granularity is a whole point, and a rerun point
//! reproduces the dead process's bytes because point summaries are pure
//! functions of (grid, seeds).
//!
//! Health is a heartbeat counter file rewritten on a short cadence by a
//! dedicated thread; the supervisor calls a child dead when the counter
//! stops moving. Scripted fault hooks (env vars, test-only) let the fleet
//! tier rehearse crash and wedge recovery deterministically:
//!
//! - `DQMC_FLEET_EXIT_AFTER=n` — exit with code 86 once the report holds
//!   `n` fragments;
//! - `DQMC_FLEET_HANG_AFTER=n` — freeze the heartbeat and sleep forever
//!   once the report holds `n` fragments (exercises the kill path);
//! - `DQMC_FLEET_FAULT_SHARD=k` — scope either hook to shard `k`;
//! - `DQMC_FLEET_BEAT_STREAK=n` — lower the heartbeat-failure escalation
//!   streak so the escalation path can be rehearsed without waiting out
//!   the production ~0.5 s window.
//!
//! The supervisor strips these variables when it respawns a child, so a
//! scripted fault fires exactly once and the respawn completes the shard.

use sched::{CampaignRequest, GridSpec, ServiceConfig, SweepService};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::manifest::ShardManifest;
use crate::report::ShardReport;

/// Exit code for a scripted `DQMC_FLEET_EXIT_AFTER` crash.
pub const SCRIPTED_EXIT_CODE: i32 = 86;
/// Exit code when heartbeat writes fail [`HEARTBEAT_FAILURE_STREAK`]
/// times in a row: the child cannot prove liveness, so it turns itself
/// in instead of running invisible to the watchdog.
pub const HEARTBEAT_EXIT_CODE: i32 = 87;
/// Heartbeat rewrite cadence.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(25);
/// Consecutive heartbeat write failures tolerated before escalation
/// (~0.5 s of a dead counter file at the 25 ms cadence).
const HEARTBEAT_FAILURE_STREAK: u64 = 20;

/// Env hook names, shared with the supervisor (which strips them on
/// respawn).
pub const ENV_EXIT_AFTER: &str = "DQMC_FLEET_EXIT_AFTER";
/// See [`ENV_EXIT_AFTER`].
pub const ENV_HANG_AFTER: &str = "DQMC_FLEET_HANG_AFTER";
/// See [`ENV_EXIT_AFTER`].
pub const ENV_FAULT_SHARD: &str = "DQMC_FLEET_FAULT_SHARD";
/// See [`ENV_EXIT_AFTER`].
pub const ENV_BEAT_STREAK: &str = "DQMC_FLEET_BEAT_STREAK";

/// The escalation streak: [`HEARTBEAT_FAILURE_STREAK`] unless the
/// test-only [`ENV_BEAT_STREAK`] hook lowers it.
fn failure_streak() -> u64 {
    std::env::var(ENV_BEAT_STREAK)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(HEARTBEAT_FAILURE_STREAK)
}

/// Scripted fault hooks decoded from the environment.
#[derive(Clone, Copy, Debug, Default)]
struct FaultHooks {
    exit_after: Option<usize>,
    hang_after: Option<usize>,
}

impl FaultHooks {
    fn from_env(shard: usize) -> FaultHooks {
        let scoped = |name: &str| -> Option<usize> {
            let v = std::env::var(name).ok()?.parse().ok()?;
            match std::env::var(ENV_FAULT_SHARD) {
                Ok(k) if k.parse() != Ok(shard) => None,
                _ => Some(v),
            }
        };
        FaultHooks {
            exit_after: scoped(ENV_EXIT_AFTER),
            hang_after: scoped(ENV_HANG_AFTER),
        }
    }
}

/// Heartbeat writer: a thread rewriting a counter file until stopped.
struct Heartbeat {
    stop: Arc<AtomicBool>,
    failed: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(path: PathBuf) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        let beats = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&stop);
        let broke = Arc::clone(&failed);
        let handle = std::thread::Builder::new()
            .name("fleet-heartbeat".into())
            .spawn(move || {
                let escalate_at = failure_streak();
                let mut streak = 0u64;
                while !flag.load(Ordering::Acquire) {
                    let n = beats.fetch_add(1, Ordering::Relaxed) + 1;
                    // Atomic rewrite: the supervisor must never read a
                    // half-written counter.
                    match util::vfs::write_atomic(&path, &n.to_le_bytes()) {
                        Ok(()) => streak = 0,
                        Err(e) => {
                            streak += 1;
                            if streak >= escalate_at {
                                eprintln!(
                                    "heartbeat {}: {streak} consecutive write failures (last: {e}); escalating",
                                    path.display()
                                );
                                broke.store(true, Ordering::Release);
                                return;
                            }
                        }
                    }
                    std::thread::sleep(HEARTBEAT_PERIOD);
                }
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            failed,
            handle: Some(handle),
        }
    }

    /// True once the writer has given up after a bounded failure streak;
    /// the counter file is permanently stale and the child must exit.
    fn broken(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Stops the writer; the counter file goes permanently stale.
    fn freeze(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.freeze();
    }
}

/// Runs a shard to completion. Returns the process exit code.
///
/// `args` are the child's positional arguments:
/// `<manifest> <report> <heartbeat>`.
pub fn child_main(args: &[String]) -> i32 {
    let [manifest_path, report_path, heartbeat_path] = args else {
        eprintln!("usage: shard-child <manifest.dqsm> <report.dqsr> <heartbeat>");
        return 2;
    };
    match run_shard(
        Path::new(manifest_path),
        Path::new(report_path),
        Path::new(heartbeat_path),
    ) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("shard child failed: {e}");
            2
        }
    }
}

fn run_shard(
    manifest_path: &Path,
    report_path: &Path,
    heartbeat_path: &Path,
) -> Result<i32, String> {
    let manifest = ShardManifest::read(manifest_path)?;
    let mut spec =
        GridSpec::parse(&manifest.grid_text).map_err(|e| format!("manifest grid: {e:?}"))?;
    let fingerprint = sched::grid_fingerprint(&spec);
    if fingerprint != manifest.fingerprint {
        return Err(format!(
            "grid fingerprint {fingerprint:#018x} does not match manifest \
             {:#018x}: stale or foreign manifest",
            manifest.fingerprint
        ));
    }
    // Slot-fault scripts are pool-level scheduling chaos; the resident
    // service refuses them and the determinism tier proves they cannot
    // move observable bytes, so a fleet child simply drops them.
    spec.slot_faults.clear();

    let mut report = resume_or_fresh(report_path, &manifest, &spec);
    report
        .write(report_path)
        .map_err(|e| format!("cannot write shard report {}: {e}", report_path.display()))?;

    let hooks = FaultHooks::from_env(manifest.shard);
    let mut heartbeat = Heartbeat::start(heartbeat_path.to_path_buf());

    let service = SweepService::start(&ServiceConfig {
        workers: spec.workers,
        devices: spec.devices,
        quantum: spec.quantum,
        job_retries: spec.job_retries,
        // Namespace the campaign tags by shard so no two fleet processes
        // ever mint the same tag — shard-scoped provenance in traces.
        tag_namespace: manifest.shard as u64 + 1,
        ..ServiceConfig::default()
    });

    let todo = report.missing_points();
    for point in todo {
        if let Some(code) = fire_hooks(&hooks, &report, &mut heartbeat) {
            return Ok(code);
        }
        if heartbeat.broken() {
            return Ok(HEARTBEAT_EXIT_CODE);
        }
        let handle = service
            .submit(
                &CampaignRequest {
                    spec: spec.clone(),
                    priority: 0,
                    points: Some(vec![point]),
                },
                None,
            )
            .map_err(|e| format!("point {point} refused: {e:?}"))?;
        let outcome = handle.wait();
        report.failed_chains += outcome.failed_chains;
        report.fragments.extend(outcome.points);
        // Checkpoint: the report on disk always describes a prefix of the
        // shard's work, atomically replaced per finished point.
        report.write(report_path).map_err(|e| {
            format!(
                "cannot checkpoint shard report {}: {e}",
                report_path.display()
            )
        })?;
    }
    if let Some(code) = fire_hooks(&hooks, &report, &mut heartbeat) {
        return Ok(code);
    }
    if heartbeat.broken() {
        return Ok(HEARTBEAT_EXIT_CODE);
    }
    service.shutdown();
    heartbeat.freeze();
    Ok(0)
}

/// Applies scripted fault hooks against the current fragment count.
fn fire_hooks(hooks: &FaultHooks, report: &ShardReport, heartbeat: &mut Heartbeat) -> Option<i32> {
    if hooks
        .exit_after
        .is_some_and(|n| report.fragments.len() >= n)
    {
        return Some(SCRIPTED_EXIT_CODE);
    }
    if hooks
        .hang_after
        .is_some_and(|n| report.fragments.len() >= n)
    {
        // A wedge: heartbeat frozen, process alive. Only the supervisor's
        // kill ends this incarnation.
        heartbeat.freeze();
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    None
}

/// Resumes from a valid partial report for this exact shard, else starts
/// fresh. Any decode or identity failure falls back to fresh — a corrupt
/// checkpoint costs recomputation, never wrong bytes.
fn resume_or_fresh(path: &Path, manifest: &ShardManifest, spec: &GridSpec) -> ShardReport {
    let fresh = ShardReport {
        shard: manifest.shard,
        nshards: manifest.nshards,
        fingerprint: manifest.fingerprint,
        seed: spec.seed,
        chains: spec.chains,
        warmup: spec.warmup,
        sweeps: spec.sweeps,
        assigned: manifest.points.clone(),
        fragments: Vec::new(),
        failed_chains: 0,
    };
    let Ok(prev) = ShardReport::read(path) else {
        return fresh;
    };
    let identity_holds = prev.shard == manifest.shard
        && prev.nshards == manifest.nshards
        && prev.fingerprint == manifest.fingerprint
        && prev.assigned == manifest.points
        && prev.seed == spec.seed
        && prev.chains == spec.chains
        && prev.warmup == spec.warmup
        && prev.sweeps == spec.sweeps;
    if identity_holds {
        prev
    } else {
        fresh
    }
}
