//! `DQSM` shard manifests: the work order a supervisor hands a child
//! process.
//!
//! A manifest carries everything a child needs to reproduce its slice of
//! the campaign from nothing: the grid text verbatim (the child re-parses
//! it, so both processes run the *same* `GridSpec::parse` — one source of
//! truth, no struct-serialisation skew), the canonical point indices the
//! shard owns, and the grid's physics fingerprint so a child started
//! against a stale manifest refuses to run rather than producing
//! unmergeable bytes.
//!
//! Framing follows the checkpoint discipline shared by `DQCP`/`DQRC`:
//! magic, version, payload, CRC-32 trailer; any validation failure is an
//! error, never a guess.

use std::path::Path;
use util::codec::{crc32, ByteReader, ByteWriter, CodecError};

/// Manifest magic: "DQSM" (DQmc Shard Manifest).
const MAGIC: &[u8; 4] = b"DQSM";
/// Manifest format version.
const VERSION: u32 = 1;

/// One shard's work order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard id, `0..nshards`.
    pub shard: usize,
    /// Total shards in the fleet.
    pub nshards: usize,
    /// [`sched::grid_fingerprint`] of the grid below; children refuse a
    /// mismatch between this and what they parse.
    pub fingerprint: u64,
    /// The campaign grid, verbatim — the child re-parses it.
    pub grid_text: String,
    /// Canonical (u-major) point indices this shard owns, ascending.
    pub points: Vec<usize>,
}

impl ShardManifest {
    /// Serialises the manifest: header, payload, CRC trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        w.put_u64(self.shard as u64);
        w.put_u64(self.nshards as u64);
        w.put_u64(self.fingerprint);
        let grid = self.grid_text.as_bytes();
        w.put_u64(grid.len() as u64);
        w.put_bytes(grid);
        w.put_u64(self.points.len() as u64);
        for &p in &self.points {
            w.put_u64(p as u64);
        }
        let body = w.into_bytes();
        let mut out = ByteWriter::new();
        out.put_bytes(&body);
        out.put_u32(crc32(&body));
        out.into_bytes()
    }

    /// Validates and decodes a manifest produced by
    /// [`ShardManifest::encode`].
    pub fn decode(bytes: &[u8]) -> Result<ShardManifest, CodecError> {
        let body = split_checked_body(bytes)?;
        let mut r = ByteReader::new(body);
        if r.get_bytes(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                found: version,
                expected: VERSION,
            });
        }
        let shard = r.get_u64()? as usize;
        let nshards = r.get_u64()? as usize;
        if nshards == 0 || shard >= nshards {
            return Err(CodecError::Invalid(format!(
                "shard {shard} outside fleet of {nshards}"
            )));
        }
        let fingerprint = r.get_u64()?;
        let grid_len = r.get_u64()? as usize;
        let grid_text = String::from_utf8(r.get_bytes(grid_len)?.to_vec())
            .map_err(|e| CodecError::Invalid(format!("grid text is not UTF-8: {e}")))?;
        let npoints = r.get_u64()? as usize;
        let mut points = Vec::with_capacity(npoints.min(1 << 20));
        for _ in 0..npoints {
            points.push(r.get_u64()? as usize);
        }
        if !points.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::Invalid(
                "manifest points must be strictly ascending".into(),
            ));
        }
        if !r.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "{} trailing manifest bytes",
                r.remaining()
            )));
        }
        Ok(ShardManifest {
            shard,
            nshards,
            fingerprint,
            grid_text,
            points,
        })
    }

    /// Reads and decodes a manifest file.
    pub fn read(path: &Path) -> Result<ShardManifest, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ShardManifest::decode(&bytes)
            .map_err(|e| format!("invalid manifest {}: {e}", path.display()))
    }

    /// Writes the manifest atomically and durably through the single
    /// audited write path.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        util::vfs::write_atomic(path, &self.encode())
    }
}

/// Splits off and verifies the CRC-32 trailer, returning the body.
pub(crate) fn split_checked_body(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            remaining: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            shard: 1,
            nshards: 3,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            grid_text: "lx = 2\nly = 2\nu = 2.0\nbeta = 1.0\n".into(),
            points: vec![2, 3, 5],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let m = sample();
        assert_eq!(ShardManifest::decode(&m.encode()).expect("round trip"), m);
    }

    #[test]
    fn rejects_corruption_truncation_and_bad_version() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(ShardManifest::decode(&bad).is_err(), "flip at byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(ShardManifest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_unsorted_points_and_bad_shard_ids() {
        let mut m = sample();
        m.points = vec![3, 2];
        assert!(ShardManifest::decode(&m.encode()).is_err());
        let mut m = sample();
        m.shard = 3; // == nshards
        assert!(ShardManifest::decode(&m.encode()).is_err());
    }
}
