//! The fleet supervisor: plans shards, spawns child processes, watches
//! their heartbeats, and recombines their reports byte-deterministically.
//!
//! Supervision is a single-threaded poll loop over per-shard state
//! machines — no locks, no channels; the kernel's process table and the
//! shard files on disk are the shared state. A child is healthy while its
//! heartbeat counter file keeps changing; a wedged child (stale heartbeat
//! past the timeout) is killed and treated exactly like a crash. Crashed
//! shards respawn from their own report checkpoint up to a bounded budget,
//! after which the shard is quarantined and the campaign reports exactly
//! which points are missing — a partial fleet never fabricates bytes.
//!
//! Every supervision event is recorded in a plain-text **health ledger**
//! (spawn, exit, stale-heartbeat kill, respawn, quarantine, completion),
//! the process-level analogue of the scheduler's in-process event log.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sched::{GridSpec, ShardPlan};

use crate::child::{ENV_EXIT_AFTER, ENV_FAULT_SHARD, ENV_HANG_AFTER};
use crate::manifest::ShardManifest;
use crate::report::{merge_reports, MergeError, MergedReport, ShardReport};

/// How to launch one shard child.
#[derive(Clone, Debug)]
pub struct ChildCommand {
    /// Executable to spawn (usually [`std::env::current_exe`]).
    pub program: PathBuf,
    /// Arguments placed *before* the manifest/report/heartbeat paths —
    /// e.g. `["shard-child"]` for the `dqmc-run` re-entry point.
    pub args: Vec<String>,
    /// Extra environment for first spawns — how the test tier arms
    /// `DQMC_FLEET_*` fault hooks per fleet run without mutating the
    /// parent's (process-global, thread-unsafe) environment. Hook
    /// variables are stripped on respawn like inherited ones.
    pub envs: Vec<(String, String)>,
}

impl ChildCommand {
    /// Re-enters the current executable with a leading mode argument.
    pub fn current_exe(mode: &str) -> std::io::Result<ChildCommand> {
        Ok(ChildCommand {
            program: std::env::current_exe()?,
            args: vec![mode.to_string()],
            envs: Vec::new(),
        })
    }
}

/// Fleet tuning knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Shard processes to plan for (actual count is capped by the number
    /// of points).
    pub procs: usize,
    /// How to launch children.
    pub child: ChildCommand,
    /// Directory for manifests, reports, heartbeats, and child logs.
    pub workdir: PathBuf,
    /// A running child whose heartbeat has not advanced for this long is
    /// killed and restarted from its checkpoint.
    pub heartbeat_timeout: Duration,
    /// Supervision poll cadence.
    pub poll_interval: Duration,
    /// Respawns allowed per shard before quarantine.
    pub respawn_budget: u32,
    /// Keep shard files after a successful merge (for debugging).
    pub keep_files: bool,
}

impl FleetConfig {
    /// A config with production-shaped defaults for `procs` shards rooted
    /// at `workdir`.
    pub fn new(procs: usize, child: ChildCommand, workdir: PathBuf) -> FleetConfig {
        FleetConfig {
            procs,
            child,
            workdir,
            heartbeat_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            respawn_budget: 2,
            keep_files: false,
        }
    }
}

/// Why a fleet campaign failed.
#[derive(Debug)]
pub enum FleetError {
    /// The grid text did not parse.
    Grid(String),
    /// Filesystem or process-spawn trouble.
    Io(String),
    /// A shard exhausted its respawn budget; its unfinished points are
    /// listed.
    ShardFailed {
        /// The quarantined shard.
        shard: usize,
        /// Spawn attempts consumed (1 initial + respawns).
        attempts: u32,
        /// Points the shard never finished.
        missing: Vec<usize>,
    },
    /// Reports refused to recombine (fingerprint skew, duplicate or
    /// missing coverage).
    Merge(MergeError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Grid(e) => write!(f, "grid error: {e}"),
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetError::ShardFailed {
                shard,
                attempts,
                missing,
            } => write!(
                f,
                "shard {shard} quarantined after {attempts} attempts; \
                 unfinished points {missing:?}"
            ),
            FleetError::Merge(e) => write!(f, "merge refused: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// The result of a fleet campaign.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The recombined campaign.
    pub merged: MergedReport,
    /// The observables JSON document — byte-identical to the
    /// single-process sweep's.
    pub observables: String,
    /// Shard processes planned (≤ `procs`).
    pub shards: usize,
    /// Respawns across all shards.
    pub respawns: u32,
    /// Stale-heartbeat kills across all shards.
    pub kills: u32,
    /// The process health ledger: one line per supervision event.
    pub ledger: Vec<String>,
    /// Wall-clock seconds for the whole fleet run.
    pub wall_seconds: f64,
}

/// One shard's supervision state.
struct ShardState {
    shard: usize,
    manifest_path: PathBuf,
    report_path: PathBuf,
    heartbeat_path: PathBuf,
    log_path: PathBuf,
    child: Option<Child>,
    /// Last heartbeat counter observed, and when it last changed.
    last_beat: (u64, Instant),
    attempts: u32,
    done: bool,
}

/// Runs a whole grid as a process fleet. See [`run_fleet_subset`].
pub fn run_fleet(grid_text: &str, cfg: &FleetConfig) -> Result<FleetOutcome, FleetError> {
    run_fleet_subset(grid_text, None, cfg)
}

/// Runs a fleet over a subset of canonical point indices (`None` = whole
/// grid), supervising children until every shard's report is complete,
/// then merging byte-deterministically.
pub fn run_fleet_subset(
    grid_text: &str,
    points: Option<&[usize]>,
    cfg: &FleetConfig,
) -> Result<FleetOutcome, FleetError> {
    let start = Instant::now();
    let spec = GridSpec::parse(grid_text).map_err(|e| FleetError::Grid(format!("{e:?}")))?;
    let fingerprint = sched::grid_fingerprint(&spec);
    let plan: ShardPlan = match points {
        None => sched::plan_shards(&spec, cfg.procs),
        Some(p) => sched::plan_shard_subset(&spec, p, cfg.procs),
    };
    std::fs::create_dir_all(&cfg.workdir)
        .map_err(|e| FleetError::Io(format!("workdir {}: {e}", cfg.workdir.display())))?;

    let mut ledger: Vec<String> = Vec::new();
    // Scrub crash debris from earlier incarnations before writing new
    // manifests: stranded `.tmp` files from a killed fleet are dead
    // weight and must never be mistaken for live work.
    let scrubbed = util::vfs::scrub_tmp(&cfg.workdir)
        .map_err(|e| FleetError::Io(format!("scrub workdir {}: {e}", cfg.workdir.display())))?;
    if scrubbed.count() > 0 {
        ledger.push(format!(
            "fleet: scrubbed {} stranded tmp file(s) from workdir: {}",
            scrubbed.count(),
            scrubbed.removed.join(", ")
        ));
    }
    let mut states: Vec<ShardState> = Vec::with_capacity(plan.blocks.len());
    for block in &plan.blocks {
        let manifest = ShardManifest {
            shard: block.shard,
            nshards: plan.blocks.len(),
            fingerprint,
            grid_text: grid_text.to_string(),
            points: block.points.clone(),
        };
        let stem = cfg.workdir.join(format!("shard-{}", block.shard));
        let manifest_path = stem.with_extension("dqsm");
        manifest
            .write(&manifest_path)
            .map_err(|e| FleetError::Io(format!("manifest {}: {e}", manifest_path.display())))?;
        states.push(ShardState {
            shard: block.shard,
            manifest_path,
            report_path: stem.with_extension("dqsr"),
            heartbeat_path: stem.with_extension("beat"),
            log_path: stem.with_extension("log"),
            child: None,
            last_beat: (0, Instant::now()),
            attempts: 0,
            done: false,
        });
    }

    let mut respawns = 0u32;
    let mut kills = 0u32;

    if let Err(e) = supervise(&mut states, cfg, &mut ledger, &mut respawns, &mut kills) {
        // Never leave orphans: a failed fleet reaps every child it spawned.
        for st in &mut states {
            if let Some(mut child) = st.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        return Err(e);
    }

    let mut reports = Vec::with_capacity(states.len());
    for st in &states {
        reports.push(ShardReport::read(&st.report_path).map_err(FleetError::Io)?);
    }
    let merged = merge_reports(&reports).map_err(FleetError::Merge)?;
    let observables = merged.observables_json();
    ledger.push(format!(
        "fleet: merged {} points from {} shards",
        merged.points.len(),
        states.len()
    ));

    if !cfg.keep_files {
        for st in &states {
            for p in [
                &st.manifest_path,
                &st.report_path,
                &st.heartbeat_path,
                &st.log_path,
            ] {
                let _ = std::fs::remove_file(p);
            }
        }
        // Only succeeds when nothing else lives in the workdir — callers
        // that share the directory keep it.
        let _ = std::fs::remove_dir(&cfg.workdir);
    }

    Ok(FleetOutcome {
        merged,
        observables,
        shards: states.len(),
        respawns,
        kills,
        ledger,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Spawns every shard and polls the fleet until all shards are done.
fn supervise(
    states: &mut [ShardState],
    cfg: &FleetConfig,
    ledger: &mut Vec<String>,
    respawns: &mut u32,
    kills: &mut u32,
) -> Result<(), FleetError> {
    // Initial spawns inherit the caller's environment — including any
    // scripted DQMC_FLEET_* fault hooks the test tier armed.
    for st in states.iter_mut() {
        spawn_child(st, cfg, false, ledger)?;
    }
    loop {
        let mut all_done = true;
        for st in states.iter_mut() {
            if st.done {
                continue;
            }
            all_done = false;
            poll_shard(st, cfg, ledger, respawns, kills)?;
        }
        if all_done {
            return Ok(());
        }
        std::thread::sleep(cfg.poll_interval);
    }
}

/// Spawns (or respawns) a shard child, appending its stdout/stderr to the
/// shard log. Respawns strip the scripted fault hooks so a rehearsed
/// crash fires exactly once.
fn spawn_child(
    st: &mut ShardState,
    cfg: &FleetConfig,
    is_respawn: bool,
    ledger: &mut Vec<String>,
) -> Result<(), FleetError> {
    let log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&st.log_path)
        .map_err(|e| FleetError::Io(format!("shard log {}: {e}", st.log_path.display())))?;
    let err_log = log
        .try_clone()
        .map_err(|e| FleetError::Io(format!("shard log {}: {e}", st.log_path.display())))?;
    let mut cmd = Command::new(&cfg.child.program);
    cmd.args(&cfg.child.args)
        .arg(&st.manifest_path)
        .arg(&st.report_path)
        .arg(&st.heartbeat_path)
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(err_log));
    for (k, v) in &cfg.child.envs {
        cmd.env(k, v);
    }
    if is_respawn {
        // Scripted hooks and any armed I/O fault plan fire exactly once:
        // the respawn must run clean or recovery could never converge.
        cmd.env_remove(ENV_EXIT_AFTER)
            .env_remove(ENV_HANG_AFTER)
            .env_remove(ENV_FAULT_SHARD)
            .env_remove(crate::child::ENV_BEAT_STREAK)
            .env_remove(util::vfs::ENV_FAULTS);
    }
    let child = cmd
        .spawn()
        .map_err(|e| FleetError::Io(format!("spawn {}: {e}", cfg.child.program.display())))?;
    st.attempts += 1;
    ledger.push(format!(
        "shard {}: {} pid {} (attempt {})",
        st.shard,
        if is_respawn { "respawned" } else { "spawned" },
        child.id(),
        st.attempts
    ));
    st.child = Some(child);
    st.last_beat = (read_beat(&st.heartbeat_path), Instant::now());
    Ok(())
}

/// Reads the heartbeat counter; a missing or short file reads as 0.
fn read_beat(path: &Path) -> u64 {
    match std::fs::read(path) {
        Ok(b) if b.len() >= 8 => u64::from_le_bytes(b[..8].try_into().expect("8 bytes")),
        _ => 0,
    }
}

/// One supervision step for one shard: exit handling, heartbeat staleness,
/// respawn-or-quarantine.
fn poll_shard(
    st: &mut ShardState,
    cfg: &FleetConfig,
    ledger: &mut Vec<String>,
    respawns: &mut u32,
    kills: &mut u32,
) -> Result<(), FleetError> {
    let Some(child) = st.child.as_mut() else {
        return Ok(());
    };
    match child.try_wait() {
        Ok(Some(status)) => {
            st.child = None;
            let complete = ShardReport::read(&st.report_path)
                .map(|r| r.is_complete())
                .unwrap_or(false);
            if status.success() && complete {
                ledger.push(format!("shard {}: complete ({status})", st.shard));
                st.done = true;
                return Ok(());
            }
            if status.code() == Some(crate::child::HEARTBEAT_EXIT_CODE) {
                ledger.push(format!(
                    "shard {}: heartbeat write failures escalated (exit {}), report {}",
                    st.shard,
                    crate::child::HEARTBEAT_EXIT_CODE,
                    if complete { "complete" } else { "incomplete" }
                ));
            } else {
                ledger.push(format!(
                    "shard {}: exited {status}, report {}",
                    st.shard,
                    if complete { "complete" } else { "incomplete" }
                ));
            }
            respawn_or_quarantine(st, cfg, ledger, respawns)
        }
        Ok(None) => {
            // Still running: advance the heartbeat clock, then judge it.
            let beat = read_beat(&st.heartbeat_path);
            if beat != st.last_beat.0 {
                st.last_beat = (beat, Instant::now());
            } else if st.last_beat.1.elapsed() > cfg.heartbeat_timeout {
                ledger.push(format!(
                    "shard {}: heartbeat stale for {:?}, killing pid {}",
                    st.shard,
                    cfg.heartbeat_timeout,
                    child.id()
                ));
                let _ = child.kill();
                let _ = child.wait();
                st.child = None;
                *kills += 1;
                return respawn_or_quarantine(st, cfg, ledger, respawns);
            }
            Ok(())
        }
        Err(e) => Err(FleetError::Io(format!("wait on shard {}: {e}", st.shard))),
    }
}

fn respawn_or_quarantine(
    st: &mut ShardState,
    cfg: &FleetConfig,
    ledger: &mut Vec<String>,
    respawns: &mut u32,
) -> Result<(), FleetError> {
    if st.attempts > cfg.respawn_budget {
        ledger.push(format!(
            "shard {}: quarantined after {} attempts",
            st.shard, st.attempts
        ));
        let missing = ShardReport::read(&st.report_path)
            .map(|r| r.missing_points())
            .unwrap_or_default();
        return Err(FleetError::ShardFailed {
            shard: st.shard,
            attempts: st.attempts,
            missing,
        });
    }
    *respawns += 1;
    spawn_child(st, cfg, true, ledger)
}
