//! QUEST-style input-file configuration.
//!
//! QUEST drives its simulations from a free-format input file; this crate
//! provides the same interface for the Rust engine. Files are plain
//! `key = value` lines, `#` starts a comment, keys are case-insensitive,
//! unknown keys are errors (catching typos beats silently ignoring them).
//!
//! ```text
//! # half-filled 8x8 Hubbard lattice
//! lx     = 8
//! ly     = 8
//! u      = 4.0
//! dtau   = 0.125
//! slices = 64          # beta = 8
//! warmup = 200
//! sweeps = 500
//! seed   = 42
//! ```
//!
//! See [`InputFile::parse`] for the full key list.

use dqmc::{ModelParams, RecoveryPolicy, SimParams, StratAlgo};
use lattice::Lattice;

/// Which compute backend runs the sweep's cluster/wrap kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Host BLAS path (infallible).
    Host,
    /// The simulated accelerator from the `gpusim` crate.
    Gpusim,
}

/// A parsed input file.
#[derive(Clone, Debug, PartialEq)]
pub struct InputFile {
    /// Lattice extent in x.
    pub lx: usize,
    /// Lattice extent in y.
    pub ly: usize,
    /// Stacked layers (1 = single plane).
    pub layers: usize,
    /// Periodic stacking instead of open.
    pub periodic_z: bool,
    /// In-plane hopping along x.
    pub t: f64,
    /// In-plane hopping along y (None = isotropic, same as `t`).
    pub ty: Option<f64>,
    /// Inter-layer hopping.
    pub tz: f64,
    /// On-site repulsion.
    pub u: f64,
    /// Shifted chemical potential μ̃ (0 = half filling).
    pub mu_tilde: f64,
    /// Imaginary-time step.
    pub dtau: f64,
    /// Time slices L.
    pub slices: usize,
    /// Warmup sweeps.
    pub warmup: usize,
    /// Measurement sweeps.
    pub sweeps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cluster size k.
    pub cluster_size: usize,
    /// Delayed-update block.
    pub delay_block: usize,
    /// Stratification algorithm.
    pub algorithm: StratAlgo,
    /// Cluster recycling.
    pub recycle: bool,
    /// Checkerboard kinetic operator.
    pub checkerboard: bool,
    /// Time-dependent measurements.
    pub unequal_time: bool,
    /// Measure at every cluster boundary.
    pub measure_per_cluster: bool,
    /// Flip acceptance rule.
    pub acceptance: dqmc::Acceptance,
    /// Bin size for error analysis.
    pub bin_size: usize,
    /// Compute backend for cluster/wrap kernels.
    pub backend: Backend,
    /// Checkpoint file path (None = no checkpointing).
    pub checkpoint: Option<String>,
    /// Sweeps between checkpoint saves.
    pub checkpoint_every: usize,
    /// Fault recovery (retry / cluster shrink / host fallback) on or off.
    pub recovery: bool,
    /// Retries per fault incident before escalating.
    pub max_retries: u32,
    /// Smallest cluster size the recovery shrink may reach.
    pub min_cluster: usize,
}

impl Default for InputFile {
    fn default() -> Self {
        InputFile {
            lx: 4,
            ly: 4,
            layers: 1,
            periodic_z: false,
            t: 1.0,
            ty: None,
            tz: 1.0,
            u: 4.0,
            mu_tilde: 0.0,
            dtau: 0.125,
            slices: 32,
            warmup: 100,
            sweeps: 200,
            seed: 0,
            cluster_size: 10,
            delay_block: 32,
            algorithm: StratAlgo::PrePivot,
            recycle: true,
            checkerboard: false,
            unequal_time: false,
            measure_per_cluster: false,
            acceptance: dqmc::Acceptance::Metropolis,
            bin_size: 10,
            backend: Backend::Host,
            checkpoint: None,
            checkpoint_every: 50,
            recovery: true,
            max_retries: 2,
            min_cluster: 1,
        }
    }
}

/// Input-file parse error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl InputFile {
    /// Parses an input file's text.
    ///
    /// Recognised keys (case-insensitive): `lx ly layers periodic_z t|tx ty tz u
    /// mu_tilde dtau slices beta warmup sweeps seed cluster_size
    /// delay_block algorithm recycle checkerboard unequal_time
    /// measure_per_cluster bin_size backend checkpoint checkpoint_every
    /// recovery max_retries min_cluster`.
    /// `backend` accepts `host` or `gpusim`; `checkpoint` is a file path
    /// (saved every `checkpoint_every` sweeps and resumed from if present);
    /// `recovery` toggles the retry / cluster-shrink / host-fallback ladder,
    /// tuned by `max_retries` and `min_cluster`.
    /// `beta` may be given instead of `slices` (rounded to `beta/dtau`,
    /// applied after all keys are read). Booleans accept
    /// `true/false/yes/no/1/0`; `algorithm` accepts `qrp` or `prepivot`.
    pub fn parse(text: &str) -> Result<InputFile, ParseError> {
        let mut cfg = InputFile::default();
        let mut beta: Option<f64> = None;
        let mut slices_given = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ParseError {
                line: lineno,
                message: format!("expected 'key = value', got '{line}'"),
            })?;
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let err = |msg: String| ParseError {
                line: lineno,
                message: msg,
            };
            let parse_usize = |v: &str| {
                v.parse::<usize>()
                    .map_err(|_| err(format!("'{v}' is not a non-negative integer")))
            };
            let parse_f64 = |v: &str| {
                v.parse::<f64>()
                    .map_err(|_| err(format!("'{v}' is not a number")))
            };
            let parse_bool = |v: &str| match v.to_ascii_lowercase().as_str() {
                "true" | "yes" | "1" => Ok(true),
                "false" | "no" | "0" => Ok(false),
                other => Err(err(format!("'{other}' is not a boolean"))),
            };
            match key.as_str() {
                "lx" => cfg.lx = parse_usize(value)?,
                "ly" => cfg.ly = parse_usize(value)?,
                "layers" => cfg.layers = parse_usize(value)?,
                "periodic_z" => cfg.periodic_z = parse_bool(value)?,
                "t" | "tx" => cfg.t = parse_f64(value)?,
                "ty" => cfg.ty = Some(parse_f64(value)?),
                "tz" => cfg.tz = parse_f64(value)?,
                "u" => cfg.u = parse_f64(value)?,
                "mu_tilde" | "mu" => cfg.mu_tilde = parse_f64(value)?,
                "dtau" => cfg.dtau = parse_f64(value)?,
                "slices" | "l" => {
                    cfg.slices = parse_usize(value)?;
                    slices_given = true;
                }
                "beta" => beta = Some(parse_f64(value)?),
                "warmup" => cfg.warmup = parse_usize(value)?,
                "sweeps" => cfg.sweeps = parse_usize(value)?,
                "seed" => {
                    cfg.seed = value
                        .parse::<u64>()
                        .map_err(|_| err(format!("'{value}' is not a seed")))?
                }
                "cluster_size" | "k" => cfg.cluster_size = parse_usize(value)?,
                "delay_block" => cfg.delay_block = parse_usize(value)?,
                "algorithm" => {
                    cfg.algorithm = match value.to_ascii_lowercase().as_str() {
                        "qrp" | "algorithm2" => StratAlgo::Qrp,
                        "prepivot" | "pre-pivot" | "algorithm3" => StratAlgo::PrePivot,
                        other => {
                            return Err(err(format!(
                                "unknown algorithm '{other}' (use qrp or prepivot)"
                            )))
                        }
                    }
                }
                "recycle" => cfg.recycle = parse_bool(value)?,
                "checkerboard" => cfg.checkerboard = parse_bool(value)?,
                "unequal_time" => cfg.unequal_time = parse_bool(value)?,
                "measure_per_cluster" => cfg.measure_per_cluster = parse_bool(value)?,
                "acceptance" => {
                    cfg.acceptance = match value.to_ascii_lowercase().as_str() {
                        "metropolis" => dqmc::Acceptance::Metropolis,
                        "heatbath" | "heat-bath" => dqmc::Acceptance::HeatBath,
                        other => {
                            return Err(err(format!(
                                "unknown acceptance '{other}' (metropolis or heatbath)"
                            )))
                        }
                    }
                }
                "bin_size" => cfg.bin_size = parse_usize(value)?,
                "backend" => {
                    cfg.backend = match value.to_ascii_lowercase().as_str() {
                        "host" | "cpu" => Backend::Host,
                        "gpusim" | "gpu" | "device" => Backend::Gpusim,
                        other => {
                            return Err(err(format!(
                                "unknown backend '{other}' (use host or gpusim)"
                            )))
                        }
                    }
                }
                "checkpoint" => cfg.checkpoint = Some(value.to_string()),
                "checkpoint_every" => cfg.checkpoint_every = parse_usize(value)?,
                "recovery" => cfg.recovery = parse_bool(value)?,
                "max_retries" => cfg.max_retries = parse_usize(value)? as u32,
                "min_cluster" => cfg.min_cluster = parse_usize(value)?,
                other => {
                    return Err(err(format!("unknown key '{other}'")));
                }
            }
        }
        if let Some(b) = beta {
            if slices_given {
                return Err(ParseError {
                    line: 0,
                    message: "give either 'beta' or 'slices', not both".into(),
                });
            }
            if cfg.dtau <= 0.0 {
                return Err(ParseError {
                    line: 0,
                    message: "beta requires a positive dtau".into(),
                });
            }
            cfg.slices = (b / cfg.dtau).round().max(1.0) as usize;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ParseError> {
        let bad = |message: String| Err(ParseError { line: 0, message });
        if self.lx == 0 || self.ly == 0 || self.layers == 0 {
            return bad("lattice dimensions must be positive".into());
        }
        if self.u < 0.0 {
            return bad("u must be non-negative (repulsive model)".into());
        }
        if self.dtau <= 0.0 {
            return bad("dtau must be positive".into());
        }
        if self.slices == 0 {
            return bad("slices must be positive".into());
        }
        if self.cluster_size == 0 || self.delay_block == 0 || self.bin_size == 0 {
            return bad("cluster_size, delay_block, bin_size must be positive".into());
        }
        if self.checkpoint_every == 0 {
            return bad("checkpoint_every must be positive".into());
        }
        if self.min_cluster == 0 {
            return bad("min_cluster must be positive".into());
        }
        if self.layers > 1 && self.ty.map(|ty| ty != self.t).unwrap_or(false) {
            return bad("anisotropic in-plane hopping requires layers = 1".into());
        }
        Ok(())
    }

    /// The lattice this input describes.
    pub fn lattice(&self) -> Lattice {
        if self.layers == 1 {
            match self.ty {
                Some(ty) if ty != self.t => Lattice::anisotropic(self.lx, self.ly, self.t, ty),
                _ => Lattice::square(self.lx, self.ly, self.t),
            }
        } else if self.periodic_z {
            Lattice::multilayer_periodic(self.lx, self.ly, self.layers, self.t, self.tz)
        } else {
            Lattice::multilayer(self.lx, self.ly, self.layers, self.t, self.tz)
        }
    }

    /// Converts into engine parameters.
    pub fn sim_params(&self) -> SimParams {
        let model = ModelParams::new(
            self.lattice(),
            self.u,
            self.mu_tilde,
            self.dtau,
            self.slices,
        );
        let recovery = if self.recovery {
            RecoveryPolicy {
                max_retries: self.max_retries,
                min_cluster: self.min_cluster,
                ..RecoveryPolicy::default()
            }
        } else {
            RecoveryPolicy::disabled()
        };
        SimParams::new(model)
            .with_sweeps(self.warmup, self.sweeps)
            .with_seed(self.seed)
            .with_cluster_size(self.cluster_size)
            .with_delay_block(self.delay_block)
            .with_algo(self.algorithm)
            .with_recycle(self.recycle)
            .with_bin_size(self.bin_size)
            .with_unequal_time(self.unequal_time)
            .with_checkerboard(self.checkerboard)
            .with_measure_per_cluster(self.measure_per_cluster)
            .with_acceptance(self.acceptance)
            .with_recovery(recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_file() {
        let cfg = InputFile::parse("lx = 8\nly = 8\nu = 2.0\n").unwrap();
        assert_eq!(cfg.lx, 8);
        assert_eq!(cfg.u, 2.0);
        // everything else default
        assert_eq!(cfg.slices, 32);
        assert_eq!(cfg.algorithm, StratAlgo::PrePivot);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nlx = 6   # inline comment\n\n  ly=6\n";
        let cfg = InputFile::parse(text).unwrap();
        assert_eq!((cfg.lx, cfg.ly), (6, 6));
    }

    #[test]
    fn beta_converts_to_slices() {
        let cfg = InputFile::parse("dtau = 0.1\nbeta = 4.0\n").unwrap();
        assert_eq!(cfg.slices, 40);
    }

    #[test]
    fn beta_and_slices_conflict() {
        let e = InputFile::parse("beta = 4.0\nslices = 10\n").unwrap_err();
        assert!(e.message.contains("not both"));
    }

    #[test]
    fn unknown_key_rejected_with_line_number() {
        let e = InputFile::parse("lx = 4\nbogus = 7\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn bad_value_reports_line() {
        let e = InputFile::parse("lx = banana\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(
            InputFile::parse("algorithm = qrp\n").unwrap().algorithm,
            StratAlgo::Qrp
        );
        assert_eq!(
            InputFile::parse("algorithm = PrePivot\n")
                .unwrap()
                .algorithm,
            StratAlgo::PrePivot
        );
        assert!(InputFile::parse("algorithm = magic\n").is_err());
    }

    #[test]
    fn booleans_accept_variants() {
        for (v, want) in [("yes", true), ("0", false), ("TRUE", true)] {
            let cfg = InputFile::parse(&format!("checkerboard = {v}\n")).unwrap();
            assert_eq!(cfg.checkerboard, want);
        }
    }

    #[test]
    fn multilayer_lattice_construction() {
        let cfg = InputFile::parse("lx = 4\nly = 4\nlayers = 3\ntz = 0.5\n").unwrap();
        let lat = cfg.lattice();
        assert_eq!(lat.nsites(), 48);
        assert_eq!(lat.layers(), 3);
        assert_eq!(lat.tz(), 0.5);
    }

    #[test]
    fn acceptance_key() {
        let cfg = InputFile::parse("acceptance = heatbath\n").unwrap();
        assert_eq!(cfg.acceptance, dqmc::Acceptance::HeatBath);
        assert!(InputFile::parse("acceptance = magic\n").is_err());
    }

    #[test]
    fn anisotropic_hopping_keys() {
        let cfg = InputFile::parse("lx = 4\nly = 4\ntx = 1.0\nty = 0.5\n").unwrap();
        let lat = cfg.lattice();
        assert_eq!(lat.t(), 1.0);
        assert_eq!(lat.ty(), 0.5);
        assert!(InputFile::parse("layers = 2\nty = 0.5\n").is_err());
    }

    #[test]
    fn validation_catches_nonsense() {
        assert!(InputFile::parse("lx = 0\n").is_err());
        assert!(InputFile::parse("dtau = -1\n").is_err());
        assert!(InputFile::parse("u = -2\n").is_err());
    }

    #[test]
    fn backend_and_checkpoint_keys() {
        let cfg =
            InputFile::parse("backend = gpusim\ncheckpoint = run.ckpt\ncheckpoint_every = 25\n")
                .unwrap();
        assert_eq!(cfg.backend, Backend::Gpusim);
        assert_eq!(cfg.checkpoint.as_deref(), Some("run.ckpt"));
        assert_eq!(cfg.checkpoint_every, 25);
        assert_eq!(
            InputFile::parse("backend = cpu\n").unwrap().backend,
            Backend::Host
        );
        assert!(InputFile::parse("backend = fpga\n").is_err());
        assert!(InputFile::parse("checkpoint_every = 0\n").is_err());
    }

    #[test]
    fn recovery_keys_shape_the_policy() {
        let cfg = InputFile::parse("max_retries = 5\nmin_cluster = 2\n").unwrap();
        let p = cfg.sim_params();
        assert!(p.recovery.enabled);
        assert_eq!(p.recovery.max_retries, 5);
        assert_eq!(p.recovery.min_cluster, 2);

        let off = InputFile::parse("recovery = no\n").unwrap().sim_params();
        assert!(!off.recovery.enabled);
        assert!(InputFile::parse("min_cluster = 0\n").is_err());
    }

    #[test]
    fn sim_params_round_trip() {
        let cfg = InputFile::parse(
            "lx = 4\nly = 4\nu = 6.0\ndtau = 0.125\nslices = 16\nseed = 9\nk = 8\nalgorithm = qrp\nrecycle = no\n",
        )
        .unwrap();
        let p = cfg.sim_params();
        assert_eq!(p.model.u, 6.0);
        assert_eq!(p.seed, 9);
        assert_eq!(p.cluster_size, 8);
        assert_eq!(p.algo, StratAlgo::Qrp);
        assert!(!p.recycle);
    }
}

/// Exit codes for `dqmc-run submit`, distinguishing server back-pressure
/// from server shutdown so shell callers can choose between retrying with
/// backoff (full) and giving up or failing over (closed).
pub mod submit_exit {
    /// Submission refused for any other reason (bad grid, tenant cap,
    /// protocol trouble, socket loss).
    pub const FAILED: i32 = 1;
    /// The shared job queue had no room for the campaign — transient
    /// back-pressure; retry later.
    pub const QUEUE_FULL: i32 = 3;
    /// The job queue is closed — the server is draining for shutdown;
    /// retrying the same server cannot succeed.
    pub const QUEUE_CLOSED: i32 = 4;

    /// Maps a server rejection reason to the submit exit code by its
    /// stable machine-readable prefix (see [`serve::REASON_QUEUE_FULL`]).
    pub fn for_rejection(reason: &str) -> i32 {
        if reason.starts_with(serve::REASON_QUEUE_FULL) {
            QUEUE_FULL
        } else if reason.starts_with(serve::REASON_QUEUE_CLOSED) {
            QUEUE_CLOSED
        } else {
            FAILED
        }
    }
}

#[cfg(test)]
mod submit_exit_tests {
    use super::submit_exit;

    #[test]
    fn queue_pressure_maps_to_distinct_codes() {
        assert_eq!(
            submit_exit::for_rejection("queue-full: batch of 9 refused: job queue bound is 4"),
            submit_exit::QUEUE_FULL
        );
        assert_eq!(
            submit_exit::for_rejection("queue-closed: job queue is closed"),
            submit_exit::QUEUE_CLOSED
        );
        assert_eq!(
            submit_exit::for_rejection("tenant 'x' at campaign capacity (2 in flight)"),
            submit_exit::FAILED
        );
        assert_ne!(submit_exit::QUEUE_FULL, submit_exit::QUEUE_CLOSED);
    }

    #[test]
    fn prefixes_match_the_server_constants() {
        // The mapping contract lives in the serve crate's constants; a
        // drifted literal here would silently collapse the codes to 1.
        assert!("queue-full: x".starts_with(serve::REASON_QUEUE_FULL));
        assert!("queue-closed: x".starts_with(serve::REASON_QUEUE_CLOSED));
    }
}
