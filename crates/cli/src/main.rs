//! `dqmc` — run a DQMC simulation from a QUEST-style input file.
//!
//! ```sh
//! dqmc path/to/input.in           # or: dqmc - < input.in
//! dqmc sweep grid.sweep           # parameter-sweep campaign
//! dqmc sweep grid.sweep -o r.json # also write the JSON report
//! dqmc shard grid.sweep --procs 4 --workdir shards/   # process fleet
//! dqmc merge shards/ -o obs.json  # recombine shard reports
//! ```

use dqmc::Simulation;
use dqmc_cli::{submit_exit, Backend, InputFile};
use fleet::{ChildCommand, FleetConfig};
use sched::{EventLog, GridSpec, SchedConfig, TraceEvent};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::time::Duration;
use util::table::{fmt_f, Table};

/// Base backoff between `dqmc submit` resubmission attempts.
const SUBMIT_BACKOFF: Duration = Duration::from_millis(100);

/// `dqmc sweep <grid-file> [-o report.json] [--obs-out obs.json]
/// [--trace]`: run a declared (U, β) grid through the checkpoint-aware
/// scheduler and print the pooled jackknife estimates per point.
fn run_sweep_cmd(args: &[String]) -> ! {
    let mut grid_file: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut obs_out: Option<&str> = None;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{a} needs a path");
                    std::process::exit(2);
                }
            },
            "--obs-out" => match it.next() {
                Some(p) => obs_out = Some(p),
                None => {
                    eprintln!("--obs-out needs a path");
                    std::process::exit(2);
                }
            },
            "--trace" => trace = true,
            other if grid_file.is_none() => grid_file = Some(other),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(grid_file) = grid_file else {
        eprintln!("usage: dqmc sweep <grid-file> [-o report.json] [--obs-out obs.json] [--trace]");
        eprintln!("grid keys: lx ly t mu dtau u(list) beta(list) chains warmup");
        eprintln!("  sweeps bin_size cluster_size seed recovery max_retries");
        eprintln!("  workers devices quantum job_retries faults slot_faults");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(grid_file).unwrap_or_else(|e| {
        eprintln!("cannot read {grid_file}: {e}");
        std::process::exit(2);
    });
    let spec = GridSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    println!(
        "# sweep: {}x{} lattice, {} points ({} U x {} beta), {} chains/point, {} jobs",
        spec.lx,
        spec.ly,
        spec.us.len() * spec.betas.len(),
        spec.us.len(),
        spec.betas.len(),
        spec.chains,
        spec.total_jobs()
    );
    println!(
        "# {} workers, {} devices, quantum {} sweeps, seed {}",
        spec.workers, spec.devices, spec.quantum, spec.seed
    );

    let cfg = SchedConfig::from_spec(&spec);
    let events = EventLog::new();
    let report = sched::run_sweep(&spec, &cfg, &events);

    if trace {
        println!("\n## schedule trace");
        for e in events.snapshot() {
            println!("{e}");
        }
        println!(
            "# health: {} quarantines, {} probes, {} readmissions, {} soft parks, \
             {} workers lost, {} panics caught",
            report.quarantines,
            report.probes,
            report.readmissions,
            report.soft_parks,
            report.worker_losses,
            report.panics_caught,
        );
    }
    let yields = events.count(|e| matches!(e, TraceEvent::Yielded { .. }));
    println!("\n## pooled observables (delete-one jackknife)");
    print!("{}", report.human_summary());
    if yields > 0 {
        println!("# {yields} checkpoint yields during the sweep");
    }

    if let Some(path) = out {
        util::vfs::write_atomic(Path::new(path), report.to_json().as_bytes()).unwrap_or_else(
            |e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            },
        );
        println!("# report written to {path}");
    }
    if let Some(path) = obs_out {
        // The observables document alone — the byte-deterministic layer a
        // fleet merge (or served campaign) is compared against.
        util::vfs::write_atomic(Path::new(path), report.observables_json().as_bytes())
            .unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
        println!("# observables written to {path}");
    }
    std::process::exit(if report.failed_jobs == 0 { 0 } else { 1 });
}

/// `dqmc shard <grid-file> --procs P [--workdir DIR] [-o obs.json]
/// [--keep] [--trace]`: run the grid as a supervised process fleet and
/// print the byte-deterministically merged observables document.
fn run_shard_cmd(args: &[String]) -> ! {
    let mut grid_file: Option<&str> = None;
    let mut procs: usize = 2;
    let mut workdir: Option<PathBuf> = None;
    let mut out: Option<&str> = None;
    let mut keep = false;
    let mut trace = false;
    let mut heartbeat_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--procs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => procs = n,
                _ => {
                    eprintln!("--procs needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--heartbeat-timeout-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => heartbeat_ms = Some(n),
                _ => {
                    eprintln!("--heartbeat-timeout-ms needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--workdir" => match it.next() {
                Some(p) => workdir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--workdir needs a path");
                    std::process::exit(2);
                }
            },
            "-o" | "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{a} needs a path");
                    std::process::exit(2);
                }
            },
            "--keep" => keep = true,
            "--trace" => trace = true,
            other if grid_file.is_none() => grid_file = Some(other),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(grid_file) = grid_file else {
        eprintln!(
            "usage: dqmc shard <grid-file> --procs P [--workdir DIR] [-o obs.json] \
             [--keep] [--trace] [--heartbeat-timeout-ms N]"
        );
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(grid_file).unwrap_or_else(|e| {
        eprintln!("cannot read {grid_file}: {e}");
        std::process::exit(2);
    });
    let child = ChildCommand::current_exe("shard-child").unwrap_or_else(|e| {
        eprintln!("cannot locate own executable: {e}");
        std::process::exit(1);
    });
    // An explicit workdir implies the caller wants the shard files (for a
    // later `dqmc merge`); a scratch dir is cleaned up unless --keep.
    let explicit_workdir = workdir.is_some();
    let dir = workdir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("dqmc-shard-{}", std::process::id())));
    let mut cfg = FleetConfig::new(procs, child, dir);
    cfg.keep_files = keep || explicit_workdir;
    if let Some(ms) = heartbeat_ms {
        cfg.heartbeat_timeout = std::time::Duration::from_millis(ms);
    }
    let outcome = fleet::run_fleet(&text, &cfg).unwrap_or_else(|e| {
        eprintln!("fleet run failed: {e}");
        std::process::exit(1);
    });
    if trace {
        eprintln!("## process health ledger");
        for line in &outcome.ledger {
            eprintln!("# {line}");
        }
    }
    eprintln!(
        "# fleet: {} shards, {} respawns, {} kills, {:.2}s wall",
        outcome.shards, outcome.respawns, outcome.kills, outcome.wall_seconds
    );
    match out {
        Some(path) => {
            util::vfs::write_atomic(Path::new(path), outcome.observables.as_bytes())
                .unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                });
            eprintln!("# observables written to {path}");
        }
        None => println!("{}", outcome.observables),
    }
    std::process::exit(if outcome.merged.failed_chains == 0 {
        0
    } else {
        1
    });
}

/// `dqmc merge <dir-or-report.dqsr...> [-o obs.json]`: recombine shard
/// report files into the single-process observables document.
fn run_merge_cmd(args: &[String]) -> ! {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("{a} needs a path");
                    std::process::exit(2);
                }
            },
            other => inputs.push(PathBuf::from(other)),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: dqmc merge <workdir | shard-*.dqsr ...> [-o obs.json]");
        std::process::exit(2);
    }
    // A directory argument expands to its *.dqsr files, sorted by name so
    // the merge input set is deterministic.
    let mut reports: Vec<PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            // Scrub atomic-write debris a crashed fleet may have left
            // before collecting reports: a stranded temp file is not a
            // shard report and must never reach the merge.
            match util::vfs::scrub_tmp(&input) {
                Ok(scrubbed) if scrubbed.count() > 0 => eprintln!(
                    "# scrubbed {} stranded tmp file(s) from {}: {}",
                    scrubbed.count(),
                    input.display(),
                    scrubbed.removed.join(", ")
                ),
                Ok(_) => {}
                Err(e) => {
                    eprintln!("cannot scrub {}: {e}", input.display());
                    std::process::exit(2);
                }
            }
            let mut found: Vec<PathBuf> = match std::fs::read_dir(&input) {
                Ok(entries) => entries
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "dqsr"))
                    .collect(),
                Err(e) => {
                    eprintln!("cannot list {}: {e}", input.display());
                    std::process::exit(2);
                }
            };
            found.sort();
            reports.extend(found);
        } else {
            reports.push(input);
        }
    }
    if reports.is_empty() {
        eprintln!("no shard reports (*.dqsr) found");
        std::process::exit(2);
    }
    let mut decoded = Vec::with_capacity(reports.len());
    for path in &reports {
        match fleet::ShardReport::read(path) {
            Ok(r) => decoded.push(r),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let merged = fleet::merge_reports(&decoded).unwrap_or_else(|e| {
        eprintln!("merge refused: {e}");
        std::process::exit(1);
    });
    let observables = merged.observables_json();
    eprintln!(
        "# merged {} points from {} shard reports",
        merged.points.len(),
        decoded.len()
    );
    match out {
        Some(path) => {
            util::vfs::write_atomic(Path::new(path), observables.as_bytes()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("# observables written to {path}");
        }
        None => println!("{observables}"),
    }
    std::process::exit(if merged.failed_chains == 0 { 0 } else { 1 });
}

/// `dqmc submit <grid-file> [--addr host:port] [--tenant NAME]
/// [--priority N]`: submit a grid to a running `dqmc-serve`, print each
/// point as it streams in, then the final observables document.
fn run_submit_cmd(args: &[String]) -> ! {
    let mut grid_file: Option<&str> = None;
    let mut addr = "127.0.0.1:7070".to_string();
    let mut tenant = "cli".to_string();
    let mut priority: u8 = 0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" | "--tenant" | "--priority" => {
                let Some(v) = it.next() else {
                    eprintln!("{a} needs a value");
                    std::process::exit(2);
                };
                match a.as_str() {
                    "--addr" => addr = v.clone(),
                    "--tenant" => tenant = v.clone(),
                    _ => {
                        priority = v.parse().unwrap_or_else(|_| {
                            eprintln!("--priority needs 0-255, got '{v}'");
                            std::process::exit(2);
                        })
                    }
                }
            }
            other if grid_file.is_none() => grid_file = Some(other),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let Some(grid_file) = grid_file else {
        eprintln!(
            "usage: dqmc submit <grid-file> [--addr host:port] [--tenant NAME] [--priority N]"
        );
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(grid_file).unwrap_or_else(|e| {
        eprintln!("cannot read {grid_file}: {e}");
        std::process::exit(2);
    });
    // Resilient submission: reconnect and resubmit after a mid-stream
    // disconnect. The server's content-addressed cache makes the retry
    // idempotent — completed points replay as cache hits, not reruns.
    let outcome =
        serve::Client::submit_resilient(&addr, &tenant, priority, &text, 5, SUBMIT_BACKOFF, |p| {
            println!(
                "# point {} {}: {}",
                p.index,
                if p.cached { "cached" } else { "computed" },
                p.json
            );
        })
        .unwrap_or_else(|e| {
            eprintln!("submission failed: {e}");
            // Queue back-pressure and shutdown get distinct exit codes so
            // shell callers can retry-with-backoff vs fail over.
            let code = match &e {
                serve::WireError::Rejected(reason) => submit_exit::for_rejection(reason),
                _ => submit_exit::FAILED,
            };
            std::process::exit(code);
        });
    println!("{}", outcome.observables);
    println!(
        "# done: {} points ({} cached, {} computed), jobs_run {}, failed_chains {}, \
         recovery_events {}",
        outcome.points.len(),
        outcome.cached_points,
        outcome.computed_points,
        outcome.jobs_run,
        outcome.failed_chains,
        outcome.recovery_events,
    );
    std::process::exit(if outcome.failed_chains == 0 { 0 } else { 1 });
}

/// `dqmc serve-shutdown [--addr host:port]`: ask a running `dqmc-serve` to
/// drain and exit.
fn run_serve_shutdown_cmd(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let mut client = serve::Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    client.shutdown().unwrap_or_else(|e| {
        eprintln!("shutdown failed: {e}");
        std::process::exit(1);
    });
    println!("# server at {addr} acknowledged shutdown");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("shard") {
        run_shard_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("merge") {
        run_merge_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("shard-child") {
        // Fleet re-entry point: the supervisor launches this same binary
        // with `shard-child <manifest> <report> <heartbeat>`.
        std::process::exit(fleet::child_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("submit") {
        run_submit_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-shutdown") {
        run_serve_shutdown_cmd(&args[1..]);
    }
    if args.len() != 1 || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: dqmc <input-file>   (or 'dqmc -' to read stdin)");
        eprintln!("       dqmc sweep <grid-file> [-o report.json] [--obs-out obs.json] [--trace]");
        eprintln!(
            "       dqmc shard <grid-file> --procs P [--workdir DIR] [-o obs.json] \
             [--keep] [--trace]"
        );
        eprintln!("       dqmc merge <workdir | shard-*.dqsr ...> [-o obs.json]");
        eprintln!(
            "       dqmc submit <grid-file> [--addr host:port] [--tenant NAME] [--priority N]"
        );
        eprintln!("       dqmc serve-shutdown [--addr host:port]");
        eprintln!("input keys: lx ly layers periodic_z t tz u mu_tilde dtau");
        eprintln!("  slices|beta warmup sweeps seed cluster_size delay_block");
        eprintln!("  algorithm(qrp|prepivot) recycle checkerboard unequal_time bin_size");
        eprintln!("  backend(host|gpusim) checkpoint checkpoint_every");
        eprintln!("  recovery max_retries min_cluster");
        std::process::exit(if args.first().map(String::as_str) == Some("--help") {
            0
        } else {
            2
        });
    }
    let text = if args[0] == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("reading stdin");
        buf
    } else {
        std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", args[0]);
            std::process::exit(2);
        })
    };
    let cfg = InputFile::parse(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let model = cfg.sim_params().model.clone();
    println!(
        "# dqmc: {}x{}x{} lattice (N={}), U={}, mu~={}, beta={} (L={}, dtau={})",
        cfg.lx,
        cfg.ly,
        cfg.layers,
        model.nsites(),
        cfg.u,
        cfg.mu_tilde,
        model.beta(),
        cfg.slices,
        cfg.dtau
    );
    println!(
        "# {} warmup + {} measurement sweeps, seed {}, {:?}, k={}, delay={}, recycle={}, checkerboard={}",
        cfg.warmup,
        cfg.sweeps,
        cfg.seed,
        cfg.algorithm,
        cfg.cluster_size,
        cfg.delay_block,
        cfg.recycle,
        cfg.checkerboard
    );

    let params = cfg.sim_params();
    let ckpt = cfg.checkpoint.clone();
    // A run killed mid-checkpoint strands a temp file next to the
    // checkpoint; scrub it before resuming so debris never accumulates.
    if let Some(path) = ckpt.as_deref().map(Path::new) {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        match util::vfs::scrub_tmp(dir) {
            Ok(scrubbed) if scrubbed.count() > 0 => println!(
                "# scrubbed {} stranded tmp file(s) near checkpoint {}",
                scrubbed.count(),
                path.display()
            ),
            _ => {}
        }
    }
    let mut sim = match ckpt.as_deref().map(Path::new) {
        Some(path) if path.exists() => {
            println!("# resuming from checkpoint {}", path.display());
            Simulation::resume(path, &params).unwrap_or_else(|e| {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(2);
            })
        }
        _ => Simulation::new(params),
    };
    if cfg.backend == Backend::Gpusim {
        let dev = gpusim::Device::new(gpusim::DeviceSpec::tesla_c2050());
        sim = sim.with_backend(Box::new(gpusim::DeviceBackend::new(dev)));
    }

    match ckpt.as_deref().map(Path::new) {
        Some(path) => {
            sim.run_with_checkpoints(path, cfg.checkpoint_every)
                .unwrap_or_else(|e| {
                    eprintln!("checkpointing to {} failed: {e}", path.display());
                    std::process::exit(2);
                });
        }
        None => sim.run(),
    }

    let recovery = sim.recovery_log();
    if recovery.total() > 0 {
        println!("# recovery: {}", recovery.summary());
    }

    let obs = sim.observables();
    let (sign, sign_err) = obs.avg_sign();
    let (rho, rho_err) = obs.density();
    let (docc, docc_err) = obs.double_occupancy();
    let (ekin, ekin_err) = obs.kinetic_energy();
    let (epot, epot_err) = obs.potential_energy();
    let (saf, saf_err) = obs.af_structure_factor();

    println!("\n## scalar observables (per site)");
    let mut t = Table::new(vec!["observable", "value", "error"]);
    t.row(vec!["sign".into(), fmt_f(sign, 6), fmt_f(sign_err, 6)]);
    t.row(vec!["density".into(), fmt_f(rho, 6), fmt_f(rho_err, 6)]);
    t.row(vec![
        "double-occ".into(),
        fmt_f(docc, 6),
        fmt_f(docc_err, 6),
    ]);
    t.row(vec!["e-kinetic".into(), fmt_f(ekin, 6), fmt_f(ekin_err, 6)]);
    t.row(vec![
        "e-potential".into(),
        fmt_f(epot, 6),
        fmt_f(epot_err, 6),
    ]);
    t.row(vec!["S(pi,pi)".into(), fmt_f(saf, 6), fmt_f(saf_err, 6)]);
    t.row(vec![
        "P_s(q=0)".into(),
        fmt_f(obs.swave_structure_factor(), 6),
        "-".into(),
    ]);
    print!("{}", t.render());
    println!(
        "\nacceptance {:.3}, max wrap error {:.2e}",
        sim.acceptance_rate(),
        sim.max_wrap_error()
    );

    // Momentum distribution along the symmetry path (square even lattices).
    if cfg.layers == 1 && cfg.lx == cfg.ly && cfg.lx.is_multiple_of(2) {
        println!("\n## <n_k> along (0,0)->(pi,pi)->(pi,0)->(0,0)");
        for (arc, v) in obs.momentum_distribution_path() {
            println!("{arc:.4}  {v:.4}");
        }
    }

    if let Some(tdm) = sim.time_dependent() {
        println!("\n## G_loc(tau)");
        for (tau, (g, e)) in tdm.taus().iter().zip(tdm.gloc()) {
            println!("{tau:.4}  {g:.5}  {e:.5}");
        }
    }

    println!("\n## phase breakdown");
    for (phase, secs, pct) in sim.phase_report().rows {
        if secs > 0.0 {
            println!("{phase:<16} {secs:>9.3}s  {pct:>5.1}%");
        }
    }
}
