//! `dqmc` — run a DQMC simulation from a QUEST-style input file.
//!
//! ```sh
//! dqmc path/to/input.in        # or: dqmc - < input.in
//! ```

use dqmc::Simulation;
use dqmc_cli::{Backend, InputFile};
use std::io::Read;
use std::path::Path;
use util::table::{fmt_f, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 1 || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: dqmc <input-file>   (or 'dqmc -' to read stdin)");
        eprintln!("input keys: lx ly layers periodic_z t tz u mu_tilde dtau");
        eprintln!("  slices|beta warmup sweeps seed cluster_size delay_block");
        eprintln!("  algorithm(qrp|prepivot) recycle checkerboard unequal_time bin_size");
        eprintln!("  backend(host|gpusim) checkpoint checkpoint_every");
        eprintln!("  recovery max_retries min_cluster");
        std::process::exit(if args.first().map(String::as_str) == Some("--help") {
            0
        } else {
            2
        });
    }
    let text = if args[0] == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("reading stdin");
        buf
    } else {
        std::fs::read_to_string(&args[0]).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", args[0]);
            std::process::exit(2);
        })
    };
    let cfg = InputFile::parse(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let model = cfg.sim_params().model.clone();
    println!(
        "# dqmc: {}x{}x{} lattice (N={}), U={}, mu~={}, beta={} (L={}, dtau={})",
        cfg.lx,
        cfg.ly,
        cfg.layers,
        model.nsites(),
        cfg.u,
        cfg.mu_tilde,
        model.beta(),
        cfg.slices,
        cfg.dtau
    );
    println!(
        "# {} warmup + {} measurement sweeps, seed {}, {:?}, k={}, delay={}, recycle={}, checkerboard={}",
        cfg.warmup,
        cfg.sweeps,
        cfg.seed,
        cfg.algorithm,
        cfg.cluster_size,
        cfg.delay_block,
        cfg.recycle,
        cfg.checkerboard
    );

    let params = cfg.sim_params();
    let ckpt = cfg.checkpoint.clone();
    let mut sim = match ckpt.as_deref().map(Path::new) {
        Some(path) if path.exists() => {
            println!("# resuming from checkpoint {}", path.display());
            Simulation::resume(path, &params).unwrap_or_else(|e| {
                eprintln!("cannot resume from {}: {e}", path.display());
                std::process::exit(2);
            })
        }
        _ => Simulation::new(params),
    };
    if cfg.backend == Backend::Gpusim {
        let dev = gpusim::Device::new(gpusim::DeviceSpec::tesla_c2050());
        sim = sim.with_backend(Box::new(gpusim::DeviceBackend::new(dev)));
    }

    match ckpt.as_deref().map(Path::new) {
        Some(path) => {
            sim.run_with_checkpoints(path, cfg.checkpoint_every)
                .unwrap_or_else(|e| {
                    eprintln!("checkpointing to {} failed: {e}", path.display());
                    std::process::exit(2);
                });
        }
        None => sim.run(),
    }

    let recovery = sim.recovery_log();
    if recovery.total() > 0 {
        println!("# recovery: {}", recovery.summary());
    }

    let obs = sim.observables();
    let (sign, sign_err) = obs.avg_sign();
    let (rho, rho_err) = obs.density();
    let (docc, docc_err) = obs.double_occupancy();
    let (ekin, ekin_err) = obs.kinetic_energy();
    let (epot, epot_err) = obs.potential_energy();
    let (saf, saf_err) = obs.af_structure_factor();

    println!("\n## scalar observables (per site)");
    let mut t = Table::new(vec!["observable", "value", "error"]);
    t.row(vec!["sign".into(), fmt_f(sign, 6), fmt_f(sign_err, 6)]);
    t.row(vec!["density".into(), fmt_f(rho, 6), fmt_f(rho_err, 6)]);
    t.row(vec![
        "double-occ".into(),
        fmt_f(docc, 6),
        fmt_f(docc_err, 6),
    ]);
    t.row(vec!["e-kinetic".into(), fmt_f(ekin, 6), fmt_f(ekin_err, 6)]);
    t.row(vec![
        "e-potential".into(),
        fmt_f(epot, 6),
        fmt_f(epot_err, 6),
    ]);
    t.row(vec!["S(pi,pi)".into(), fmt_f(saf, 6), fmt_f(saf_err, 6)]);
    t.row(vec![
        "P_s(q=0)".into(),
        fmt_f(obs.swave_structure_factor(), 6),
        "-".into(),
    ]);
    print!("{}", t.render());
    println!(
        "\nacceptance {:.3}, max wrap error {:.2e}",
        sim.acceptance_rate(),
        sim.max_wrap_error()
    );

    // Momentum distribution along the symmetry path (square even lattices).
    if cfg.layers == 1 && cfg.lx == cfg.ly && cfg.lx.is_multiple_of(2) {
        println!("\n## <n_k> along (0,0)->(pi,pi)->(pi,0)->(0,0)");
        for (arc, v) in obs.momentum_distribution_path() {
            println!("{arc:.4}  {v:.4}");
        }
    }

    if let Some(tdm) = sim.time_dependent() {
        println!("\n## G_loc(tau)");
        for (tau, (g, e)) in tdm.taus().iter().zip(tdm.gloc()) {
            println!("{tau:.4}  {g:.5}  {e:.5}");
        }
    }

    println!("\n## phase breakdown");
    for (phase, secs, pct) in sim.phase_report().rows {
        if secs > 0.0 {
            println!("{phase:<16} {secs:>9.3}s  {pct:>5.1}%");
        }
    }
}
