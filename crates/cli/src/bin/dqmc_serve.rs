//! `dqmc-serve` — the resident sweep service.
//!
//! ```sh
//! dqmc-serve --addr 127.0.0.1:7070 --workers 2 --cache-dir /var/cache/dqmc
//! ```
//!
//! Accepts DQSF submissions (see `dqmc-run submit`), multiplexes tenants
//! into one priority queue, streams per-point observables as they
//! complete, and serves repeat requests from the content-addressed result
//! cache. `GET /healthz` and `GET /stats` on the same port answer plain
//! HTTP for probes.

use serve::{FleetPolicy, Server, ServerConfig};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: dqmc-serve [--addr host:port] [--workers N] [--devices N]");
    eprintln!("         [--quantum SWEEPS] [--queue-bound N] [--job-retries N]");
    eprintln!("         [--cache-dir PATH] [--max-tenant-campaigns N]");
    eprintln!("         [--fleet N] [--fleet-dir PATH]");
    eprintln!("defaults: --addr 127.0.0.1:7070, 1 worker, no devices, no cache,");
    eprintln!("          in-process execution (--fleet 0)");
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<&String>) -> usize {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an unsigned integer, got '{value}'");
        usage();
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("shard-child") {
        // Fleet re-entry point: a fleet-enabled server launches this same
        // binary per shard with `shard-child <manifest> <report> <beat>`.
        std::process::exit(fleet::child_main(&args[1..]));
    }
    let mut addr = "127.0.0.1:7070".to_string();
    let mut cfg = ServerConfig::default();
    let mut fleet_procs = 0usize;
    let mut fleet_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => {
                    eprintln!("--addr needs a value");
                    usage();
                }
            },
            "--workers" => cfg.service.workers = parse_num(a, it.next()).max(1),
            "--devices" => cfg.service.devices = parse_num(a, it.next()),
            "--quantum" => cfg.service.quantum = parse_num(a, it.next()),
            "--queue-bound" => cfg.service.queue_bound = parse_num(a, it.next()),
            "--job-retries" => cfg.service.job_retries = parse_num(a, it.next()) as u32,
            "--max-tenant-campaigns" => cfg.max_tenant_campaigns = parse_num(a, it.next()),
            "--cache-dir" => match it.next() {
                Some(v) => cfg.cache_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--cache-dir needs a path");
                    usage();
                }
            },
            "--fleet" => fleet_procs = parse_num(a, it.next()),
            "--fleet-dir" => match it.next() {
                Some(v) => fleet_dir = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--fleet-dir needs a path");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
            }
        }
    }

    if fleet_procs > 0 {
        let child = fleet::ChildCommand::current_exe("shard-child").unwrap_or_else(|e| {
            eprintln!("cannot locate own executable for fleet children: {e}");
            std::process::exit(1);
        });
        let dir = fleet_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("dqmc-serve-fleet-{}", std::process::id()))
        });
        cfg.fleet = Some(FleetPolicy {
            procs: fleet_procs,
            child,
            dir,
        });
    }

    let server = Server::bind(&addr, &cfg).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "dqmc-serve listening on {} ({} workers, {} devices, cache {}, fleet {})",
        server.local_addr(),
        cfg.service.workers,
        cfg.service.devices,
        cfg.cache_dir
            .as_ref()
            .map_or("off".to_string(), |p| p.display().to_string()),
        if fleet_procs > 0 {
            format!("{fleet_procs} procs")
        } else {
            "off".to_string()
        },
    );
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}
