//! Deterministic fault injection for the simulated device.
//!
//! Real accelerator deployments fail in a handful of well-known ways: a
//! host↔device transfer silently corrupts, a kernel launch errors out, the
//! device memory arena is exhausted mid-allocation, or a resident bit flips
//! (no ECC on consumer parts). A [`FaultPlan`] scripts any combination of
//! those against the [`Device`](crate::device::Device) cost model so the
//! recovery ladder in `dqmc::sweep` can be exercised deterministically:
//! every fault fires at an exact operation ordinal, and any randomness
//! (which matrix element to poison, which mantissa bit to flip) comes from
//! a seeded [`util::Rng`] owned by the plan — reruns reproduce bit-for-bit.
//!
//! Faults are **one-shot**: once a scheduled fault fires it is consumed, so
//! a retry of the same operation succeeds (unless another fault is scheduled
//! at the retried ordinal). Persistent failure is modelled by scheduling a
//! run of consecutive ordinals.
//!
//! # Fail-slow and fail-intermittent classes
//!
//! Beyond fail-stop errors, the plan scripts the classic *fleet* failure
//! modes, all in logical cost units so runs stay byte-reproducible:
//!
//! - **latency inflation** ([`FaultPlan::slow_launch`]): the nth launch
//!   costs `factor ×` its normal simulated time but still succeeds — the
//!   numerics are untouched, only the cost model sees it;
//! - **hang** ([`FaultPlan::hang_at_launch`]): the nth launch never
//!   completes; the simulated watchdog kills it at its logical deadline and
//!   the op reports [`DeviceError::Hang`] with `wedged = false`;
//! - **wedge** ([`FaultPlan::wedge_at_launch`]): as hang, but the device is
//!   stuck for good (`wedged = true`) — the supervisor must declare the
//!   worker lost rather than wait for a cooperative park;
//! - **sick window** ([`FaultPlan::sick_window`]): every launch whose
//!   ordinal falls in `[lo, hi]` fails with [`DeviceError::SickDevice`] —
//!   the intermittent flaky-device profile that defeats naive retry.

use std::fmt;

/// An error raised by a fallible device operation.
///
/// Only *device-class* failures are represented here — the operation did not
/// complete. Silent data corruption (transfer poison, bit flips) does not
/// error; it surfaces downstream when the caller scans the result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// A kernel launch was rejected by the (simulated) driver.
    KernelLaunchFailure {
        /// Name of the kernel whose launch failed.
        kernel: &'static str,
        /// 1-based global launch ordinal that failed.
        launch_index: u64,
    },
    /// The device memory arena could not satisfy an allocation.
    ArenaExhausted {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes already resident in the arena.
        in_use: usize,
        /// Configured arena capacity (0 ⇒ the exhaustion was injected).
        limit: usize,
    },
    /// A kernel launch hung: it never completed and the (simulated)
    /// watchdog killed it at its logical deadline. `wedged` marks the
    /// indefinite flavor — the device is stuck for good and the worker
    /// driving it must be declared lost.
    Hang {
        /// Name of the kernel that hung.
        kernel: &'static str,
        /// 1-based global launch ordinal that hung.
        launch_index: u64,
        /// Indefinite hang: the device cannot be parked cooperatively.
        wedged: bool,
    },
    /// The device is inside a scripted sick window: launches fail
    /// intermittently until the window's last ordinal passes.
    SickDevice {
        /// Name of the kernel whose launch the sick device rejected.
        kernel: &'static str,
        /// 1-based global launch ordinal that failed.
        launch_index: u64,
        /// The `[lo, hi]` launch-ordinal window the device is sick in.
        window: (u64, u64),
    },
}

impl DeviceError {
    /// Whether this error indicts the device itself (hang, wedge, sick
    /// window) rather than the single operation — the `DeviceSick` class
    /// of the error taxonomy. Such errors must escape the in-core recovery
    /// ladder so the scheduler can quarantine the slot.
    pub fn is_sick(&self) -> bool {
        matches!(
            self,
            DeviceError::Hang { .. } | DeviceError::SickDevice { .. }
        )
    }

    /// Whether the device is wedged: the hard `DeviceSick` flavor where
    /// the worker is declared lost instead of parking cooperatively.
    pub fn is_wedged(&self) -> bool {
        matches!(self, DeviceError::Hang { wedged: true, .. })
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::KernelLaunchFailure {
                kernel,
                launch_index,
            } => {
                write!(f, "kernel launch failure: {kernel} (launch #{launch_index})")
            }
            DeviceError::ArenaExhausted {
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "device arena exhausted: requested {requested} B with {in_use} B in use (limit {limit} B)"
            ),
            DeviceError::Hang {
                kernel,
                launch_index,
                wedged,
            } => {
                let kind = if *wedged { "wedged" } else { "hung" };
                write!(
                    f,
                    "kernel {kind}: {kernel} (launch #{launch_index} missed its logical deadline)"
                )
            }
            DeviceError::SickDevice {
                kernel,
                launch_index,
                window,
            } => write!(
                f,
                "sick device: {kernel} failed (launch #{launch_index} inside sick window [{}, {}])",
                window.0, window.1
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A scripted schedule of device faults.
///
/// Ordinals are 1-based and count per category over the device's lifetime
/// (they survive [`Device::reset_clock`](crate::device::Device::reset_clock)):
/// the 3rd download is the 3rd `get_matrix` since the device was created,
/// regardless of how many kernels launched in between.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    corrupt_downloads: Vec<u64>,
    failed_launches: Vec<u64>,
    failed_allocs: Vec<u64>,
    bit_flips: Vec<u64>,
    hangs: Vec<u64>,
    wedges: Vec<u64>,
    slow_launches: Vec<(u64, f64)>,
    sick_windows: Vec<(u64, u64)>,
    rng: Option<util::Rng>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Seeds the plan's private RNG, used to pick which element a transfer
    /// corruption poisons and which mantissa bit a flip targets. Plans that
    /// schedule corruption or flips without a seed fall back to seed 0.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Some(util::Rng::new(seed));
        self
    }

    /// Schedules silent corruption of the `nth` (1-based) device→host matrix
    /// download: one element of the received matrix becomes NaN.
    pub fn corrupt_transfer(mut self, nth: u64) -> Self {
        self.corrupt_downloads.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) kernel launch to fail.
    pub fn fail_launch(mut self, nth: u64) -> Self {
        self.failed_launches.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) device allocation to report arena
    /// exhaustion.
    pub fn oom_at_alloc(mut self, nth: u64) -> Self {
        self.failed_allocs.push(nth);
        self
    }

    /// Schedules a bit flip in the output of the `nth` (1-based) device
    /// compute operation (GEMM / scaling / wrap kernels): one element has a
    /// high mantissa bit XOR-ed, producing a *finite* but wrong value — the
    /// silent-corruption case that only a consistency check can catch.
    pub fn flip_bit_after_op(mut self, nth: u64) -> Self {
        self.bit_flips.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) kernel launch to hang: it fails with
    /// [`DeviceError::Hang`] (`wedged = false`) after the simulated watchdog
    /// kills it at its logical deadline.
    pub fn hang_at_launch(mut self, nth: u64) -> Self {
        self.hangs.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) kernel launch to wedge the device:
    /// [`DeviceError::Hang`] with `wedged = true` — the hard-deadline case
    /// where the worker is declared lost.
    pub fn wedge_at_launch(mut self, nth: u64) -> Self {
        self.wedges.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) kernel launch to run `factor ×`
    /// slower in simulated time while still succeeding: fail-slow latency
    /// inflation, invisible to the numerics. `factor` must be ≥ 1.
    pub fn slow_launch(mut self, nth: u64, factor: f64) -> Self {
        assert!(factor >= 1.0, "latency factor must be >= 1");
        self.slow_launches.push((nth, factor));
        self
    }

    /// Declares the device sick for every launch ordinal in `[lo, hi]`
    /// (1-based, inclusive): each such launch fails with
    /// [`DeviceError::SickDevice`]. Unlike the one-shot classes the window
    /// persists — retrying inside it keeps failing, which is exactly the
    /// intermittent profile a circuit breaker exists for.
    pub fn sick_window(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo >= 1 && lo <= hi, "sick window wants 1 <= lo <= hi");
        self.sick_windows.push((lo, hi));
        self
    }

    /// Appends every schedule of `other` onto this plan — used to merge a
    /// pool slot's health profile into a job's own fault plan at lease
    /// time. The receiver's RNG seed wins when both are set.
    pub fn merge(mut self, other: FaultPlan) -> FaultPlan {
        self.corrupt_downloads.extend(other.corrupt_downloads);
        self.failed_launches.extend(other.failed_launches);
        self.failed_allocs.extend(other.failed_allocs);
        self.bit_flips.extend(other.bit_flips);
        self.hangs.extend(other.hangs);
        self.wedges.extend(other.wedges);
        self.slow_launches.extend(other.slow_launches);
        self.sick_windows.extend(other.sick_windows);
        if self.rng.is_none() {
            self.rng = other.rng;
        }
        self
    }

    /// A randomized plan: over the first `horizon` ordinals of each category,
    /// each ordinal independently faults with probability `rate`. Fully
    /// determined by `seed`.
    pub fn random(seed: u64, horizon: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut rng = util::Rng::new(seed);
        let mut plan = FaultPlan::new();
        for n in 1..=horizon {
            if rng.next_f64() < rate {
                plan.corrupt_downloads.push(n);
            }
            if rng.next_f64() < rate {
                plan.failed_launches.push(n);
            }
            if rng.next_f64() < rate {
                plan.failed_allocs.push(n);
            }
            if rng.next_f64() < rate {
                plan.bit_flips.push(n);
            }
        }
        plan.rng = Some(rng);
        plan
    }

    /// True when the plan schedules nothing (the unarmed state).
    pub fn is_empty(&self) -> bool {
        self.corrupt_downloads.is_empty()
            && self.failed_launches.is_empty()
            && self.failed_allocs.is_empty()
            && self.bit_flips.is_empty()
            && self.hangs.is_empty()
            && self.wedges.is_empty()
            && self.slow_launches.is_empty()
            && self.sick_windows.is_empty()
    }

    fn take(list: &mut Vec<u64>, n: u64) -> bool {
        if let Some(pos) = list.iter().position(|&x| x == n) {
            list.remove(pos);
            true
        } else {
            false
        }
    }

    /// Consumes a scheduled corruption of download `n`, if any.
    pub(crate) fn take_download_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.corrupt_downloads, n)
    }

    /// Consumes a scheduled failure of launch `n`, if any.
    pub(crate) fn take_launch_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.failed_launches, n)
    }

    /// Consumes a scheduled exhaustion at allocation `n`, if any.
    pub(crate) fn take_alloc_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.failed_allocs, n)
    }

    /// Consumes a scheduled bit flip after compute op `n`, if any.
    pub(crate) fn take_bit_flip(&mut self, n: u64) -> bool {
        Self::take(&mut self.bit_flips, n)
    }

    /// Consumes a scheduled hang or wedge at launch `n`. Returns
    /// `Some(wedged)` when one fires; a wedge scheduled at the same
    /// ordinal as a hang wins (the worse failure dominates).
    pub(crate) fn take_hang(&mut self, n: u64) -> Option<bool> {
        if Self::take(&mut self.wedges, n) {
            Some(true)
        } else if Self::take(&mut self.hangs, n) {
            Some(false)
        } else {
            None
        }
    }

    /// Consumes a scheduled latency inflation of launch `n`, returning its
    /// factor.
    pub(crate) fn take_slow(&mut self, n: u64) -> Option<f64> {
        let pos = self.slow_launches.iter().position(|&(x, _)| x == n)?;
        Some(self.slow_launches.remove(pos).1)
    }

    /// Whether launch ordinal `n` falls inside a scripted sick window
    /// (non-consuming: the window persists), returning the window.
    pub(crate) fn sick_window_hit(&self, n: u64) -> Option<(u64, u64)> {
        self.sick_windows
            .iter()
            .copied()
            .find(|&(lo, hi)| (lo..=hi).contains(&n))
    }

    fn rng(&mut self) -> &mut util::Rng {
        self.rng.get_or_insert_with(|| util::Rng::new(0))
    }

    /// Picks the element index a corruption targets in a buffer of `len`.
    pub(crate) fn pick_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.rng().next_range(len as u64) as usize
    }

    /// Picks a high mantissa bit (44..52) so the flipped value stays finite
    /// but diverges far beyond roundoff — detectable only by a consistency
    /// check, not by a finiteness scan.
    pub(crate) fn pick_mantissa_bit(&mut self) -> u32 {
        44 + self.rng().next_range(8) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut p = FaultPlan::new();
        assert!(p.is_empty());
        for n in 1..100 {
            assert!(!p.take_download_fault(n));
            assert!(!p.take_launch_fault(n));
            assert!(!p.take_alloc_fault(n));
            assert!(!p.take_bit_flip(n));
        }
    }

    #[test]
    fn scheduled_faults_are_one_shot() {
        let mut p = FaultPlan::new().fail_launch(3).fail_launch(3);
        assert!(!p.take_launch_fault(2));
        assert!(p.take_launch_fault(3), "first hit fires");
        assert!(p.take_launch_fault(3), "second scheduled copy fires");
        assert!(!p.take_launch_fault(3), "then the ordinal is clean");
    }

    #[test]
    fn random_plan_is_deterministic() {
        let a = FaultPlan::random(42, 1000, 0.05);
        let b = FaultPlan::random(42, 1000, 0.05);
        assert_eq!(a.corrupt_downloads, b.corrupt_downloads);
        assert_eq!(a.failed_launches, b.failed_launches);
        assert_eq!(a.failed_allocs, b.failed_allocs);
        assert_eq!(a.bit_flips, b.bit_flips);
        assert!(!a.is_empty(), "5% over 1000 ordinals fires sometimes");
        let c = FaultPlan::random(43, 1000, 0.05);
        assert_ne!(a.failed_launches, c.failed_launches, "seed matters");
    }

    #[test]
    fn mantissa_bit_in_high_range() {
        let mut p = FaultPlan::new().with_seed(7);
        for _ in 0..64 {
            let b = p.pick_mantissa_bit();
            assert!((44..52).contains(&b));
        }
    }

    #[test]
    fn ordinal_zero_never_fires() {
        // Ordinals are 1-based; a plan armed at index 0 is inert — it can
        // never match any real operation, no matter how long the run.
        let mut p = FaultPlan::new()
            .fail_launch(0)
            .corrupt_transfer(0)
            .oom_at_alloc(0)
            .hang_at_launch(0)
            .wedge_at_launch(0)
            .slow_launch(0, 4.0);
        assert!(!p.is_empty(), "the schedules exist, they just never match");
        for n in 1..=1000 {
            assert!(!p.take_launch_fault(n));
            assert!(!p.take_download_fault(n));
            assert!(!p.take_alloc_fault(n));
            assert!(p.take_hang(n).is_none());
            assert!(p.take_slow(n).is_none());
            assert!(p.sick_window_hit(n).is_none());
        }
    }

    #[test]
    fn overlapping_latency_and_failure_on_same_op_both_fire() {
        // Latency inflation and a fault scheduled at the same ordinal are
        // independent: the op is slow *and* fails.
        let mut p = FaultPlan::new().slow_launch(3, 8.0).fail_launch(3);
        assert_eq!(p.take_slow(3), Some(8.0));
        assert!(p.take_launch_fault(3));
        // Both consumed; the retried ordinal is clean.
        assert!(p.take_slow(3).is_none());
        assert!(!p.take_launch_fault(3));
    }

    #[test]
    fn wedge_dominates_hang_at_same_ordinal() {
        let mut p = FaultPlan::new().hang_at_launch(5).wedge_at_launch(5);
        assert_eq!(p.take_hang(5), Some(true), "the worse failure wins");
        assert_eq!(p.take_hang(5), Some(false), "the hang is still scheduled");
        assert_eq!(p.take_hang(5), None);
    }

    #[test]
    fn sick_windows_persist_across_hits() {
        let p = FaultPlan::new().sick_window(4, 6);
        assert!(p.sick_window_hit(3).is_none());
        assert_eq!(p.sick_window_hit(4), Some((4, 6)));
        assert_eq!(p.sick_window_hit(6), Some((4, 6)), "non-consuming");
        assert!(p.sick_window_hit(7).is_none());
    }

    #[test]
    fn merge_concatenates_schedules() {
        let job = FaultPlan::new().with_seed(9).fail_launch(2);
        let slot = FaultPlan::new().hang_at_launch(1).sick_window(10, 12);
        let mut merged = job.merge(slot);
        assert!(merged.take_launch_fault(2));
        assert_eq!(merged.take_hang(1), Some(false));
        assert!(merged.sick_window_hit(11).is_some());
    }

    #[test]
    fn sick_errors_classify_as_device_sick() {
        let hang = DeviceError::Hang {
            kernel: "dgemm",
            launch_index: 3,
            wedged: false,
        };
        let wedge = DeviceError::Hang {
            kernel: "dgemm",
            launch_index: 3,
            wedged: true,
        };
        let sick = DeviceError::SickDevice {
            kernel: "dgemm",
            launch_index: 3,
            window: (2, 5),
        };
        let launch = DeviceError::KernelLaunchFailure {
            kernel: "dgemm",
            launch_index: 3,
        };
        assert!(hang.is_sick() && !hang.is_wedged());
        assert!(wedge.is_sick() && wedge.is_wedged());
        assert!(sick.is_sick() && !sick.is_wedged());
        assert!(!launch.is_sick());
        assert!(hang.to_string().contains("deadline"), "{hang}");
        assert!(sick.to_string().contains("sick window"), "{sick}");
    }

    #[test]
    fn errors_display_context() {
        let e = DeviceError::KernelLaunchFailure {
            kernel: "dgemm",
            launch_index: 17,
        };
        assert!(e.to_string().contains("dgemm"));
        assert!(e.to_string().contains("17"));
        let o = DeviceError::ArenaExhausted {
            requested: 4096,
            in_use: 1024,
            limit: 2048,
        };
        assert!(o.to_string().contains("4096"));
    }
}
