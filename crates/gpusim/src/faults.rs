//! Deterministic fault injection for the simulated device.
//!
//! Real accelerator deployments fail in a handful of well-known ways: a
//! host↔device transfer silently corrupts, a kernel launch errors out, the
//! device memory arena is exhausted mid-allocation, or a resident bit flips
//! (no ECC on consumer parts). A [`FaultPlan`] scripts any combination of
//! those against the [`Device`](crate::device::Device) cost model so the
//! recovery ladder in `dqmc::sweep` can be exercised deterministically:
//! every fault fires at an exact operation ordinal, and any randomness
//! (which matrix element to poison, which mantissa bit to flip) comes from
//! a seeded [`util::Rng`] owned by the plan — reruns reproduce bit-for-bit.
//!
//! Faults are **one-shot**: once a scheduled fault fires it is consumed, so
//! a retry of the same operation succeeds (unless another fault is scheduled
//! at the retried ordinal). Persistent failure is modelled by scheduling a
//! run of consecutive ordinals.

use std::fmt;

/// An error raised by a fallible device operation.
///
/// Only *device-class* failures are represented here — the operation did not
/// complete. Silent data corruption (transfer poison, bit flips) does not
/// error; it surfaces downstream when the caller scans the result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// A kernel launch was rejected by the (simulated) driver.
    KernelLaunchFailure {
        /// Name of the kernel whose launch failed.
        kernel: &'static str,
        /// 1-based global launch ordinal that failed.
        launch_index: u64,
    },
    /// The device memory arena could not satisfy an allocation.
    ArenaExhausted {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes already resident in the arena.
        in_use: usize,
        /// Configured arena capacity (0 ⇒ the exhaustion was injected).
        limit: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::KernelLaunchFailure {
                kernel,
                launch_index,
            } => {
                write!(f, "kernel launch failure: {kernel} (launch #{launch_index})")
            }
            DeviceError::ArenaExhausted {
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "device arena exhausted: requested {requested} B with {in_use} B in use (limit {limit} B)"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A scripted schedule of device faults.
///
/// Ordinals are 1-based and count per category over the device's lifetime
/// (they survive [`Device::reset_clock`](crate::device::Device::reset_clock)):
/// the 3rd download is the 3rd `get_matrix` since the device was created,
/// regardless of how many kernels launched in between.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    corrupt_downloads: Vec<u64>,
    failed_launches: Vec<u64>,
    failed_allocs: Vec<u64>,
    bit_flips: Vec<u64>,
    rng: Option<util::Rng>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Seeds the plan's private RNG, used to pick which element a transfer
    /// corruption poisons and which mantissa bit a flip targets. Plans that
    /// schedule corruption or flips without a seed fall back to seed 0.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Some(util::Rng::new(seed));
        self
    }

    /// Schedules silent corruption of the `nth` (1-based) device→host matrix
    /// download: one element of the received matrix becomes NaN.
    pub fn corrupt_transfer(mut self, nth: u64) -> Self {
        self.corrupt_downloads.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) kernel launch to fail.
    pub fn fail_launch(mut self, nth: u64) -> Self {
        self.failed_launches.push(nth);
        self
    }

    /// Schedules the `nth` (1-based) device allocation to report arena
    /// exhaustion.
    pub fn oom_at_alloc(mut self, nth: u64) -> Self {
        self.failed_allocs.push(nth);
        self
    }

    /// Schedules a bit flip in the output of the `nth` (1-based) device
    /// compute operation (GEMM / scaling / wrap kernels): one element has a
    /// high mantissa bit XOR-ed, producing a *finite* but wrong value — the
    /// silent-corruption case that only a consistency check can catch.
    pub fn flip_bit_after_op(mut self, nth: u64) -> Self {
        self.bit_flips.push(nth);
        self
    }

    /// A randomized plan: over the first `horizon` ordinals of each category,
    /// each ordinal independently faults with probability `rate`. Fully
    /// determined by `seed`.
    pub fn random(seed: u64, horizon: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut rng = util::Rng::new(seed);
        let mut plan = FaultPlan::new();
        for n in 1..=horizon {
            if rng.next_f64() < rate {
                plan.corrupt_downloads.push(n);
            }
            if rng.next_f64() < rate {
                plan.failed_launches.push(n);
            }
            if rng.next_f64() < rate {
                plan.failed_allocs.push(n);
            }
            if rng.next_f64() < rate {
                plan.bit_flips.push(n);
            }
        }
        plan.rng = Some(rng);
        plan
    }

    /// True when the plan schedules nothing (the unarmed state).
    pub fn is_empty(&self) -> bool {
        self.corrupt_downloads.is_empty()
            && self.failed_launches.is_empty()
            && self.failed_allocs.is_empty()
            && self.bit_flips.is_empty()
    }

    fn take(list: &mut Vec<u64>, n: u64) -> bool {
        if let Some(pos) = list.iter().position(|&x| x == n) {
            list.remove(pos);
            true
        } else {
            false
        }
    }

    /// Consumes a scheduled corruption of download `n`, if any.
    pub(crate) fn take_download_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.corrupt_downloads, n)
    }

    /// Consumes a scheduled failure of launch `n`, if any.
    pub(crate) fn take_launch_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.failed_launches, n)
    }

    /// Consumes a scheduled exhaustion at allocation `n`, if any.
    pub(crate) fn take_alloc_fault(&mut self, n: u64) -> bool {
        Self::take(&mut self.failed_allocs, n)
    }

    /// Consumes a scheduled bit flip after compute op `n`, if any.
    pub(crate) fn take_bit_flip(&mut self, n: u64) -> bool {
        Self::take(&mut self.bit_flips, n)
    }

    fn rng(&mut self) -> &mut util::Rng {
        self.rng.get_or_insert_with(|| util::Rng::new(0))
    }

    /// Picks the element index a corruption targets in a buffer of `len`.
    pub(crate) fn pick_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.rng().next_range(len as u64) as usize
    }

    /// Picks a high mantissa bit (44..52) so the flipped value stays finite
    /// but diverges far beyond roundoff — detectable only by a consistency
    /// check, not by a finiteness scan.
    pub(crate) fn pick_mantissa_bit(&mut self) -> u32 {
        44 + self.rng().next_range(8) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut p = FaultPlan::new();
        assert!(p.is_empty());
        for n in 1..100 {
            assert!(!p.take_download_fault(n));
            assert!(!p.take_launch_fault(n));
            assert!(!p.take_alloc_fault(n));
            assert!(!p.take_bit_flip(n));
        }
    }

    #[test]
    fn scheduled_faults_are_one_shot() {
        let mut p = FaultPlan::new().fail_launch(3).fail_launch(3);
        assert!(!p.take_launch_fault(2));
        assert!(p.take_launch_fault(3), "first hit fires");
        assert!(p.take_launch_fault(3), "second scheduled copy fires");
        assert!(!p.take_launch_fault(3), "then the ordinal is clean");
    }

    #[test]
    fn random_plan_is_deterministic() {
        let a = FaultPlan::random(42, 1000, 0.05);
        let b = FaultPlan::random(42, 1000, 0.05);
        assert_eq!(a.corrupt_downloads, b.corrupt_downloads);
        assert_eq!(a.failed_launches, b.failed_launches);
        assert_eq!(a.failed_allocs, b.failed_allocs);
        assert_eq!(a.bit_flips, b.bit_flips);
        assert!(!a.is_empty(), "5% over 1000 ordinals fires sometimes");
        let c = FaultPlan::random(43, 1000, 0.05);
        assert_ne!(a.failed_launches, c.failed_launches, "seed matters");
    }

    #[test]
    fn mantissa_bit_in_high_range() {
        let mut p = FaultPlan::new().with_seed(7);
        for _ in 0..64 {
            let b = p.pick_mantissa_bit();
            assert!((44..52).contains(&b));
        }
    }

    #[test]
    fn errors_display_context() {
        let e = DeviceError::KernelLaunchFailure {
            kernel: "dgemm",
            launch_index: 17,
        };
        assert!(e.to_string().contains("dgemm"));
        assert!(e.to_string().contains("17"));
        let o = DeviceError::ArenaExhausted {
            requested: 4096,
            in_use: 1024,
            limit: 2048,
        };
        assert!(o.to_string().contains("4096"));
    }
}
