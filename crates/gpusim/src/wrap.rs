//! Device-side Green's-function wrapping — Algorithms 6 and 7 of the paper.
//!
//! `G ← B_l G B_l⁻¹`: the Green's function goes down over PCIe, two GEMMs
//! against the resident `e^{∓ΔτK}` run on the device, the two-sided diagonal
//! scaling runs as the Algorithm 7 texture-cache kernel, and `G` comes back.
//! Only two GEMMs amortise each matrix round trip, so wrapping cannot reach
//! clustering's efficiency (the Figure 9 gap).

use crate::device::{DMatrix, Device};
use crate::faults::DeviceError;
use dqmc::{BMatrixFactory, HsField, Spin};
use linalg::Matrix;

/// Uploads `e^{+ΔτK}` (the inverse-side operand) at simulation start.
pub fn upload_expk_inv(dev: &mut Device, fac: &BMatrixFactory) -> DMatrix {
    dev.set_matrix(fac.expk_inv())
}

/// Algorithm 6: wraps `G ← B_l G B_l⁻¹` on the device.
///
/// With `B = e^{−ΔτK}·V`: `B G B⁻¹ = e^{−ΔτK} (V G V⁻¹) e^{+ΔτK}` — one
/// Algorithm 7 scaling between two GEMMs.
#[allow(clippy::too_many_arguments)]
pub fn wrap_on_device(
    dev: &mut Device,
    expk_dev: &DMatrix,
    expk_inv_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    l: usize,
    spin: Spin,
    g: &Matrix,
) -> Matrix {
    let n = fac.nsites();
    let mut wrapped = Matrix::zeros(n, n);
    try_wrap_on_device_into(
        dev,
        expk_dev,
        expk_inv_dev,
        fac,
        h,
        l,
        spin,
        g,
        &mut wrapped,
    )
    .unwrap_or_else(|e| panic!("device fault outside fault-aware path: {e}"));
    linalg::check_finite!(
        wrapped.as_slice(),
        "wrap_on_device output ({n}x{n}) at slice {l}"
    );
    wrapped
}

/// Fallible [`wrap_on_device`] into a pre-allocated host matrix: returns a
/// [`DeviceError`] on a scheduled launch failure or arena exhaustion and
/// performs **no finiteness check** on the downloaded result — the
/// recovery-aware caller scans `out` for transfer corruption itself.
#[allow(clippy::too_many_arguments)]
pub fn try_wrap_on_device_into(
    dev: &mut Device,
    expk_dev: &DMatrix,
    expk_inv_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    l: usize,
    spin: Spin,
    g: &Matrix,
    out: &mut Matrix,
) -> Result<(), DeviceError> {
    let n = fac.nsites();
    assert!(out.nrows() == n && out.ncols() == n);
    let mut dg = dev.set_matrix(g);
    let vh = fac.v_diag(h, l, spin);
    let v = dev.set_vector(&vh);
    linalg::workspace::put(vh);
    // V G V⁻¹ via the texture-cache kernel.
    dev.try_wrap_scale_kernel(&v, &mut dg)?;
    // e^{−ΔτK} · (VGV⁻¹)
    let mut t = dev.try_alloc(n, n)?;
    dev.try_dgemm(1.0, expk_dev, &dg, 0.0, &mut t)?;
    // · e^{+ΔτK}
    let mut prod = dev.try_alloc(n, n)?;
    dev.try_dgemm(1.0, &t, expk_inv_dev, 0.0, &mut prod)?;
    dev.get_matrix_into(&prod, out);
    Ok(())
}

/// Bit-exact device wrap — the deterministic-execution analogue of
/// cuBLAS's reproducibility mode.
///
/// [`try_wrap_on_device_into`] runs Algorithm 7's fused two-sided scaling
/// *before* the GEMMs, so its floating-point op order differs from the host
/// path (`row_scale → gemm → col_scale → gemm`) and the results differ in
/// the last ulps. That is fine for throughput studies, but a scheduler that
/// places jobs on whatever resource is free needs placement to be
/// *unobservable*: this variant issues the host path's exact op sequence as
/// separate device launches (row-scale kernel, GEMM, col-scale kernel,
/// GEMM), so the downloaded result is bit-identical to
/// `BMatrixFactory::wrap_into` on the host while still paying simulated
/// launch, bandwidth and transfer costs. The extra launch is the modelled
/// price of determinism.
#[allow(clippy::too_many_arguments)]
pub fn try_wrap_on_device_bitexact_into(
    dev: &mut Device,
    expk_dev: &DMatrix,
    expk_inv_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    l: usize,
    spin: Spin,
    g: &Matrix,
    out: &mut Matrix,
) -> Result<(), DeviceError> {
    let n = fac.nsites();
    assert!(out.nrows() == n && out.ncols() == n);
    let mut dg = dev.set_matrix(g);
    let mut vh = fac.v_diag(h, l, spin);
    let v = dev.set_vector(&vh);
    // diag(v)·G — same row_scale the host's b_mul_left_into performs.
    dev.try_scale_rows_kernel(&v, &mut dg)?;
    // e^{−ΔτK} · (VG)
    let mut t = dev.try_alloc(n, n)?;
    dev.try_dgemm(1.0, expk_dev, &dg, 0.0, &mut t)?;
    // (·)·diag(v)⁻¹ — the host's b_inv_mul_right_into inverts after the
    // first GEMM; 1/x is exact in the same order here.
    for x in vh.iter_mut() {
        *x = 1.0 / *x;
    }
    let vinv = dev.set_vector(&vh);
    linalg::workspace::put(vh);
    dev.try_scale_cols_kernel(&vinv, &mut t)?;
    // · e^{+ΔτK}
    let mut prod = dev.try_alloc(n, n)?;
    dev.try_dgemm(1.0, &t, expk_inv_dev, 0.0, &mut prod)?;
    dev.get_matrix_into(&prod, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::upload_expk;
    use crate::device::DeviceSpec;
    use dqmc::ModelParams;
    use lattice::Lattice;

    fn setup() -> (BMatrixFactory, HsField, Matrix) {
        let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 8);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(7);
        let h = HsField::random(16, 8, &mut rng);
        let g = dqmc::greens::greens_naive(&fac, &h, Spin::Up).g;
        (fac, h, g)
    }

    #[test]
    fn device_wrap_matches_host_wrap() {
        let (fac, h, g) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let got = wrap_on_device(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g);
        let want = dqmc::greens::wrap(&fac, &h, 0, Spin::Up, &g);
        assert!(
            got.max_abs_diff(&want) < 1e-12,
            "{}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn bitexact_wrap_is_bit_identical_to_host_wrap() {
        let (fac, h, g) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let mut got = Matrix::zeros(16, 16);
        try_wrap_on_device_bitexact_into(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g, &mut got)
            .unwrap();
        let want = dqmc::greens::wrap(&fac, &h, 0, Spin::Up, &g);
        // Exactly zero: the whole point of the deterministic mode.
        assert_eq!(got.max_abs_diff(&want), 0.0);
        // By contrast the fused Algorithm 7 path is close but NOT bit-equal
        // (different op order) — pin that so this test keeps meaning.
        let fused = wrap_on_device(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g);
        assert!(fused.max_abs_diff(&want) < 1e-12);
        assert!(
            fused.max_abs_diff(&want) > 0.0,
            "fused wrap became bit-exact; the deterministic mode is redundant"
        );
    }

    #[test]
    fn bitexact_wrap_still_pays_device_costs() {
        let (fac, h, g) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let mut out = Matrix::zeros(16, 16);
        let (t0, k0, b0) = (
            dev.elapsed(),
            dev.kernels_launched(),
            dev.bytes_transferred(),
        );
        try_wrap_on_device_bitexact_into(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g, &mut out)
            .unwrap();
        // Four launches (two scales + two GEMMs), time advanced, and the
        // G round trip plus two diagonal uploads on the wire.
        assert_eq!(dev.kernels_launched() - k0, 4);
        assert!(dev.elapsed() > t0);
        let n = 16usize;
        assert_eq!(
            (dev.bytes_transferred() - b0) as usize,
            2 * n * n * 8 + 2 * n * 8
        );
    }

    #[test]
    fn wrap_transfers_two_matrices_and_a_vector() {
        let (fac, h, g) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let before = dev.bytes_transferred();
        let _ = wrap_on_device(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g);
        let moved = (dev.bytes_transferred() - before) as usize;
        let n = 16usize;
        assert_eq!(moved, 2 * n * n * 8 + n * 8);
    }

    #[test]
    fn try_wrap_oom_errs_then_retry_succeeds_and_corruption_is_visible() {
        let (fac, h, g) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        dev.arm_faults(
            crate::faults::FaultPlan::new()
                .with_seed(2)
                .oom_at_alloc(1)
                .corrupt_transfer(2),
        );
        let mut out = Matrix::zeros(16, 16);
        let err = try_wrap_on_device_into(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g, &mut out);
        assert!(matches!(err, Err(DeviceError::ArenaExhausted { .. })));
        // Retry succeeds; download #1 is clean.
        try_wrap_on_device_into(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g, &mut out).unwrap();
        assert!(linalg::check::first_non_finite(out.as_slice()).is_none());
        let want = dqmc::greens::wrap(&fac, &h, 0, Spin::Up, &g);
        assert!(out.max_abs_diff(&want) < 1e-12);
        // The next wrap's download (#2) is silently corrupted but returns Ok.
        try_wrap_on_device_into(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g, &mut out).unwrap();
        assert!(linalg::check::first_non_finite(out.as_slice()).is_some());
    }

    #[test]
    fn wrapping_slower_per_flop_than_clustering() {
        // Figure 9: clustering's effective rate exceeds wrapping's.
        let model = ModelParams::new(Lattice::square(8, 8, 1.0), 4.0, 0.0, 0.125, 10);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(8);
        let h = HsField::random(64, 10, &mut rng);
        let g = dqmc::greens::greens_naive(&fac, &h, Spin::Up).g;

        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        dev.reset_clock();
        let _ = crate::cluster::cluster_custom_kernel(&mut dev, &ek, &fac, &h, 0, 10, Spin::Up);
        let t_cluster = dev.elapsed();
        let rate_cluster = 9.0 * 2.0 * 64f64.powi(3) / t_cluster;

        dev.reset_clock();
        let _ = wrap_on_device(&mut dev, &ek, &eki, &fac, &h, 0, Spin::Up, &g);
        let t_wrap = dev.elapsed();
        let rate_wrap = 2.0 * 2.0 * 64f64.powi(3) / t_wrap;

        assert!(
            rate_cluster > rate_wrap,
            "cluster rate {rate_cluster} !> wrap rate {rate_wrap}"
        );
    }
}
