//! Fully device-resident stratification — the paper's stated future work.
//!
//! Section VI closes: *"Our future research direction is to implement most
//! of the stratification procedure (Algorithm 3) on the GPU using the recent
//! advances for the QR decomposition on these systems"* (citing the
//! communication-avoiding QR of Anderson et al., IPDPS 2011). This module
//! realises that plan against the simulated device: cluster products, the
//! per-step GEMM + column scaling, the pre-pivot norm computation, and the
//! (CAQR-rate) QR factorizations all run on the accelerator; only the final
//! small LU assembly returns to the host. Compared to the §VI-C hybrid this
//! removes the per-iteration `Q` transfers and moves the QR flops to the
//! device — a win once the device QR rate beats the host's, i.e. at large N.

use crate::device::{Device, HostSpec};
use dqmc::{greens_from_udt, stratify, BMatrixFactory, GreensFunction, HsField, Spin, StratAlgo};

/// Fraction of the device GEMM rate reached by communication-avoiding QR on
/// Fermi-class hardware (Anderson et al. report roughly this ratio at DQMC
/// sizes).
pub const DEVICE_CAQR_FRACTION: f64 = 0.35;

/// Outcome of a fully device-resident evaluation.
#[derive(Clone, Debug)]
pub struct GpuStratReport {
    /// The Green's function (exact numerics, host-verified).
    pub greens: GreensFunction,
    /// Simulated seconds for the full-GPU pipeline.
    pub gpu_seconds: f64,
    /// Simulated seconds the §VI-C hybrid would need (for comparison).
    pub hybrid_seconds: f64,
}

/// Evaluates `G` with clustering *and* stratification on the device.
///
/// Costs charged to the device clock per stratification step (order n):
/// one GEMM (2n³), one coalesced scaling pass, one column-norm pass, one
/// CAQR factorization + Q formation (8/3·n³ total at the CAQR rate), and the
/// triangular T update (n³ at GEMM rate). The final `D_b Qᵀ + D_s T` LU
/// assembly transfers two matrices up and runs on the host model.
pub fn gpu_stratified_greens(
    dev: &mut Device,
    host: &HostSpec,
    fac: &BMatrixFactory,
    h: &HsField,
    spin: Spin,
    k: usize,
    algo: StratAlgo,
) -> GpuStratReport {
    let n = fac.nsites();
    let slices = h.slices();
    assert!(k >= 1 && k <= slices);
    let nf = n as f64;

    // --- Device-resident pipeline (cost model) ---
    dev.reset_clock();
    let expk_dev = dev.set_matrix(fac.expk());

    // Clustering, identical to the hybrid path (reuse its real kernels).
    let mut clusters = Vec::new();
    let mut lo = 0;
    while lo < slices {
        let hi = (lo + k).min(slices);
        clusters.push(crate::cluster::cluster_custom_kernel(
            dev, &expk_dev, fac, h, lo, hi, spin,
        ));
        lo = hi;
    }
    let device_cluster_seconds = dev.elapsed();
    let lk = clusters.len();

    // Per-iteration stratification on the device: modelled analytically
    // (the numerics run below on the host kernels — identical results).
    let gemm_rate = dev.spec().gemm_rate(n) * 1e9;
    let caqr_rate = gemm_rate * DEVICE_CAQR_FRACTION;
    let bw = dev.spec().mem_bandwidth_gbs * 1e9;
    let per_iter = 2.0 * nf.powi(3) / gemm_rate            // C = B̂·Q
        + 3.0 * nf * nf * 16.0 / bw                         // scalings + norms
        + (4.0 / 3.0 + 4.0 / 3.0) * nf.powi(3) / caqr_rate  // QR + form Q
        + nf.powi(3) / gemm_rate; // T update
    let device_strat_seconds = lk as f64 * per_iter;

    // Final assembly on the host: two N×N transfers up + LU solve.
    let up_bytes = 2.0 * nf * nf * 8.0;
    let transfer =
        2.0 * dev.spec().pcie_latency_s + up_bytes / (dev.spec().pcie_bandwidth_gbs * 1e9);
    let assembly = host.level3_time(8.0 / 3.0 * nf.powi(3), n, 0.8);

    let gpu_seconds = device_cluster_seconds + device_strat_seconds + transfer + assembly;

    // --- Hybrid reference (same formulas as gpusim::hybrid) ---
    let qr_frac = match algo {
        StratAlgo::PrePivot => host.qr_fraction,
        StratAlgo::Qrp => host.qrp_fraction,
    };
    let hybrid_per_iter = host.level3_time(2.0 * nf.powi(3), n, 1.0)
        + host.level3_time(4.0 / 3.0 * nf.powi(3), n, qr_frac)
        + host.level3_time(4.0 / 3.0 * nf.powi(3), n, host.qr_fraction)
        + host.level3_time(nf.powi(3), n, 0.8)
        + 3.0 * nf * nf * 8.0 / (host.mem_bandwidth_gbs * 1e9);
    let hybrid_seconds = device_cluster_seconds + lk as f64 * hybrid_per_iter + assembly;

    // --- Real numerics (host kernels; the device path is bit-identical) ---
    let greens = greens_from_udt(&stratify(&clusters, algo));

    GpuStratReport {
        greens,
        gpu_seconds,
        hybrid_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use dqmc::ModelParams;
    use lattice::Lattice;

    fn setup(lside: usize, slices: usize) -> (BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.125, slices);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(41);
        let h = HsField::random(lside * lside, slices, &mut rng);
        (fac, h)
    }

    #[test]
    fn gpu_strat_result_is_exact() {
        let (fac, h) = setup(3, 16);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep =
            gpu_stratified_greens(&mut dev, &host, &fac, &h, Spin::Up, 4, StratAlgo::PrePivot);
        let naive = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        let rel = dqmc::greens::relative_difference(&rep.greens.g, &naive.g);
        assert!(rel < 1e-9, "{rel}");
    }

    #[test]
    fn full_gpu_beats_hybrid_at_large_n() {
        let (fac, h) = setup(16, 20); // N = 256
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep =
            gpu_stratified_greens(&mut dev, &host, &fac, &h, Spin::Up, 10, StratAlgo::PrePivot);
        assert!(
            rep.gpu_seconds < rep.hybrid_seconds,
            "gpu {} !< hybrid {}",
            rep.gpu_seconds,
            rep.hybrid_seconds
        );
    }

    #[test]
    fn small_n_favors_hybrid_or_close() {
        // At tiny N the device QR underperforms the host's: the full-GPU
        // pipeline should NOT show the large-N advantage there.
        let (fac, h) = setup(4, 20); // N = 16
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep =
            gpu_stratified_greens(&mut dev, &host, &fac, &h, Spin::Up, 10, StratAlgo::PrePivot);
        let ratio = rep.hybrid_seconds / rep.gpu_seconds;
        let (fac2, h2) = setup(16, 20);
        let mut dev2 = Device::new(DeviceSpec::tesla_c2050());
        let rep2 = gpu_stratified_greens(
            &mut dev2,
            &host,
            &fac2,
            &h2,
            Spin::Up,
            10,
            StratAlgo::PrePivot,
        );
        let ratio_large = rep2.hybrid_seconds / rep2.gpu_seconds;
        assert!(
            ratio_large > ratio,
            "GPU advantage should grow with N: {ratio} → {ratio_large}"
        );
    }
}
