//! The device model: real numerics, simulated time.

use crate::faults::{DeviceError, FaultPlan};
use linalg::blas3::{gemm, Op};
use linalg::{scale, Matrix};
use util::SimClock;

/// Performance characteristics of a (simulated) accelerator.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Device name (reporting only).
    pub name: &'static str,
    /// Asymptotic sustained double-precision GEMM rate, GFlop/s.
    pub gemm_gflops: f64,
    /// Matrix order at which GEMM reaches half its asymptotic rate
    /// (GPUs need large tiles to saturate; CPUs saturate much earlier).
    pub gemm_half_n: f64,
    /// Device memory bandwidth for coalesced access, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Fraction of bandwidth achieved by non-coalesced (row-wise) access.
    pub uncoalesced_fraction: f64,
    /// Host↔device transfer bandwidth, GB/s (0 ⇒ no transfer cost: host).
    pub pcie_bandwidth_gbs: f64,
    /// Per-transfer latency, seconds.
    pub pcie_latency_s: f64,
    /// Per-kernel launch overhead, seconds.
    pub kernel_launch_s: f64,
}

impl DeviceSpec {
    /// A Tesla C2050-class accelerator (the paper's §VI hardware): ~515
    /// GFlop/s DP peak, ~170 sustained DGEMM at large N, 144 GB/s memory,
    /// PCIe 2.0 ×16.
    pub fn tesla_c2050() -> Self {
        DeviceSpec {
            name: "sim-tesla-c2050",
            gemm_gflops: 170.0,
            gemm_half_n: 128.0,
            mem_bandwidth_gbs: 120.0,
            uncoalesced_fraction: 0.15,
            pcie_bandwidth_gbs: 3.0,
            pcie_latency_s: 10e-6,
            kernel_launch_s: 7e-6,
        }
    }

    /// Effective GEMM rate at order `n` (saturation curve).
    pub fn gemm_rate(&self, n: usize) -> f64 {
        let n = n as f64;
        self.gemm_gflops * n / (n + self.gemm_half_n)
    }
}

/// Performance model of the host CPU used by the hybrid driver — a
/// two-socket four-core Nehalem node like the paper's Carver (§VI-C).
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Sustained DGEMM rate, GFlop/s.
    pub gemm_gflops: f64,
    /// Matrix order at which DGEMM reaches half rate.
    pub gemm_half_n: f64,
    /// QR (DGEQRF) fraction of the GEMM rate (panel overhead).
    pub qr_fraction: f64,
    /// Pivoted QR (DGEQP3) fraction of the GEMM rate (level-2 bound).
    pub qrp_fraction: f64,
    /// Memory bandwidth for level-1/2 sweeps, GB/s.
    pub mem_bandwidth_gbs: f64,
}

impl HostSpec {
    /// Eight Nehalem cores with MKL-class efficiency.
    pub fn nehalem_2s4c() -> Self {
        HostSpec {
            gemm_gflops: 70.0,
            gemm_half_n: 48.0,
            qr_fraction: 0.55,
            qrp_fraction: 0.17,
            mem_bandwidth_gbs: 32.0,
        }
    }

    /// Effective host GEMM rate at order `n`.
    pub fn gemm_rate(&self, n: usize) -> f64 {
        let n = n as f64;
        self.gemm_gflops * n / (n + self.gemm_half_n)
    }

    /// Modelled seconds for an `n³`-order kernel at a fraction of GEMM rate.
    pub fn level3_time(&self, flops: f64, n: usize, fraction: f64) -> f64 {
        flops / (self.gemm_rate(n) * fraction * 1e9)
    }
}

/// A matrix resident in (simulated) device memory.
#[derive(Clone, Debug)]
pub struct DMatrix {
    m: Matrix,
}

/// One side of a batched device GEMM: a single resident operand shared by
/// every entry (uploaded once, read B times), or one operand per entry.
#[derive(Clone, Copy, Debug)]
pub enum DGemmOperand<'a> {
    /// The same device matrix multiplies every entry of the stack.
    Shared(&'a DMatrix),
    /// Entry `e` uses `ds[e]`.
    Each(&'a [DMatrix]),
}

impl<'a> DGemmOperand<'a> {
    fn entry(&self, e: usize) -> &'a DMatrix {
        match self {
            DGemmOperand::Shared(d) => d,
            DGemmOperand::Each(ds) => &ds[e],
        }
    }
}

impl DMatrix {
    /// Host view of the device contents (free of simulated cost — test hook;
    /// use [`Device::get_matrix`] to model the PCIe read).
    pub fn host_view(&self) -> &Matrix {
        &self.m
    }

    /// Matrix order helpers.
    pub fn nrows(&self) -> usize {
        self.m.nrows()
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.m.ncols()
    }
}

/// The simulated accelerator: a CUBLAS-like handle whose operations compute
/// exact host results while advancing a simulated clock.
///
/// Every numerical operation comes in two flavours: a fallible `try_*`
/// variant returning [`DeviceError`] when an armed [`FaultPlan`] fires (or
/// the arena limit is hit), and the original infallible method, which
/// delegates to the `try_*` form and panics on a fault. With no plan armed
/// the two are identical — same numerics, same simulated cost, same
/// counters — so fault support costs nothing on the clean path.
#[derive(Clone, Debug)]
pub struct Device {
    spec: DeviceSpec,
    clock: SimClock,
    bytes_transferred: u64,
    kernels_launched: u64,
    downloads: u64,
    allocs: u64,
    compute_ops: u64,
    arena_in_use: usize,
    arena_limit: usize,
    faults: FaultPlan,
    faults_injected: u64,
}

impl Device {
    /// Creates a device from a spec with the clock at zero.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            spec,
            clock: SimClock::new(),
            bytes_transferred: 0,
            kernels_launched: 0,
            downloads: 0,
            allocs: 0,
            compute_ops: 0,
            arena_in_use: 0,
            arena_limit: 0,
            faults: FaultPlan::new(),
            faults_injected: 0,
        }
    }

    /// Caps the device scratch arena at `bytes`; [`Device::try_alloc`] fails
    /// with [`DeviceError::ArenaExhausted`] once the cap would be exceeded.
    /// A limit of 0 (the default) means unlimited.
    pub fn with_arena_limit(mut self, bytes: usize) -> Self {
        self.arena_limit = bytes;
        self
    }

    /// Arms a scripted fault schedule. Replaces any previous plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Number of faults the armed plan has actually injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.clock.now()
    }

    /// Attaches a shared logical-cost meter to the device clock: every
    /// clock advance also accumulates into `meter` (integer nanoseconds),
    /// surviving [`Device::reset_clock`]. The scheduler's quantum watchdog
    /// reads the meter through the `Arc` while the device itself is owned
    /// by a boxed backend it cannot see into.
    pub fn set_cost_meter(&mut self, meter: std::sync::Arc<std::sync::atomic::AtomicU64>) {
        self.clock.set_meter(meter);
    }

    /// Total host↔device bytes moved.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Kernels launched (including CUBLAS calls).
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Device→host matrix downloads performed.
    pub fn downloads(&self) -> u64 {
        self.downloads
    }

    /// Device allocations performed (attempted, including failed ones).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Compute operations performed (GEMMs, scalings, wrap kernels).
    pub fn compute_ops(&self) -> u64 {
        self.compute_ops
    }

    /// Bytes currently charged to the scratch arena.
    pub fn arena_in_use(&self) -> usize {
        self.arena_in_use
    }

    /// Releases all scratch-arena accounting (the coarse model of freeing
    /// per-evaluation temporaries; resident operands are re-uploaded by the
    /// backend, so nothing tracks them individually).
    pub fn reset_arena(&mut self) {
        self.arena_in_use = 0;
    }

    /// Resets the clock and transfer/launch counters (contents of device
    /// matrices, fault schedule and fault ordinals persist).
    pub fn reset_clock(&mut self) {
        self.clock.reset();
        self.bytes_transferred = 0;
        self.kernels_launched = 0;
    }

    fn transfer(&mut self, bytes: usize) {
        self.bytes_transferred += bytes as u64;
        self.clock.advance(
            self.spec.pcie_latency_s + bytes as f64 / (self.spec.pcie_bandwidth_gbs * 1e9),
        );
    }

    /// Charges one kernel launch; fails if the armed plan scheduled this
    /// launch ordinal to fail, hang, or land in a sick window. The launch
    /// overhead is charged either way (the driver burned the submission
    /// before rejecting it), and scripted latency inflation multiplies it
    /// even when the launch succeeds — fail-slow is invisible to numerics.
    fn try_launch(&mut self, kernel: &'static str) -> Result<(), DeviceError> {
        self.kernels_launched += 1;
        self.clock.advance(self.spec.kernel_launch_s);
        if let Some(factor) = self.faults.take_slow(self.kernels_launched) {
            // The launch already paid 1× overhead; charge the excess.
            self.clock
                .advance(self.spec.kernel_launch_s * (factor - 1.0));
            self.faults_injected += 1;
        }
        if let Some(wedged) = self.faults.take_hang(self.kernels_launched) {
            self.faults_injected += 1;
            return Err(DeviceError::Hang {
                kernel,
                launch_index: self.kernels_launched,
                wedged,
            });
        }
        if let Some(window) = self.faults.sick_window_hit(self.kernels_launched) {
            self.faults_injected += 1;
            return Err(DeviceError::SickDevice {
                kernel,
                launch_index: self.kernels_launched,
                window,
            });
        }
        if self.faults.take_launch_fault(self.kernels_launched) {
            self.faults_injected += 1;
            return Err(DeviceError::KernelLaunchFailure {
                kernel,
                launch_index: self.kernels_launched,
            });
        }
        Ok(())
    }

    /// The single device→host path: charges PCIe cost and applies any
    /// scheduled silent corruption (one element → NaN) to the received data.
    fn download(&mut self, data: &mut [f64]) {
        self.transfer(data.len() * 8);
        self.downloads += 1;
        if self.faults.take_download_fault(self.downloads) {
            let i = self.faults.pick_index(data.len());
            data[i] = f64::NAN;
            self.faults_injected += 1;
        }
    }

    /// Counts a completed compute op and applies any scheduled bit flip to
    /// its output: one element has a high mantissa bit XOR-ed (finite, wrong).
    fn finish_compute(&mut self, out: &mut Matrix) {
        self.compute_ops += 1;
        if self.faults.take_bit_flip(self.compute_ops) {
            let data = out.as_mut_slice();
            let i = self.faults.pick_index(data.len());
            let bit = self.faults.pick_mantissa_bit();
            data[i] = f64::from_bits(data[i].to_bits() ^ (1u64 << bit));
            self.faults_injected += 1;
        }
    }

    #[track_caller]
    fn infallible<T>(r: Result<T, DeviceError>) -> T {
        r.unwrap_or_else(|e| panic!("device fault outside fault-aware path: {e}"))
    }

    /// `cublasSetMatrix`: host → device copy.
    pub fn set_matrix(&mut self, host: &Matrix) -> DMatrix {
        self.transfer(host.as_slice().len() * 8);
        DMatrix { m: host.clone() }
    }

    /// `cublasSetVector`: host → device copy of a diagonal/vector.
    pub fn set_vector(&mut self, v: &[f64]) -> Vec<f64> {
        self.transfer(v.len() * 8);
        v.to_vec()
    }

    /// `cublasSetVector` into a pre-allocated device vector — same PCIe
    /// cost, no device-side allocation.
    pub fn set_vector_into(&mut self, v: &[f64], dst: &mut Vec<f64>) {
        self.transfer(v.len() * 8);
        dst.clear();
        dst.extend_from_slice(v);
    }

    /// `cublasGetMatrix`: device → host copy. Subject to scheduled transfer
    /// corruption — callers on the recovery path must scan the result.
    pub fn get_matrix(&mut self, d: &DMatrix) -> Matrix {
        let mut out = d.m.clone();
        self.download(out.as_mut_slice());
        out
    }

    /// [`Device::get_matrix`] into a pre-allocated host matrix.
    pub fn get_matrix_into(&mut self, d: &DMatrix, out: &mut Matrix) {
        assert!(d.m.nrows() == out.nrows() && d.m.ncols() == out.ncols());
        out.as_mut_slice().copy_from_slice(d.m.as_slice());
        self.download(out.as_mut_slice());
    }

    /// Fallible device allocation: fails on a scheduled arena exhaustion or
    /// when an arena limit is configured and would be exceeded. No PCIe cost.
    pub fn try_alloc(&mut self, nrows: usize, ncols: usize) -> Result<DMatrix, DeviceError> {
        self.allocs += 1;
        let requested = nrows * ncols * 8;
        if self.faults.take_alloc_fault(self.allocs) {
            self.faults_injected += 1;
            return Err(DeviceError::ArenaExhausted {
                requested,
                in_use: self.arena_in_use,
                limit: self.arena_limit,
            });
        }
        if self.arena_limit != 0 && self.arena_in_use + requested > self.arena_limit {
            return Err(DeviceError::ArenaExhausted {
                requested,
                in_use: self.arena_in_use,
                limit: self.arena_limit,
            });
        }
        self.arena_in_use += requested;
        Ok(DMatrix {
            m: Matrix::zeros(nrows, ncols),
        })
    }

    /// Allocates an uninitialised (zero) device matrix (no PCIe cost).
    pub fn alloc(&mut self, nrows: usize, ncols: usize) -> DMatrix {
        Self::infallible(self.try_alloc(nrows, ncols))
    }

    /// Fallible `cublasDcopy` of a whole matrix.
    pub fn try_dcopy(&mut self, src: &DMatrix) -> Result<DMatrix, DeviceError> {
        self.try_launch("dcopy")?;
        // Device-side copy: read + write at full bandwidth.
        let bytes = (src.m.as_slice().len() * 16) as f64;
        self.clock
            .advance(bytes / (self.spec.mem_bandwidth_gbs * 1e9));
        Ok(DMatrix { m: src.m.clone() })
    }

    /// `cublasDcopy` of a whole matrix.
    pub fn dcopy(&mut self, src: &DMatrix) -> DMatrix {
        Self::infallible(self.try_dcopy(src))
    }

    /// Fallible [`Device::dcopy_into`].
    pub fn try_dcopy_into(&mut self, src: &DMatrix, dst: &mut DMatrix) -> Result<(), DeviceError> {
        assert!(src.m.nrows() == dst.m.nrows() && src.m.ncols() == dst.m.ncols());
        self.try_launch("dcopy")?;
        let bytes = (src.m.as_slice().len() * 16) as f64;
        self.clock
            .advance(bytes / (self.spec.mem_bandwidth_gbs * 1e9));
        dst.m.as_mut_slice().copy_from_slice(src.m.as_slice());
        Ok(())
    }

    /// `cublasDcopy` into a pre-allocated device matrix — same device-side
    /// bandwidth cost, no allocation.
    pub fn dcopy_into(&mut self, src: &DMatrix, dst: &mut DMatrix) {
        Self::infallible(self.try_dcopy_into(src, dst));
    }

    /// Fallible `cublasDgemm`: `C = alpha·A·B + beta·C`.
    pub fn try_dgemm(
        &mut self,
        alpha: f64,
        a: &DMatrix,
        b: &DMatrix,
        beta: f64,
        c: &mut DMatrix,
    ) -> Result<(), DeviceError> {
        self.try_launch("dgemm")?;
        let (m, k, n) = (a.m.nrows(), a.m.ncols(), b.m.ncols());
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let order = ((m * n * k) as f64).cbrt() as usize;
        self.clock
            .advance(flops / (self.spec.gemm_rate(order) * 1e9));
        gemm(alpha, &a.m, Op::NoTrans, &b.m, Op::NoTrans, beta, &mut c.m);
        self.finish_compute(&mut c.m);
        Ok(())
    }

    /// `cublasDgemm`: `C = alpha·A·B + beta·C`.
    pub fn dgemm(&mut self, alpha: f64, a: &DMatrix, b: &DMatrix, beta: f64, c: &mut DMatrix) {
        Self::infallible(self.try_dgemm(alpha, a, b, beta, c));
    }

    /// One `cublasDscal` on `len` elements with the given coalescing quality.
    fn try_dscal_cost(
        &mut self,
        kernel: &'static str,
        len: usize,
        coalesced: bool,
    ) -> Result<(), DeviceError> {
        self.try_launch(kernel)?;
        let frac = if coalesced {
            1.0
        } else {
            self.spec.uncoalesced_fraction
        };
        let bytes = (len * 16) as f64; // read + write
        self.clock
            .advance(bytes / (self.spec.mem_bandwidth_gbs * frac * 1e9));
        Ok(())
    }

    /// Fallible [`Device::scale_rows_cublas`]. On a launch failure partway
    /// through the row loop the matrix is left unmodified (the scaling is
    /// applied only after every launch succeeded).
    pub fn try_scale_rows_cublas(&mut self, v: &[f64], a: &mut DMatrix) -> Result<(), DeviceError> {
        let n = a.m.nrows();
        assert_eq!(v.len(), n);
        for _ in 0..n {
            self.try_dscal_cost("dscal", a.m.ncols(), false)?;
        }
        scale::row_scale(v, &mut a.m);
        self.finish_compute(&mut a.m);
        Ok(())
    }

    /// Algorithm 4's scaling: one `cublasDscal` per row (N launches,
    /// non-coalesced row access). `a ← diag(v)·a`.
    pub fn scale_rows_cublas(&mut self, v: &[f64], a: &mut DMatrix) {
        Self::infallible(self.try_scale_rows_cublas(v, a));
    }

    /// Fallible [`Device::scale_rows_kernel`].
    pub fn try_scale_rows_kernel(&mut self, v: &[f64], a: &mut DMatrix) -> Result<(), DeviceError> {
        assert_eq!(v.len(), a.m.nrows());
        self.try_dscal_cost("scale_rows_kernel", a.m.as_slice().len(), true)?;
        scale::row_scale(v, &mut a.m);
        self.finish_compute(&mut a.m);
        Ok(())
    }

    /// Algorithm 5: custom row-scaling kernel — one launch, one thread per
    /// row, coalesced reads/writes. `a ← diag(v)·a`.
    pub fn scale_rows_kernel(&mut self, v: &[f64], a: &mut DMatrix) {
        Self::infallible(self.try_scale_rows_kernel(v, a));
    }

    /// Fallible [`Device::scale_cols_cublas`]; same no-partial-effect
    /// guarantee as [`Device::try_scale_rows_cublas`].
    pub fn try_scale_cols_cublas(&mut self, v: &[f64], a: &mut DMatrix) -> Result<(), DeviceError> {
        let n = a.m.ncols();
        assert_eq!(v.len(), n);
        for _ in 0..n {
            self.try_dscal_cost("dscal", a.m.nrows(), true)?;
        }
        scale::col_scale(v, &mut a.m);
        self.finish_compute(&mut a.m);
        Ok(())
    }

    /// Algorithm 4's scaling in column form: one `cublasDscal` per column.
    /// Columns are contiguous in device memory, so each launch streams
    /// coalesced — but the `N` launch overheads remain. `a ← a·diag(v)`.
    pub fn scale_cols_cublas(&mut self, v: &[f64], a: &mut DMatrix) {
        Self::infallible(self.try_scale_cols_cublas(v, a));
    }

    /// Fallible [`Device::scale_cols_kernel`].
    pub fn try_scale_cols_kernel(&mut self, v: &[f64], a: &mut DMatrix) -> Result<(), DeviceError> {
        assert_eq!(v.len(), a.m.ncols());
        self.try_dscal_cost("scale_cols_kernel", a.m.as_slice().len(), true)?;
        scale::col_scale(v, &mut a.m);
        self.finish_compute(&mut a.m);
        Ok(())
    }

    /// Algorithm 5 in column form: one launch, coalesced. `a ← a·diag(v)`.
    pub fn scale_cols_kernel(&mut self, v: &[f64], a: &mut DMatrix) {
        Self::infallible(self.try_scale_cols_kernel(v, a));
    }

    /// `cublasSetMatrix` of a whole crowd: one PCIe transaction moves B
    /// stacked matrices, so the per-transfer latency is paid once per crowd
    /// instead of once per walker. Numerics identical to B solo uploads.
    pub fn set_matrix_stack(&mut self, hosts: &[&Matrix]) -> Vec<DMatrix> {
        let total: usize = hosts.iter().map(|h| h.as_slice().len()).sum();
        self.transfer(total * 8);
        hosts.iter().map(|h| DMatrix { m: (*h).clone() }).collect()
    }

    /// `cublasSetVector` of a stacked crowd of vectors: one transfer.
    pub fn set_vector_stack(&mut self, vs: &[&[f64]]) -> Vec<Vec<f64>> {
        let total: usize = vs.iter().map(|v| v.len()).sum();
        self.transfer(total * 8);
        vs.iter().map(|v| v.to_vec()).collect()
    }

    /// [`Device::set_vector_stack`] into pre-allocated device vectors.
    pub fn set_vector_stack_into(&mut self, vs: &[&[f64]], dsts: &mut [Vec<f64>]) {
        assert_eq!(vs.len(), dsts.len());
        let total: usize = vs.iter().map(|v| v.len()).sum();
        self.transfer(total * 8);
        for (v, dst) in vs.iter().zip(dsts.iter_mut()) {
            dst.clear();
            dst.extend_from_slice(v);
        }
    }

    /// `cublasGetMatrix` of a whole crowd: one PCIe transaction, one
    /// download ordinal. Scheduled transfer corruption poisons exactly one
    /// element of the stacked payload (landing in one walker's image), the
    /// same observable granularity as the solo path — callers on the
    /// recovery path must scan each received matrix.
    pub fn get_matrix_stack_into(&mut self, ds: &[&DMatrix], outs: &mut [&mut Matrix]) {
        assert_eq!(ds.len(), outs.len());
        let mut total = 0usize;
        for (d, out) in ds.iter().zip(outs.iter()) {
            assert!(d.m.nrows() == out.nrows() && d.m.ncols() == out.ncols());
            total += d.m.as_slice().len();
        }
        self.transfer(total * 8);
        self.downloads += 1;
        let corrupt = self.faults.take_download_fault(self.downloads);
        for (d, out) in ds.iter().zip(outs.iter_mut()) {
            out.as_mut_slice().copy_from_slice(d.m.as_slice());
        }
        if corrupt && total > 0 {
            let mut i = self.faults.pick_index(total);
            for out in outs.iter_mut() {
                let data = out.as_mut_slice();
                if i < data.len() {
                    data[i] = f64::NAN;
                    break;
                }
                i -= data.len();
            }
            self.faults_injected += 1;
        }
    }

    /// Allocates a stack of B uninitialised device matrices (arena-charged
    /// individually; allocation has no PCIe or launch cost to amortise).
    pub fn try_alloc_stack(
        &mut self,
        nrows: usize,
        ncols: usize,
        count: usize,
    ) -> Result<Vec<DMatrix>, DeviceError> {
        (0..count).map(|_| self.try_alloc(nrows, ncols)).collect()
    }

    /// Fallible `cublasDgemmStridedBatched`: `C_e = alpha·A_e·B_e + beta·C_e`
    /// for every entry of the crowd. Cost model: **one** kernel launch (the
    /// batched driver submits the whole stack) plus B× the solo compute
    /// time; per-entry completion still counts one compute op each, so
    /// bit-flip fault ordinals see every entry. Numerics delegate to the
    /// host batched kernel, which is bit-identical per entry to solo
    /// [`Device::try_dgemm`].
    pub fn try_dgemm_strided_batched(
        &mut self,
        alpha: f64,
        a: DGemmOperand<'_>,
        b: DGemmOperand<'_>,
        beta: f64,
        cs: &mut [DMatrix],
    ) -> Result<(), DeviceError> {
        if cs.is_empty() {
            return Ok(());
        }
        self.try_launch("dgemm_strided_batched")?;
        let (m, k) = (a.entry(0).nrows(), a.entry(0).ncols());
        let n = b.entry(0).ncols();
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let order = ((m * n * k) as f64).cbrt() as usize;
        let per_entry = flops / (self.spec.gemm_rate(order) * 1e9);
        self.clock.advance(per_entry * cs.len() as f64);

        let a_each: Vec<&Matrix>;
        let a_op = match a {
            DGemmOperand::Shared(d) => linalg::GemmOperand::Shared(&d.m),
            DGemmOperand::Each(ds) => {
                a_each = ds.iter().map(|d| &d.m).collect();
                linalg::GemmOperand::Each(&a_each)
            }
        };
        let b_each: Vec<&Matrix>;
        let b_op = match b {
            DGemmOperand::Shared(d) => linalg::GemmOperand::Shared(&d.m),
            DGemmOperand::Each(ds) => {
                b_each = ds.iter().map(|d| &d.m).collect();
                linalg::GemmOperand::Each(&b_each)
            }
        };
        let mut c_refs: Vec<&mut Matrix> = cs.iter_mut().map(|c| &mut c.m).collect();
        linalg::dgemm_strided_batched(
            alpha,
            a_op,
            Op::NoTrans,
            b_op,
            Op::NoTrans,
            beta,
            &mut c_refs,
        );
        for c in cs.iter_mut() {
            self.finish_compute(&mut c.m);
        }
        Ok(())
    }

    /// Batched Algorithm 5 row scaling: one launch services the whole
    /// crowd, streaming B matrices at full bandwidth. `a_e ← diag(v_e)·a_e`.
    pub fn try_scale_rows_kernel_batched(
        &mut self,
        vs: &[Vec<f64>],
        as_: &mut [DMatrix],
    ) -> Result<(), DeviceError> {
        assert_eq!(vs.len(), as_.len());
        if as_.is_empty() {
            return Ok(());
        }
        for (v, a) in vs.iter().zip(as_.iter()) {
            assert_eq!(v.len(), a.m.nrows());
        }
        self.try_launch("scale_rows_kernel_batched")?;
        let total: usize = as_.iter().map(|a| a.m.as_slice().len()).sum();
        self.clock
            .advance((total * 16) as f64 / (self.spec.mem_bandwidth_gbs * 1e9));
        for (v, a) in vs.iter().zip(as_.iter_mut()) {
            scale::row_scale(v, &mut a.m);
            self.finish_compute(&mut a.m);
        }
        Ok(())
    }

    /// Batched Algorithm 5 column scaling: one launch per crowd.
    /// `a_e ← a_e·diag(v_e)`.
    pub fn try_scale_cols_kernel_batched(
        &mut self,
        vs: &[Vec<f64>],
        as_: &mut [DMatrix],
    ) -> Result<(), DeviceError> {
        assert_eq!(vs.len(), as_.len());
        if as_.is_empty() {
            return Ok(());
        }
        for (v, a) in vs.iter().zip(as_.iter()) {
            assert_eq!(v.len(), a.m.ncols());
        }
        self.try_launch("scale_cols_kernel_batched")?;
        let total: usize = as_.iter().map(|a| a.m.as_slice().len()).sum();
        self.clock
            .advance((total * 16) as f64 / (self.spec.mem_bandwidth_gbs * 1e9));
        for (v, a) in vs.iter().zip(as_.iter_mut()) {
            scale::col_scale(v, &mut a.m);
            self.finish_compute(&mut a.m);
        }
        Ok(())
    }

    /// Fallible [`Device::wrap_scale_kernel`].
    pub fn try_wrap_scale_kernel(&mut self, v: &[f64], g: &mut DMatrix) -> Result<(), DeviceError> {
        assert_eq!(v.len(), g.m.nrows());
        self.try_launch("wrap_scale_kernel")?;
        let bytes = (g.m.as_slice().len() * 16) as f64;
        // Texture-cached gather: ~70 % of streaming bandwidth.
        self.clock
            .advance(bytes / (self.spec.mem_bandwidth_gbs * 0.7 * 1e9));
        let vinv: Vec<f64> = v.iter().map(|&x| 1.0 / x).collect();
        scale::row_col_scale(v, &vinv, &mut g.m);
        self.finish_compute(&mut g.m);
        Ok(())
    }

    /// Algorithm 7: custom two-sided scaling kernel
    /// `G ← diag(v)·G·diag(v)⁻¹` — one launch; the column factor arrives via
    /// the texture cache, modelled as a modest bandwidth penalty.
    pub fn wrap_scale_kernel(&mut self, v: &[f64], g: &mut DMatrix) {
        Self::infallible(self.try_wrap_scale_kernel(v, g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::Rng;

    fn dev() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    #[test]
    fn transfers_advance_clock_and_counters() {
        let mut d = dev();
        let m = Matrix::identity(64);
        let dm = d.set_matrix(&m);
        assert!(d.elapsed() > 0.0);
        assert_eq!(d.bytes_transferred(), 64 * 64 * 8);
        let back = d.get_matrix(&dm);
        assert_eq!(back, m);
        assert_eq!(d.bytes_transferred(), 2 * 64 * 64 * 8);
        assert_eq!(d.downloads(), 1);
    }

    #[test]
    fn dgemm_matches_host_bitwise() {
        let mut rng = Rng::new(1);
        let a = Matrix::random(40, 40, &mut rng);
        let b = Matrix::random(40, 40, &mut rng);
        let mut d = dev();
        let da = d.set_matrix(&a);
        let db = d.set_matrix(&b);
        let mut dc = d.alloc(40, 40);
        d.dgemm(1.0, &da, &db, 0.0, &mut dc);
        let mut host = Matrix::zeros(40, 40);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut host);
        assert_eq!(dc.host_view(), &host, "device result must be bit-identical");
    }

    #[test]
    fn gemm_rate_saturates_with_n() {
        let s = DeviceSpec::tesla_c2050();
        assert!(s.gemm_rate(64) < s.gemm_rate(512));
        assert!(s.gemm_rate(512) < s.gemm_rate(4096));
        assert!(s.gemm_rate(4096) < s.gemm_gflops);
        // Half rate at gemm_half_n.
        assert!((s.gemm_rate(128) - 0.5 * s.gemm_gflops).abs() < 1e-9);
    }

    #[test]
    fn custom_kernel_faster_than_cublas_row_loop() {
        // The Algorithm 5 kernel must beat Algorithm 4's per-row dscal loop
        // (the paper's §VI-A point).
        let mut rng = Rng::new(2);
        let a = Matrix::random(256, 256, &mut rng);
        let v: Vec<f64> = (0..256).map(|i| 1.0 + i as f64 * 1e-3).collect();

        let mut d1 = dev();
        let mut m1 = d1.set_matrix(&a);
        d1.reset_clock();
        d1.scale_rows_cublas(&v, &mut m1);
        let slow = d1.elapsed();

        let mut d2 = dev();
        let mut m2 = d2.set_matrix(&a);
        d2.reset_clock();
        d2.scale_rows_kernel(&v, &mut m2);
        let fast = d2.elapsed();

        assert!(fast < slow / 5.0, "kernel {fast} vs row-loop {slow}");
        assert_eq!(m1.host_view(), m2.host_view(), "same numerics");
    }

    #[test]
    fn wrap_scale_kernel_correct() {
        let mut rng = Rng::new(3);
        let g = Matrix::random(32, 32, &mut rng);
        let v: Vec<f64> = (0..32).map(|i| (0.1 * i as f64).exp()).collect();
        let mut d = dev();
        let mut dg = d.set_matrix(&g);
        d.wrap_scale_kernel(&v, &mut dg);
        for i in 0..32 {
            for j in 0..32 {
                let expect = v[i] * g[(i, j)] / v[j];
                assert!((dg.host_view()[(i, j)] - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn dcopy_duplicates_and_costs() {
        let mut d = dev();
        let m = d.set_matrix(&Matrix::identity(16));
        let t0 = d.elapsed();
        let c = d.dcopy(&m);
        assert!(d.elapsed() > t0);
        assert_eq!(c.host_view(), m.host_view());
    }

    #[test]
    fn kernel_launches_counted() {
        let mut d = dev();
        let mut m = d.set_matrix(&Matrix::identity(8));
        let v = vec![2.0; 8];
        d.scale_rows_cublas(&v, &mut m); // 8 launches
        d.scale_rows_kernel(&v, &mut m); // 1 launch
        assert_eq!(d.kernels_launched(), 9);
    }

    #[test]
    fn host_spec_rates_ordered() {
        let h = HostSpec::nehalem_2s4c();
        // The Figure 1 ordering: GEMM > QR > QRP.
        assert!(h.qr_fraction > h.qrp_fraction);
        assert!(h.gemm_rate(1024) > h.gemm_rate(64));
        let t_gemm = h.level3_time(1e9, 512, 1.0);
        let t_qr = h.level3_time(1e9, 512, h.qr_fraction);
        let t_qrp = h.level3_time(1e9, 512, h.qrp_fraction);
        assert!(t_gemm < t_qr && t_qr < t_qrp);
    }

    #[test]
    fn unarmed_device_is_bit_and_cost_identical() {
        // A device that never arms a plan must behave exactly like one that
        // arms the empty plan: same numerics, clock, and counters.
        let mut rng = Rng::new(4);
        let a = Matrix::random(24, 24, &mut rng);
        let run = |armed: bool| {
            let mut d = dev();
            if armed {
                d.arm_faults(FaultPlan::new());
            }
            let da = d.set_matrix(&a);
            let mut t = d.dcopy(&da);
            let v = vec![1.5; 24];
            d.scale_rows_kernel(&v, &mut t);
            let mut c = d.alloc(24, 24);
            d.dgemm(1.0, &da, &t, 0.0, &mut c);
            (d.get_matrix(&c), d.elapsed(), d.kernels_launched())
        };
        let (m1, t1, k1) = run(false);
        let (m2, t2, k2) = run(true);
        assert_eq!(m1, m2);
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(k1, k2);
    }

    #[test]
    fn scheduled_download_corruption_poisons_one_element() {
        let mut d = dev();
        d.arm_faults(FaultPlan::new().with_seed(11).corrupt_transfer(2));
        let m = Matrix::identity(8);
        let dm = d.set_matrix(&m);
        assert_eq!(d.get_matrix(&dm), m, "download #1 is clean");
        let bad = d.get_matrix(&dm);
        let nans = bad.as_slice().iter().filter(|x| x.is_nan()).count();
        assert_eq!(nans, 1, "download #2 carries exactly one NaN");
        assert_eq!(d.faults_injected(), 1);
        assert_eq!(d.get_matrix(&dm), m, "one-shot: download #3 clean again");
    }

    #[test]
    fn scheduled_launch_failure_fires_then_clears() {
        let mut d = dev();
        d.arm_faults(FaultPlan::new().fail_launch(2));
        let da = d.set_matrix(&Matrix::identity(8));
        let db = d.set_matrix(&Matrix::identity(8));
        let mut c = d.alloc(8, 8);
        assert!(d.try_dgemm(1.0, &da, &db, 0.0, &mut c).is_ok());
        let err = d.try_dgemm(1.0, &da, &db, 0.0, &mut c).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::KernelLaunchFailure {
                kernel: "dgemm",
                launch_index: 2
            }
        ));
        assert!(d.try_dgemm(1.0, &da, &db, 0.0, &mut c).is_ok(), "retry ok");
        assert_eq!(d.faults_injected(), 1);
    }

    #[test]
    fn scheduled_hang_wedge_and_sick_window_fire_at_launch() {
        let mut d = dev();
        d.arm_faults(
            FaultPlan::new()
                .hang_at_launch(1)
                .wedge_at_launch(2)
                .sick_window(3, 4),
        );
        let da = d.set_matrix(&Matrix::identity(8));
        let db = d.set_matrix(&Matrix::identity(8));
        let mut c = d.alloc(8, 8);
        let e1 = d.try_dgemm(1.0, &da, &db, 0.0, &mut c).unwrap_err();
        assert!(
            matches!(e1, DeviceError::Hang { wedged: false, .. }),
            "{e1}"
        );
        let e2 = d.try_dgemm(1.0, &da, &db, 0.0, &mut c).unwrap_err();
        assert!(matches!(e2, DeviceError::Hang { wedged: true, .. }), "{e2}");
        let e3 = d.try_dgemm(1.0, &da, &db, 0.0, &mut c).unwrap_err();
        assert!(matches!(e3, DeviceError::SickDevice { .. }), "{e3}");
        let e4 = d.try_dgemm(1.0, &da, &db, 0.0, &mut c).unwrap_err();
        assert!(
            matches!(e4, DeviceError::SickDevice { .. }),
            "window persists"
        );
        assert!(
            d.try_dgemm(1.0, &da, &db, 0.0, &mut c).is_ok(),
            "window over"
        );
        assert_eq!(d.faults_injected(), 4);
    }

    #[test]
    fn slow_launch_inflates_clock_only() {
        // Latency inflation on the same op as silent corruption: the op is
        // slow AND the download is poisoned, but the computed numerics are
        // untouched — fail-slow composes with fail-silent.
        let mut rng = Rng::new(6);
        let a = Matrix::random(16, 16, &mut rng);
        let run = |plan: Option<FaultPlan>| {
            let mut d = dev();
            if let Some(p) = plan {
                d.arm_faults(p);
            }
            let da = d.set_matrix(&a);
            let mut c = d.alloc(16, 16);
            d.try_dgemm(1.0, &da, &da, 0.0, &mut c).unwrap();
            let out = d.get_matrix(&c);
            (out, d.elapsed())
        };
        let (clean, t_clean) = run(None);
        let plan = FaultPlan::new()
            .with_seed(3)
            .slow_launch(1, 64.0)
            .corrupt_transfer(1);
        let (slow, t_slow) = run(Some(plan));
        assert!(t_slow > t_clean, "inflation must show in the clock");
        let spec = DeviceSpec::tesla_c2050();
        assert!(
            (t_slow - t_clean - 63.0 * spec.kernel_launch_s).abs() < 1e-12,
            "excess is exactly (factor-1) x launch overhead"
        );
        let nans = slow.as_slice().iter().filter(|x| x.is_nan()).count();
        assert_eq!(nans, 1, "corruption fired on the same op");
        let agree = clean
            .as_slice()
            .iter()
            .zip(slow.as_slice())
            .filter(|(x, y)| x.to_bits() == y.to_bits())
            .count();
        assert_eq!(agree, 16 * 16 - 1, "all other elements bit-identical");
    }

    #[test]
    fn scheduled_oom_and_arena_limit() {
        let mut d = dev().with_arena_limit(3 * 8 * 8 * 8);
        d.arm_faults(FaultPlan::new().oom_at_alloc(2));
        assert!(d.try_alloc(8, 8).is_ok());
        let err = d.try_alloc(8, 8).unwrap_err();
        assert!(matches!(err, DeviceError::ArenaExhausted { .. }));
        // Injected OOMs charge nothing; two more real allocations fit.
        assert!(d.try_alloc(8, 8).is_ok());
        assert!(d.try_alloc(8, 8).is_ok());
        // Now the configured limit itself bites.
        assert!(d.try_alloc(8, 8).is_err());
        d.reset_arena();
        assert!(d.try_alloc(8, 8).is_ok(), "arena reset frees the charge");
    }

    #[test]
    fn scheduled_bit_flip_is_finite_and_wrong() {
        let mut rng = Rng::new(5);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let mut clean = dev();
        let (ca, cb) = (clean.set_matrix(&a), clean.set_matrix(&b));
        let mut cc = clean.alloc(16, 16);
        clean.dgemm(1.0, &ca, &cb, 0.0, &mut cc);

        let mut d = dev();
        d.arm_faults(FaultPlan::new().with_seed(9).flip_bit_after_op(1));
        let (da, db) = (d.set_matrix(&a), d.set_matrix(&b));
        let mut dc = d.alloc(16, 16);
        d.dgemm(1.0, &da, &db, 0.0, &mut dc);
        assert_eq!(d.faults_injected(), 1);

        let flipped: Vec<usize> = (0..16 * 16)
            .filter(|&i| dc.host_view().as_slice()[i] != cc.host_view().as_slice()[i])
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one element differs");
        let v = dc.host_view().as_slice()[flipped[0]];
        assert!(v.is_finite(), "bit flip stays finite: {v}");
    }

    #[test]
    #[should_panic(expected = "device fault outside fault-aware path")]
    fn infallible_op_panics_on_armed_fault() {
        let mut d = dev();
        d.arm_faults(FaultPlan::new().fail_launch(1));
        let src = d.set_matrix(&Matrix::identity(4));
        let _ = d.dcopy(&src);
    }
}
