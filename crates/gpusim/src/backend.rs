//! The simulated device as a sweep [`ComputeBackend`].
//!
//! Wraps a [`Device`] so `dqmc::sweep` can route its two heavy kernels —
//! cluster products and wraps — through the accelerator model. The resident
//! operands `e^{−ΔτK}` / `e^{+ΔτK}` are uploaded lazily on first use and
//! **dropped on [`ComputeBackend::notify_fault`]**: the recovery layer calls
//! that before every retry, so a retry re-uploads clean copies — which is
//! exactly how a real driver heals a corrupted resident after a fault.
//!
//! Fault surfacing follows the split in [`crate::faults`]: device-class
//! failures (launch, arena) come back as `Err(BackendFault::device)`; silent
//! transfer corruption returns `Ok` with NaNs in the data, which the core's
//! taint scans (in `ClusterCache::get_with` and the wrap path) classify as
//! taint-class faults.

use crate::cluster::{try_cluster_custom_kernel, upload_expk};
use crate::device::{DMatrix, Device, DeviceSpec};
use crate::faults::DeviceError;
use crate::wrap::{try_wrap_on_device_bitexact_into, try_wrap_on_device_into, upload_expk_inv};
use dqmc::{BMatrixFactory, BackendFault, ComputeBackend, HsField, Spin};
use linalg::Matrix;

/// Classifies a [`DeviceError`] into the core fault taxonomy: hangs and
/// sick-window failures indict the *device* (they must escape the in-core
/// recovery ladder so the scheduler can quarantine the slot); everything
/// else is an ordinary device-class fault the ladder handles in place.
pub(crate) fn classify(e: DeviceError) -> BackendFault {
    if e.is_sick() {
        BackendFault::sick(e.to_string(), e.is_wedged())
    } else {
        BackendFault::device(e.to_string())
    }
}

/// A [`ComputeBackend`] running cluster products and wraps on the simulated
/// accelerator.
#[derive(Debug)]
pub struct DeviceBackend {
    dev: Device,
    expk: Option<DMatrix>,
    expk_inv: Option<DMatrix>,
    bitexact_wrap: bool,
}

impl DeviceBackend {
    /// Wraps an existing device (e.g. one with an armed fault plan).
    pub fn new(dev: Device) -> Self {
        DeviceBackend {
            dev,
            expk: None,
            expk_inv: None,
            bitexact_wrap: false,
        }
    }

    /// Convenience: a fresh device from a spec.
    pub fn with_spec(spec: DeviceSpec) -> Self {
        DeviceBackend::new(Device::new(spec))
    }

    /// Switches the wrap path to deterministic-execution mode
    /// ([`crate::wrap::try_wrap_on_device_bitexact_into`]): results become
    /// bit-identical to the host backend at the cost of one extra kernel
    /// launch per wrap. Schedulers that treat device placement as an
    /// invisible optimisation run with this on; the fused Algorithm 7 path
    /// (default off) is the paper's throughput configuration.
    pub fn with_bitexact_wrap(mut self, on: bool) -> Self {
        self.bitexact_wrap = on;
        self
    }

    /// Whether the deterministic wrap path is active.
    pub fn bitexact_wrap(&self) -> bool {
        self.bitexact_wrap
    }

    /// The underlying device (clock, counters, fault tally).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable device access — for arming a [`crate::FaultPlan`] mid-run.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.dev
    }
}

impl ComputeBackend for DeviceBackend {
    fn name(&self) -> &str {
        self.dev.spec().name
    }

    fn cluster(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Matrix, BackendFault> {
        let expk = self
            .expk
            .get_or_insert_with(|| upload_expk(&mut self.dev, fac));
        try_cluster_custom_kernel(&mut self.dev, expk, fac, h, lo, hi, spin).map_err(classify)
    }

    fn wrap_into(
        &mut self,
        fac: &BMatrixFactory,
        h: &HsField,
        l: usize,
        spin: Spin,
        g: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), BackendFault> {
        let expk = self
            .expk
            .get_or_insert_with(|| upload_expk(&mut self.dev, fac));
        let expk_inv = self
            .expk_inv
            .get_or_insert_with(|| upload_expk_inv(&mut self.dev, fac));
        if self.bitexact_wrap {
            try_wrap_on_device_bitexact_into(&mut self.dev, expk, expk_inv, fac, h, l, spin, g, out)
        } else {
            try_wrap_on_device_into(&mut self.dev, expk, expk_inv, fac, h, l, spin, g, out)
        }
        .map_err(classify)
    }

    fn notify_fault(&mut self) {
        // Drop the residents and the scratch-arena charge: the retry starts
        // from a clean device state and re-uploads the operands.
        self.expk = None;
        self.expk_inv = None;
        self.dev.reset_arena();
    }

    fn device_seconds(&self) -> f64 {
        self.dev.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use dqmc::{HostBackend, ModelParams};
    use lattice::Lattice;

    fn setup() -> (BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(3, 3, 1.0), 4.0, 0.0, 0.125, 12);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(21);
        let h = HsField::random(9, 12, &mut rng);
        (fac, h)
    }

    #[test]
    fn device_backend_matches_host_backend() {
        let (fac, h) = setup();
        let mut host = HostBackend;
        let mut devb = DeviceBackend::with_spec(DeviceSpec::tesla_c2050());
        let a = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        let b = host.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-12 * b.max_abs().max(1.0));

        let g = dqmc::greens::greens_naive(&fac, &h, Spin::Up).g;
        let mut out_d = Matrix::zeros(9, 9);
        let mut out_h = Matrix::zeros(9, 9);
        devb.wrap_into(&fac, &h, 0, Spin::Up, &g, &mut out_d)
            .unwrap();
        host.wrap_into(&fac, &h, 0, Spin::Up, &g, &mut out_h)
            .unwrap();
        assert!(out_d.max_abs_diff(&out_h) < 1e-12);
    }

    #[test]
    fn bitexact_backend_makes_placement_unobservable() {
        // The sweep scheduler's determinism contract: a full simulation run
        // through the deterministic-mode device backend must be
        // bit-identical to the host run — Green's functions AND observables
        // — so host fallback under device-pool pressure cannot change
        // physics.
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        let params = dqmc::SimParams::new(model)
            .with_sweeps(4, 8)
            .with_seed(33)
            .with_cluster_size(4)
            .with_bin_size(2);
        let mut host_sim = dqmc::Simulation::new(params.clone());
        host_sim.run();
        let mut dev_sim = dqmc::Simulation::new(params).with_backend(Box::new(
            DeviceBackend::with_spec(DeviceSpec::tesla_c2050()).with_bitexact_wrap(true),
        ));
        dev_sim.run();
        assert_eq!(
            host_sim
                .greens(dqmc::Spin::Up)
                .max_abs_diff(dev_sim.greens(dqmc::Spin::Up)),
            0.0
        );
        let h = host_sim.observables().jackknife_scalars();
        let d = dev_sim.observables().jackknife_scalars();
        assert_eq!(h.double_occ, d.double_occ);
        assert_eq!(h.kinetic, d.kinetic);
        assert_eq!(h.saf, d.saf);
    }

    #[test]
    fn launch_failure_surfaces_as_device_fault_and_retry_heals() {
        let (fac, h) = setup();
        let mut devb = DeviceBackend::with_spec(DeviceSpec::tesla_c2050());
        // Launch #2 is the first scale kernel inside the cluster product.
        devb.device_mut()
            .arm_faults(FaultPlan::new().fail_launch(2));
        let err = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap_err();
        assert_eq!(err.kind, dqmc::FaultKind::Device);
        assert!(
            err.detail.contains("kernel launch failure"),
            "{}",
            err.detail
        );
        devb.notify_fault();
        let retried = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        let want = fac.cluster(&h, 0, 6, Spin::Up);
        assert!(retried.max_abs_diff(&want) < 1e-12 * want.max_abs().max(1.0));
        assert_eq!(devb.device().faults_injected(), 1);
    }

    #[test]
    fn hang_and_sick_window_classify_as_sick_faults() {
        let (fac, h) = setup();
        let mut devb = DeviceBackend::with_spec(DeviceSpec::tesla_c2050());
        devb.device_mut().arm_faults(
            FaultPlan::new()
                .hang_at_launch(1)
                .wedge_at_launch(2)
                .sick_window(3, 3),
        );
        let soft = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap_err();
        assert_eq!(soft.kind, dqmc::FaultKind::Sick, "{soft}");
        assert!(soft.is_sick());
        devb.notify_fault();
        let hard = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap_err();
        assert_eq!(hard.kind, dqmc::FaultKind::Wedged, "{hard}");
        devb.notify_fault();
        let sick = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap_err();
        assert_eq!(sick.kind, dqmc::FaultKind::Sick, "{sick}");
        assert!(sick.detail.contains("sick window"), "{}", sick.detail);
        devb.notify_fault();
        assert!(
            devb.cluster(&fac, &h, 0, 6, Spin::Up).is_ok(),
            "past the storm the device works again"
        );
    }

    #[test]
    fn corrupted_download_returns_tainted_ok() {
        let (fac, h) = setup();
        let mut devb = DeviceBackend::with_spec(DeviceSpec::tesla_c2050());
        // Download #1 is the cluster product coming back.
        devb.device_mut()
            .arm_faults(FaultPlan::new().with_seed(3).corrupt_transfer(1));
        let tainted = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        assert!(
            linalg::check::first_non_finite(tainted.as_slice()).is_some(),
            "corruption must be visible to the caller's scan"
        );
        devb.notify_fault();
        let clean = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        assert!(linalg::check::first_non_finite(clean.as_slice()).is_none());
    }

    #[test]
    fn notify_fault_drops_residents_for_reupload() {
        let (fac, h) = setup();
        let mut devb = DeviceBackend::with_spec(DeviceSpec::tesla_c2050());
        let _ = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        let before = devb.device().bytes_transferred();
        let _ = devb.cluster(&fac, &h, 6, 12, Spin::Up).unwrap();
        let steady = devb.device().bytes_transferred() - before;
        devb.notify_fault();
        let before = devb.device().bytes_transferred();
        let _ = devb.cluster(&fac, &h, 0, 6, Spin::Up).unwrap();
        let after_fault = devb.device().bytes_transferred() - before;
        // The post-fault call pays the expk re-upload on top of steady state.
        assert_eq!(after_fault, steady + 9 * 9 * 8);
    }
}
