//! Device-pool leasing: multiplexing simulated accelerators between jobs,
//! with a per-slot health ledger and circuit breaker.
//!
//! A sweep campaign has many more jobs than accelerators. The pool tracks a
//! fixed set of device *slots*; a worker holding a job asks for a lease,
//! and either gets exclusive use of one slot (returned automatically when
//! the [`DeviceLease`] drops — including on a panic unwinding through the
//! worker) or is told to fall back to the host path. Leases carry no device
//! state between jobs: each job builds a fresh [`DeviceBackend`] from the
//! pool's spec, exactly as a driver hands a clean context to each process,
//! so one job's fault history can never leak into the next job's numerics.
//!
//! # Health ledger and circuit breaker
//!
//! Real fleets lose devices to *intermittent* sickness, not clean crashes:
//! a slot that hangs one job in three will be re-leased forever unless
//! someone keeps score. Every slot carries a sliding window of classified
//! outcomes reported by the scheduler ([`DevicePool::report_failure`] /
//! [`DevicePool::report_success`]). When the window accumulates
//! [`BreakerPolicy::strikes`] sick reports the breaker **opens**: the slot
//! is quarantined and skipped by leasing until a logical re-admission
//! deadline (counted in lease requests — never wall time, so every
//! decision replays identically). The first grant after the deadline is a
//! **probation probe**: success re-admits the slot, another sick failure
//! re-quarantines it with exponentially doubled backoff.
//!
//! Slots can also carry a scripted *sick profile* ([`DevicePool::
//! set_slot_profile`]) merged into every job plan armed on that slot —
//! this is how the chaos tier scripts "device 2 is flaky" as a property of
//! the device rather than of whichever job lands on it. Non-persistent
//! profiles are cleared when the breaker opens (the device recovers while
//! resting), so the open → probation → re-admit cycle closes
//! deterministically.
//!
//! The lease/release path is allocation-free (the lint tag below is
//! enforced by `cargo xtask lint`): the free-slot stack and health ledger
//! are pre-sized to the pool's capacity, so `try_lease` is two `Mutex`
//! locks plus a `Vec::remove`, and release is a push into reserved
//! capacity. Workers hit this path on every scheduling quantum.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::backend::DeviceBackend;
use crate::device::{Device, DeviceSpec};
use crate::faults::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
// Poison recovery via util::relock is sound here: pool invariants (slot
// ids, counters) are updated atomically under the lock, so the data is
// consistent even when a worker panicked while holding it.
//
// Lock order (declared in lock_order.toml): `free` before `health`,
// never the reverse — see `try_lease_excluding`.
use util::sync::{relock, Mutex};

/// Circuit-breaker parameters, all in logical units.
#[derive(Clone, Copy, Debug)]
pub struct BreakerPolicy {
    /// Sick reports within the sliding window that open the breaker.
    pub strikes: u32,
    /// Sliding-window length, in classified reports per slot (≤ 64).
    pub window: u32,
    /// Initial quarantine length, in pool lease *requests* (the pool's
    /// logical clock); doubled on every failed probation probe.
    pub probation_backoff: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            strikes: 3,
            window: 8,
            probation_backoff: 4,
        }
    }
}

/// Lifecycle of one slot in the breaker state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Leasable; outcomes accumulate in the sliding window.
    Healthy,
    /// Skipped by leasing until the logical clock reaches `eligible_at`.
    Quarantined {
        /// Lease-clock tick at which a probation probe may go out.
        eligible_at: u64,
        /// Backoff that produced this quarantine (doubles on re-open).
        backoff: u64,
    },
    /// A probation probe is out; the next report decides the slot's fate.
    Probation,
}

/// Per-slot ledger entry.
#[derive(Debug)]
struct SlotHealth {
    state: SlotState,
    /// Sliding window of classified reports, bit 0 = newest, 1 = sick.
    recent: u64,
    recent_len: u32,
    sick_reports: u64,
    quarantines: u64,
    probes: u64,
    readmissions: u64,
    profile: Option<FaultPlan>,
    profile_persistent: bool,
}

impl SlotHealth {
    fn new() -> Self {
        SlotHealth {
            state: SlotState::Healthy,
            recent: 0,
            recent_len: 0,
            sick_reports: 0,
            quarantines: 0,
            probes: 0,
            readmissions: 0,
            profile: None,
            profile_persistent: false,
        }
    }

    fn push_report(&mut self, sick: bool, window: u32) {
        self.recent = (self.recent << 1) | u64::from(sick);
        self.recent_len = (self.recent_len + 1).min(window);
    }

    fn strikes_in_window(&self, window: u32) -> u32 {
        let w = window.min(64).min(self.recent_len);
        if w == 0 {
            return 0;
        }
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        (self.recent & mask).count_ones()
    }
}

/// What the breaker decided in response to a classified report — the
/// scheduler turns these into trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthDecision {
    /// Nothing changed.
    None,
    /// The breaker opened: the slot entered quarantine.
    Opened {
        /// The quarantined slot.
        slot: usize,
        /// Lease-clock ticks until a probation probe may go out.
        backoff: u64,
    },
    /// A probation probe failed: quarantine renewed with doubled backoff.
    Reopened {
        /// The re-quarantined slot.
        slot: usize,
        /// The doubled backoff now in force.
        backoff: u64,
    },
    /// A probation probe succeeded: the slot is healthy again.
    Readmitted {
        /// The re-admitted slot.
        slot: usize,
    },
}

/// A point-in-time view of one slot's ledger, for reports and diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct SlotHealthSnapshot {
    /// The slot id.
    pub slot: usize,
    /// `"healthy"`, `"quarantined"`, or `"probation"`.
    pub state: &'static str,
    /// Sick-classified failure reports over the pool's lifetime.
    pub sick_reports: u64,
    /// Times the breaker opened (including probe re-opens).
    pub quarantines: u64,
    /// Probation probes granted.
    pub probes: u64,
    /// Probes that succeeded and re-admitted the slot.
    pub readmissions: u64,
}

#[derive(Debug)]
struct PoolInner {
    spec: DeviceSpec,
    /// Stack of free slot ids; capacity reserved for every slot up front.
    free: Mutex<Vec<usize>>,
    health: Mutex<Vec<SlotHealth>>,
    policy: BreakerPolicy,
    total: usize,
    /// Logical clock: total lease *requests* (grants and misses alike).
    lease_requests: AtomicU64,
    leases_granted: AtomicU64,
    lease_misses: AtomicU64,
    quarantine_skips: AtomicU64,
}

/// A fixed pool of simulated accelerator slots shared by sweep workers.
///
/// Cloning the pool clones the *handle*: all clones share the same slots.
#[derive(Clone, Debug)]
pub struct DevicePool {
    inner: Arc<PoolInner>,
}

impl DevicePool {
    /// A pool of `count` devices of the given spec with the default
    /// breaker policy. `count == 0` is a valid "no accelerators" pool:
    /// every lease request misses and jobs run on the host — scheduling
    /// still works, only slower.
    pub fn new(spec: DeviceSpec, count: usize) -> Self {
        Self::with_policy(spec, count, BreakerPolicy::default())
    }

    /// A pool with an explicit circuit-breaker policy.
    // dqmc-lint: allow(hot_alloc) — construction happens once per sweep;
    // the free stack and ledger are sized here so the lease path never
    // reallocates.
    pub fn with_policy(spec: DeviceSpec, count: usize, policy: BreakerPolicy) -> Self {
        assert!(policy.strikes >= 1, "breaker needs at least one strike");
        assert!(
            policy.window >= policy.strikes && policy.window <= 64,
            "breaker window must hold the strikes and fit the bitmask"
        );
        let mut free = Vec::with_capacity(count);
        free.extend(0..count);
        let mut health = Vec::with_capacity(count);
        health.extend((0..count).map(|_| SlotHealth::new()));
        DevicePool {
            inner: Arc::new(PoolInner {
                spec,
                free: Mutex::new(free),
                health: Mutex::new(health),
                policy,
                total: count,
                lease_requests: AtomicU64::new(0),
                leases_granted: AtomicU64::new(0),
                lease_misses: AtomicU64::new(0),
                quarantine_skips: AtomicU64::new(0),
            }),
        }
    }

    /// Attempts to lease a device slot. `None` means every slot is busy,
    /// quarantined, or excluded (or the pool is empty) and the caller
    /// should use the host backend — the guaranteed-progress path.
    pub fn try_lease(&self) -> Option<DeviceLease> {
        self.try_lease_excluding(&[])
    }

    /// [`DevicePool::try_lease`] that additionally skips `excluded` slots —
    /// the scheduler passes a job's suspect-device list so a requeued job
    /// is never handed back the device that just failed it.
    ///
    /// Each call ticks the pool's logical lease clock. Quarantined slots
    /// whose re-admission deadline has passed are granted as *probation
    /// probes* ([`DeviceLease::is_probe`]); the probe's classified outcome
    /// (via `report_success` / `report_failure`) decides re-admission.
    pub fn try_lease_excluding(&self, excluded: &[usize]) -> Option<DeviceLease> {
        let now = self.inner.lease_requests.fetch_add(1, Ordering::Relaxed) + 1;
        let mut free = relock(self.inner.free.lock());
        let mut health = relock(self.inner.health.lock());
        // Scan from the top of the stack (normal pop order) so the
        // healthy-path grant sequence is unchanged from a breaker-free pool.
        for i in (0..free.len()).rev() {
            let slot = free[i];
            if excluded.contains(&slot) {
                continue;
            }
            let probe = match health[slot].state {
                SlotState::Healthy => false,
                SlotState::Quarantined { eligible_at, .. } => {
                    if now < eligible_at {
                        self.inner.quarantine_skips.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    health[slot].state = SlotState::Probation;
                    health[slot].probes += 1;
                    true
                }
                // A probe lease for this slot is already out, so the slot
                // cannot also be on the free stack; defensive skip.
                SlotState::Probation => continue,
            };
            free.remove(i);
            self.inner.leases_granted.fetch_add(1, Ordering::Relaxed);
            return Some(DeviceLease {
                slot,
                probe,
                inner: Arc::clone(&self.inner),
            });
        }
        self.inner.lease_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a classified failure of a job that ran on `slot`. Only
    /// `sick == true` reports (the `DeviceSick` taxonomy class) count
    /// toward opening the breaker; other failures are logged in the window
    /// without indicting the device.
    pub fn report_failure(&self, slot: usize, sick: bool) -> HealthDecision {
        let policy = self.inner.policy;
        let mut health = relock(self.inner.health.lock());
        let h = &mut health[slot];
        if sick {
            h.sick_reports += 1;
        }
        match h.state {
            SlotState::Probation if sick => {
                // Failed probe: rest again with exponentially grown
                // backoff — initial × 2^(quarantines so far).
                let backoff = policy
                    .probation_backoff
                    .saturating_mul(1u64 << h.quarantines.min(32));
                let now = self.inner.lease_requests.load(Ordering::Relaxed);
                h.state = SlotState::Quarantined {
                    eligible_at: now + backoff,
                    backoff,
                };
                h.quarantines += 1;
                h.recent = 0;
                h.recent_len = 0;
                HealthDecision::Reopened { slot, backoff }
            }
            SlotState::Probation => {
                // Non-sick failure on probe: the device answered; re-admit.
                h.state = SlotState::Healthy;
                h.readmissions += 1;
                h.push_report(false, policy.window);
                HealthDecision::Readmitted { slot }
            }
            SlotState::Healthy => {
                h.push_report(sick, policy.window);
                if sick && h.strikes_in_window(policy.window) >= policy.strikes {
                    let now = self.inner.lease_requests.load(Ordering::Relaxed);
                    let backoff = policy.probation_backoff;
                    h.state = SlotState::Quarantined {
                        eligible_at: now + backoff,
                        backoff,
                    };
                    h.quarantines += 1;
                    h.recent = 0;
                    h.recent_len = 0;
                    if !h.profile_persistent {
                        // The scripted sickness heals while the slot rests,
                        // so the probe runs clean — deterministically.
                        h.profile = None;
                    }
                    HealthDecision::Opened { slot, backoff }
                } else {
                    HealthDecision::None
                }
            }
            SlotState::Quarantined { .. } => HealthDecision::None,
        }
    }

    /// Records a successful job on `slot`; a success on a probation probe
    /// re-admits the slot.
    pub fn report_success(&self, slot: usize) -> HealthDecision {
        let policy = self.inner.policy;
        let mut health = relock(self.inner.health.lock());
        let h = &mut health[slot];
        match h.state {
            SlotState::Probation => {
                h.state = SlotState::Healthy;
                h.readmissions += 1;
                h.recent = 0;
                h.recent_len = 0;
                HealthDecision::Readmitted { slot }
            }
            _ => {
                h.push_report(false, policy.window);
                HealthDecision::None
            }
        }
    }

    /// Installs a scripted sick profile on `slot`: every backend built from
    /// a lease of this slot merges `plan` into the job's own fault plan.
    /// Non-persistent profiles are cleared when the breaker opens (the
    /// device recovers while quarantined); persistent ones keep failing
    /// probes and exercise the exponential backoff.
    // dqmc-lint: allow(hot_alloc) — profile installation is sweep setup,
    // not the lease hot path.
    pub fn set_slot_profile(&self, slot: usize, plan: FaultPlan, persistent: bool) {
        let mut health = relock(self.inner.health.lock());
        health[slot].profile = Some(plan);
        health[slot].profile_persistent = persistent;
    }

    /// Point-in-time health ledger, one entry per slot.
    // dqmc-lint: allow(hot_alloc) — diagnostics path, called at report
    // assembly, not per quantum.
    pub fn health_snapshot(&self) -> Vec<SlotHealthSnapshot> {
        let health = relock(self.inner.health.lock());
        health
            .iter()
            .enumerate()
            .map(|(slot, h)| SlotHealthSnapshot {
                slot,
                state: match h.state {
                    SlotState::Healthy => "healthy",
                    SlotState::Quarantined { .. } => "quarantined",
                    SlotState::Probation => "probation",
                },
                sick_reports: h.sick_reports,
                quarantines: h.quarantines,
                probes: h.probes,
                readmissions: h.readmissions,
            })
            .collect()
    }

    /// Total breaker openings across all slots (including probe re-opens).
    pub fn quarantines(&self) -> u64 {
        relock(self.inner.health.lock())
            .iter()
            .map(|h| h.quarantines)
            .sum()
    }

    /// Total probation probes granted across all slots.
    pub fn probes(&self) -> u64 {
        relock(self.inner.health.lock())
            .iter()
            .map(|h| h.probes)
            .sum()
    }

    /// Total probe successes that re-admitted a slot.
    pub fn readmissions(&self) -> u64 {
        relock(self.inner.health.lock())
            .iter()
            .map(|h| h.readmissions)
            .sum()
    }

    /// Lease attempts that skipped a slot because it was quarantined.
    pub fn quarantine_skips(&self) -> u64 {
        self.inner.quarantine_skips.load(Ordering::Relaxed)
    }

    /// Total slots in the pool.
    pub fn capacity(&self) -> usize {
        self.inner.total
    }

    /// Slots currently free (including quarantined ones: they are idle,
    /// just not leasable yet).
    pub fn available(&self) -> usize {
        relock(self.inner.free.lock()).len()
    }

    /// Leases handed out over the pool's lifetime.
    pub fn leases_granted(&self) -> u64 {
        self.inner.leases_granted.load(Ordering::Relaxed)
    }

    /// Lease requests that missed (capacity pressure or quarantine →
    /// host fallback).
    pub fn lease_misses(&self) -> u64 {
        self.inner.lease_misses.load(Ordering::Relaxed)
    }

    /// The device spec jobs will run on.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }
}

/// Exclusive use of one pool slot; the slot returns to the pool on drop.
#[derive(Debug)]
pub struct DeviceLease {
    slot: usize,
    probe: bool,
    inner: Arc<PoolInner>,
}

impl DeviceLease {
    /// The leased slot id (stable for the lease's lifetime; used for trace
    /// events and per-slot utilisation accounting).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Whether this lease is a probation probe of a quarantined slot.
    pub fn is_probe(&self) -> bool {
        self.probe
    }

    /// Builds a fresh backend on the leased device, in deterministic
    /// (bit-exact wrap) mode so placement never shows up in observables.
    /// An optional [`FaultPlan`] is armed before first use, merged with
    /// the slot's scripted sick profile if one is installed — the
    /// scheduler's scripted-fault and chaos runs go through here.
    // dqmc-lint: allow(hot_alloc) — backend construction is once per job
    // placement, not per quantum; the Device itself owns fresh buffers.
    pub fn backend(&self, plan: Option<FaultPlan>) -> DeviceBackend {
        let mut dev = Device::new(self.inner.spec.clone());
        let profile = relock(self.inner.health.lock())[self.slot].profile.clone();
        let armed = match (plan, profile) {
            (Some(p), Some(s)) => Some(p.merge(s)),
            (Some(p), None) => Some(p),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        if let Some(plan) = armed {
            dev.arm_faults(plan);
        }
        DeviceBackend::new(dev).with_bitexact_wrap(true)
    }

    /// Builds a fresh *crowd* backend on the leased device — the batched
    /// analogue of [`DeviceLease::backend`], used when the job unit is a
    /// whole crowd of walkers. Same arming rules (job plan merged with the
    /// slot's sick profile); the crowd backend is always in deterministic
    /// mode, so neither placement nor batching shows up in observables.
    // dqmc-lint: allow(hot_alloc) — backend construction is once per job
    // placement, not per quantum; the Device itself owns fresh buffers.
    pub fn crowd_backend(&self, plan: Option<FaultPlan>) -> crate::crowd::CrowdDeviceBackend {
        let mut dev = Device::new(self.inner.spec.clone());
        let profile = relock(self.inner.health.lock())[self.slot].profile.clone();
        let armed = match (plan, profile) {
            (Some(p), Some(s)) => Some(p.merge(s)),
            (Some(p), None) => Some(p),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        if let Some(plan) = armed {
            dev.arm_faults(plan);
        }
        crate::crowd::CrowdDeviceBackend::new(dev)
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        // Push into capacity reserved at construction: cannot reallocate.
        relock(self.inner.free.lock()).push(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_exclusive_and_return_on_drop() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 2);
        assert_eq!(pool.capacity(), 2);
        let a = pool.try_lease().unwrap();
        let b = pool.try_lease().unwrap();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(pool.available(), 0);
        assert!(pool.try_lease().is_none());
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.try_lease().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.leases_granted(), 3);
        assert_eq!(pool.lease_misses(), 1);
    }

    #[test]
    fn empty_pool_always_misses() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 0);
        assert!(pool.try_lease().is_none());
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.lease_misses(), 1);
    }

    #[test]
    fn lease_backend_is_deterministic_mode_with_armed_plan() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
        let lease = pool.try_lease().unwrap();
        let be = lease.backend(None);
        assert!(be.bitexact_wrap());
        let mut be = lease.backend(Some(FaultPlan::new().fail_launch(1)));
        // The armed plan fires on the first launch.
        let model = dqmc::ModelParams::new(lattice::Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 4);
        let fac = dqmc::BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(1);
        let h = dqmc::HsField::random(4, 4, &mut rng);
        use dqmc::ComputeBackend as _;
        assert!(be.cluster(&fac, &h, 0, 4, dqmc::Spin::Up).is_err());
    }

    #[test]
    fn lease_returns_even_when_worker_panics() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
        let p2 = pool.clone();
        let _ = std::panic::catch_unwind(move || {
            let _lease = p2.try_lease().unwrap();
            panic!("job died");
        });
        assert_eq!(pool.available(), 1, "slot must return via Drop on unwind");
    }

    #[test]
    fn excluded_slots_are_skipped() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 2);
        // Stack pops slot 1 first; excluding it must yield slot 0.
        let l = pool.try_lease_excluding(&[1]).unwrap();
        assert_eq!(l.slot(), 0);
        drop(l);
        assert!(pool.try_lease_excluding(&[0, 1]).is_none());
        assert_eq!(pool.lease_misses(), 1);
    }

    fn strike_out(pool: &DevicePool, slot: usize, strikes: u32) -> HealthDecision {
        let mut last = HealthDecision::None;
        for _ in 0..strikes {
            last = pool.report_failure(slot, true);
        }
        last
    }

    #[test]
    fn breaker_opens_probes_and_readmits() {
        let policy = BreakerPolicy {
            strikes: 2,
            window: 4,
            probation_backoff: 3,
        };
        let pool = DevicePool::with_policy(DeviceSpec::tesla_c2050(), 1, policy);
        assert_eq!(
            strike_out(&pool, 0, 2),
            HealthDecision::Opened {
                slot: 0,
                backoff: 3
            }
        );
        // Quarantined: the slot is skipped and the request misses. The
        // deadline is eligible_at = 0 + 3 on the lease-request clock.
        assert!(
            pool.try_lease().is_none(),
            "quarantine blocks the only slot"
        );
        assert!(pool.quarantine_skips() >= 1);
        assert!(pool.try_lease().is_none());
        let probe = pool.try_lease().expect("clock hit 3: probe goes out");
        assert!(probe.is_probe());
        drop(probe);
        assert_eq!(
            pool.report_success(0),
            HealthDecision::Readmitted { slot: 0 }
        );
        let healthy = pool.try_lease().unwrap();
        assert!(!healthy.is_probe(), "re-admitted slot leases normally");
        assert_eq!(pool.quarantines(), 1);
        assert_eq!(pool.probes(), 1);
        assert_eq!(pool.readmissions(), 1);
    }

    #[test]
    fn failed_probe_requarantines_with_doubled_backoff() {
        let policy = BreakerPolicy {
            strikes: 1,
            window: 4,
            probation_backoff: 2,
        };
        let pool = DevicePool::with_policy(DeviceSpec::tesla_c2050(), 1, policy);
        assert!(matches!(
            pool.report_failure(0, true),
            HealthDecision::Opened { backoff: 2, .. }
        ));
        assert!(pool.try_lease().is_none(), "clock 1 < deadline 2");
        let probe = pool.try_lease().unwrap();
        assert!(probe.is_probe());
        drop(probe);
        // Probe fails sick: exponential backoff kicks in.
        let d = pool.report_failure(0, true);
        assert!(
            matches!(d, HealthDecision::Reopened { backoff, .. } if backoff > 2),
            "{d:?}"
        );
        assert_eq!(pool.quarantines(), 2);
    }

    #[test]
    fn slot_profile_merges_into_backend_and_heals_on_open() {
        let policy = BreakerPolicy {
            strikes: 1,
            window: 2,
            probation_backoff: 1,
        };
        let pool = DevicePool::with_policy(DeviceSpec::tesla_c2050(), 1, policy);
        pool.set_slot_profile(0, FaultPlan::new().fail_launch(1), false);
        let lease = pool.try_lease().unwrap();
        let mut be = lease.backend(None);
        let model = dqmc::ModelParams::new(lattice::Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 4);
        let fac = dqmc::BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(1);
        let h = dqmc::HsField::random(4, 4, &mut rng);
        use dqmc::ComputeBackend as _;
        assert!(
            be.cluster(&fac, &h, 0, 4, dqmc::Spin::Up).is_err(),
            "slot profile armed without any job plan"
        );
        drop(lease);
        // Breaker opens; the non-persistent profile heals.
        assert!(matches!(
            pool.report_failure(0, true),
            HealthDecision::Opened { .. }
        ));
        let probe = pool.try_lease().expect("backoff 1 elapsed during report");
        let mut be = probe.backend(None);
        assert!(
            be.cluster(&fac, &h, 0, 4, dqmc::Spin::Up).is_ok(),
            "healed slot runs clean on probation"
        );
    }

    #[test]
    fn non_sick_failures_do_not_open_breaker() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
        for _ in 0..16 {
            assert_eq!(pool.report_failure(0, false), HealthDecision::None);
        }
        assert_eq!(pool.quarantines(), 0);
        assert!(pool.try_lease().is_some());
    }
}
