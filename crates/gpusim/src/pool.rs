//! Device-pool leasing: multiplexing simulated accelerators between jobs.
//!
//! A sweep campaign has many more jobs than accelerators. The pool tracks a
//! fixed set of device *slots*; a worker holding a job asks for a lease,
//! and either gets exclusive use of one slot (returned automatically when
//! the [`DeviceLease`] drops — including on a panic unwinding through the
//! worker) or is told to fall back to the host path. Leases carry no device
//! state between jobs: each job builds a fresh [`DeviceBackend`] from the
//! pool's spec, exactly as a driver hands a clean context to each process,
//! so one job's fault history can never leak into the next job's numerics.
//!
//! The lease/release path is allocation-free (the lint tag below is
//! enforced by `cargo xtask lint`): the free-slot stack is pre-sized to the
//! pool's capacity, so `try_lease` is a `Mutex` lock plus a `Vec::pop`, and
//! release is a push into reserved capacity. Workers hit this path on every
//! scheduling quantum.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::backend::DeviceBackend;
use crate::device::{Device, DeviceSpec};
use crate::faults::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct PoolInner {
    spec: DeviceSpec,
    /// Stack of free slot ids; capacity reserved for every slot up front.
    free: Mutex<Vec<usize>>,
    total: usize,
    leases_granted: AtomicU64,
    lease_misses: AtomicU64,
}

/// A fixed pool of simulated accelerator slots shared by sweep workers.
///
/// Cloning the pool clones the *handle*: all clones share the same slots.
#[derive(Clone, Debug)]
pub struct DevicePool {
    inner: Arc<PoolInner>,
}

impl DevicePool {
    /// A pool of `count` devices of the given spec. `count == 0` is a valid
    /// "no accelerators" pool: every lease request misses and jobs run on
    /// the host — scheduling still works, only slower.
    // dqmc-lint: allow(hot_alloc) — construction happens once per sweep;
    // the free stack is sized here so the lease path never reallocates.
    pub fn new(spec: DeviceSpec, count: usize) -> Self {
        let mut free = Vec::with_capacity(count);
        free.extend(0..count);
        DevicePool {
            inner: Arc::new(PoolInner {
                spec,
                free: Mutex::new(free),
                total: count,
                leases_granted: AtomicU64::new(0),
                lease_misses: AtomicU64::new(0),
            }),
        }
    }

    /// Attempts to lease a device slot. `None` means every slot is busy
    /// (or the pool is empty) and the caller should use the host backend.
    pub fn try_lease(&self) -> Option<DeviceLease> {
        let slot = self.inner.free.lock().expect("device pool poisoned").pop();
        match slot {
            Some(slot) => {
                self.inner.leases_granted.fetch_add(1, Ordering::Relaxed);
                Some(DeviceLease {
                    slot,
                    inner: Arc::clone(&self.inner),
                })
            }
            None => {
                self.inner.lease_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Total slots in the pool.
    pub fn capacity(&self) -> usize {
        self.inner.total
    }

    /// Slots currently free.
    pub fn available(&self) -> usize {
        self.inner.free.lock().expect("device pool poisoned").len()
    }

    /// Leases handed out over the pool's lifetime.
    pub fn leases_granted(&self) -> u64 {
        self.inner.leases_granted.load(Ordering::Relaxed)
    }

    /// Lease requests that missed (capacity pressure → host fallback).
    pub fn lease_misses(&self) -> u64 {
        self.inner.lease_misses.load(Ordering::Relaxed)
    }

    /// The device spec jobs will run on.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }
}

/// Exclusive use of one pool slot; the slot returns to the pool on drop.
#[derive(Debug)]
pub struct DeviceLease {
    slot: usize,
    inner: Arc<PoolInner>,
}

impl DeviceLease {
    /// The leased slot id (stable for the lease's lifetime; used for trace
    /// events and per-slot utilisation accounting).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Builds a fresh backend on the leased device, in deterministic
    /// (bit-exact wrap) mode so placement never shows up in observables.
    /// An optional [`FaultPlan`] is armed before first use — the
    /// scheduler's scripted-fault runs go through here.
    // dqmc-lint: allow(hot_alloc) — backend construction is once per job
    // placement, not per quantum; the Device itself owns fresh buffers.
    pub fn backend(&self, plan: Option<FaultPlan>) -> DeviceBackend {
        let mut dev = Device::new(self.inner.spec.clone());
        if let Some(plan) = plan {
            dev.arm_faults(plan);
        }
        DeviceBackend::new(dev).with_bitexact_wrap(true)
    }
}

impl Drop for DeviceLease {
    fn drop(&mut self) {
        // Push into capacity reserved at construction: cannot reallocate.
        self.inner
            .free
            .lock()
            .expect("device pool poisoned")
            .push(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_exclusive_and_return_on_drop() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 2);
        assert_eq!(pool.capacity(), 2);
        let a = pool.try_lease().unwrap();
        let b = pool.try_lease().unwrap();
        assert_ne!(a.slot(), b.slot());
        assert_eq!(pool.available(), 0);
        assert!(pool.try_lease().is_none());
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.try_lease().unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.leases_granted(), 3);
        assert_eq!(pool.lease_misses(), 1);
    }

    #[test]
    fn empty_pool_always_misses() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 0);
        assert!(pool.try_lease().is_none());
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.lease_misses(), 1);
    }

    #[test]
    fn lease_backend_is_deterministic_mode_with_armed_plan() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
        let lease = pool.try_lease().unwrap();
        let be = lease.backend(None);
        assert!(be.bitexact_wrap());
        let mut be = lease.backend(Some(FaultPlan::new().fail_launch(1)));
        // The armed plan fires on the first launch.
        let model = dqmc::ModelParams::new(lattice::Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 4);
        let fac = dqmc::BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(1);
        let h = dqmc::HsField::random(4, 4, &mut rng);
        use dqmc::ComputeBackend as _;
        assert!(be.cluster(&fac, &h, 0, 4, dqmc::Spin::Up).is_err());
    }

    #[test]
    fn lease_returns_even_when_worker_panics() {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 1);
        let p2 = pool.clone();
        let _ = std::panic::catch_unwind(move || {
            let _lease = p2.try_lease().unwrap();
            panic!("job died");
        });
        assert_eq!(pool.available(), 1, "slot must return via Drop on unwind");
    }
}
