//! Simulated GPU accelerator for DQMC (§VI of the paper).
//!
//! The paper's GPU experiments ran CUBLAS on a Tesla C2050. This crate
//! substitutes a *deterministic device model*: every operation computes its
//! true numerical result on the host (via `linalg`, so results are exact and
//! testable) while advancing a simulated clock according to a calibrated
//! cost model — sustained GEMM throughput with a small-matrix saturation
//! curve, device memory bandwidth with/without coalescing, PCIe transfer
//! bandwidth + latency, and per-kernel launch overhead.
//!
//! That cost model captures precisely the effects Section VI discusses:
//!
//! - **matrix clustering (Algorithm 4)** ships `k` diagonal vectors and gets
//!   `k` GEMMs back per round trip, so it approaches device-GEMM speed;
//!   its naive per-row `cublasDscal` scaling loop pays `N` kernel launches
//!   and non-coalesced access, which the custom kernel of **Algorithm 5**
//!   eliminates;
//! - **wrapping (Algorithm 6)** does only two GEMMs per `G` round trip, so
//!   transfers bite and it lands between host and device GEMM rates;
//! - the **hybrid driver** (Figure 10) clusters on the device and runs the
//!   stratification's QR/solve on the (modelled) host.
//!
//! Timings are simulated; *numerics are real* — `gpusim` results are
//! bit-identical to the host path and are asserted as such in tests.
//!
//! The device is also *fallible on demand*: a scripted [`FaultPlan`] injects
//! launch failures, arena exhaustion, silent transfer corruption and bit
//! flips at exact operation ordinals ([`faults`]), every costed operation has
//! a `try_*` form surfacing those as [`DeviceError`]s, and [`DeviceBackend`]
//! plugs the device into `dqmc`'s recovery-aware sweep ([`backend`]).

pub mod backend;
pub mod cluster;
pub mod crowd;
pub mod device;
pub mod faults;
pub mod gpu_strat;
pub mod hybrid;
pub mod pool;
pub mod wrap;

pub use backend::DeviceBackend;
pub use cluster::{cluster_cublas, cluster_custom_kernel, try_cluster_custom_kernel};
pub use crowd::{try_cluster_crowd, try_wrap_crowd_bitexact_into, CrowdDeviceBackend};
pub use device::{DGemmOperand, DMatrix, Device, DeviceSpec, HostSpec};
pub use faults::{DeviceError, FaultPlan};
pub use gpu_strat::{gpu_stratified_greens, GpuStratReport};
pub use hybrid::{hybrid_greens, HybridReport};
pub use pool::{BreakerPolicy, DeviceLease, DevicePool, HealthDecision, SlotHealthSnapshot};
pub use wrap::{try_wrap_on_device_bitexact_into, try_wrap_on_device_into, wrap_on_device};
