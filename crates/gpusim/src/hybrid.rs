//! Hybrid CPU+GPU Green's-function evaluation (§VI-C, Figure 10).
//!
//! The paper's hybrid scheme keeps the stratification's QR factorizations on
//! the multicore host and offloads the matrix clustering (and wrapping) to
//! the accelerator. This module reproduces that division of labour: the
//! cluster products run through the simulated [`Device`] (real numerics,
//! simulated time) and the host-side stratification work is charged to a
//! [`HostSpec`] cost model, flop-counted term by term. The same flop count
//! charged entirely to the host model yields the CPU-only baseline, so the
//! hybrid-vs-CPU comparison of Figure 10 is internally consistent.

use crate::cluster::{try_cluster_custom_kernel, upload_expk};
use crate::device::{Device, HostSpec};
use dqmc::{greens_from_udt, stratify, BMatrixFactory, GreensFunction, HsField, Spin, StratAlgo};

/// Outcome of one hybrid evaluation.
#[derive(Clone, Debug)]
pub struct HybridReport {
    /// The Green's function (exact, computed with the host kernels).
    pub greens: GreensFunction,
    /// Simulated seconds for the hybrid CPU+GPU pipeline.
    pub hybrid_seconds: f64,
    /// Simulated seconds for the same work on the CPU alone.
    pub cpu_seconds: f64,
    /// Flops attributed to one full evaluation.
    pub flops: f64,
    /// Device faults (launch failures, arena exhaustion, tainted downloads)
    /// encountered during the clustering offload.
    pub device_faults: usize,
    /// Clusters that fell back to the host after a device fault; their GEMM
    /// cost is charged to the hybrid wall clock at host rate.
    pub host_fallback_clusters: usize,
}

impl HybridReport {
    /// Effective hybrid GFlop/s.
    pub fn hybrid_gflops(&self) -> f64 {
        self.flops / self.hybrid_seconds / 1e9
    }

    /// Effective CPU-only GFlop/s.
    pub fn cpu_gflops(&self) -> f64 {
        self.flops / self.cpu_seconds / 1e9
    }
}

/// Stratification cost on the host model for `lk` iterations at order `n`.
///
/// Per iteration: one GEMM (2n³), column scaling (n² streaming), one QR
/// (4/3 n³ at the QR or QRP fraction), explicit Q formation (4/3 n³ at the
/// QR fraction), and the triangular T update (n³ at GEMM rate). The final
/// assembly adds an LU solve (2/3 n³ + 2n³).
fn host_stratification_seconds(host: &HostSpec, n: usize, lk: usize, algo: StratAlgo) -> f64 {
    let nf = n as f64;
    let qr_frac = match algo {
        StratAlgo::PrePivot => host.qr_fraction,
        StratAlgo::Qrp => host.qrp_fraction,
    };
    let per_iter = host.level3_time(2.0 * nf.powi(3), n, 1.0)
        + host.level3_time(4.0 / 3.0 * nf.powi(3), n, qr_frac)
        + host.level3_time(4.0 / 3.0 * nf.powi(3), n, host.qr_fraction)
        + host.level3_time(nf.powi(3), n, 0.8)
        + 3.0 * nf * nf * 8.0 / (host.mem_bandwidth_gbs * 1e9);
    let assembly = host.level3_time(8.0 / 3.0 * nf.powi(3), n, 0.8);
    lk as f64 * per_iter + assembly
}

/// Clustering cost on the host model: `lk · (k−1)` GEMMs plus scalings.
fn host_clustering_seconds(host: &HostSpec, n: usize, lk: usize, k: usize) -> f64 {
    let nf = n as f64;
    let gemms = (lk * (k - 1)) as f64;
    gemms * host.level3_time(2.0 * nf.powi(3), n, 1.0)
        + (lk * k) as f64 * nf * nf * 8.0 / (host.mem_bandwidth_gbs * 1e9)
}

/// Total flops attributed to one evaluation (clustering + stratification).
fn evaluation_flops(n: usize, lk: usize, k: usize) -> f64 {
    let nf = n as f64;
    let clustering = (lk * (k - 1)) as f64 * 2.0 * nf.powi(3);
    let strat = lk as f64 * (2.0 + 4.0 / 3.0 + 4.0 / 3.0 + 1.0) * nf.powi(3);
    let assembly = 8.0 / 3.0 * nf.powi(3);
    clustering + strat + assembly
}

/// Evaluates `G_σ = (I + B_{L}⋯B_1)⁻¹` with clustering on the device and
/// stratification charged to the host model. Returns the exact Green's
/// function plus modelled hybrid and CPU-only times.
///
/// Device faults (from an armed [`crate::FaultPlan`] or an arena limit) are
/// degraded gracefully: the affected cluster is recomputed on the host, its
/// GEMM cost is charged to the hybrid clock at host rate, and the fault is
/// tallied in the report — the evaluation itself always completes exactly.
#[allow(clippy::too_many_arguments)]
pub fn hybrid_greens(
    dev: &mut Device,
    host: &HostSpec,
    fac: &BMatrixFactory,
    h: &HsField,
    spin: Spin,
    k: usize,
    algo: StratAlgo,
) -> HybridReport {
    let n = fac.nsites();
    let slices = h.slices();
    assert!(k >= 1 && k <= slices);
    let expk_dev = upload_expk(dev, fac);

    // --- Device-side clustering (advances the device clock) ---
    dev.reset_clock();
    let mut clusters = Vec::new();
    let mut device_faults = 0usize;
    let mut host_fallback_clusters = 0usize;
    let mut fallback_seconds = 0.0;
    let mut lo = 0;
    while lo < slices {
        let hi = (lo + k).min(slices);
        let product = match try_cluster_custom_kernel(dev, &expk_dev, fac, h, lo, hi, spin) {
            Ok(m) if linalg::check::first_non_finite(m.as_slice()).is_none() => m,
            _ => {
                // Launch failure, arena exhaustion, or a tainted download:
                // recompute this cluster on the host and charge host time.
                dev.reset_arena();
                device_faults += 1;
                host_fallback_clusters += 1;
                fallback_seconds += host_clustering_seconds(host, n, 1, hi - lo);
                fac.cluster(h, lo, hi, spin)
            }
        };
        clusters.push(product);
        lo = hi;
    }
    let device_seconds = dev.elapsed() + fallback_seconds;
    let lk = clusters.len();

    // --- Host-side stratification (real numerics; modelled time) ---
    let udt = stratify(&clusters, algo);
    let greens = greens_from_udt(&udt);
    let host_strat = host_stratification_seconds(host, n, lk, algo);

    let hybrid_seconds = device_seconds + host_strat;
    let cpu_seconds = host_clustering_seconds(host, n, lk, k) + host_strat;
    HybridReport {
        greens,
        hybrid_seconds,
        cpu_seconds,
        flops: evaluation_flops(n, lk, k),
        device_faults,
        host_fallback_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use dqmc::ModelParams;
    use lattice::Lattice;

    fn setup(nside: usize, slices: usize) -> (BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(nside, nside, 1.0), 4.0, 0.0, 0.125, slices);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(3);
        let h = HsField::random(nside * nside, slices, &mut rng);
        (fac, h)
    }

    #[test]
    fn hybrid_result_is_exact() {
        let (fac, h) = setup(3, 16);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep = hybrid_greens(&mut dev, &host, &fac, &h, Spin::Up, 4, StratAlgo::PrePivot);
        let naive = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        let diff = dqmc::greens::relative_difference(&rep.greens.g, &naive.g);
        assert!(diff < 1e-9, "{diff}");
        assert_eq!(rep.greens.sign, naive.sign);
    }

    #[test]
    fn hybrid_beats_cpu_at_scale() {
        // Figure 10's point: at DQMC sizes the hybrid pipeline outruns the
        // CPU-only evaluation.
        let (fac, h) = setup(12, 20); // N = 144
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep = hybrid_greens(&mut dev, &host, &fac, &h, Spin::Up, 10, StratAlgo::PrePivot);
        assert!(
            rep.hybrid_seconds < rep.cpu_seconds,
            "hybrid {} !< cpu {}",
            rep.hybrid_seconds,
            rep.cpu_seconds
        );
        assert!(rep.hybrid_gflops() > rep.cpu_gflops());
    }

    #[test]
    fn prepivot_faster_than_qrp_in_model() {
        let (fac, h) = setup(8, 20);
        let host = HostSpec::nehalem_2s4c();
        let mut d1 = Device::new(DeviceSpec::tesla_c2050());
        let r_pre = hybrid_greens(&mut d1, &host, &fac, &h, Spin::Up, 10, StratAlgo::PrePivot);
        let mut d2 = Device::new(DeviceSpec::tesla_c2050());
        let r_qrp = hybrid_greens(&mut d2, &host, &fac, &h, Spin::Up, 10, StratAlgo::Qrp);
        assert!(r_pre.hybrid_seconds < r_qrp.hybrid_seconds);
        // Same physics either way.
        let diff = dqmc::greens::relative_difference(&r_pre.greens.g, &r_qrp.greens.g);
        assert!(diff < 1e-9, "{diff}");
    }

    #[test]
    fn hybrid_degrades_gracefully_under_faults() {
        let (fac, h) = setup(3, 16);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        // Launch failure in cluster 1 (8 launches per 4-slice cluster) plus a
        // corrupted download on the 2nd successful cluster.
        dev.arm_faults(
            crate::faults::FaultPlan::new()
                .with_seed(1)
                .fail_launch(5)
                .corrupt_transfer(2),
        );
        let host = HostSpec::nehalem_2s4c();
        let rep = hybrid_greens(&mut dev, &host, &fac, &h, Spin::Up, 4, StratAlgo::PrePivot);
        assert_eq!(rep.device_faults, 2);
        assert_eq!(rep.host_fallback_clusters, 2);
        // Degraded, never wrong: the result is still exact.
        let naive = dqmc::greens::greens_naive(&fac, &h, Spin::Up);
        let diff = dqmc::greens::relative_difference(&rep.greens.g, &naive.g);
        assert!(diff < 1e-9, "{diff}");
        // Fault-free run on the same inputs reports zero faults and agrees
        // to stratification accuracy (device and host clustering differ in
        // op order, so bitwise equality is not expected here).
        let mut clean = Device::new(DeviceSpec::tesla_c2050());
        let rep0 = hybrid_greens(
            &mut clean,
            &host,
            &fac,
            &h,
            Spin::Up,
            4,
            StratAlgo::PrePivot,
        );
        assert_eq!(rep0.device_faults, 0);
        let agree = dqmc::greens::relative_difference(&rep0.greens.g, &rep.greens.g);
        assert!(agree < 1e-9, "{agree}");
    }

    #[test]
    fn flop_attribution_positive_and_scales() {
        let f1 = evaluation_flops(64, 4, 10);
        let f2 = evaluation_flops(128, 4, 10);
        assert!(f2 > 7.0 * f1, "≈n³ scaling: {f1} → {f2}");
    }
}
