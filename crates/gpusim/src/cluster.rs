//! Device-side matrix clustering — Algorithms 4 and 5 of the paper.
//!
//! Computes the cluster product `A = B_{i+k} ⋯ B_{i+1}` on the accelerator.
//! `B = e^{−ΔτK}` is resident in device memory for the whole simulation;
//! only the `k` diagonal vectors `V` go down per cluster and one `N×N`
//! product comes back — `k` GEMMs amortise one transfer, which is why this
//! operation approaches device GEMM speed (Figure 9).
//!
//! Two variants are provided, mirroring the paper:
//! - [`cluster_cublas`]: Algorithm 4 verbatim — `cublasDcopy` + a
//!   per-vector `cublasDscal` loop for each `V` scaling (N launches),
//! - [`cluster_custom_kernel`]: the same data flow with the Algorithm 5
//!   one-launch coalesced scaling kernel and no intermediate copies.

use crate::device::{DMatrix, Device};
use crate::faults::DeviceError;
use dqmc::{BMatrixFactory, HsField, Spin};
use linalg::{workspace, Matrix};

/// Uploads `e^{−ΔτK}` once at simulation start (device-resident B).
pub fn upload_expk(dev: &mut Device, fac: &BMatrixFactory) -> DMatrix {
    dev.set_matrix(fac.expk())
}

/// Algorithm 4 (CUBLAS formulation): computes `A = B_{hi−1} ⋯ B_{lo}` on
/// the device, returning the (exact) host result and leaving the simulated
/// cost on the device clock.
///
/// With our `B = e^{−ΔτK}·V` convention the accumulation is
/// `T ← e^{−ΔτK}·(diag(V_l)·T)` after seeding `T = e^{−ΔτK}·diag(V_lo)`;
/// the per-element scaling work matches the paper's Algorithm 4 exactly.
pub fn cluster_cublas(
    dev: &mut Device,
    expk_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    lo: usize,
    hi: usize,
    spin: Spin,
) -> Matrix {
    assert!(lo < hi && hi <= h.slices());
    let n = fac.nsites();
    // Host staging for the V diagonal and its device mirror are reused
    // across all k slices; `t`/`vt` ping-pong so the loop performs no
    // per-slice allocation (host or device).
    let mut vh = workspace::take(n);
    let mut t = dev.dcopy(expk_dev);
    fac.v_diag_into(h, lo, spin, &mut vh);
    let mut vd = dev.set_vector(&vh);
    dev.scale_cols_cublas(&vd, &mut t);
    let mut vt = dev.alloc(n, n);
    for l in (lo + 1)..hi {
        fac.v_diag_into(h, l, spin, &mut vh);
        dev.set_vector_into(&vh, &mut vd);
        dev.dcopy_into(&t, &mut vt);
        dev.scale_rows_cublas(&vd, &mut vt);
        dev.dgemm(1.0, expk_dev, &vt, 0.0, &mut t);
    }
    workspace::put(vh);
    let out = dev.get_matrix(&t);
    linalg::check_finite!(out.as_slice(), "cluster_cublas product [{lo}, {hi})");
    out
}

/// Algorithms 4+5: same product, with the custom one-launch scaling kernels
/// and no intermediate `dcopy`.
pub fn cluster_custom_kernel(
    dev: &mut Device,
    expk_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    lo: usize,
    hi: usize,
    spin: Spin,
) -> Matrix {
    let out = try_cluster_custom_kernel(dev, expk_dev, fac, h, lo, hi, spin)
        .unwrap_or_else(|e| panic!("device fault outside fault-aware path: {e}"));
    linalg::check_finite!(out.as_slice(), "cluster_custom_kernel product [{lo}, {hi})");
    out
}

/// Fallible [`cluster_custom_kernel`]: returns a [`DeviceError`] on a
/// scheduled launch failure or arena exhaustion instead of panicking, and
/// performs **no finiteness check** on the downloaded product — a silently
/// corrupted transfer surfaces as NaNs in the returned matrix, which the
/// recovery-aware caller must scan before use.
pub fn try_cluster_custom_kernel(
    dev: &mut Device,
    expk_dev: &DMatrix,
    fac: &BMatrixFactory,
    h: &HsField,
    lo: usize,
    hi: usize,
    spin: Spin,
) -> Result<Matrix, DeviceError> {
    assert!(lo < hi && hi <= h.slices());
    let n = fac.nsites();
    let mut vh = workspace::take(n);
    // Inner closure so the staging buffer returns to the workspace pool on
    // every exit path, including early faults.
    let r = (|| {
        let mut t = dev.try_dcopy(expk_dev)?;
        fac.v_diag_into(h, lo, spin, &mut vh);
        let mut vd = dev.set_vector(&vh);
        dev.try_scale_cols_kernel(&vd, &mut t)?;
        // `t`/`next` ping-pong: the GEMM writes the fresh product into the
        // other buffer, then the roles swap — one device allocation for the
        // whole cluster instead of one per slice.
        let mut next = dev.try_alloc(n, n)?;
        for l in (lo + 1)..hi {
            fac.v_diag_into(h, l, spin, &mut vh);
            dev.set_vector_into(&vh, &mut vd);
            dev.try_scale_rows_kernel(&vd, &mut t)?;
            dev.try_dgemm(1.0, expk_dev, &t, 0.0, &mut next)?;
            std::mem::swap(&mut t, &mut next);
        }
        Ok(dev.get_matrix(&t))
    })();
    workspace::put(vh);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use dqmc::ModelParams;
    use lattice::Lattice;

    fn setup() -> (BMatrixFactory, HsField) {
        let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 20);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(5);
        let h = HsField::random(16, 20, &mut rng);
        (fac, h)
    }

    #[test]
    fn cublas_cluster_matches_host() {
        let (fac, h) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        let got = cluster_cublas(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up);
        let want = fac.cluster(&h, 0, 10, Spin::Up);
        assert!(
            got.max_abs_diff(&want) < 1e-12 * want.max_abs().max(1.0),
            "{}",
            got.max_abs_diff(&want)
        );
        assert!(dev.elapsed() > 0.0);
    }

    #[test]
    fn custom_kernel_cluster_matches_host() {
        let (fac, h) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        let got = cluster_custom_kernel(&mut dev, &expk, &fac, &h, 3, 13, Spin::Down);
        let want = fac.cluster(&h, 3, 13, Spin::Down);
        assert!(got.max_abs_diff(&want) < 1e-12 * want.max_abs().max(1.0));
    }

    #[test]
    fn both_variants_identical_numerics() {
        let (fac, h) = setup();
        let mut d1 = Device::new(DeviceSpec::tesla_c2050());
        let e1 = upload_expk(&mut d1, &fac);
        let a = cluster_cublas(&mut d1, &e1, &fac, &h, 0, 10, Spin::Up);
        let mut d2 = Device::new(DeviceSpec::tesla_c2050());
        let e2 = upload_expk(&mut d2, &fac);
        let b = cluster_custom_kernel(&mut d2, &e2, &fac, &h, 0, 10, Spin::Up);
        assert_eq!(a, b, "cost models differ, numerics must not");
    }

    #[test]
    fn custom_kernel_is_faster() {
        let (fac, h) = setup();
        let mut d1 = Device::new(DeviceSpec::tesla_c2050());
        let e1 = upload_expk(&mut d1, &fac);
        d1.reset_clock();
        let _ = cluster_cublas(&mut d1, &e1, &fac, &h, 0, 10, Spin::Up);

        let mut d2 = Device::new(DeviceSpec::tesla_c2050());
        let e2 = upload_expk(&mut d2, &fac);
        d2.reset_clock();
        let _ = cluster_custom_kernel(&mut d2, &e2, &fac, &h, 0, 10, Spin::Up);

        assert!(
            d2.elapsed() < d1.elapsed(),
            "custom {} !< cublas {}",
            d2.elapsed(),
            d1.elapsed()
        );
    }

    #[test]
    fn transfers_are_k_vectors_plus_one_matrix() {
        let (fac, h) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        let before = dev.bytes_transferred();
        let _ = cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up);
        let moved = dev.bytes_transferred() - before;
        let n = 16usize;
        let expect = 10 * n * 8 + n * n * 8; // k diagonals down, one matrix up
        assert_eq!(moved as usize, expect);
    }

    #[test]
    fn try_cluster_launch_failure_errs_then_retry_matches_host() {
        let (fac, h) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        // Launch #3 is the first row-scaling kernel inside the loop.
        dev.arm_faults(crate::faults::FaultPlan::new().fail_launch(3));
        let err = try_cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up);
        assert!(matches!(err, Err(DeviceError::KernelLaunchFailure { .. })));
        let ok = try_cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up).unwrap();
        let want = fac.cluster(&h, 0, 10, Spin::Up);
        assert!(ok.max_abs_diff(&want) < 1e-12 * want.max_abs().max(1.0));
    }

    #[test]
    fn try_cluster_returns_tainted_product_without_panic() {
        let (fac, h) = setup();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        dev.arm_faults(
            crate::faults::FaultPlan::new()
                .with_seed(4)
                .corrupt_transfer(1),
        );
        let tainted =
            try_cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up).unwrap();
        assert!(linalg::check::first_non_finite(tainted.as_slice()).is_some());
    }

    #[test]
    fn clustering_approaches_device_gemm_rate_at_large_n() {
        // The Figure 9 shape: effective GFlops of clustering close to the
        // device GEMM rate at the same order (within 40 %), far above host.
        let model = ModelParams::new(Lattice::square(16, 16, 1.0), 4.0, 0.0, 0.125, 10);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(9);
        let h = HsField::random(256, 10, &mut rng);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = upload_expk(&mut dev, &fac);
        dev.reset_clock();
        let _ = cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, 10, Spin::Up);
        let flops = 9.0 * 2.0 * 256f64.powi(3); // k−1 GEMMs dominate
        let rate = flops / dev.elapsed() / 1e9;
        let dev_rate = dev.spec().gemm_rate(256);
        assert!(
            rate > 0.6 * dev_rate,
            "clustering rate {rate} too far below device gemm {dev_rate}"
        );
    }
}
