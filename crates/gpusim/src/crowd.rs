//! Crowd-batched device kernels: one launch services B walkers.
//!
//! The solo device path (wrap, cluster) amortises PCIe transfers over the
//! `k` GEMMs of a cluster — the paper's §III lever. This module adds the
//! second amortisation axis: the batched driver calls
//! ([`Device::try_dgemm_strided_batched`] and friends) submit a whole
//! *crowd* of B walkers per kernel launch and move their operands as one
//! stacked PCIe transaction, so launch overhead and transfer latency are
//! paid once per crowd instead of once per walker.
//!
//! Everything here keeps the deterministic-execution contract of
//! [`crate::wrap::try_wrap_on_device_bitexact_into`]: entry `i` of every
//! batched kernel issues exactly the floating-point op sequence of walker
//! `i`'s solo kernel, so batching is *unobservable in the numerics* — a
//! crowd of B produces bit-identical Green's functions and observables to B
//! solo runs. Only the simulated cost accounting changes.

use crate::backend::classify;
use crate::cluster::upload_expk;
use crate::device::{DGemmOperand, DMatrix, Device, DeviceSpec};
use crate::faults::DeviceError;
use crate::wrap::upload_expk_inv;
use dqmc::crowd::CrowdBackend;
use dqmc::{BMatrixFactory, BackendFault, HsField, Spin};
use linalg::{workspace, Matrix};

/// Crowd-batched bit-exact wrap: `outs[i] ← B_l(h_i)·gs[i]·B_l(h_i)⁻¹` for
/// every walker, issuing per entry the exact op order of
/// [`crate::wrap::try_wrap_on_device_bitexact_into`] (row-scale, GEMM,
/// col-scale, GEMM) so each downloaded matrix is bit-identical to that
/// walker's solo wrap — and therefore to the host path.
///
/// Cost shape: **4 kernel launches** for the whole crowd (two batched
/// scales, two strided-batched GEMMs) instead of `4·B`, and four stacked
/// PCIe transactions (G stack down, two diagonal stacks down, product stack
/// back) instead of `4·B`, so per-transfer latency is paid once per crowd.
/// Like the solo `try_` form, no finiteness check is performed on the
/// download — the recovery-aware caller scans each walker's matrix.
#[allow(clippy::too_many_arguments)]
pub fn try_wrap_crowd_bitexact_into(
    dev: &mut Device,
    expk_dev: &DMatrix,
    expk_inv_dev: &DMatrix,
    fac: &BMatrixFactory,
    hs: &[&HsField],
    l: usize,
    spin: Spin,
    gs: &[&Matrix],
    outs: &mut [&mut Matrix],
) -> Result<(), DeviceError> {
    let b = hs.len();
    assert!(gs.len() == b && outs.len() == b);
    if b == 0 {
        return Ok(());
    }
    let n = fac.nsites();
    for (g, out) in gs.iter().zip(outs.iter()) {
        assert!(g.nrows() == n && g.ncols() == n);
        assert!(out.nrows() == n && out.ncols() == n);
    }
    let mut dgs = dev.set_matrix_stack(gs);
    let mut vhs: Vec<Vec<f64>> = hs.iter().map(|h| fac.v_diag(h, l, spin)).collect();
    // Inner closure so the staging diagonals return to the workspace pool on
    // every exit path, including early faults (same shape as the solo
    // cluster kernel).
    let r = (|| {
        let vrefs: Vec<&[f64]> = vhs.iter().map(|v| v.as_slice()).collect();
        let dvs = dev.set_vector_stack(&vrefs);
        // diag(v_i)·G_i — the host's b_mul_left_into row scaling, batched.
        dev.try_scale_rows_kernel_batched(&dvs, &mut dgs)?;
        // e^{−ΔτK} · (V_i G_i): one strided-batched GEMM with the shared
        // resident read B times.
        let mut ts = dev.try_alloc_stack(n, n, b)?;
        dev.try_dgemm_strided_batched(
            1.0,
            DGemmOperand::Shared(expk_dev),
            DGemmOperand::Each(&dgs),
            0.0,
            &mut ts,
        )?;
        // (·)·diag(v_i)⁻¹ — 1/x inverted host-side in the solo order.
        for vh in vhs.iter_mut() {
            for x in vh.iter_mut() {
                *x = 1.0 / *x;
            }
        }
        let vinvrefs: Vec<&[f64]> = vhs.iter().map(|v| v.as_slice()).collect();
        let dvinvs = dev.set_vector_stack(&vinvrefs);
        dev.try_scale_cols_kernel_batched(&dvinvs, &mut ts)?;
        // · e^{+ΔτK}
        let mut prods = dev.try_alloc_stack(n, n, b)?;
        dev.try_dgemm_strided_batched(
            1.0,
            DGemmOperand::Each(&ts),
            DGemmOperand::Shared(expk_inv_dev),
            0.0,
            &mut prods,
        )?;
        let prefs: Vec<&DMatrix> = prods.iter().collect();
        dev.get_matrix_stack_into(&prefs, outs);
        Ok(())
    })();
    for vh in vhs {
        workspace::put(vh);
    }
    r
}

/// Crowd-batched cluster product: `B_{hi−1}(h_i) ⋯ B_{lo}(h_i)` for every
/// walker, per entry in the exact op order of
/// [`crate::cluster::try_cluster_custom_kernel`] — bit-identical to each
/// walker's solo product and to the host [`BMatrixFactory::cluster`].
///
/// The `k` diagonal stacks go down as one stacked transfer per slice and
/// each slice costs one batched scale plus one strided-batched GEMM for the
/// whole crowd; the B products come back in a single stacked download. Only
/// the initial `e^{−ΔτK}` seeding copies remain per-walker (`B` on-device
/// `dcopy` launches — no PCIe traffic).
pub fn try_cluster_crowd(
    dev: &mut Device,
    expk_dev: &DMatrix,
    fac: &BMatrixFactory,
    hs: &[&HsField],
    lo: usize,
    hi: usize,
    spin: Spin,
) -> Result<Vec<Matrix>, DeviceError> {
    let b = hs.len();
    if b == 0 {
        return Ok(Vec::new());
    }
    assert!(lo < hi && hi <= hs[0].slices());
    let n = fac.nsites();
    let mut vhs: Vec<Vec<f64>> = (0..b).map(|_| workspace::take(n)).collect();
    let r = (|| {
        let mut ts = Vec::with_capacity(b);
        for _ in 0..b {
            ts.push(dev.try_dcopy(expk_dev)?);
        }
        for (vh, h) in vhs.iter_mut().zip(hs) {
            fac.v_diag_into(h, lo, spin, vh);
        }
        let vrefs: Vec<&[f64]> = vhs.iter().map(|v| v.as_slice()).collect();
        let mut dvs = dev.set_vector_stack(&vrefs);
        dev.try_scale_cols_kernel_batched(&dvs, &mut ts)?;
        // Per-walker `t`/`next` ping-pong exactly as in the solo kernel; the
        // stacks swap wholesale.
        let mut nexts = dev.try_alloc_stack(n, n, b)?;
        for l in (lo + 1)..hi {
            for (vh, h) in vhs.iter_mut().zip(hs) {
                fac.v_diag_into(h, l, spin, vh);
            }
            let vrefs: Vec<&[f64]> = vhs.iter().map(|v| v.as_slice()).collect();
            dev.set_vector_stack_into(&vrefs, &mut dvs);
            dev.try_scale_rows_kernel_batched(&dvs, &mut ts)?;
            dev.try_dgemm_strided_batched(
                1.0,
                DGemmOperand::Shared(expk_dev),
                DGemmOperand::Each(&ts),
                0.0,
                &mut nexts,
            )?;
            std::mem::swap(&mut ts, &mut nexts);
        }
        let mut outs: Vec<Matrix> = (0..b).map(|_| Matrix::zeros(n, n)).collect();
        {
            let trefs: Vec<&DMatrix> = ts.iter().collect();
            let mut orefs: Vec<&mut Matrix> = outs.iter_mut().collect();
            dev.get_matrix_stack_into(&trefs, &mut orefs);
        }
        Ok(outs)
    })();
    for vh in vhs {
        workspace::put(vh);
    }
    r
}

/// The simulated device as a [`CrowdBackend`]: the batched analogue of
/// [`crate::DeviceBackend`], always in deterministic-execution mode (crowd
/// scheduling treats both batching *and* placement as unobservable, so
/// there is no fused non-bit-exact crowd wrap). Residents are uploaded
/// lazily and dropped on [`CrowdBackend::notify_fault`] so every retry
/// starts from a clean device state.
#[derive(Debug)]
pub struct CrowdDeviceBackend {
    dev: Device,
    expk: Option<DMatrix>,
    expk_inv: Option<DMatrix>,
}

impl CrowdDeviceBackend {
    /// Wraps an existing device (e.g. one with an armed fault plan).
    pub fn new(dev: Device) -> Self {
        CrowdDeviceBackend {
            dev,
            expk: None,
            expk_inv: None,
        }
    }

    /// Convenience: a fresh device from a spec.
    pub fn with_spec(spec: DeviceSpec) -> Self {
        CrowdDeviceBackend::new(Device::new(spec))
    }

    /// The underlying device (clock, counters, fault tally).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable device access — for arming a [`crate::FaultPlan`] mid-run.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.dev
    }
}

impl CrowdBackend for CrowdDeviceBackend {
    fn name(&self) -> &str {
        self.dev.spec().name
    }

    fn wrap_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        l: usize,
        spin: Spin,
        gs: &[&Matrix],
        outs: &mut [&mut Matrix],
    ) -> Result<(), BackendFault> {
        let expk = self
            .expk
            .get_or_insert_with(|| upload_expk(&mut self.dev, fac));
        let expk_inv = self
            .expk_inv
            .get_or_insert_with(|| upload_expk_inv(&mut self.dev, fac));
        try_wrap_crowd_bitexact_into(&mut self.dev, expk, expk_inv, fac, hs, l, spin, gs, outs)
            .map_err(classify)
    }

    fn cluster_crowd(
        &mut self,
        fac: &BMatrixFactory,
        hs: &[&HsField],
        lo: usize,
        hi: usize,
        spin: Spin,
    ) -> Result<Vec<Matrix>, BackendFault> {
        let expk = self
            .expk
            .get_or_insert_with(|| upload_expk(&mut self.dev, fac));
        try_cluster_crowd(&mut self.dev, expk, fac, hs, lo, hi, spin).map_err(classify)
    }

    fn notify_fault(&mut self) {
        self.expk = None;
        self.expk_inv = None;
        self.dev.reset_arena();
    }

    fn device_seconds(&self) -> f64 {
        self.dev.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::wrap::try_wrap_on_device_bitexact_into;
    use dqmc::{chain_seed, Crowd, ModelParams, SimParams, Simulation};
    use lattice::Lattice;

    fn setup(b: usize) -> (BMatrixFactory, Vec<HsField>, Vec<Matrix>) {
        let model = ModelParams::new(Lattice::square(4, 4, 1.0), 4.0, 0.0, 0.125, 8);
        let fac = BMatrixFactory::new(&model);
        let mut hs = Vec::new();
        let mut gs = Vec::new();
        for c in 0..b {
            let mut rng = util::Rng::new(40 + c as u64);
            let h = HsField::random(16, 8, &mut rng);
            gs.push(dqmc::greens::greens_naive(&fac, &h, Spin::Up).g);
            hs.push(h);
        }
        (fac, hs, gs)
    }

    #[test]
    fn crowd_wrap_is_bit_identical_to_solo_bitexact_wraps() {
        let b = 4;
        let (fac, hs, gs) = setup(b);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);

        let hrefs: Vec<&HsField> = hs.iter().collect();
        let grefs: Vec<&Matrix> = gs.iter().collect();
        let mut crowd_outs: Vec<Matrix> = (0..b).map(|_| Matrix::zeros(16, 16)).collect();
        let mut orefs: Vec<&mut Matrix> = crowd_outs.iter_mut().collect();
        try_wrap_crowd_bitexact_into(
            &mut dev,
            &ek,
            &eki,
            &fac,
            &hrefs,
            0,
            Spin::Up,
            &grefs,
            &mut orefs,
        )
        .unwrap();

        for i in 0..b {
            let mut solo = Matrix::zeros(16, 16);
            try_wrap_on_device_bitexact_into(
                &mut dev,
                &ek,
                &eki,
                &fac,
                &hs[i],
                0,
                Spin::Up,
                &gs[i],
                &mut solo,
            )
            .unwrap();
            assert_eq!(crowd_outs[i].max_abs_diff(&solo), 0.0, "walker {i}");
            let host = dqmc::greens::wrap(&fac, &hs[i], 0, Spin::Up, &gs[i]);
            assert_eq!(crowd_outs[i].max_abs_diff(&host), 0.0, "walker {i} vs host");
        }
    }

    #[test]
    fn crowd_cluster_is_bit_identical_to_host_products() {
        let b = 3;
        let (fac, hs, _) = setup(b);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let hrefs: Vec<&HsField> = hs.iter().collect();
        let prods = try_cluster_crowd(&mut dev, &ek, &fac, &hrefs, 0, 8, Spin::Down).unwrap();
        assert_eq!(prods.len(), b);
        for (i, (p, h)) in prods.iter().zip(&hs).enumerate() {
            let want = fac.cluster(h, 0, 8, Spin::Down);
            assert_eq!(p.max_abs_diff(&want), 0.0, "walker {i}");
        }
    }

    #[test]
    fn crowd_wrap_pays_four_launches_total_and_stacked_transfers() {
        // The amortisation headline: a B=4 crowd wrap launches 4 kernels
        // (not 16) and makes 4 stacked PCIe transactions (not 16), while
        // moving exactly B× the solo byte volume.
        let b = 4usize;
        let n = 16usize;
        let (fac, hs, gs) = setup(b);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let (k0, b0) = (dev.kernels_launched(), dev.bytes_transferred());
        let hrefs: Vec<&HsField> = hs.iter().collect();
        let grefs: Vec<&Matrix> = gs.iter().collect();
        let mut outs: Vec<Matrix> = (0..b).map(|_| Matrix::zeros(n, n)).collect();
        let mut orefs: Vec<&mut Matrix> = outs.iter_mut().collect();
        try_wrap_crowd_bitexact_into(
            &mut dev,
            &ek,
            &eki,
            &fac,
            &hrefs,
            0,
            Spin::Up,
            &grefs,
            &mut orefs,
        )
        .unwrap();
        assert_eq!(dev.kernels_launched() - k0, 4);
        assert_eq!(
            (dev.bytes_transferred() - b0) as usize,
            b * (2 * n * n * 8 + 2 * n * 8)
        );

        // Same op stream solo costs 4 launches per walker.
        let (k1, _) = (dev.kernels_launched(), ());
        for i in 0..b {
            let mut out = Matrix::zeros(n, n);
            try_wrap_on_device_bitexact_into(
                &mut dev,
                &ek,
                &eki,
                &fac,
                &hs[i],
                0,
                Spin::Up,
                &gs[i],
                &mut out,
            )
            .unwrap();
        }
        assert_eq!(dev.kernels_launched() - k1, 4 * b as u64);
    }

    #[test]
    fn crowd_wrap_is_cheaper_than_solo_wraps_on_the_model_clock() {
        let b = 8usize;
        let (fac, hs, gs) = setup(b);
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let ek = upload_expk(&mut dev, &fac);
        let eki = upload_expk_inv(&mut dev, &fac);
        let hrefs: Vec<&HsField> = hs.iter().collect();
        let grefs: Vec<&Matrix> = gs.iter().collect();

        dev.reset_clock();
        let mut outs: Vec<Matrix> = (0..b).map(|_| Matrix::zeros(16, 16)).collect();
        let mut orefs: Vec<&mut Matrix> = outs.iter_mut().collect();
        try_wrap_crowd_bitexact_into(
            &mut dev,
            &ek,
            &eki,
            &fac,
            &hrefs,
            0,
            Spin::Up,
            &grefs,
            &mut orefs,
        )
        .unwrap();
        let t_crowd = dev.elapsed();

        dev.reset_clock();
        for i in 0..b {
            let mut out = Matrix::zeros(16, 16);
            try_wrap_on_device_bitexact_into(
                &mut dev,
                &ek,
                &eki,
                &fac,
                &hs[i],
                0,
                Spin::Up,
                &gs[i],
                &mut out,
            )
            .unwrap();
        }
        let t_solo = dev.elapsed();
        assert!(
            t_crowd < t_solo / 2.0,
            "B=8 crowd wrap should amortise at least 2x on small matrices: {t_crowd} !< {t_solo}/2"
        );
    }

    fn crowd_sim_params(seed: u64) -> SimParams {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 8);
        SimParams::new(model)
            .with_sweeps(4, 10)
            .with_seed(seed)
            .with_cluster_size(4)
            .with_bin_size(2)
    }

    fn crowd_of(b: usize) -> Vec<SimParams> {
        (0..b)
            .map(|c| crowd_sim_params(chain_seed(50, 0, c as u64)))
            .collect()
    }

    #[test]
    fn device_crowd_simulation_is_bit_identical_to_solo_host_runs() {
        // The full tentpole contract at the gpusim level: a complete crowd
        // simulation batched through the device backend is byte-identical,
        // walker for walker, to solo host simulations on the same seeds.
        let b = 3;
        let mut crowd = Crowd::new(crowd_of(b)).with_backend(Box::new(
            CrowdDeviceBackend::with_spec(DeviceSpec::tesla_c2050()),
        ));
        crowd.run();
        for (c, w) in crowd.walkers().iter().enumerate() {
            let mut solo = Simulation::new(crowd_sim_params(chain_seed(50, 0, c as u64)));
            solo.run();
            assert_eq!(
                solo.greens(Spin::Up).max_abs_diff(w.greens(Spin::Up)),
                0.0,
                "walker {c}"
            );
            let s = solo.observables().jackknife_scalars();
            let d = w.observables().jackknife_scalars();
            assert_eq!(s.double_occ, d.double_occ);
            assert_eq!(s.kinetic, d.kinetic);
            assert_eq!(s.saf, d.saf);
        }
    }

    #[test]
    fn corrupted_crowd_download_heals_bit_identically() {
        // A transfer corruption lands in one walker of the stacked download;
        // the crowd ladder retries, and the final physics is byte-identical
        // to the fault-free run — mid-crowd healing is unobservable.
        let b = 3;
        let mut clean = Crowd::new(crowd_of(b)).with_backend(Box::new(
            CrowdDeviceBackend::with_spec(DeviceSpec::tesla_c2050()),
        ));
        clean.run();

        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        dev.arm_faults(
            FaultPlan::new()
                .with_seed(9)
                .corrupt_transfer(4)
                .corrupt_transfer(11),
        );
        let mut faulty =
            Crowd::new(crowd_of(b)).with_backend(Box::new(CrowdDeviceBackend::new(dev)));
        faulty.run();

        let healed: u64 = faulty
            .walkers()
            .iter()
            .map(|w| w.recovery_log().total())
            .sum();
        assert!(healed > 0, "the fault plan must actually fire");
        for (c, (cw, fw)) in clean.walkers().iter().zip(faulty.walkers()).enumerate() {
            assert_eq!(
                cw.greens(Spin::Up).max_abs_diff(fw.greens(Spin::Up)),
                0.0,
                "walker {c}"
            );
            let a = cw.observables().jackknife_scalars();
            let f = fw.observables().jackknife_scalars();
            assert_eq!(a.double_occ, f.double_occ);
        }
    }

    #[test]
    fn launch_storm_falls_back_to_host_bit_identically() {
        let b = 2;
        let mut clean = Crowd::new(crowd_of(b));
        clean.run();
        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let plan = (1..=40).fold(FaultPlan::new(), |p, i| p.fail_launch(i));
        dev.arm_faults(plan);
        let mut faulty =
            Crowd::new(crowd_of(b)).with_backend(Box::new(CrowdDeviceBackend::new(dev)));
        faulty.run();
        assert_eq!(faulty.active_backend_name(), "host-crowd");
        for (cw, fw) in clean.walkers().iter().zip(faulty.walkers()) {
            let a = cw.observables().jackknife_scalars();
            let f = fw.observables().jackknife_scalars();
            assert_eq!(a.double_occ, f.double_occ);
        }
    }
}
