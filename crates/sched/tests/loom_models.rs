//! Loom models of the scheduler's three lock-bearing protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; in that configuration
//! `util::sync` swaps its `Mutex`/`Condvar` onto the loom shim's
//! schedule-perturbing wrappers, so the bodies below drive the
//! *production* `JobQueue` / `DevicePool` / `Heartbeats` code — not a
//! re-model of it — under hundreds of perturbed interleavings per test
//! (`loom::model` reseeds the perturbator each iteration; see
//! `shims/loom`).
//!
//! Each model checks the invariant the surrounding scheduler depends on:
//!
//! - queue: every submitted job completes exactly once through the
//!   pop → requeue → pop → complete cycle, and termination (`None` /
//!   `Pop::Drained`) is observed by *every* worker only after the last
//!   completion — the two-phase-drain contract.
//! - pool: leases are mutually exclusive per slot, slots return on drop,
//!   and the quarantine → probation-probe → readmission cycle grants
//!   exactly one probe no matter how many workers race for it.
//! - heartbeats: concurrent scanners cancel a stalled peer exactly once
//!   and never themselves.

#![cfg(loom)]

use dqmc::{ModelParams, SimParams};
use gpusim::{BreakerPolicy, DevicePool, DeviceSpec, HealthDecision};
use lattice::Lattice;
use sched::{Heartbeats, JobQueue, Pop, SweepJob};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn job(point: usize) -> SweepJob {
    let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 4);
    SweepJob::new(point, 0, SimParams::new(model))
}

/// A worker turn: requeue the job on its first pop (a simulated preemption
/// yield), complete it on the second. Returns `true` when it completed.
fn work_one(q: &JobQueue, mut j: SweepJob) -> bool {
    if j.preemptions == 0 {
        j.preemptions = 1;
        q.requeue(j);
        false
    } else {
        q.complete();
        true
    }
}

#[test]
fn queue_two_phase_drain_completes_every_job_and_unblocks_all_workers() {
    loom::model(|| {
        let q = Arc::new(JobQueue::new(3));
        let completed = Arc::new(AtomicUsize::new(0));
        for p in 0..3 {
            q.submit(job(p)).expect("bound holds the full batch");
        }

        // Worker A drains on the blocking path (the pop_blocking contract:
        // None only once nothing is outstanding).
        let (qa, ca) = (Arc::clone(&q), Arc::clone(&completed));
        let a = loom::thread::spawn(move || {
            while let Some(j) = qa.pop_blocking() {
                if work_one(&qa, j) {
                    ca.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Worker B drains on the bounded-wait path the production runner
        // uses, so Empty-vs-Drained is exercised in the same schedule.
        let (qb, cb) = (Arc::clone(&q), Arc::clone(&completed));
        let b = loom::thread::spawn(move || loop {
            match qb.pop_timeout(1) {
                Pop::Job(j) => {
                    if work_one(&qb, j) {
                        cb.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Pop::Empty => loom::thread::yield_now(),
                Pop::Drained => return,
            }
        });

        // Liveness: the last complete() must broadcast termination to the
        // blocked peer — a lost wakeup hangs the joins right here.
        a.join().expect("worker A exits");
        b.join().expect("worker B exits");
        assert_eq!(completed.load(Ordering::Relaxed), 3, "each job once");
        assert_eq!(q.waiting(), 0);
        assert!(matches!(q.pop_timeout(0), Pop::Drained));
    });
}

#[test]
fn pool_leases_stay_exclusive_and_return_on_drop() {
    loom::model(|| {
        let pool = DevicePool::new(DeviceSpec::tesla_c2050(), 2);
        let busy: Arc<[AtomicBool; 2]> = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let (pool, busy) = (pool.clone(), Arc::clone(&busy));
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        if let Some(lease) = pool.try_lease() {
                            let was = busy[lease.slot()].swap(true, Ordering::SeqCst);
                            assert!(!was, "slot {} double-leased", lease.slot());
                            loom::thread::yield_now();
                            // Clear before drop: after drop the slot is
                            // leasable again and a peer may assert on it.
                            busy[lease.slot()].store(false, Ordering::SeqCst);
                            drop(lease);
                        } else {
                            loom::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("lease worker exits");
        }
        assert_eq!(pool.available(), 2, "every slot returned on drop");
    });
}

#[test]
fn pool_quarantine_grants_one_probe_and_readmits_under_racing_leasers() {
    loom::model(|| {
        let policy = BreakerPolicy {
            strikes: 1,
            window: 2,
            probation_backoff: 1,
        };
        let pool = DevicePool::with_policy(DeviceSpec::tesla_c2050(), 1, policy);
        assert!(matches!(
            pool.report_failure(0, true),
            HealthDecision::Opened { .. }
        ));

        // Two workers race the quarantined slot. The state machine must
        // hand out exactly one probation probe; the loser's grant comes
        // only after the winner's success report re-admits the slot.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = pool.clone();
                loom::thread::spawn(move || loop {
                    let Some(lease) = pool.try_lease() else {
                        loom::thread::yield_now();
                        continue;
                    };
                    let probe = lease.is_probe();
                    drop(lease);
                    if probe {
                        assert_eq!(
                            pool.report_success(0),
                            HealthDecision::Readmitted { slot: 0 }
                        );
                    } else {
                        assert_eq!(
                            pool.readmissions(),
                            1,
                            "healthy grant must follow the readmission"
                        );
                    }
                    return probe;
                })
            })
            .collect();
        let probes_won: usize = workers
            .into_iter()
            .map(|w| usize::from(w.join().expect("prober exits")))
            .sum();
        assert_eq!(probes_won, 1, "exactly one worker held the probe");
        assert_eq!((pool.probes(), pool.readmissions()), (1, 1));
        assert_eq!(pool.quarantines(), 1, "success probe does not re-open");
        let healthy = pool.try_lease().expect("slot is back in rotation");
        assert!(!healthy.is_probe());
    });
}

#[test]
fn heartbeat_scanners_cancel_a_stalled_peer_exactly_once() {
    loom::model(|| {
        let hearts = Arc::new(Heartbeats::new(3));
        let peer_cancels = Arc::new(AtomicUsize::new(0));
        // Workers 0 and 1 tick and scan concurrently; worker 2 is stalled.
        let scanners: Vec<_> = (0..2)
            .map(|id| {
                let (hearts, peer_cancels) = (Arc::clone(&hearts), Arc::clone(&peer_cancels));
                loom::thread::spawn(move || {
                    for _ in 0..4 {
                        hearts.token(id).tick();
                        let cancelled = hearts.scan(id, 2);
                        assert!(!cancelled.contains(&id), "scanner cancelled itself");
                        let hits = cancelled.iter().filter(|&&w| w == 2).count();
                        peer_cancels.fetch_add(hits, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for s in scanners {
            s.join().expect("scanner exits");
        }
        // 8 scans at stall limit 2 guarantee the cancellation fired, and
        // the is_cancelled check inside the scan's critical section must
        // keep concurrent scanners from double-reporting it.
        assert!(hearts.token(2).is_cancelled(), "stalled worker cancelled");
        assert_eq!(peer_cancels.load(Ordering::Relaxed), 1, "single cancel");
    });
}
