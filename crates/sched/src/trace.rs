//! Progress/trace event stream of a sweep run.
//!
//! Every scheduling decision emits a [`TraceEvent`]: job started (and
//! where), yielded at a checkpoint boundary, completed, retried after a
//! panic, or failed for good. The CLI turns these into progress lines; the
//! determinism tests use them to *prove* that preemptions and placement
//! changes actually happened in runs whose reports are then asserted
//! byte-identical.
//!
//! Events describe the schedule, which is timing-dependent by nature — the
//! determinism contract covers the report's observables, never this stream.

use std::fmt;
use std::sync::Arc;
// Poison recovery via util::relock is sound here: `Vec::push` either
// appended or it didn't — a panic unwinding through a worker must not take
// the whole trace (and with it the scheduler's liveness evidence) down.
use util::sync::{relock, Mutex};

/// Where a job ran for one scheduling quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Host `ComputeBackend` (no device lease was free).
    Host,
    /// Leased device-pool slot.
    Device {
        /// Pool slot id.
        slot: usize,
    },
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::Host => write!(f, "host"),
            Placement::Device { slot } => write!(f, "dev{slot}"),
        }
    }
}

/// One scheduling decision.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A worker picked the job up (fresh or resumed from a parked image).
    Started {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Worker id.
        worker: usize,
        /// Backend placement for this run.
        placement: Placement,
        /// True when resuming a parked checkpoint image.
        resumed: bool,
    },
    /// The job parked itself at a checkpoint boundary and requeued.
    Yielded {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Sweeps (warmup + measurement) completed so far.
        sweeps_done: usize,
    },
    /// The job finished all its sweeps.
    Completed {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Worker id.
        worker: usize,
    },
    /// The job's run panicked (recovery ladder exhausted) and will restart
    /// from its last parked image (or from scratch).
    Retried {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// 1-based restart attempt.
        attempt: u32,
    },
    /// The job exhausted its scheduler-level retry budget.
    Failed {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Total attempts consumed.
        attempts: u32,
    },
    /// The watchdog's soft deadline fired: the job was asked to park
    /// cooperatively from its last checkpoint image and was requeued with
    /// the suspect slot excluded.
    SoftDeadline {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// The suspect device slot (`usize::MAX` for a host placement).
        slot: usize,
    },
    /// The hard deadline fired: the worker's run was declared lost (a
    /// wedged device never returned) and the job was resurrected from its
    /// last parked image.
    WorkerLost {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// The worker whose run was written off.
        worker: usize,
        /// The suspect device slot (`usize::MAX` for a host placement).
        slot: usize,
    },
    /// The device-pool circuit breaker opened (or re-opened after a failed
    /// probation probe): the slot entered quarantine.
    BreakerOpen {
        /// The quarantined slot.
        slot: usize,
        /// Logical lease-clock ticks until a probation probe may go out.
        backoff: u64,
        /// True when a failed probe renewed the quarantine.
        reopened: bool,
    },
    /// A quarantined slot's backoff elapsed and a probation probe lease
    /// went out.
    ProbeGranted {
        /// The probed slot.
        slot: usize,
    },
    /// A probation probe succeeded and the slot was re-admitted.
    SlotReadmitted {
        /// The healthy-again slot.
        slot: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Started {
                point,
                chain,
                worker,
                placement,
                resumed,
            } => {
                let verb = if *resumed { "resume" } else { "start" };
                write!(f, "[w{worker}] {verb} p{point}c{chain} on {placement}")
            }
            TraceEvent::Yielded {
                point,
                chain,
                sweeps_done,
            } => write!(f, "yield p{point}c{chain} at {sweeps_done} sweeps"),
            TraceEvent::Completed {
                point,
                chain,
                worker,
            } => write!(f, "[w{worker}] done p{point}c{chain}"),
            TraceEvent::Retried {
                point,
                chain,
                attempt,
            } => write!(f, "retry p{point}c{chain} (attempt {attempt})"),
            TraceEvent::Failed {
                point,
                chain,
                attempts,
            } => write!(f, "FAILED p{point}c{chain} after {attempts} attempts"),
            TraceEvent::SoftDeadline { point, chain, slot } => {
                write!(f, "soft-deadline park p{point}c{chain} (")?;
                if *slot == usize::MAX {
                    write!(f, "host")?;
                } else {
                    write!(f, "dev{slot}")?;
                }
                write!(f, " suspect)")
            }
            TraceEvent::WorkerLost {
                point,
                chain,
                worker,
                slot,
            } => {
                write!(f, "[w{worker}] LOST p{point}c{chain} (")?;
                if *slot == usize::MAX {
                    write!(f, "host")?;
                } else {
                    write!(f, "dev{slot}")?;
                }
                write!(f, " wedged); resurrecting from parked image")
            }
            TraceEvent::BreakerOpen {
                slot,
                backoff,
                reopened,
            } => {
                let verb = if *reopened { "re-opened" } else { "opened" };
                write!(f, "breaker {verb} on dev{slot} (backoff {backoff})")
            }
            TraceEvent::ProbeGranted { slot } => write!(f, "probation probe on dev{slot}"),
            TraceEvent::SlotReadmitted { slot } => write!(f, "dev{slot} re-admitted"),
        }
    }
}

/// Thread-safe event collector shared between workers. Cloning clones the
/// handle; all clones append to the same log.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends one event.
    pub fn push(&self, e: TraceEvent) {
        relock(self.events.lock()).push(e);
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        relock(self.events.lock()).clone()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        relock(self.events.lock())
            .iter()
            .filter(|e| pred(e))
            .count()
    }

    /// Poisons the event mutex by panicking while holding it — the
    /// regression hook for the poison-recovery tests. Panicking is the
    /// whole point here.
    // dqmc-lint: allow(panic_site)
    #[cfg(test)]
    pub(crate) fn poison_for_test(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = relock(self.events.lock());
            panic!("poisoning event log for test");
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let e = TraceEvent::Started {
            point: 3,
            chain: 1,
            worker: 0,
            placement: Placement::Device { slot: 2 },
            resumed: true,
        };
        assert_eq!(e.to_string(), "[w0] resume p3c1 on dev2");
        let y = TraceEvent::Yielded {
            point: 0,
            chain: 0,
            sweeps_done: 25,
        };
        assert_eq!(y.to_string(), "yield p0c0 at 25 sweeps");
    }

    #[test]
    fn log_collects_and_counts() {
        let log = EventLog::new();
        let h = log.clone();
        h.push(TraceEvent::Completed {
            point: 0,
            chain: 0,
            worker: 0,
        });
        h.push(TraceEvent::Yielded {
            point: 0,
            chain: 1,
            sweeps_done: 5,
        });
        assert_eq!(log.snapshot().len(), 2);
        assert_eq!(log.count(|e| matches!(e, TraceEvent::Yielded { .. })), 1);
    }

    #[test]
    fn health_events_render_compactly() {
        let s = TraceEvent::SoftDeadline {
            point: 1,
            chain: 0,
            slot: 2,
        };
        assert_eq!(s.to_string(), "soft-deadline park p1c0 (dev2 suspect)");
        let l = TraceEvent::WorkerLost {
            point: 0,
            chain: 1,
            worker: 3,
            slot: usize::MAX,
        };
        assert_eq!(
            l.to_string(),
            "[w3] LOST p0c1 (host wedged); resurrecting from parked image"
        );
        let b = TraceEvent::BreakerOpen {
            slot: 1,
            backoff: 8,
            reopened: true,
        };
        assert_eq!(b.to_string(), "breaker re-opened on dev1 (backoff 8)");
        assert_eq!(
            TraceEvent::ProbeGranted { slot: 0 }.to_string(),
            "probation probe on dev0"
        );
        assert_eq!(
            TraceEvent::SlotReadmitted { slot: 0 }.to_string(),
            "dev0 re-admitted"
        );
    }

    #[test]
    fn event_log_survives_poisoning_panic() {
        let log = EventLog::new();
        log.push(TraceEvent::Completed {
            point: 0,
            chain: 0,
            worker: 0,
        });
        log.poison_for_test();
        log.push(TraceEvent::ProbeGranted { slot: 0 });
        assert_eq!(log.snapshot().len(), 2, "events intact through poisoning");
        assert_eq!(
            log.count(|e| matches!(e, TraceEvent::ProbeGranted { .. })),
            1
        );
    }
}
