//! Progress/trace event stream of a sweep run.
//!
//! Every scheduling decision emits a [`TraceEvent`]: job started (and
//! where), yielded at a checkpoint boundary, completed, retried after a
//! panic, or failed for good. The CLI turns these into progress lines; the
//! determinism tests use them to *prove* that preemptions and placement
//! changes actually happened in runs whose reports are then asserted
//! byte-identical.
//!
//! Events describe the schedule, which is timing-dependent by nature — the
//! determinism contract covers the report's observables, never this stream.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Where a job ran for one scheduling quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Host `ComputeBackend` (no device lease was free).
    Host,
    /// Leased device-pool slot.
    Device {
        /// Pool slot id.
        slot: usize,
    },
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::Host => write!(f, "host"),
            Placement::Device { slot } => write!(f, "dev{slot}"),
        }
    }
}

/// One scheduling decision.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A worker picked the job up (fresh or resumed from a parked image).
    Started {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Worker id.
        worker: usize,
        /// Backend placement for this run.
        placement: Placement,
        /// True when resuming a parked checkpoint image.
        resumed: bool,
    },
    /// The job parked itself at a checkpoint boundary and requeued.
    Yielded {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Sweeps (warmup + measurement) completed so far.
        sweeps_done: usize,
    },
    /// The job finished all its sweeps.
    Completed {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Worker id.
        worker: usize,
    },
    /// The job's run panicked (recovery ladder exhausted) and will restart
    /// from its last parked image (or from scratch).
    Retried {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// 1-based restart attempt.
        attempt: u32,
    },
    /// The job exhausted its scheduler-level retry budget.
    Failed {
        /// Grid point index.
        point: usize,
        /// Chain index within the point.
        chain: usize,
        /// Total attempts consumed.
        attempts: u32,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Started {
                point,
                chain,
                worker,
                placement,
                resumed,
            } => {
                let verb = if *resumed { "resume" } else { "start" };
                write!(f, "[w{worker}] {verb} p{point}c{chain} on {placement}")
            }
            TraceEvent::Yielded {
                point,
                chain,
                sweeps_done,
            } => write!(f, "yield p{point}c{chain} at {sweeps_done} sweeps"),
            TraceEvent::Completed {
                point,
                chain,
                worker,
            } => write!(f, "[w{worker}] done p{point}c{chain}"),
            TraceEvent::Retried {
                point,
                chain,
                attempt,
            } => write!(f, "retry p{point}c{chain} (attempt {attempt})"),
            TraceEvent::Failed {
                point,
                chain,
                attempts,
            } => write!(f, "FAILED p{point}c{chain} after {attempts} attempts"),
        }
    }
}

/// Thread-safe event collector shared between workers. Cloning clones the
/// handle; all clones append to the same log.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends one event.
    pub fn push(&self, e: TraceEvent) {
        self.events.lock().expect("event log poisoned").push(e);
    }

    /// A snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("event log poisoned")
            .iter()
            .filter(|e| pred(e))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compactly() {
        let e = TraceEvent::Started {
            point: 3,
            chain: 1,
            worker: 0,
            placement: Placement::Device { slot: 2 },
            resumed: true,
        };
        assert_eq!(e.to_string(), "[w0] resume p3c1 on dev2");
        let y = TraceEvent::Yielded {
            point: 0,
            chain: 0,
            sweeps_done: 25,
        };
        assert_eq!(y.to_string(), "yield p0c0 at 25 sweeps");
    }

    #[test]
    fn log_collects_and_counts() {
        let log = EventLog::new();
        let h = log.clone();
        h.push(TraceEvent::Completed {
            point: 0,
            chain: 0,
            worker: 0,
        });
        h.push(TraceEvent::Yielded {
            point: 0,
            chain: 1,
            sweeps_done: 5,
        });
        assert_eq!(log.snapshot().len(), 2);
        assert_eq!(log.count(|e| matches!(e, TraceEvent::Yielded { .. })), 1);
    }
}
