//! Watchdogs: logical-cost deadlines and worker heartbeats.
//!
//! Two independent liveness layers, both keyed to *logical* clocks so every
//! decision replays identically across runs and machines:
//!
//! - [`QuantumWatchdog`] — fail-slow detection. The device model charges
//!   every operation's analytic cost to a [`util::SimClock`]; a shared
//!   meter mirrors those advances as integer nanoseconds. The watchdog
//!   reads the meter at each scheduling-quantum boundary and compares the
//!   quantum's cost against a soft deadline. A latency-inflated device
//!   (the `slow` fault class) produces bit-identical numerics but blows
//!   the budget — which is exactly how a fail-slow device looks in a real
//!   fleet: correct answers, uselessly late.
//! - [`Heartbeats`] — lost-worker detection. Each worker stamps a shared
//!   [`RunToken`] at every sweep boundary; idle workers scan the registry
//!   and cancel the token of any peer whose progress has not moved for a
//!   configured number of scans, requesting a cooperative park at the next
//!   safe boundary. This is the backstop against *real* hangs (a logic bug
//!   looping forever); the simulated fault classes never block a thread,
//!   so in tests the scan only proves the machinery is wired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use util::RunToken;
// Poison recovery via util::relock — the heartbeat registry must keep
// working when the very worker it was watching dies holding the lock.
use util::sync::{relock, Mutex};

/// What the quantum watchdog concluded at a quantum boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeadlineVerdict {
    /// The quantum's logical cost was within budget.
    Healthy,
    /// The soft deadline fired: the quantum cost more logical seconds than
    /// the budget allows. The scheduler parks the job cooperatively and
    /// indicts the device slot.
    SoftExceeded {
        /// The quantum's observed logical cost, in seconds.
        cost_s: f64,
    },
}

/// Per-placement fail-slow watchdog over the device's logical clock.
///
/// One watchdog is created per device placement; its meter is attached to
/// the device clock before the first kernel, and
/// [`QuantumWatchdog::observe_quantum`] is called after every quantum.
#[derive(Debug)]
pub struct QuantumWatchdog {
    /// Soft deadline per quantum, in logical device-seconds.
    budget_s: f64,
    meter: Arc<AtomicU64>,
    last_ns: u64,
}

impl QuantumWatchdog {
    /// A watchdog allowing each quantum `budget_s` logical device-seconds.
    pub fn new(budget_s: f64) -> Self {
        QuantumWatchdog {
            budget_s,
            meter: Arc::new(AtomicU64::new(0)),
            last_ns: 0,
        }
    }

    /// The shared meter to install on the device clock
    /// (`Device::set_cost_meter`).
    pub fn meter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.meter)
    }

    /// Charges the logical cost accumulated since the previous call against
    /// the per-quantum budget.
    pub fn observe_quantum(&mut self) -> DeadlineVerdict {
        let now = self.meter.load(Ordering::Relaxed);
        let delta_ns = now.saturating_sub(self.last_ns);
        self.last_ns = now;
        let cost_s = delta_ns as f64 / 1e9;
        if cost_s > self.budget_s {
            DeadlineVerdict::SoftExceeded { cost_s }
        } else {
            DeadlineVerdict::Healthy
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct HeartState {
    last_progress: u64,
    stalls: u32,
}

/// Registry of per-worker liveness tokens.
///
/// Workers stamp their own token (via `Simulation::try_step`); any worker
/// with idle time calls [`Heartbeats::scan`], which cancels the token of
/// every peer that has gone `stall_limit` consecutive scans without
/// progress — the hard-deadline path for a genuinely stuck thread.
#[derive(Debug)]
pub struct Heartbeats {
    tokens: Vec<Arc<RunToken>>,
    state: Mutex<Vec<HeartState>>,
}

impl Heartbeats {
    /// A registry with one fresh token per worker.
    pub fn new(workers: usize) -> Self {
        Heartbeats {
            tokens: (0..workers).map(|_| Arc::new(RunToken::new())).collect(),
            state: Mutex::new(vec![HeartState::default(); workers]),
        }
    }

    /// The liveness token of `worker`.
    pub fn token(&self, worker: usize) -> Arc<RunToken> {
        Arc::clone(&self.tokens[worker])
    }

    /// One scan round: updates each worker's stall counter and cancels the
    /// token of any worker (other than `scanner`) whose progress has been
    /// frozen for `stall_limit` consecutive scans. Returns the workers
    /// cancelled *by this scan*. A `stall_limit` of 0 disables cancellation.
    pub fn scan(&self, scanner: usize, stall_limit: u32) -> Vec<usize> {
        let mut cancelled = Vec::new();
        let mut state = relock(self.state.lock());
        for (w, (token, heart)) in self.tokens.iter().zip(state.iter_mut()).enumerate() {
            let progress = token.progress();
            if progress != heart.last_progress {
                heart.last_progress = progress;
                heart.stalls = 0;
                continue;
            }
            heart.stalls = heart.stalls.saturating_add(1);
            if w != scanner
                && stall_limit > 0
                && heart.stalls >= stall_limit
                && !token.is_cancelled()
            {
                token.cancel();
                cancelled.push(w);
            }
        }
        cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_watchdog_charges_meter_deltas() {
        let mut wd = QuantumWatchdog::new(1.0);
        let meter = wd.meter();
        meter.fetch_add(900_000_000, Ordering::Relaxed); // 0.9 s
        assert_eq!(wd.observe_quantum(), DeadlineVerdict::Healthy);
        meter.fetch_add(1_500_000_000, Ordering::Relaxed); // +1.5 s
        match wd.observe_quantum() {
            DeadlineVerdict::SoftExceeded { cost_s } => {
                assert!((cost_s - 1.5).abs() < 1e-9, "{cost_s}")
            }
            v => panic!("expected soft deadline, got {v:?}"),
        }
        // The deadline is per quantum, not cumulative: a clean quantum
        // after a slow one is healthy again.
        assert_eq!(wd.observe_quantum(), DeadlineVerdict::Healthy);
    }

    #[test]
    fn heartbeat_scan_cancels_stalled_peers_only() {
        let hearts = Heartbeats::new(2);
        let busy = hearts.token(0);
        // Worker 0 makes progress between scans; worker 1 is frozen.
        for _ in 0..3 {
            busy.tick();
            let cancelled = hearts.scan(0, 2);
            assert!(!busy.is_cancelled());
            if hearts.token(1).is_cancelled() {
                assert_eq!(cancelled, vec![1]);
                return;
            }
        }
        panic!("stalled worker 1 was never cancelled");
    }

    #[test]
    fn scanner_never_cancels_itself_and_zero_limit_disables() {
        let hearts = Heartbeats::new(1);
        for _ in 0..10 {
            assert!(hearts.scan(0, 2).is_empty(), "scanner must not self-cancel");
        }
        assert!(!hearts.token(0).is_cancelled());
        let hearts = Heartbeats::new(2);
        for _ in 0..10 {
            assert!(hearts.scan(0, 0).is_empty(), "limit 0 disables the scan");
        }
        assert!(!hearts.token(1).is_cancelled());
    }
}
