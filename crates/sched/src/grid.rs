//! Grid-spec files: the declarative input of a sweep campaign.
//!
//! The format is the `key = value` dialect of the CLI's input files, with
//! two list-valued keys — `u` and `beta` — whose Cartesian product defines
//! the grid. Everything else (lattice, sweeps, chains, scheduler knobs)
//! is shared by every point:
//!
//! ```text
//! # 2x2 campaign
//! lx = 4
//! ly = 4
//! u = 2.0, 4.0          # grid axis
//! beta = 2.0, 4.0       # grid axis (slices = beta / dtau)
//! chains = 2
//! warmup = 50
//! sweeps = 200
//! seed = 42
//! workers = 2
//! devices = 1
//! quantum = 25          # sweeps per scheduling quantum
//! faults = fail_launch:2, corrupt_transfer:5
//! ```
//!
//! Points are numbered u-major (`point = iu * nbeta + ib`); that index is
//! the `stream` coordinate of the seed hash-split, so renumbering the grid
//! is a physics change and the ordering is part of the format contract.
//!
//! The `faults` DSL arms every *device-placed* job with the same scripted
//! [`FaultPlan`]. Only bit-identically-healing fault classes are accepted
//! (launch failures, arena exhaustion, NaN transfer corruption — all healed
//! by RNG-free retry); finite bit flips are rejected because their repair
//! path rebuilds `G` from the HS field, which is correct but not
//! bit-identical to the never-faulted stream, and would break the
//! determinism contract.

use dqmc::{ModelParams, RecoveryPolicy, SimParams};
use gpusim::FaultPlan;
use lattice::Lattice;
use std::fmt;

/// A malformed grid spec: line number (1-based, 0 when global) and message.
#[derive(Debug)]
pub struct GridError {
    /// Line the error was found on; 0 for whole-file problems.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "grid spec: {}", self.message)
        } else {
            write!(f, "grid spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for GridError {}

/// One scripted fault with its 1-based operation ordinal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Kernel launch failure at the nth launch.
    FailLaunch(u64),
    /// Scratch-arena exhaustion at the nth allocation.
    Oom(u64),
    /// Silent NaN corruption of the nth download.
    CorruptTransfer(u64),
    /// Latency inflation of the nth launch by an integer factor — a
    /// fail-slow fault: numerics are untouched (bit-safe), only the logical
    /// clock inflates, which the scheduler's quantum watchdog detects.
    Slow(u64, u32),
}

/// One scripted *slot* fault: sickness as a property of a device in the
/// pool, not of whichever job lands on it. Armed via
/// [`DevicePool::set_slot_profile`](gpusim::DevicePool::set_slot_profile)
/// and merged into every job plan placed on the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotFault {
    /// Device-pool slot the fault is installed on.
    pub slot: usize,
    /// The scripted misbehaviour.
    pub op: SlotFaultOp,
    /// Persistent profiles survive a breaker opening (the device keeps
    /// failing probation probes, exercising exponential backoff);
    /// non-persistent ones heal while the slot rests in quarantine.
    pub persistent: bool,
}

/// The slot-fault classes of the chaos DSL. Ordinals count the slot's
/// launches within one job placement (each job gets a fresh device
/// context, so the schedule replays per placement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotFaultOp {
    /// The nth launch hangs; the logical watchdog kills it (soft deadline).
    Hang(u64),
    /// The nth launch wedges the device for good (hard deadline).
    Wedge(u64),
    /// The nth launch is inflated by an integer latency factor.
    Slow(u64, u32),
    /// Every launch in `[lo, hi]` fails sick (intermittent sick device).
    SickWindow(u64, u64),
}

/// A declared sweep campaign: grid axes plus shared physics and scheduling
/// parameters.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Lattice extent in x.
    pub lx: usize,
    /// Lattice extent in y.
    pub ly: usize,
    /// Hopping amplitude.
    pub t: f64,
    /// Chemical potential.
    pub mu: f64,
    /// Imaginary-time step Δτ.
    pub dtau: f64,
    /// Grid axis: on-site repulsion values.
    pub us: Vec<f64>,
    /// Grid axis: inverse temperatures (slices = β/Δτ, rounded).
    pub betas: Vec<f64>,
    /// Independent Markov chains per grid point.
    pub chains: usize,
    /// Crowd size B: chains batched per job, stepped in lockstep through
    /// one (batched) backend. 1 = solo jobs; larger crowds amortise kernel
    /// launches and transfer latency without changing any observable.
    pub crowd: usize,
    /// Warmup sweeps per chain.
    pub warmup: usize,
    /// Measurement sweeps per chain.
    pub sweeps: usize,
    /// Measurement bin size.
    pub bin_size: usize,
    /// Cluster size k (clamped per point to its slice count).
    pub cluster_size: usize,
    /// Campaign base seed; chain seeds hash-split from it.
    pub seed: u64,
    /// Fault recovery ladder on/off.
    pub recovery: bool,
    /// Retry budget inside the recovery ladder.
    pub max_retries: u32,
    /// Worker threads.
    pub workers: usize,
    /// Simulated accelerator slots in the device pool.
    pub devices: usize,
    /// Sweeps per scheduling quantum (0 = run jobs to completion).
    pub quantum: usize,
    /// Scheduler-level restarts of a panicked job.
    pub job_retries: u32,
    /// Scripted faults armed on every device-placed job.
    pub faults: Vec<FaultOp>,
    /// Scripted sick-device profiles installed on pool slots.
    pub slot_faults: Vec<SlotFault>,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            lx: 4,
            ly: 4,
            t: 1.0,
            mu: 0.0,
            dtau: 0.125,
            us: vec![4.0],
            betas: vec![2.0],
            chains: 2,
            crowd: 1,
            warmup: 50,
            sweeps: 200,
            bin_size: 5,
            cluster_size: 8,
            seed: 42,
            recovery: true,
            max_retries: 2,
            workers: 1,
            devices: 1,
            quantum: 0,
            job_retries: 1,
            faults: Vec::new(),
            slot_faults: Vec::new(),
        }
    }
}

/// One grid coordinate with its resolved discretisation.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Flat point index (u-major) — the seed hash-split's stream id.
    pub index: usize,
    /// On-site repulsion at this point.
    pub u: f64,
    /// Inverse temperature at this point.
    pub beta: f64,
    /// Time slices `round(beta / dtau)`, at least 1.
    pub slices: usize,
}

impl GridSpec {
    /// Parses a grid-spec file. Unknown keys are errors (typos must not
    /// silently fall back to defaults — same policy as the CLI inputs).
    pub fn parse(text: &str) -> Result<GridSpec, GridError> {
        let mut spec = GridSpec::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = ln + 1;
            let stripped = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if stripped.is_empty() {
                continue;
            }
            let Some((key, value)) = stripped.split_once('=') else {
                return Err(GridError {
                    line,
                    message: format!("expected 'key = value', got '{stripped}'"),
                });
            };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            let bad = |message: String| GridError { line, message };
            match key.as_str() {
                "lx" => spec.lx = parse_usize(value).map_err(bad)?,
                "ly" => spec.ly = parse_usize(value).map_err(bad)?,
                "t" => spec.t = parse_f64(value).map_err(bad)?,
                "mu" => spec.mu = parse_f64(value).map_err(bad)?,
                "dtau" => spec.dtau = parse_f64(value).map_err(bad)?,
                "u" => spec.us = parse_f64_list(value).map_err(bad)?,
                "beta" => spec.betas = parse_f64_list(value).map_err(bad)?,
                "chains" => spec.chains = parse_usize(value).map_err(bad)?,
                "crowd" => spec.crowd = parse_usize(value).map_err(bad)?,
                "warmup" => spec.warmup = parse_usize(value).map_err(bad)?,
                "sweeps" => spec.sweeps = parse_usize(value).map_err(bad)?,
                "bin_size" => spec.bin_size = parse_usize(value).map_err(bad)?,
                "cluster_size" | "k" => spec.cluster_size = parse_usize(value).map_err(bad)?,
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|e| format!("bad u64 '{value}': {e}"))
                        .map_err(bad)?
                }
                "recovery" => spec.recovery = parse_bool(value).map_err(bad)?,
                "max_retries" => spec.max_retries = parse_u32(value).map_err(bad)?,
                "workers" => spec.workers = parse_usize(value).map_err(bad)?,
                "devices" => spec.devices = parse_usize(value).map_err(bad)?,
                "quantum" => spec.quantum = parse_usize(value).map_err(bad)?,
                "job_retries" => spec.job_retries = parse_u32(value).map_err(bad)?,
                "faults" => spec.faults = parse_faults(value).map_err(bad)?,
                "slot_faults" => spec.slot_faults = parse_slot_faults(value).map_err(bad)?,
                other => {
                    return Err(GridError {
                        line,
                        message: format!("unknown key '{other}'"),
                    })
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), GridError> {
        let bad = |message: String| Err(GridError { line: 0, message });
        if self.us.is_empty() || self.betas.is_empty() {
            return bad("grid axes 'u' and 'beta' must be non-empty".into());
        }
        if self.us.iter().any(|&u| u < 0.0) {
            return bad("repulsive model: every u must be >= 0".into());
        }
        if self.betas.iter().any(|&b| b <= 0.0) {
            return bad("every beta must be positive".into());
        }
        if self.dtau <= 0.0 {
            return bad("dtau must be positive".into());
        }
        if self.chains == 0 || self.sweeps == 0 {
            return bad("chains and sweeps must be positive".into());
        }
        if self.crowd == 0 {
            return bad("crowd must be positive (1 = solo jobs)".into());
        }
        if self.bin_size == 0 || self.cluster_size == 0 {
            return bad("bin_size and cluster_size must be positive".into());
        }
        if self.workers == 0 {
            return bad("need at least one worker".into());
        }
        if let Some(sf) = self.slot_faults.iter().find(|sf| sf.slot >= self.devices) {
            return bad(format!(
                "slot_faults names slot {} but the pool has {} devices",
                sf.slot, self.devices
            ));
        }
        Ok(())
    }

    /// The grid points in canonical (u-major) order.
    pub fn points(&self) -> Vec<GridPoint> {
        let mut pts = Vec::with_capacity(self.us.len() * self.betas.len());
        for (iu, &u) in self.us.iter().enumerate() {
            for (ib, &beta) in self.betas.iter().enumerate() {
                let index = iu * self.betas.len() + ib;
                let slices = ((beta / self.dtau).round() as usize).max(1);
                pts.push(GridPoint {
                    index,
                    u,
                    beta,
                    slices,
                });
            }
        }
        pts
    }

    /// Total jobs the campaign schedules.
    pub fn total_jobs(&self) -> usize {
        self.us.len() * self.betas.len() * self.chains
    }

    /// The simulation parameters for one chain of one point, with the
    /// hash-split seed. This is *the* definition of the campaign's physics:
    /// every consumer (scheduler, tests, reference serial runs) must build
    /// parameters through here so they agree bit-for-bit.
    pub fn chain_params(&self, point: &GridPoint, chain: usize) -> SimParams {
        let model = ModelParams::new(
            Lattice::square(self.lx, self.ly, self.t),
            point.u,
            self.mu,
            self.dtau,
            point.slices,
        );
        let policy = if self.recovery {
            RecoveryPolicy {
                max_retries: self.max_retries,
                ..RecoveryPolicy::default()
            }
        } else {
            RecoveryPolicy::disabled()
        };
        SimParams::new(model)
            .with_sweeps(self.warmup, self.sweeps)
            .with_cluster_size(self.cluster_size)
            .with_bin_size(self.bin_size)
            .with_seed(dqmc::chain_seed(
                self.seed,
                point.index as u64,
                chain as u64,
            ))
            .with_recovery(policy)
    }

    /// Builds the scripted device fault plan for one job, or `None` when
    /// the campaign declares no faults. The corruption RNG is seeded from
    /// the job's chain seed, so a given job misbehaves identically on every
    /// attempt and in every scheduling configuration.
    pub fn fault_plan(&self, point: &GridPoint, chain: usize) -> Option<FaultPlan> {
        if self.faults.is_empty() {
            return None;
        }
        let seed = dqmc::chain_seed(self.seed, point.index as u64, chain as u64);
        let mut plan = FaultPlan::new().with_seed(seed ^ 0xFA17_FA17_FA17_FA17);
        for op in &self.faults {
            plan = match *op {
                FaultOp::FailLaunch(n) => plan.fail_launch(n),
                FaultOp::Oom(n) => plan.oom_at_alloc(n),
                FaultOp::CorruptTransfer(n) => plan.corrupt_transfer(n),
                FaultOp::Slow(n, factor) => plan.slow_launch(n, f64::from(factor)),
            };
        }
        Some(plan)
    }

    /// The scripted sick-device profiles, one merged [`FaultPlan`] per slot
    /// (with its persistence flag), ready for
    /// [`DevicePool::set_slot_profile`](gpusim::DevicePool::set_slot_profile).
    /// A slot is persistent when *any* of its declared faults is.
    pub fn slot_profiles(&self) -> Vec<(usize, FaultPlan, bool)> {
        let mut out: Vec<(usize, FaultPlan, bool)> = Vec::new();
        for sf in &self.slot_faults {
            let plan = match sf.op {
                SlotFaultOp::Hang(n) => FaultPlan::new().hang_at_launch(n),
                SlotFaultOp::Wedge(n) => FaultPlan::new().wedge_at_launch(n),
                SlotFaultOp::Slow(n, factor) => FaultPlan::new().slow_launch(n, f64::from(factor)),
                SlotFaultOp::SickWindow(lo, hi) => FaultPlan::new().sick_window(lo, hi),
            };
            match out.iter_mut().find(|(slot, _, _)| *slot == sf.slot) {
                Some((_, merged, persistent)) => {
                    *merged = merged.clone().merge(plan);
                    *persistent |= sf.persistent;
                }
                None => out.push((sf.slot, plan, sf.persistent)),
            }
        }
        out
    }
}

fn parse_usize(v: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("bad integer '{v}': {e}"))
}

fn parse_u32(v: &str) -> Result<u32, String> {
    v.parse().map_err(|e| format!("bad integer '{v}': {e}"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    v.parse().map_err(|e| format!("bad number '{v}': {e}"))
}

fn parse_f64_list(v: &str) -> Result<Vec<f64>, String> {
    v.split(',').map(|s| parse_f64(s.trim())).collect()
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v.to_ascii_lowercase().as_str() {
        "yes" | "true" | "on" | "1" => Ok(true),
        "no" | "false" | "off" | "0" => Ok(false),
        other => Err(format!("bad bool '{other}' (yes/no)")),
    }
}

fn parse_faults(v: &str) -> Result<Vec<FaultOp>, String> {
    v.split(',')
        .map(|item| {
            let item = item.trim();
            let Some((op, rest)) = item.split_once(':') else {
                return Err(format!("bad fault '{item}' (want op:ordinal)"));
            };
            let op = op.trim();
            if op == "slow" {
                // slow:nth:factor — the only per-job op with a second arg.
                let Some((nth, factor)) = rest.split_once(':') else {
                    return Err(format!("bad fault '{item}' (want slow:ordinal:factor)"));
                };
                let nth = parse_ordinal(nth, item)?;
                let factor: u32 = factor
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad factor in '{item}': {e}"))?;
                if factor < 2 {
                    return Err(format!("slow factor in '{item}' must be >= 2"));
                }
                return Ok(FaultOp::Slow(nth, factor));
            }
            let nth = parse_ordinal(rest, item)?;
            match op {
                "fail_launch" => Ok(FaultOp::FailLaunch(nth)),
                "oom" => Ok(FaultOp::Oom(nth)),
                "corrupt_transfer" => Ok(FaultOp::CorruptTransfer(nth)),
                "flip_bit" => Err(
                    "flip_bit is not allowed in sweep fault plans: finite corruption \
                     repairs via HS-field rebuild, which is not bit-identical to the \
                     unfaulted stream and would break sweep determinism"
                        .into(),
                ),
                "hang" | "wedge" | "sick" => Err(format!(
                    "'{op}' is not allowed in per-job fault plans: sickness indicts \
                     the *device*, and a job-carried sick plan would re-arm on every \
                     placement, livelocking the requeue path — script it on a pool \
                     slot via `slot_faults` instead"
                )),
                other => Err(format!("unknown fault op '{other}'")),
            }
        })
        .collect()
}

fn parse_ordinal(v: &str, item: &str) -> Result<u64, String> {
    let nth: u64 = v
        .trim()
        .parse()
        .map_err(|e| format!("bad ordinal in '{item}': {e}"))?;
    if nth == 0 {
        return Err(format!("fault ordinal in '{item}' is 1-based"));
    }
    Ok(nth)
}

/// Parses the `slot_faults` DSL: comma-separated `kind@slot:args` items,
/// `!`-suffixed for persistent profiles. `hang@1:3` (3rd launch on slot 1
/// hangs), `wedge@0:2`, `slow@1:4:100` (4th launch 100× slower),
/// `sick@2:1-6` (launches 1..=6 fail sick).
fn parse_slot_faults(v: &str) -> Result<Vec<SlotFault>, String> {
    v.split(',')
        .map(|item| {
            let item = item.trim();
            let (body, persistent) = match item.strip_suffix('!') {
                Some(b) => (b, true),
                None => (item, false),
            };
            let Some((op, rest)) = body.split_once('@') else {
                return Err(format!("bad slot fault '{item}' (want kind@slot:args)"));
            };
            let Some((slot, args)) = rest.split_once(':') else {
                return Err(format!("bad slot fault '{item}' (want kind@slot:args)"));
            };
            let slot: usize = slot
                .trim()
                .parse()
                .map_err(|e| format!("bad slot in '{item}': {e}"))?;
            let op = match op.trim() {
                "hang" => SlotFaultOp::Hang(parse_ordinal(args, item)?),
                "wedge" => SlotFaultOp::Wedge(parse_ordinal(args, item)?),
                "slow" => {
                    let Some((nth, factor)) = args.split_once(':') else {
                        return Err(format!("bad slot fault '{item}' (want slow@slot:n:factor)"));
                    };
                    let factor: u32 = factor
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad factor in '{item}': {e}"))?;
                    if factor < 2 {
                        return Err(format!("slow factor in '{item}' must be >= 2"));
                    }
                    SlotFaultOp::Slow(parse_ordinal(nth, item)?, factor)
                }
                "sick" => {
                    let Some((lo, hi)) = args.split_once('-') else {
                        return Err(format!("bad slot fault '{item}' (want sick@slot:lo-hi)"));
                    };
                    let lo = parse_ordinal(lo, item)?;
                    let hi = parse_ordinal(hi, item)?;
                    if lo > hi {
                        return Err(format!("empty sick window in '{item}' (lo > hi)"));
                    }
                    SlotFaultOp::SickWindow(lo, hi)
                }
                other => Err(format!("unknown slot fault kind '{other}'"))?,
            };
            Ok(SlotFault {
                slot,
                op,
                persistent,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = "
        # tiny campaign
        lx = 2
        ly = 2
        u = 2.0, 4.0
        beta = 1.0, 2.0   # 8 and 16 slices
        chains = 2
        warmup = 4
        sweeps = 8
        bin_size = 2
        cluster_size = 4
        seed = 7
        workers = 2
        devices = 1
        quantum = 3
        faults = fail_launch:2, corrupt_transfer:4
    ";

    #[test]
    fn parses_axes_and_scheduler_knobs() {
        let spec = GridSpec::parse(SMOKE).unwrap();
        assert_eq!(spec.us, vec![2.0, 4.0]);
        assert_eq!(spec.betas, vec![1.0, 2.0]);
        assert_eq!(spec.total_jobs(), 8);
        assert_eq!(spec.workers, 2);
        assert_eq!(spec.quantum, 3);
        assert_eq!(
            spec.faults,
            vec![FaultOp::FailLaunch(2), FaultOp::CorruptTransfer(4)]
        );
        let pts = spec.points();
        assert_eq!(pts.len(), 4);
        // u-major: (2,1) (2,2) (4,1) (4,2); slices = beta/dtau.
        assert_eq!(pts[1].u, 2.0);
        assert_eq!(pts[1].beta, 2.0);
        assert_eq!(pts[1].slices, 16);
        assert_eq!(pts[2].index, 2);
        assert_eq!(pts[2].u, 4.0);
    }

    #[test]
    fn chain_params_use_hash_split_seeds() {
        let spec = GridSpec::parse(SMOKE).unwrap();
        let pts = spec.points();
        let p00 = spec.chain_params(&pts[0], 0);
        let p01 = spec.chain_params(&pts[0], 1);
        let p10 = spec.chain_params(&pts[1], 0);
        assert_ne!(p00.seed, p01.seed);
        assert_ne!(p00.seed, p10.seed);
        assert_ne!(p01.seed, p10.seed);
        assert_eq!(p00.seed, dqmc::chain_seed(7, 0, 0));
        // Cluster size clamps to the point's slice count.
        assert_eq!(p00.cluster_size, 4);
    }

    #[test]
    fn unknown_keys_and_bad_faults_are_rejected() {
        let err = GridSpec::parse("lattice = 4").unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");
        let err = GridSpec::parse("faults = flip_bit:3").unwrap_err();
        assert!(err.message.contains("determinism"), "{err}");
        let err = GridSpec::parse("faults = fail_launch:0").unwrap_err();
        assert!(err.message.contains("1-based"), "{err}");
        let err = GridSpec::parse("u = ").unwrap_err();
        assert!(err.message.contains("bad number"), "{err}");
    }

    #[test]
    fn validation_catches_empty_axes_and_zero_workers() {
        let mut spec = GridSpec::default();
        spec.us.clear();
        assert!(spec.validate().is_err());
        let spec = GridSpec {
            workers: 0,
            ..GridSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fault_plans_are_per_job_deterministic() {
        let spec = GridSpec::parse(SMOKE).unwrap();
        let pts = spec.points();
        assert!(spec.fault_plan(&pts[0], 0).is_some());
        let clean = GridSpec::default();
        assert!(clean.fault_plan(&pts[0], 0).is_none());
    }

    #[test]
    fn fault_arming_edge_cases() {
        // Ordinal 1 (the first operation) is valid — the off-by-one trap.
        let spec = GridSpec::parse("faults = fail_launch:1").unwrap();
        assert_eq!(spec.faults, vec![FaultOp::FailLaunch(1)]);
        // Overlapping latency + corruption on the same ordinal both arm.
        let spec = GridSpec::parse("faults = slow:3:10, corrupt_transfer:3").unwrap();
        assert_eq!(
            spec.faults,
            vec![FaultOp::Slow(3, 10), FaultOp::CorruptTransfer(3)]
        );
        let plan = spec.fault_plan(&spec.points()[0], 0).unwrap();
        assert!(!plan.is_empty());
        // Factor below 2 would be a no-op disguised as a fault.
        let err = GridSpec::parse("faults = slow:3:1").unwrap_err();
        assert!(err.message.contains(">= 2"), "{err}");
    }

    #[test]
    fn sick_classes_are_rejected_per_job_but_allowed_per_slot() {
        for op in ["hang:2", "wedge:2", "sick:2"] {
            let err = GridSpec::parse(&format!("faults = {op}")).unwrap_err();
            assert!(err.message.contains("slot_faults"), "{err}");
        }
        let spec = GridSpec::parse(
            "devices = 3\nslot_faults = hang@1:3, sick@2:1-6!, wedge@0:2, slow@1:4:100",
        )
        .unwrap();
        assert_eq!(
            spec.slot_faults,
            vec![
                SlotFault {
                    slot: 1,
                    op: SlotFaultOp::Hang(3),
                    persistent: false
                },
                SlotFault {
                    slot: 2,
                    op: SlotFaultOp::SickWindow(1, 6),
                    persistent: true
                },
                SlotFault {
                    slot: 0,
                    op: SlotFaultOp::Wedge(2),
                    persistent: false
                },
                SlotFault {
                    slot: 1,
                    op: SlotFaultOp::Slow(4, 100),
                    persistent: false
                },
            ]
        );
        // Slot 1 has two ops: they merge into one profile.
        let profiles = spec.slot_profiles();
        assert_eq!(profiles.len(), 3);
        let (slot, _, persistent) = &profiles[0];
        assert_eq!((*slot, *persistent), (1, false));
        assert!(profiles.iter().any(|(s, _, p)| *s == 2 && *p));
    }

    #[test]
    fn slot_fault_dsl_rejects_malformed_and_out_of_pool() {
        let err = GridSpec::parse("slot_faults = hang@0:0").unwrap_err();
        assert!(err.message.contains("1-based"), "{err}");
        let err = GridSpec::parse("slot_faults = sick@0:6-2").unwrap_err();
        assert!(err.message.contains("lo > hi"), "{err}");
        let err = GridSpec::parse("slot_faults = flip_bit@0:1").unwrap_err();
        assert!(err.message.contains("unknown slot fault"), "{err}");
        // Slot index must exist in the declared pool.
        let err = GridSpec::parse("devices = 1\nslot_faults = hang@3:1").unwrap_err();
        assert!(err.message.contains("pool has 1 devices"), "{err}");
    }
}
