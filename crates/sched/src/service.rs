//! The resident sweep service: a long-lived worker pool multiplexing
//! many campaigns through one priority [`JobQueue`].
//!
//! A one-shot [`crate::run_sweep`] builds its queue, workers and device
//! pool per call and tears them down when the grid drains. A service
//! keeps all three resident: campaigns are *submitted* into the shared
//! queue (tagged, all-or-nothing admission), their jobs interleave by
//! priority with every other tenant's, and each campaign's outcomes are
//! routed back to it by tag. The moment a point's last chain lands the
//! service pools it with [`crate::runner::summarize_point`] — the same
//! aggregation the one-shot path uses, so a served campaign's
//! observables are byte-identical to an in-process run of the same grid
//! — and hands the summary to the campaign's observer (the hook a server
//! uses to stream bins and fill a result cache).
//!
//! Campaigns may cover a *subset* of their grid's points. Point indices
//! stay canonical — the point index is the seed hash-split's stream id,
//! so re-running points 2 and 5 of a grid reproduces exactly the bytes a
//! full sweep would have produced for them.

use crate::grid::{GridPoint, GridSpec};
use crate::queue::{AdmitError, JobQueue, SweepJob};
use crate::report::PointSummary;
use crate::runner::{
    summarize_point, worker_loop, ChainOutcome, Injector, OutcomeSink, SchedConfig,
};
use crate::trace::EventLog;
use crate::watchdog::Heartbeats;
use dqmc::RecoveryTallies;
use gpusim::{BreakerPolicy, DevicePool, DeviceSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use util::sync::{relock, Condvar, Mutex};

/// Default queue bound for a resident service when the config leaves it 0.
const DEFAULT_QUEUE_BOUND: usize = 4096;

/// Configuration of a resident service's shared execution resources.
/// Campaign grids carry only *physics*; workers, devices and scheduling
/// quanta belong to the host running the service, not to any tenant.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Resident worker threads.
    pub workers: usize,
    /// Simulated accelerator slots shared by every campaign; `0` runs
    /// everything on the host backend.
    pub devices: usize,
    /// Sweeps per scheduling quantum; `0` runs jobs to completion
    /// (starving preemption — resident services normally want a quantum).
    pub quantum: usize,
    /// Cooperative yield cadence, as in [`SchedConfig`].
    pub yield_every_quanta: u64,
    /// Retry budget per job for classified-retryable failures.
    pub job_retries: u32,
    /// Bound on outstanding jobs across all campaigns; `0` uses a
    /// service default. A campaign that does not fit the remaining
    /// capacity is refused whole ([`AdmitError::Full`]).
    pub queue_bound: usize,
    /// Soft per-quantum deadline in logical device-seconds; `0.0`
    /// disables the quantum watchdog.
    pub soft_quantum_cost_s: f64,
    /// Heartbeat scans before an idle worker cancels a stalled peer.
    pub stall_scan_limit: u32,
    /// Circuit-breaker policy for the shared device pool.
    pub breaker: BreakerPolicy,
    /// Campaign-tag namespace: tags are drawn from
    /// `(tag_namespace << 32) + 1` upward. A fleet shard child sets this
    /// to `shard + 1`, so every job tag in a multi-process campaign names
    /// the shard that ran it — cross-process traces stay attributable.
    /// `0` (the default) keeps the classic small tags.
    pub tag_namespace: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            devices: 0,
            quantum: 0,
            yield_every_quanta: 0,
            job_retries: 1,
            queue_bound: 0,
            soft_quantum_cost_s: 0.0,
            stall_scan_limit: 0,
            breaker: BreakerPolicy::default(),
            tag_namespace: 0,
        }
    }
}

impl ServiceConfig {
    fn sched_config(&self) -> SchedConfig {
        SchedConfig {
            workers: self.workers.max(1),
            devices: self.devices,
            queue_bound: self.queue_bound,
            quantum: self.quantum,
            yield_every_quanta: self.yield_every_quanta,
            job_retries: self.job_retries,
            hold_points: Vec::new(),
            soft_quantum_cost_s: self.soft_quantum_cost_s,
            stall_scan_limit: self.stall_scan_limit,
            breaker: self.breaker,
        }
    }
}

/// A campaign submission: which grid, how urgent, and optionally which
/// subset of its points.
#[derive(Clone, Debug)]
pub struct CampaignRequest {
    /// The grid. Scheduling keys it may carry (`workers`, `devices`,
    /// `quantum`) are ignored — those resources belong to the service.
    pub spec: GridSpec,
    /// Priority class for every job of this campaign; higher preempts
    /// lower at quantum boundaries, exactly as within one sweep.
    pub priority: u8,
    /// Canonical point indices to run; `None` runs the whole grid.
    /// Indices keep their grid-canonical values, so partial campaigns
    /// reproduce the full sweep's bytes for the points they cover.
    pub points: Option<Vec<usize>>,
}

/// Why a campaign submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The shared queue refused the batch (full or closed).
    Queue(AdmitError),
    /// A requested point index is outside the grid.
    UnknownPoint {
        /// The offending index.
        index: usize,
        /// Points the grid actually has.
        points: usize,
    },
    /// The request selected no points at all.
    EmptySelection,
    /// The grid declares `slot_faults`, which configure the *device
    /// pool* — shared service infrastructure no single tenant may
    /// reshape.
    SlotFaultsUnsupported,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Queue(e) => write!(f, "{e}"),
            SubmitError::UnknownPoint { index, points } => {
                write!(f, "point {index} outside grid ({points} points)")
            }
            SubmitError::EmptySelection => write!(f, "campaign selects no points"),
            SubmitError::SlotFaultsUnsupported => {
                write!(
                    f,
                    "slot_faults configure the shared device pool; not accepted per-campaign"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Observer invoked the moment a point's last chain lands, with the
/// freshly pooled summary. It runs on a worker thread *outside* every
/// service lock, so it may write sockets or disks; a panic inside it
/// kills that worker, so servers must keep their observers infallible.
pub type PointObserver = dyn Fn(&PointSummary) + Send + Sync;

/// Everything a finished campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Summaries of the selected points, in canonical point order.
    pub points: Vec<PointSummary>,
    /// Chains that permanently failed across the campaign.
    pub failed_chains: usize,
    /// Recovery-ladder actions pooled over the campaign's chains.
    pub recovery_tallies: RecoveryTallies,
}

/// One campaign's routing state while its jobs are in flight.
struct Campaign {
    tag: u64,
    chains: usize,
    /// Selected grid points, canonical order.
    points: Vec<GridPoint>,
    /// `points.len() * chains` outcome slots, selected-point-major.
    slots: Vec<Option<ChainOutcome>>,
    /// Chains still in flight per selected point.
    remaining: Vec<usize>,
    /// Summaries of finished points (selected order).
    summaries: Vec<Option<PointSummary>>,
    tallies: RecoveryTallies,
    failed_chains: usize,
    points_left: usize,
    observer: Option<Arc<PointObserver>>,
    cell: Arc<CampaignCell>,
}

/// The completion cell a [`CampaignHandle`] waits on.
struct CampaignCell {
    done: Mutex<Option<CampaignOutcome>>,
    cv: Condvar,
}

/// Handle to a submitted campaign.
pub struct CampaignHandle {
    /// The campaign's routing tag (diagnostics).
    pub tag: u64,
    /// Jobs the campaign enqueued.
    pub jobs: usize,
    /// Points the campaign covers.
    pub points: usize,
    cell: Arc<CampaignCell>,
}

impl CampaignHandle {
    /// Blocks until every job of the campaign has completed or failed.
    pub fn wait(self) -> CampaignOutcome {
        let mut d = relock(self.cell.done.lock());
        loop {
            if let Some(out) = d.take() {
                return out;
            }
            d = relock(self.cell.cv.wait(d));
        }
    }
}

/// Shared state of a running service; workers and handles hold it in an
/// [`Arc`].
struct ServiceCore {
    queue: JobQueue,
    pool: Option<DevicePool>,
    cfg: SchedConfig,
    events: EventLog,
    hearts: Heartbeats,
    panics_caught: AtomicU64,
    /// In-flight campaigns. A `Vec` scanned linearly, not a map: the
    /// registry holds tens of campaigns, and a Vec keeps iteration order
    /// deterministic by construction.
    campaigns: Mutex<Vec<Campaign>>,
    next_tag: AtomicU64,
    jobs_submitted: AtomicU64,
    campaigns_completed: AtomicU64,
}

impl ServiceCore {
    fn worker(&self, w: usize) {
        let injector = Injector::idle(&self.queue);
        worker_loop(
            w,
            &self.queue,
            self.pool.as_ref(),
            &self.cfg,
            &self.events,
            self,
            &injector,
            None,
            &self.hearts,
            &self.panics_caught,
        );
    }

    /// Routes one job's outcomes into its campaign; pools the point when
    /// its last chain lands and completes the campaign when its last
    /// point does. The campaign lock covers only slot writes and the
    /// summarisation — observer callbacks and completion signalling run
    /// after it is released.
    fn record(&self, job: &SweepJob, outcomes: Option<Vec<ChainOutcome>>) {
        let mut finished_point: Option<(PointSummary, Option<Arc<PointObserver>>)> = None;
        let mut finished_campaign: Option<(Arc<CampaignCell>, CampaignOutcome)> = None;
        {
            let mut cs = relock(self.campaigns.lock());
            let Some(idx) = cs.iter().position(|c| c.tag == job.tag) else {
                // A tag with no campaign means a routing bug; outcomes
                // are dropped rather than crossing tenants.
                return;
            };
            let c = &mut cs[idx];
            let Some(pos) = c.points.iter().position(|p| p.index == job.point) else {
                return;
            };
            let base = pos * c.chains + job.chain;
            match outcomes {
                Some(outs) => {
                    for (i, o) in outs.into_iter().enumerate() {
                        c.slots[base + i] = Some(o);
                    }
                }
                None => {
                    for i in 0..job.width {
                        c.slots[base + i] = Some(ChainOutcome::failed_slot(job, i));
                    }
                }
            }
            c.remaining[pos] = c.remaining[pos].saturating_sub(job.width);
            if c.remaining[pos] == 0 {
                let (summary, tallies) = summarize_point(
                    &c.points[pos],
                    &c.slots[pos * c.chains..(pos + 1) * c.chains],
                );
                c.failed_chains += summary.chains_failed;
                c.tallies.merge(&tallies);
                c.summaries[pos] = Some(summary.clone());
                c.points_left -= 1;
                finished_point = Some((summary, c.observer.clone()));
                if c.points_left == 0 {
                    let done = cs.swap_remove(idx);
                    let outcome = CampaignOutcome {
                        points: done.summaries.into_iter().flatten().collect(),
                        failed_chains: done.failed_chains,
                        recovery_tallies: done.tallies,
                    };
                    finished_campaign = Some((done.cell, outcome));
                }
            }
        }
        if let Some((summary, Some(obs))) = finished_point {
            obs(&summary);
        }
        if let Some((cell, outcome)) = finished_campaign {
            self.campaigns_completed.fetch_add(1, Ordering::Relaxed);
            let mut d = relock(cell.done.lock());
            *d = Some(outcome);
            drop(d);
            cell.cv.notify_all();
        }
    }
}

impl OutcomeSink for ServiceCore {
    fn deliver(&self, job: &SweepJob, outcomes: Vec<ChainOutcome>) {
        self.record(job, Some(outcomes));
    }

    fn deliver_failure(&self, job: &SweepJob) {
        self.record(job, None);
    }
}

/// The resident service: spawn once, submit many campaigns, drop (or
/// [`SweepService::shutdown`]) to drain and join.
pub struct SweepService {
    core: Arc<ServiceCore>,
    workers: Vec<JoinHandle<()>>,
}

impl SweepService {
    /// Starts the resident worker pool (and device pool, when
    /// configured).
    pub fn start(cfg: &ServiceConfig) -> SweepService {
        let sched = cfg.sched_config();
        let bound = if cfg.queue_bound == 0 {
            DEFAULT_QUEUE_BOUND
        } else {
            cfg.queue_bound
        };
        let pool = if sched.devices > 0 {
            Some(DevicePool::with_policy(
                DeviceSpec::tesla_c2050(),
                sched.devices,
                sched.breaker,
            ))
        } else {
            None
        };
        let core = Arc::new(ServiceCore {
            queue: JobQueue::new_resident(bound),
            pool,
            hearts: Heartbeats::new(sched.workers),
            cfg: sched,
            events: EventLog::new(),
            panics_caught: AtomicU64::new(0),
            campaigns: Mutex::new(Vec::new()),
            next_tag: AtomicU64::new(cfg.tag_namespace << 32),
            jobs_submitted: AtomicU64::new(0),
            campaigns_completed: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(core.cfg.workers);
        for w in 0..core.cfg.workers {
            let core = Arc::clone(&core);
            workers.push(std::thread::spawn(move || core.worker(w)));
        }
        SweepService { core, workers }
    }

    /// Submits a campaign. Admission is atomic: either every job of the
    /// selection is enqueued or none are. `observer`, when given, sees
    /// each point's summary the moment it completes.
    pub fn submit(
        &self,
        req: &CampaignRequest,
        observer: Option<Arc<PointObserver>>,
    ) -> Result<CampaignHandle, SubmitError> {
        let spec = &req.spec;
        if !spec.slot_faults.is_empty() {
            return Err(SubmitError::SlotFaultsUnsupported);
        }
        let grid_points = spec.points();
        let selected: Vec<GridPoint> = match &req.points {
            None => grid_points,
            Some(idx) => {
                let mut wanted = idx.clone();
                wanted.sort_unstable();
                wanted.dedup();
                let mut sel = Vec::with_capacity(wanted.len());
                for i in wanted {
                    match grid_points.get(i) {
                        Some(p) => sel.push(*p),
                        None => {
                            return Err(SubmitError::UnknownPoint {
                                index: i,
                                points: grid_points.len(),
                            })
                        }
                    }
                }
                sel
            }
        };
        if selected.is_empty() {
            return Err(SubmitError::EmptySelection);
        }

        let tag = self.core.next_tag.fetch_add(1, Ordering::Relaxed) + 1;
        let crowd = spec.crowd.max(1);
        let mut jobs = Vec::new();
        for point in &selected {
            let mut chain = 0;
            while chain < spec.chains {
                let width = crowd.min(spec.chains - chain);
                let mut job = SweepJob::new(point.index, chain, spec.chain_params(point, chain))
                    .with_fault_plan(spec.fault_plan(point, chain))
                    .with_priority(req.priority)
                    .with_tag(tag);
                if width > 1 {
                    let extra = (chain + 1..chain + width)
                        .map(|c| spec.chain_params(point, c))
                        .collect();
                    job = job.with_crowd(extra);
                }
                jobs.push(job);
                chain += width;
            }
        }
        let njobs = jobs.len();

        let cell = Arc::new(CampaignCell {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let npoints = selected.len();
        let campaign = Campaign {
            tag,
            chains: spec.chains,
            slots: (0..npoints * spec.chains).map(|_| None).collect(),
            remaining: vec![spec.chains; npoints],
            summaries: vec![None; npoints],
            points: selected,
            tallies: RecoveryTallies::default(),
            failed_chains: 0,
            points_left: npoints,
            observer,
            cell: Arc::clone(&cell),
        };
        // Register before enqueueing: a job cannot finish before it is
        // routable. The registration is rolled back if admission fails.
        {
            let mut cs = relock(self.core.campaigns.lock());
            cs.push(campaign);
        }
        if let Err(e) = self.core.queue.submit_batch(jobs) {
            let mut cs = relock(self.core.campaigns.lock());
            if let Some(i) = cs.iter().position(|c| c.tag == tag) {
                cs.swap_remove(i);
            }
            drop(cs);
            return Err(SubmitError::Queue(e));
        }
        self.core
            .jobs_submitted
            .fetch_add(njobs as u64, Ordering::Relaxed);
        Ok(CampaignHandle {
            tag,
            jobs: njobs,
            points: npoints,
            cell,
        })
    }

    /// Jobs enqueued since the service started — the counter the cache
    /// tests watch to prove a warm hit enqueues nothing.
    pub fn jobs_submitted(&self) -> u64 {
        self.core.jobs_submitted.load(Ordering::Relaxed)
    }

    /// Campaigns fully completed since start.
    pub fn campaigns_completed(&self) -> u64 {
        self.core.campaigns_completed.load(Ordering::Relaxed)
    }

    /// Campaigns currently in flight.
    pub fn active_campaigns(&self) -> usize {
        relock(self.core.campaigns.lock()).len()
    }

    /// Jobs waiting in the shared queue (excludes running ones).
    pub fn queue_waiting(&self) -> usize {
        self.core.queue.waiting()
    }

    /// Panics caught by the worker backstop since start.
    pub fn panics_caught(&self) -> u64 {
        self.core.panics_caught.load(Ordering::Relaxed)
    }

    /// The service's trace stream (shared, clone-cheap).
    pub fn events(&self) -> EventLog {
        self.core.events.clone()
    }

    /// Closes admission, drains every outstanding job, and joins the
    /// workers. Dropping the service does the same.
    pub fn shutdown(self) {}
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.core.queue.close();
        for h in self.workers.drain(..) {
            // A worker that panicked already counted itself; shutdown
            // must not double the damage by propagating.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: &str = "
        lx = 2
        ly = 2
        u = 2.0, 4.0
        beta = 1.0
        chains = 2
        warmup = 2
        sweeps = 4
        bin_size = 2
        cluster_size = 4
        seed = 11
    ";

    fn spec() -> GridSpec {
        GridSpec::parse(GRID).expect("grid parses")
    }

    fn baseline() -> String {
        let cfg = SchedConfig::default();
        crate::run_sweep(&spec(), &cfg, &EventLog::new()).observables_json()
    }

    #[test]
    fn service_campaign_matches_one_shot_sweep() {
        let service = SweepService::start(&ServiceConfig {
            workers: 2,
            devices: 1,
            quantum: 2,
            ..ServiceConfig::default()
        });
        let req = CampaignRequest {
            spec: spec(),
            priority: 1,
            points: None,
        };
        let handle = service.submit(&req, None).expect("submit");
        assert_eq!(handle.points, 2);
        let out = handle.wait();
        assert_eq!(out.failed_chains, 0);
        let s = spec();
        let json =
            crate::report::observables_json_for(s.seed, s.chains, s.warmup, s.sweeps, &out.points);
        assert_eq!(json, baseline());
        assert_eq!(service.campaigns_completed(), 1);
        assert_eq!(service.active_campaigns(), 0);
        service.shutdown();
    }

    #[test]
    fn point_subsets_keep_canonical_bytes() {
        let service = SweepService::start(&ServiceConfig::default());
        let req = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: Some(vec![1]),
        };
        let out = service.submit(&req, None).expect("submit").wait();
        assert_eq!(out.points.len(), 1);
        let full = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: None,
        };
        let all = service.submit(&full, None).expect("submit").wait();
        assert_eq!(
            out.points[0].observables_json(),
            all.points[1].observables_json(),
            "a subset campaign must reproduce the full sweep's bytes"
        );
    }

    #[test]
    fn observers_see_every_point_once() {
        use std::sync::atomic::AtomicUsize;
        let service = SweepService::start(&ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let req = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: None,
        };
        let obs: Arc<PointObserver> = Arc::new(move |p: &PointSummary| {
            assert!(p.chains_ok > 0);
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let out = service.submit(&req, Some(obs)).expect("submit").wait();
        assert_eq!(out.points.len(), 2);
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn bad_selections_are_refused() {
        let service = SweepService::start(&ServiceConfig::default());
        let unknown = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: Some(vec![7]),
        };
        assert!(matches!(
            service.submit(&unknown, None),
            Err(SubmitError::UnknownPoint {
                index: 7,
                points: 2
            })
        ));
        let empty = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: Some(Vec::new()),
        };
        assert!(matches!(
            service.submit(&empty, None),
            Err(SubmitError::EmptySelection)
        ));
        assert_eq!(service.jobs_submitted(), 0);
    }

    #[test]
    fn oversized_campaigns_are_refused_whole() {
        let service = SweepService::start(&ServiceConfig {
            queue_bound: 3,
            ..ServiceConfig::default()
        });
        let req = CampaignRequest {
            spec: spec(), // 2 points x 2 chains = 4 jobs > bound 3
            priority: 0,
            points: None,
        };
        assert!(matches!(
            service.submit(&req, None),
            Err(SubmitError::Queue(AdmitError::Full { bound: 3, want: 4 }))
        ));
        assert_eq!(service.jobs_submitted(), 0);
        assert_eq!(service.active_campaigns(), 0, "rollback on refusal");
        // A subset that fits is admitted and completes.
        let sub = CampaignRequest {
            spec: spec(),
            priority: 0,
            points: Some(vec![0]),
        };
        let out = service.submit(&sub, None).expect("submit").wait();
        assert_eq!(out.points.len(), 1);
    }
}
