//! Checkpoint-aware parameter-sweep scheduler.
//!
//! A QMC campaign is never one Markov chain: it is a grid of `(U, β)`
//! points, each an ensemble of independent chains. This crate turns the
//! primitives of the lower layers — bit-identical `DQCP` checkpoints,
//! the recovery ladder, the simulated device pool — into a batch service
//! with the shape of a production job scheduler:
//!
//! 1. **Queue** ([`queue`]): every (point, chain) pair becomes a
//!    [`SweepJob`] in a bounded priority queue; FIFO within a priority
//!    class, higher classes pop first.
//! 2. **Placement** ([`gpusim::pool`]): workers lease simulated
//!    accelerators from a shared [`gpusim::DevicePool`]; when every slot is
//!    busy the job runs on the host backend instead of waiting.
//! 3. **Preemption** ([`runner`]): jobs execute in quanta of whole sweeps.
//!    At each quantum boundary a job yields to higher-priority waiters (or
//!    on its cooperative time-slice) by serialising to an in-memory `DQCP`
//!    image and requeueing; the resume is bit-identical, so preemption is
//!    invisible in the physics.
//! 4. **Retry** ([`runner`]): a job whose run fails with a classified
//!    retryable error — or, as a backstop, panics — restarts from its last
//!    checkpoint image, up to a per-job budget, before being reported
//!    failed. `DeviceSick`-class failures requeue for *free* (the device
//!    was at fault, not the job) with the suspect slot excluded.
//! 5. **Liveness & health** ([`watchdog`], [`gpusim::pool`]): workers
//!    stamp heartbeat tokens every sweep; a quantum watchdog charges each
//!    quantum's logical device cost against a soft deadline (fail-slow
//!    detection), and the device pool's circuit breaker quarantines slots
//!    that accumulate sick reports, re-admitting them through
//!    exponential-backoff probation probes.
//! 6. **Aggregation** ([`report`]): per-point chain observables merge in
//!    canonical (point, chain) order and are jackknifed
//!    ([`util::jackknife_ratio`]) into a machine-readable [`SweepReport`].
//!
//! # The determinism contract
//!
//! The pooled observables of a sweep are a **pure function of
//! (grid, seeds)** — independent of worker count, device-pool size,
//! placement, preemption schedule, and scripted one-shot fault plans.
//! Three mechanisms compose to guarantee it:
//!
//! - chain seeds are hash-split per (point, chain) ([`dqmc::chain_seed`]),
//!   so the set of Markov chains is fixed by the grid alone;
//! - device placement uses the backend's deterministic-execution mode
//!   ([`gpusim::DeviceBackend::with_bitexact_wrap`]), making device and
//!   host runs bit-identical;
//! - preemption parks jobs as `DQCP` images whose resume is bit-identical,
//!   and recovery retries consume no Metropolis randomness, so one-shot
//!   faults heal without a trace.
//!
//! `tests/sched_determinism.rs` (workspace root) pins the whole contract.

pub mod grid;
pub mod queue;
pub mod report;
pub mod runner;
pub mod service;
pub mod shard;
pub mod trace;
pub mod watchdog;

pub use grid::{GridError, GridPoint, GridSpec, SlotFault, SlotFaultOp};
pub use queue::{AdmitError, JobQueue, Pop, QueueFull, SweepJob};
pub use report::{observables_json_for, PointSummary, SweepReport};
pub use runner::{run_sweep, run_sweep_observed, Injector, SchedConfig, SweepObserver};
pub use service::{
    CampaignHandle, CampaignOutcome, CampaignRequest, PointObserver, ServiceConfig, SubmitError,
    SweepService,
};
pub use shard::{grid_fingerprint, plan_shard_subset, plan_shards, ShardBlock, ShardPlan};
pub use trace::{EventLog, Placement, TraceEvent};
pub use watchdog::{DeadlineVerdict, Heartbeats, QuantumWatchdog};
