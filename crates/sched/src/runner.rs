//! The worker pool: pops jobs, places them, preempts them, watches them,
//! retries them, and folds the survivors into a [`SweepReport`].
//!
//! # Execution model
//!
//! Each worker loops: pop a job → try to lease a device from the shared
//! [`DevicePool`] (skipping the job's suspect slots; host fallback on a
//! miss) → run the simulation in quanta of `quantum` sweeps. At every
//! quantum boundary the job checks whether it should yield — a
//! higher-priority job is waiting, or its cooperative time-slice
//! (`yield_every_quanta`) expired — and if so parks itself as an in-memory
//! `DQCP` image and requeues.
//!
//! # Failure handling is classification-keyed
//!
//! A failed quantum surfaces as a structured [`DqmcError`] whose severity
//! drives the response:
//!
//! - **`DeviceSick`** — the run indicts the *device*, not the job. The job
//!   requeues for free (no retry budget consumed) with the slot added to
//!   its exclusion list, the pool's circuit breaker is fed a sick report,
//!   and the trace records a [`TraceEvent::SoftDeadline`] park (or
//!   [`TraceEvent::WorkerLost`] when the device wedged — the hard
//!   deadline: progress since the last parked image is written off).
//! - **`Transient` / `Corrupt`** — the job restarts from its last parked
//!   image, consuming one of `job_retries`.
//! - **`Fatal`** — no restart could help; the job is failed immediately.
//!
//! A panic escaping the simulation is *caught as a backstop*, classified
//! by [`DqmcError::from_panic`], counted in
//! [`SweepReport::panics_caught`], and fed through the same ladder — but
//! every classified-recoverable path returns `Err`, it does not panic.
//!
//! # Why the result cannot see the schedule
//!
//! Chain trajectories are fixed by hash-split seeds; device placement uses
//! the bit-exact wrap mode, so host and device runs agree to the last bit;
//! `DQCP` resume is bit-identical; and results land in a slot vector
//! indexed by `job_id = point * chains + chain`, then merge in canonical
//! chain order per point. Workers race only for *which* slot they fill
//! next, never for what goes in it. Deadline parks and sick requeues
//! re-run the same seeded sweeps elsewhere — slower, never different.

use crate::grid::GridSpec;
use crate::queue::{JobQueue, Pop, SweepJob};
use crate::report::{PointSummary, SweepReport};
use crate::trace::{EventLog, Placement, TraceEvent};
use crate::watchdog::{DeadlineVerdict, Heartbeats, QuantumWatchdog};
use dqmc::{
    Crowd, DqmcError, Observables, RecoveryLog, RecoveryTallies, RunToken, Severity, Simulation,
};
use gpusim::{BreakerPolicy, DevicePool, DeviceSpec, HealthDecision};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use util::sync::{relock, Mutex};

/// Scheduler configuration, usually derived from a [`GridSpec`] via
/// [`SchedConfig::from_spec`]; tests override individual knobs.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub workers: usize,
    /// Simulated accelerator slots in the device pool. `0` forces every
    /// job onto the host backend.
    pub devices: usize,
    /// Queue bound; `0` sizes it to fit the whole grid.
    pub queue_bound: usize,
    /// Sweeps per scheduling quantum; `0` runs jobs to completion.
    pub quantum: usize,
    /// Cooperative yield after this many quanta even with no higher-
    /// priority waiter; `0` disables time-slicing.
    pub yield_every_quanta: u64,
    /// Restarts of a job that failed with a *retryable* classified error
    /// (or a caught panic). Sick-device requeues are not counted here.
    pub job_retries: u32,
    /// Grid point indices whose jobs are *held back* from the initial
    /// submission; tests release them mid-sweep (via
    /// [`Injector::release_held`]) to force true priority preemption.
    pub hold_points: Vec<usize>,
    /// Soft deadline per quantum in logical device-seconds (fail-slow
    /// detection); `0.0` disables the quantum watchdog.
    pub soft_quantum_cost_s: f64,
    /// Heartbeat scans without progress before an idle worker cancels a
    /// stalled peer's token; `0` disables cross-worker cancellation.
    pub stall_scan_limit: u32,
    /// Circuit-breaker policy for the device pool's health ledger.
    pub breaker: BreakerPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 1,
            devices: 0,
            queue_bound: 0,
            quantum: 0,
            yield_every_quanta: 0,
            job_retries: 1,
            hold_points: Vec::new(),
            soft_quantum_cost_s: 0.0,
            stall_scan_limit: 0,
            breaker: BreakerPolicy::default(),
        }
    }
}

impl SchedConfig {
    /// The scheduling knobs declared in a grid spec.
    pub fn from_spec(spec: &GridSpec) -> Self {
        SchedConfig {
            workers: spec.workers,
            devices: spec.devices,
            quantum: spec.quantum,
            job_retries: spec.job_retries,
            ..SchedConfig::default()
        }
    }
}

/// What happened to one *chain*. The accumulators are boxed so the `Failed`
/// variant (and the slot vector's `None`s) stay pointer-sized. A crowd job
/// of `width` chains produces `width` of these; its job-level scheduling
/// counters (preemptions, quanta, device-seconds) are recorded on the base
/// chain's outcome only, so campaign totals count each job once.
pub(crate) enum ChainOutcome {
    Done {
        observables: Box<Observables>,
        acceptance: f64,
        max_wrap_error: f64,
        recovery: RecoveryLog,
        preemptions: u32,
        device_quanta: u64,
        host_quanta: u64,
        device_seconds: f64,
    },
    Failed {
        preemptions: u64,
        device_quanta: u64,
        host_quanta: u64,
        device_seconds: f64,
    },
}

/// The simulation a job drives: one walker, or `width` walkers in lockstep
/// through a batched crowd backend. One quantum loop serves both — the
/// crowd path differs only in construction and in fanning its result out
/// to `width` chain slots.
enum JobSim {
    Solo(Box<Simulation>),
    Crowd(Box<Crowd>),
}

impl JobSim {
    fn try_step(&mut self, n: usize, token: &RunToken) -> Result<usize, DqmcError> {
        match self {
            JobSim::Solo(s) => s.try_step(n, token),
            JobSim::Crowd(c) => c.try_step(n, token),
        }
    }

    fn is_complete(&self) -> bool {
        match self {
            JobSim::Solo(s) => s.is_complete(),
            JobSim::Crowd(c) => c.is_complete(),
        }
    }

    fn checkpoint_bytes(&self) -> Vec<u8> {
        match self {
            JobSim::Solo(s) => s.checkpoint_bytes(),
            JobSim::Crowd(c) => c.checkpoint_bytes(),
        }
    }

    /// Sweeps completed (warmup + measurement) — per walker; walkers run in
    /// lockstep, so walker 0 speaks for a crowd.
    fn sweeps_done(&self) -> usize {
        let (w, m) = match self {
            JobSim::Solo(s) => s.sweeps_done(),
            JobSim::Crowd(c) => c.walker(0).sweeps_done(),
        };
        w + m
    }

    /// Modeled device-seconds this placement's backend has consumed.
    fn device_seconds(&self) -> f64 {
        match self {
            JobSim::Solo(s) => s.device_seconds(),
            JobSim::Crowd(c) => c.device_seconds(),
        }
    }

    /// Per-chain outcomes in chain order; job-level counters land on the
    /// base chain only.
    fn outcomes(&self, job: &SweepJob) -> Vec<ChainOutcome> {
        let walkers: Vec<&Simulation> = match self {
            JobSim::Solo(s) => vec![s],
            JobSim::Crowd(c) => c.walkers().iter().collect(),
        };
        walkers
            .into_iter()
            .enumerate()
            .map(|(i, w)| ChainOutcome::Done {
                observables: Box::new(w.observables().clone()),
                acceptance: w.acceptance_rate(),
                max_wrap_error: w.max_wrap_error(),
                recovery: w.recovery_log().clone(),
                preemptions: if i == 0 { job.preemptions } else { 0 },
                device_quanta: if i == 0 { job.device_quanta } else { 0 },
                host_quanta: if i == 0 { job.host_quanta } else { 0 },
                device_seconds: if i == 0 { job.device_seconds } else { 0.0 },
            })
            .collect()
    }
}

/// Mid-sweep injection handle passed to the observer callback: jobs held
/// back by [`SchedConfig::hold_points`] wait here until released.
pub struct Injector<'a> {
    queue: &'a JobQueue,
    held: Mutex<Vec<SweepJob>>,
}

impl<'a> Injector<'a> {
    /// An injector holding nothing — the resident service runs without
    /// hold-point choreography but shares [`worker_loop`].
    pub(crate) fn idle(queue: &'a JobQueue) -> Self {
        Injector {
            queue,
            held: Mutex::new(Vec::new()),
        }
    }

    /// Jobs still held (not yet injected).
    pub fn held(&self) -> usize {
        relock(self.held.lock()).len()
    }

    /// Releases every held job into the queue at `priority`. Idempotent —
    /// observers may call it on every event and only the first call
    /// submits. Held jobs were counted outstanding at submission time, so
    /// the queue always has room for them.
    pub fn release_held(&self, priority: u8) {
        let jobs: Vec<SweepJob> = {
            let mut held = relock(self.held.lock());
            std::mem::take(&mut *held)
        };
        for job in jobs {
            let job = job.with_priority(priority);
            self.queue.requeue(job);
        }
    }
}

/// Callback observing the trace stream at job boundaries; the [`Injector`]
/// lets it submit held jobs mid-sweep.
pub type SweepObserver = dyn for<'a> Fn(&TraceEvent, &Injector<'a>) + Sync;

/// Where finished jobs deliver their per-chain outcomes. The classic
/// one-shot sweep routes by slot index ([`SlotSink`]); the resident
/// service routes by campaign tag. Workers race only for *which* sink
/// call runs next, never for what a given (point, chain) receives — the
/// determinism contract is the sink's to keep.
pub(crate) trait OutcomeSink: Sync {
    /// Delivers a completed job's outcomes, one per covered chain in
    /// chain order.
    fn deliver(&self, job: &SweepJob, outcomes: Vec<ChainOutcome>);

    /// Records a permanently failed job: every chain it covers lost its
    /// data, with the job-level counters folded onto the base chain.
    fn deliver_failure(&self, job: &SweepJob);
}

/// The classic per-sweep sink: a slot vector indexed by
/// `point * chains + chain`, drained once the sweep terminates.
pub(crate) struct SlotSink {
    results: Mutex<Vec<Option<ChainOutcome>>>,
    chains: usize,
}

impl SlotSink {
    // dqmc-lint: allow(hot_alloc) — one-time construction at sweep setup.
    pub(crate) fn new(njobs: usize, chains: usize) -> Self {
        SlotSink {
            results: Mutex::new((0..njobs).map(|_| None).collect()),
            chains,
        }
    }

    /// Consumes the sink after every worker has exited.
    pub(crate) fn into_outcomes(self) -> Vec<Option<ChainOutcome>> {
        relock(self.results.into_inner())
    }
}

impl OutcomeSink for SlotSink {
    fn deliver(&self, job: &SweepJob, outcomes: Vec<ChainOutcome>) {
        let base = job.point * self.chains + job.chain;
        let mut slots = relock(self.results.lock());
        for (i, outcome) in outcomes.into_iter().enumerate() {
            slots[base + i] = Some(outcome);
        }
    }

    fn deliver_failure(&self, job: &SweepJob) {
        // A crowd job fails as a unit: every chain it covers loses its
        // data. Job-level counters land on the base slot only (see
        // [`ChainOutcome`]).
        let base = job.point * self.chains + job.chain;
        let mut slots = relock(self.results.lock());
        for i in 0..job.width {
            slots[base + i] = Some(ChainOutcome::failed_slot(job, i));
        }
    }
}

impl ChainOutcome {
    /// The `Failed` record for covered-chain `i` of a failed job:
    /// job-level counters fold onto the base chain only.
    pub(crate) fn failed_slot(job: &SweepJob, i: usize) -> ChainOutcome {
        ChainOutcome::Failed {
            preemptions: if i == 0 { job.preemptions as u64 } else { 0 },
            device_quanta: if i == 0 { job.device_quanta } else { 0 },
            host_quanta: if i == 0 { job.host_quanta } else { 0 },
            device_seconds: if i == 0 { job.device_seconds } else { 0.0 },
        }
    }
}

/// The result of one quantum-loop invocation.
enum RunStep {
    /// One outcome per chain the job covers, in chain order.
    Completed(Vec<ChainOutcome>),
    Yielded {
        sweeps_done: usize,
    },
    /// The run stopped with a classified error; `job.checkpoint` holds the
    /// image to resume from (freshly parked for cooperative soft parks,
    /// the last successful park otherwise).
    Aborted {
        error: DqmcError,
    },
}

/// Initial grid submission: the bound was sized to fit the whole grid
/// above, so the queue cannot be full here.
// dqmc-lint: allow(panic_site)
fn submit_infallible(queue: &JobQueue, job: SweepJob) {
    queue
        .submit(job)
        .expect("queue was sized to fit the whole grid");
}

/// Translates a breaker decision into trace events.
fn emit_decision(events: &EventLog, decision: HealthDecision) {
    match decision {
        HealthDecision::None => {}
        HealthDecision::Opened { slot, backoff } => events.push(TraceEvent::BreakerOpen {
            slot,
            backoff,
            reopened: false,
        }),
        HealthDecision::Reopened { slot, backoff } => events.push(TraceEvent::BreakerOpen {
            slot,
            backoff,
            reopened: true,
        }),
        HealthDecision::Readmitted { slot } => events.push(TraceEvent::SlotReadmitted { slot }),
    }
}

/// Runs one job until it completes, yields, or aborts with a classified
/// error. Returns the step and the device slot it ran on (`None` = host).
///
/// On a yield (or a cooperative soft-deadline park) the parked `DQCP`
/// image replaces `job.checkpoint`; on an abortive error the *previous*
/// image is still intact, so the restart resumes from the last successful
/// park rather than from scratch-after-progress.
fn run_job(
    job: &mut SweepJob,
    worker: usize,
    pool: Option<&DevicePool>,
    cfg: &SchedConfig,
    events: &EventLog,
    queue: &JobQueue,
    token: &RunToken,
) -> (RunStep, Option<usize>) {
    let lease = pool.and_then(|p| p.try_lease_excluding(&job.excluded_slots));
    let slot = lease.as_ref().map(|l| l.slot());
    let placement = match slot {
        Some(slot) => Placement::Device { slot },
        None => Placement::Host,
    };
    if let Some(l) = &lease {
        if l.is_probe() {
            events.push(TraceEvent::ProbeGranted { slot: l.slot() });
        }
    }
    events.push(TraceEvent::Started {
        point: job.point,
        chain: job.chain,
        worker,
        placement,
        resumed: job.checkpoint.is_some(),
    });

    let mut sim = match &job.checkpoint {
        // The image was produced by this very run, so a decode failure
        // means in-memory corruption: no restart can help.
        Some(bytes) => {
            let resumed = if job.width == 1 {
                Simulation::resume_bytes(bytes, &job.params)
                    .map(|s| JobSim::Solo(Box::new(s)))
                    .map_err(|e| e.to_string())
            } else {
                Crowd::resume_bytes(bytes, &job.crowd_params())
                    .map(|c| JobSim::Crowd(Box::new(c)))
                    .map_err(|e| e.to_string())
            };
            match resumed {
                Ok(sim) => sim,
                Err(e) => {
                    let error =
                        DqmcError::fatal("resume", format!("parked image failed to resume: {e}"));
                    return (RunStep::Aborted { error }, slot);
                }
            }
        }
        None if job.width == 1 => JobSim::Solo(Box::new(Simulation::new(job.params.clone()))),
        None => JobSim::Crowd(Box::new(Crowd::new(job.crowd_params()))),
    };
    let mut watchdog = None;
    if cfg.soft_quantum_cost_s > 0.0 && lease.is_some() {
        watchdog = Some(QuantumWatchdog::new(cfg.soft_quantum_cost_s));
    }
    if let Some(l) = &lease {
        sim = match sim {
            JobSim::Solo(s) => {
                let mut backend = l.backend(job.fault_plan.clone());
                if let Some(wd) = &watchdog {
                    backend.device_mut().set_cost_meter(wd.meter());
                }
                JobSim::Solo(Box::new(s.with_backend(Box::new(backend))))
            }
            JobSim::Crowd(c) => {
                let mut backend = l.crowd_backend(job.fault_plan.clone());
                if let Some(wd) = &watchdog {
                    backend.device_mut().set_cost_meter(wd.meter());
                }
                JobSim::Crowd(Box::new(c.with_backend(Box::new(backend))))
            }
        };
    }

    let quantum = if cfg.quantum == 0 {
        usize::MAX
    } else {
        cfg.quantum
    };
    let mut quanta_run: u64 = 0;
    loop {
        if let Err(error) = sim.try_step(quantum, token) {
            job.device_seconds += sim.device_seconds();
            return (RunStep::Aborted { error }, slot);
        }
        quanta_run += 1;
        match placement {
            Placement::Device { .. } => job.device_quanta += 1,
            Placement::Host => job.host_quanta += 1,
        }
        if sim.is_complete() {
            events.push(TraceEvent::Completed {
                point: job.point,
                chain: job.chain,
                worker,
            });
            job.device_seconds += sim.device_seconds();
            return (RunStep::Completed(sim.outcomes(job)), slot);
        }
        if let Some(wd) = watchdog.as_mut() {
            if let DeadlineVerdict::SoftExceeded { cost_s } = wd.observe_quantum() {
                // The quantum finished cleanly (only slowly), so the state
                // is consistent: park cooperatively from *current* progress.
                job.checkpoint = Some(sim.checkpoint_bytes());
                job.device_seconds += sim.device_seconds();
                return (
                    RunStep::Aborted {
                        error: DqmcError::device_sick(
                            "watchdog",
                            format!(
                                "quantum cost {cost_s:.3}s exceeded soft deadline {:.3}s",
                                cfg.soft_quantum_cost_s
                            ),
                            false,
                        ),
                    },
                    slot,
                );
            }
        }
        if token.is_cancelled() {
            // A heartbeat scan requested a cooperative park.
            job.checkpoint = Some(sim.checkpoint_bytes());
            job.device_seconds += sim.device_seconds();
            return (
                RunStep::Aborted {
                    error: DqmcError::device_sick(
                        "heartbeat",
                        "cooperative park after heartbeat stall",
                        false,
                    ),
                },
                slot,
            );
        }
        let preempted = queue.waiting_priority_above(job.priority);
        let sliced = cfg.yield_every_quanta > 0 && quanta_run >= cfg.yield_every_quanta;
        if preempted || sliced {
            job.checkpoint = Some(sim.checkpoint_bytes());
            job.device_seconds += sim.device_seconds();
            return (
                RunStep::Yielded {
                    sweeps_done: sim.sweeps_done(),
                },
                slot,
            );
        }
    }
}

/// Handles a classified abort: the severity keys the recovery ladder.
#[allow(clippy::too_many_arguments)]
fn handle_abort(
    mut job: SweepJob,
    error: DqmcError,
    slot: Option<usize>,
    worker: usize,
    pool: Option<&DevicePool>,
    cfg: &SchedConfig,
    events: &EventLog,
    queue: &JobQueue,
    sink: &dyn OutcomeSink,
) {
    match error.severity {
        Severity::DeviceSick => {
            // The device is indicted, not the job: requeue for free with
            // the suspect slot excluded, and feed the circuit breaker.
            job.sick_strikes += 1;
            let slot_id = slot.unwrap_or(usize::MAX);
            if let (Some(p), Some(s)) = (pool, slot) {
                if !job.excluded_slots.contains(&s) {
                    job.excluded_slots.push(s);
                }
                emit_decision(events, p.report_failure(s, true));
            }
            if error.hard {
                events.push(TraceEvent::WorkerLost {
                    point: job.point,
                    chain: job.chain,
                    worker,
                    slot: slot_id,
                });
            } else {
                events.push(TraceEvent::SoftDeadline {
                    point: job.point,
                    chain: job.chain,
                    slot: slot_id,
                });
            }
            queue.requeue(job);
        }
        Severity::Transient | Severity::Corrupt => {
            if let (Some(p), Some(s)) = (pool, slot) {
                emit_decision(events, p.report_failure(s, false));
            }
            job.attempts += 1;
            if job.attempts <= cfg.job_retries {
                events.push(TraceEvent::Retried {
                    point: job.point,
                    chain: job.chain,
                    attempt: job.attempts,
                });
                // job.checkpoint still holds the last successful park, so
                // the retry resumes there.
                queue.requeue(job);
            } else {
                fail_job(job, events, sink, queue);
            }
        }
        Severity::Fatal => {
            // No restart could help (recovery disabled, ladder exhausted):
            // fail fast regardless of remaining budget.
            job.attempts += 1;
            fail_job(job, events, sink, queue);
        }
    }
}

fn fail_job(job: SweepJob, events: &EventLog, sink: &dyn OutcomeSink, queue: &JobQueue) {
    events.push(TraceEvent::Failed {
        point: job.point,
        chain: job.chain,
        attempts: job.attempts,
    });
    sink.deliver_failure(&job);
    queue.complete();
}

/// One worker's lifetime: drain the queue until the sweep terminates,
/// scanning the heartbeat registry whenever a bounded pop comes up empty.
#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_loop(
    worker: usize,
    queue: &JobQueue,
    pool: Option<&DevicePool>,
    cfg: &SchedConfig,
    events: &EventLog,
    sink: &dyn OutcomeSink,
    injector: &Injector<'_>,
    observer: Option<&SweepObserver>,
    hearts: &Heartbeats,
    panics_caught: &AtomicU64,
) {
    // Workers are the coarse grain of the hierarchy: one chain per thread.
    // Entering the worker scope flips every linalg kernel onto its serial
    // branch for this thread, so W workers never stack kernel fan-out on
    // the one global rayon pool (nested parallelism — lint rule R9, and
    // the prime suspect for the 0.301 efficiency in BENCH_sched.json).
    let _serial_kernels = linalg::parallelism::enter_worker_scope();
    let token = hearts.token(worker);
    loop {
        let mut job = match queue.pop_timeout(1) {
            Pop::Job(job) => job,
            Pop::Empty => {
                hearts.scan(worker, cfg.stall_scan_limit);
                continue;
            }
            Pop::Drained => break,
        };
        token.reset();
        let step = catch_unwind(AssertUnwindSafe(|| {
            run_job(&mut job, worker, pool, cfg, events, queue, &token)
        }));
        // Observers see events only at job boundaries (not mid-quantum), so
        // an injection here lands before the next pop — deterministic with
        // one worker.
        if let Some(obs) = observer {
            let snap = events.snapshot();
            if let Some(e) = snap.last() {
                obs(e, injector);
            }
        }
        match step {
            Ok((RunStep::Completed(outcomes), slot)) => {
                if let (Some(p), Some(s)) = (pool, slot) {
                    emit_decision(events, p.report_success(s));
                }
                sink.deliver(&job, outcomes);
                queue.complete();
            }
            Ok((RunStep::Yielded { sweeps_done }, slot)) => {
                // The quantum ran fine; a probe that got this far answered.
                if let (Some(p), Some(s)) = (pool, slot) {
                    emit_decision(events, p.report_success(s));
                }
                job.preemptions += 1;
                events.push(TraceEvent::Yielded {
                    point: job.point,
                    chain: job.chain,
                    sweeps_done,
                });
                queue.requeue(job);
            }
            Ok((RunStep::Aborted { error }, slot)) => {
                handle_abort(job, error, slot, worker, pool, cfg, events, queue, sink);
            }
            Err(payload) => {
                // Backstop only: classified-recoverable paths return Err
                // above and never unwind. The chaos tier asserts this
                // counter stays zero under pure-sick storms.
                panics_caught.fetch_add(1, Ordering::Relaxed);
                let error = DqmcError::from_panic(payload.as_ref());
                // The lease dropped during unwinding; the slot cannot be
                // indicted reliably, so the pool is not fed a report.
                handle_abort(job, error, None, worker, pool, cfg, events, queue, sink);
            }
        }
    }
}

/// Runs a sweep campaign. Convenience wrapper over
/// [`run_sweep_observed`] with no observer.
pub fn run_sweep(spec: &GridSpec, cfg: &SchedConfig, events: &EventLog) -> SweepReport {
    run_sweep_observed(spec, cfg, events, None)
}

/// Runs a sweep campaign with an optional observer called at job
/// boundaries — the hook the preemption tests use to release held jobs
/// mid-sweep.
///
/// The returned report's [`SweepReport::observables_json`] is a pure
/// function of `(spec physics, spec seeds)`: `cfg` may change workers,
/// devices, quanta, holds, deadlines, breaker policy — the observables
/// section does not move.
pub fn run_sweep_observed(
    spec: &GridSpec,
    cfg: &SchedConfig,
    events: &EventLog,
    observer: Option<&SweepObserver>,
) -> SweepReport {
    assert!(
        cfg.hold_points.is_empty() || observer.is_some(),
        "hold_points without an observer to release them would deadlock"
    );
    let start = Instant::now();
    let points = spec.points();
    let njobs = spec.total_jobs();
    let bound = if cfg.queue_bound == 0 {
        njobs
    } else {
        cfg.queue_bound.max(njobs)
    };
    let queue = JobQueue::new(bound);
    let injector = Injector {
        queue: &queue,
        held: Mutex::new(Vec::new()),
    };

    let crowd = spec.crowd.max(1);
    for point in &points {
        let mut chain = 0;
        while chain < spec.chains {
            // One job per crowd of up to `crowd` consecutive chains; the
            // tail crowd of a point may be narrower. Each walker keeps its
            // own hash-split seed, so batching never reshapes the ensemble.
            let width = crowd.min(spec.chains - chain);
            let mut job = SweepJob::new(point.index, chain, spec.chain_params(point, chain))
                .with_fault_plan(spec.fault_plan(point, chain));
            if width > 1 {
                let extra = (chain + 1..chain + width)
                    .map(|c| spec.chain_params(point, c))
                    .collect();
                job = job.with_crowd(extra);
            }
            chain += width;
            if cfg.hold_points.contains(&point.index) {
                // Count it outstanding now (so termination waits for it and
                // requeue-on-release cannot overflow), but keep it out of
                // the heap until an observer releases it.
                let placeholder = queue.submit_held();
                debug_assert!(placeholder.is_ok(), "grid-sized queue cannot be full");
                relock(injector.held.lock()).push(job);
            } else {
                submit_infallible(&queue, job);
            }
        }
    }

    let pool = if cfg.devices > 0 {
        let p = DevicePool::with_policy(DeviceSpec::tesla_c2050(), cfg.devices, cfg.breaker);
        for (slot, plan, persistent) in spec.slot_profiles() {
            p.set_slot_profile(slot, plan, persistent);
        }
        Some(p)
    } else {
        None
    };
    let sink = SlotSink::new(njobs, spec.chains);
    let hearts = Heartbeats::new(cfg.workers.max(1));
    let panics_caught = AtomicU64::new(0);

    if cfg.workers <= 1 {
        worker_loop(
            0,
            &queue,
            pool.as_ref(),
            cfg,
            events,
            &sink,
            &injector,
            observer,
            &hearts,
            &panics_caught,
        );
    } else {
        std::thread::scope(|scope| {
            for w in 0..cfg.workers {
                let queue = &queue;
                let pool = pool.as_ref();
                let sink = &sink;
                let injector = &injector;
                let hearts = &hearts;
                let panics_caught = &panics_caught;
                scope.spawn(move || {
                    worker_loop(
                        w,
                        queue,
                        pool,
                        cfg,
                        events,
                        sink,
                        injector,
                        observer,
                        hearts,
                        panics_caught,
                    );
                });
            }
        });
    }

    let outcomes = sink.into_outcomes();
    let retries = events.count(|e| matches!(e, TraceEvent::Retried { .. })) as u64;
    assemble_report(
        spec,
        cfg,
        &points,
        outcomes,
        pool.as_ref(),
        events,
        retries,
        panics_caught.load(Ordering::Relaxed),
        start,
    )
}

/// Pools one point's chain outcomes — `outcomes[chain]` in canonical
/// chain order — into its summary plus its pooled recovery tallies. This
/// is the aggregation step the determinism contract protects, shared by
/// the one-shot [`assemble_report`] and the resident service (which
/// summarises each point the moment its last chain lands, to stream and
/// cache it).
pub(crate) fn summarize_point(
    point: &crate::grid::GridPoint,
    outcomes: &[Option<ChainOutcome>],
) -> (PointSummary, RecoveryTallies) {
    let mut pooled: Option<Observables> = None;
    let mut chains_ok = 0usize;
    let mut chains_failed = 0usize;
    let mut acc_sum = 0.0f64;
    let mut max_wrap = 0.0f64;
    let mut recovery_events = 0u64;
    let mut preemptions = 0u64;
    let mut device_quanta = 0u64;
    let mut host_quanta = 0u64;
    let mut device_seconds = 0.0f64;
    let mut tallies = RecoveryTallies::default();

    for outcome in outcomes {
        match outcome {
            Some(ChainOutcome::Done {
                observables,
                acceptance,
                max_wrap_error,
                recovery,
                preemptions: p,
                device_quanta: dq,
                host_quanta: hq,
                device_seconds: ds,
            }) => {
                match &mut pooled {
                    Some(acc) => acc.merge(observables),
                    None => pooled = Some(observables.as_ref().clone()),
                }
                chains_ok += 1;
                acc_sum += acceptance;
                max_wrap = max_wrap.max(*max_wrap_error);
                recovery_events += recovery.total();
                tallies.merge(&recovery.tallies());
                preemptions += u64::from(*p);
                device_quanta += dq;
                host_quanta += hq;
                device_seconds += ds;
            }
            Some(ChainOutcome::Failed {
                preemptions: p,
                device_quanta: dq,
                host_quanta: hq,
                device_seconds: ds,
            }) => {
                chains_failed += 1;
                preemptions += p;
                device_quanta += dq;
                host_quanta += hq;
                device_seconds += ds;
            }
            None => {
                // Unreachable in a drained sweep; count it as failed so
                // a scheduler bug shows up as data loss, not a panic.
                chains_failed += 1;
            }
        }
    }

    let summary = PointSummary {
        point: point.index,
        u: point.u,
        beta: point.beta,
        slices: point.slices,
        chains_ok,
        chains_failed,
        bin_count: pooled.as_ref().map_or(0, |o| o.bin_count()),
        scalars: pooled.as_ref().map(|o| o.jackknife_scalars()),
        mean_acceptance: if chains_ok > 0 {
            acc_sum / chains_ok as f64
        } else {
            0.0
        },
        max_wrap_error: max_wrap,
        recovery_events,
        preemptions,
        device_quanta,
        host_quanta,
        device_seconds,
    };
    (summary, tallies)
}

/// Merges per-chain outcomes into per-point summaries in canonical chain
/// order — the aggregation step the determinism contract protects.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    spec: &GridSpec,
    cfg: &SchedConfig,
    points: &[crate::grid::GridPoint],
    outcomes: Vec<Option<ChainOutcome>>,
    pool: Option<&DevicePool>,
    events: &EventLog,
    retries: u64,
    panics_caught: u64,
    start: Instant,
) -> SweepReport {
    let mut summaries = Vec::with_capacity(points.len());
    let mut failed_jobs = 0usize;
    let mut total_preemptions = 0u64;
    let mut total_device_quanta = 0u64;
    let mut total_host_quanta = 0u64;
    let mut total_device_seconds = 0.0f64;
    let mut recovery_tallies = RecoveryTallies::default();

    for point in points {
        let base = point.index * spec.chains;
        let (summary, tallies) = summarize_point(point, &outcomes[base..base + spec.chains]);
        failed_jobs += summary.chains_failed;
        total_preemptions += summary.preemptions;
        total_device_quanta += summary.device_quanta;
        total_host_quanta += summary.host_quanta;
        total_device_seconds += summary.device_seconds;
        recovery_tallies.merge(&tallies);
        summaries.push(summary);
    }

    SweepReport {
        seed: spec.seed,
        chains: spec.chains,
        crowd: spec.crowd.max(1),
        warmup: spec.warmup,
        sweeps: spec.sweeps,
        points: summaries,
        total_jobs: spec.total_jobs(),
        failed_jobs,
        preemptions: total_preemptions,
        retries,
        device_quanta: total_device_quanta,
        host_quanta: total_host_quanta,
        device_seconds: total_device_seconds,
        leases_granted: pool.map_or(0, |p| p.leases_granted()),
        lease_misses: pool.map_or(0, |p| p.lease_misses()),
        quarantines: pool.map_or(0, |p| p.quarantines()),
        probes: pool.map_or(0, |p| p.probes()),
        readmissions: pool.map_or(0, |p| p.readmissions()),
        quarantine_skips: pool.map_or(0, |p| p.quarantine_skips()),
        soft_parks: events.count(|e| matches!(e, TraceEvent::SoftDeadline { .. })) as u64,
        worker_losses: events.count(|e| matches!(e, TraceEvent::WorkerLost { .. })) as u64,
        panics_caught,
        recovery_tallies,
        workers: cfg.workers,
        devices: cfg.devices,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}
