//! The worker pool: pops jobs, places them, preempts them, retries them,
//! and folds the survivors into a [`SweepReport`].
//!
//! # Execution model
//!
//! Each worker loops: pop a job → try to lease a device from the shared
//! [`DevicePool`] (host fallback on a miss) → run the simulation in quanta
//! of `quantum` sweeps. At every quantum boundary the job checks whether it
//! should yield — a higher-priority job is waiting, or its cooperative
//! time-slice (`yield_every_quanta`) expired — and if so parks itself as an
//! in-memory `DQCP` image and requeues. A panic escaping the simulation
//! (the recovery ladder's terminal rung) is caught; the job restarts from
//! its last parked image up to `job_retries` times before being recorded
//! as failed.
//!
//! # Why the result cannot see the schedule
//!
//! Chain trajectories are fixed by hash-split seeds; device placement uses
//! the bit-exact wrap mode, so host and device runs agree to the last bit;
//! `DQCP` resume is bit-identical; and results land in a slot vector
//! indexed by `job_id = point * chains + chain`, then merge in canonical
//! chain order per point. Workers race only for *which* slot they fill
//! next, never for what goes in it.

use crate::grid::GridSpec;
use crate::queue::{JobQueue, SweepJob};
use crate::report::{PointSummary, SweepReport};
use crate::trace::{EventLog, Placement, TraceEvent};
use dqmc::{Observables, RecoveryLog, Simulation};
use gpusim::{DevicePool, DeviceSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Scheduler configuration, usually derived from a [`GridSpec`] via
/// [`SchedConfig::from_spec`]; tests override individual knobs.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub workers: usize,
    /// Simulated accelerator slots in the device pool. `0` forces every
    /// job onto the host backend.
    pub devices: usize,
    /// Queue bound; `0` sizes it to fit the whole grid.
    pub queue_bound: usize,
    /// Sweeps per scheduling quantum; `0` runs jobs to completion.
    pub quantum: usize,
    /// Cooperative yield after this many quanta even with no higher-
    /// priority waiter; `0` disables time-slicing.
    pub yield_every_quanta: u64,
    /// Scheduler-level restarts of a panicked job.
    pub job_retries: u32,
    /// Grid point indices whose jobs are *held back* from the initial
    /// submission; tests release them mid-sweep (via
    /// [`Injector::release_held`]) to force true priority preemption.
    pub hold_points: Vec<usize>,
}

impl SchedConfig {
    /// The scheduling knobs declared in a grid spec.
    pub fn from_spec(spec: &GridSpec) -> Self {
        SchedConfig {
            workers: spec.workers,
            devices: spec.devices,
            queue_bound: 0,
            quantum: spec.quantum,
            yield_every_quanta: 0,
            job_retries: spec.job_retries,
            hold_points: Vec::new(),
        }
    }
}

/// What happened to one job. The accumulators are boxed so the `Failed`
/// variant (and the slot vector's `None`s) stay pointer-sized.
enum ChainOutcome {
    Done {
        observables: Box<Observables>,
        acceptance: f64,
        max_wrap_error: f64,
        recovery: RecoveryLog,
        preemptions: u32,
        device_quanta: u64,
        host_quanta: u64,
    },
    Failed {
        preemptions: u64,
        device_quanta: u64,
        host_quanta: u64,
    },
}

/// Mid-sweep injection handle passed to the observer callback: jobs held
/// back by [`SchedConfig::hold_points`] wait here until released.
pub struct Injector<'a> {
    queue: &'a JobQueue,
    held: Mutex<Vec<SweepJob>>,
}

impl<'a> Injector<'a> {
    /// Jobs still held (not yet injected).
    pub fn held(&self) -> usize {
        self.held.lock().expect("injector poisoned").len()
    }

    /// Releases every held job into the queue at `priority`. Idempotent —
    /// observers may call it on every event and only the first call
    /// submits. Held jobs were counted outstanding at submission time, so
    /// the queue always has room for them.
    pub fn release_held(&self, priority: u8) {
        let jobs: Vec<SweepJob> = {
            let mut held = self.held.lock().expect("injector poisoned");
            std::mem::take(&mut *held)
        };
        for job in jobs {
            let job = job.with_priority(priority);
            self.queue.requeue(job);
        }
    }
}

/// Callback observing the trace stream at job boundaries; the [`Injector`]
/// lets it submit held jobs mid-sweep.
pub type SweepObserver = dyn for<'a> Fn(&TraceEvent, &Injector<'a>) + Sync;

/// The result of one quantum-loop invocation.
enum RunStep {
    Completed(Box<ChainOutcome>),
    Yielded { sweeps_done: usize },
}

/// Runs one job until it completes or decides to yield.
///
/// On a yield the parked `DQCP` image replaces `job.checkpoint`; on a panic
/// the *previous* image is still intact (this function never `take`s it),
/// so a retried job resumes from its last successful park rather than from
/// scratch-after-progress.
fn run_job(
    job: &mut SweepJob,
    worker: usize,
    pool: Option<&DevicePool>,
    cfg: &SchedConfig,
    events: &EventLog,
    queue: &JobQueue,
) -> RunStep {
    let lease = pool.and_then(|p| p.try_lease());
    let placement = match &lease {
        Some(l) => Placement::Device { slot: l.slot() },
        None => Placement::Host,
    };
    events.push(TraceEvent::Started {
        point: job.point,
        chain: job.chain,
        worker,
        placement,
        resumed: job.checkpoint.is_some(),
    });

    let mut sim = match &job.checkpoint {
        Some(bytes) => Simulation::resume_bytes(bytes, &job.params)
            .expect("parked DQCP image must resume: it was produced this run"),
        None => Simulation::new(job.params.clone()),
    };
    if let Some(l) = &lease {
        sim = sim.with_backend(Box::new(l.backend(job.fault_plan.clone())));
    }

    let quantum = if cfg.quantum == 0 {
        usize::MAX
    } else {
        cfg.quantum
    };
    let mut quanta_run: u64 = 0;
    loop {
        sim.step(quantum);
        quanta_run += 1;
        match placement {
            Placement::Device { .. } => job.device_quanta += 1,
            Placement::Host => job.host_quanta += 1,
        }
        if sim.is_complete() {
            events.push(TraceEvent::Completed {
                point: job.point,
                chain: job.chain,
                worker,
            });
            return RunStep::Completed(Box::new(ChainOutcome::Done {
                observables: Box::new(sim.observables().clone()),
                acceptance: sim.acceptance_rate(),
                max_wrap_error: sim.max_wrap_error(),
                recovery: sim.recovery_log().clone(),
                preemptions: job.preemptions,
                device_quanta: job.device_quanta,
                host_quanta: job.host_quanta,
            }));
        }
        let preempted = queue.waiting_priority_above(job.priority);
        let sliced = cfg.yield_every_quanta > 0 && quanta_run >= cfg.yield_every_quanta;
        if preempted || sliced {
            job.checkpoint = Some(sim.checkpoint_bytes());
            let (w, m) = sim.sweeps_done();
            return RunStep::Yielded { sweeps_done: w + m };
        }
    }
}

/// One worker's lifetime: drain the queue until the sweep terminates.
fn worker_loop(
    worker: usize,
    queue: &JobQueue,
    pool: Option<&DevicePool>,
    cfg: &SchedConfig,
    events: &EventLog,
    results: &Mutex<Vec<Option<ChainOutcome>>>,
    chains: usize,
    injector: &Injector<'_>,
    observer: Option<&SweepObserver>,
) {
    while let Some(mut job) = queue.pop_blocking() {
        let step = catch_unwind(AssertUnwindSafe(|| {
            run_job(&mut job, worker, pool, cfg, events, queue)
        }));
        // Observers see events only at job boundaries (not mid-quantum), so
        // an injection here lands before the next pop — deterministic with
        // one worker.
        if let Some(obs) = observer {
            let snap = events.snapshot();
            if let Some(e) = snap.last() {
                obs(e, injector);
            }
        }
        match step {
            Ok(RunStep::Completed(outcome)) => {
                let slot = job.point * chains + job.chain;
                results.lock().expect("results poisoned")[slot] = Some(*outcome);
                queue.complete();
            }
            Ok(RunStep::Yielded { sweeps_done }) => {
                job.preemptions += 1;
                events.push(TraceEvent::Yielded {
                    point: job.point,
                    chain: job.chain,
                    sweeps_done,
                });
                queue.requeue(job);
            }
            Err(_) => {
                job.attempts += 1;
                if job.attempts <= cfg.job_retries {
                    events.push(TraceEvent::Retried {
                        point: job.point,
                        chain: job.chain,
                        attempt: job.attempts,
                    });
                    // job.checkpoint still holds the last *successful* park
                    // (run_job never clears it), so the retry resumes there.
                    queue.requeue(job);
                } else {
                    events.push(TraceEvent::Failed {
                        point: job.point,
                        chain: job.chain,
                        attempts: job.attempts,
                    });
                    let slot = job.point * chains + job.chain;
                    results.lock().expect("results poisoned")[slot] = Some(ChainOutcome::Failed {
                        preemptions: job.preemptions as u64,
                        device_quanta: job.device_quanta,
                        host_quanta: job.host_quanta,
                    });
                    queue.complete();
                }
            }
        }
    }
}

/// Runs a sweep campaign. Convenience wrapper over
/// [`run_sweep_observed`] with no observer.
pub fn run_sweep(spec: &GridSpec, cfg: &SchedConfig, events: &EventLog) -> SweepReport {
    run_sweep_observed(spec, cfg, events, None)
}

/// Runs a sweep campaign with an optional observer called at job
/// boundaries — the hook the preemption tests use to release held jobs
/// mid-sweep.
///
/// The returned report's [`SweepReport::observables_json`] is a pure
/// function of `(spec physics, spec seeds)`: `cfg` may change workers,
/// devices, quanta, holds — the observables section does not move.
pub fn run_sweep_observed(
    spec: &GridSpec,
    cfg: &SchedConfig,
    events: &EventLog,
    observer: Option<&SweepObserver>,
) -> SweepReport {
    assert!(
        cfg.hold_points.is_empty() || observer.is_some(),
        "hold_points without an observer to release them would deadlock"
    );
    let start = Instant::now();
    let points = spec.points();
    let njobs = spec.total_jobs();
    let bound = if cfg.queue_bound == 0 {
        njobs
    } else {
        cfg.queue_bound.max(njobs)
    };
    let queue = JobQueue::new(bound);
    let injector = Injector {
        queue: &queue,
        held: Mutex::new(Vec::new()),
    };

    for point in &points {
        for chain in 0..spec.chains {
            let job = SweepJob::new(point.index, chain, spec.chain_params(point, chain))
                .with_fault_plan(spec.fault_plan(point, chain));
            if cfg.hold_points.contains(&point.index) {
                // Count it outstanding now (so termination waits for it and
                // requeue-on-release cannot overflow), but keep it out of
                // the heap until an observer releases it.
                let placeholder = queue.submit_held();
                debug_assert!(placeholder.is_ok(), "grid-sized queue cannot be full");
                injector.held.lock().expect("injector poisoned").push(job);
            } else {
                queue
                    .submit(job)
                    .expect("queue was sized to fit the whole grid");
            }
        }
    }

    let pool = if cfg.devices > 0 {
        Some(DevicePool::new(DeviceSpec::tesla_c2050(), cfg.devices))
    } else {
        None
    };
    let results: Mutex<Vec<Option<ChainOutcome>>> = Mutex::new((0..njobs).map(|_| None).collect());

    if cfg.workers <= 1 {
        worker_loop(
            0,
            &queue,
            pool.as_ref(),
            cfg,
            events,
            &results,
            spec.chains,
            &injector,
            observer,
        );
    } else {
        std::thread::scope(|scope| {
            for w in 0..cfg.workers {
                let queue = &queue;
                let pool = pool.as_ref();
                let results = &results;
                let injector = &injector;
                scope.spawn(move || {
                    worker_loop(
                        w,
                        queue,
                        pool,
                        cfg,
                        events,
                        results,
                        spec.chains,
                        injector,
                        observer,
                    );
                });
            }
        });
    }

    let outcomes = results.into_inner().expect("results poisoned");
    let retries = events.count(|e| matches!(e, TraceEvent::Retried { .. })) as u64;
    assemble_report(spec, cfg, &points, outcomes, pool.as_ref(), retries, start)
}

/// Merges per-chain outcomes into per-point summaries in canonical chain
/// order — the aggregation step the determinism contract protects.
fn assemble_report(
    spec: &GridSpec,
    cfg: &SchedConfig,
    points: &[crate::grid::GridPoint],
    outcomes: Vec<Option<ChainOutcome>>,
    pool: Option<&DevicePool>,
    retries: u64,
    start: Instant,
) -> SweepReport {
    let mut summaries = Vec::with_capacity(points.len());
    let mut failed_jobs = 0usize;
    let mut total_preemptions = 0u64;
    let mut total_device_quanta = 0u64;
    let mut total_host_quanta = 0u64;

    for point in points {
        let mut pooled: Option<Observables> = None;
        let mut chains_ok = 0usize;
        let mut chains_failed = 0usize;
        let mut acc_sum = 0.0f64;
        let mut max_wrap = 0.0f64;
        let mut recovery_events = 0u64;
        let mut preemptions = 0u64;
        let mut device_quanta = 0u64;
        let mut host_quanta = 0u64;

        for chain in 0..spec.chains {
            let slot = point.index * spec.chains + chain;
            match &outcomes[slot] {
                Some(ChainOutcome::Done {
                    observables,
                    acceptance,
                    max_wrap_error,
                    recovery,
                    preemptions: p,
                    device_quanta: dq,
                    host_quanta: hq,
                }) => {
                    match &mut pooled {
                        Some(acc) => acc.merge(observables),
                        None => pooled = Some(observables.as_ref().clone()),
                    }
                    chains_ok += 1;
                    acc_sum += acceptance;
                    max_wrap = max_wrap.max(*max_wrap_error);
                    recovery_events += recovery.total();
                    preemptions += u64::from(*p);
                    device_quanta += dq;
                    host_quanta += hq;
                }
                Some(ChainOutcome::Failed {
                    preemptions: p,
                    device_quanta: dq,
                    host_quanta: hq,
                }) => {
                    chains_failed += 1;
                    failed_jobs += 1;
                    preemptions += p;
                    device_quanta += dq;
                    host_quanta += hq;
                }
                None => {
                    // Unreachable in a drained sweep; count it as failed so
                    // a scheduler bug shows up as data loss, not a panic.
                    chains_failed += 1;
                    failed_jobs += 1;
                }
            }
        }

        total_preemptions += preemptions;
        total_device_quanta += device_quanta;
        total_host_quanta += host_quanta;

        summaries.push(PointSummary {
            point: point.index,
            u: point.u,
            beta: point.beta,
            slices: point.slices,
            chains_ok,
            chains_failed,
            bin_count: pooled.as_ref().map_or(0, |o| o.bin_count()),
            scalars: pooled.as_ref().map(|o| o.jackknife_scalars()),
            mean_acceptance: if chains_ok > 0 {
                acc_sum / chains_ok as f64
            } else {
                0.0
            },
            max_wrap_error: max_wrap,
            recovery_events,
            preemptions,
            device_quanta,
            host_quanta,
        });
    }

    SweepReport {
        seed: spec.seed,
        chains: spec.chains,
        warmup: spec.warmup,
        sweeps: spec.sweeps,
        points: summaries,
        total_jobs: spec.total_jobs(),
        failed_jobs,
        preemptions: total_preemptions,
        retries,
        device_quanta: total_device_quanta,
        host_quanta: total_host_quanta,
        leases_granted: pool.map_or(0, |p| p.leases_granted()),
        lease_misses: pool.map_or(0, |p| p.lease_misses()),
        workers: cfg.workers,
        devices: cfg.devices,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}
