//! Bounded priority work queue of sweep jobs.
//!
//! Jobs pop highest-priority-first, FIFO within a priority class (a
//! monotonic sequence number breaks ties, and a *re*-queued job draws a new
//! number, so equal-priority jobs round-robin under cooperative yielding
//! rather than starving each other). The queue is bounded at construction;
//! `submit` refuses past the bound. Because every heap entry is an
//! *outstanding* job and outstanding jobs never exceed the bound, the
//! requeue path — which runs on every preemption — can never overflow the
//! capacity reserved up front, so the hot pop/requeue paths are
//! allocation-free (enforced by the `deny_hot_alloc` lint tag below).
//!
//! Termination: a worker blocks while the queue is empty but jobs are
//! still outstanding — a running job may yet yield back into the queue —
//! and unblocks with `None` only when the last outstanding job completes.
//! A *resident* queue ([`JobQueue::new_resident`]) serves a long-lived
//! service instead of one batch sweep: an empty drained queue parks its
//! workers rather than terminating them, and termination additionally
//! requires [`JobQueue::close`].

#![cfg_attr(any(), deny_hot_alloc)]

use dqmc::SimParams;
use gpusim::FaultPlan;
use std::collections::BinaryHeap;
use std::time::Duration;
// Poison recovery via util::relock is sound here: queue invariants
// (`outstanding`, the heap) are each updated in a single short critical
// section with no partially applied state, so data behind a poisoned lock
// is still consistent — a worker that panicked mid-`push` never got the
// lock in the first place, and one that panicked *holding* it had already
// finished the mutation. Recovering keeps the whole scheduler alive
// through one worker's death — the chaos tier's first requirement.
use util::sync::{relock, Condvar, Mutex};

/// One schedulable unit: a *crowd* of `width` consecutive Markov chains of
/// a single grid point, stepped in lockstep on one placement. `width == 1`
/// is the classic solo job; wider jobs batch their walkers' wrap and
/// cluster kernels through strided-batch device calls, so each device lease
/// services `width` walkers per launch.
#[derive(Debug)]
pub struct SweepJob {
    /// Grid point index (the seed hash-split's stream id).
    pub point: usize,
    /// First chain index covered by this job; the job spans chains
    /// `chain..chain + width`.
    pub chain: usize,
    /// Walkers batched in this job (`1 + extra_params.len()`).
    pub width: usize,
    /// Scheduling class; higher pops first and preempts lower.
    pub priority: u8,
    /// Full simulation parameters of the base chain (seed already
    /// hash-split).
    pub params: SimParams,
    /// Parameters of the crowd's remaining walkers, chains
    /// `chain + 1..chain + width`, each with its own hash-split seed.
    pub extra_params: Vec<SimParams>,
    /// Scripted device faults to arm when the job lands on a device.
    pub fault_plan: Option<FaultPlan>,
    /// Parked `DQCP` image from the last yield; `None` for a fresh start.
    pub checkpoint: Option<Vec<u8>>,
    /// Scheduler-level restarts consumed (panic recovery).
    pub attempts: u32,
    /// Times this job was preempted (diagnostics).
    pub preemptions: u32,
    /// Quanta executed on a leased device.
    pub device_quanta: u64,
    /// Quanta executed on the host backend.
    pub host_quanta: u64,
    /// Modeled device-seconds accumulated across placements (each lease
    /// starts a fresh simulated clock; parks fold it in here).
    pub device_seconds: f64,
    /// Device-pool slots this job must not be placed on again (each slot
    /// that failed it with a `DeviceSick`-class error).
    pub excluded_slots: Vec<usize>,
    /// Sick-classified placements survived (deadline parks / worker
    /// losses); these do *not* consume [`SweepJob::attempts`] — the job is
    /// innocent, the device was sick.
    pub sick_strikes: u32,
    /// Campaign tag routing this job's outcome in a resident service
    /// (`0` for classic one-shot sweeps, which route by slot index).
    pub tag: u64,
}

impl SweepJob {
    /// A fresh job for (point, chain) at the default priority.
    // dqmc-lint: allow(hot_alloc) — job construction is sweep setup, and
    // `Vec::new` is capacity-zero (no heap touch until a slot is excluded).
    pub fn new(point: usize, chain: usize, params: SimParams) -> Self {
        SweepJob {
            point,
            chain,
            width: 1,
            priority: 0,
            params,
            extra_params: Vec::new(),
            fault_plan: None,
            checkpoint: None,
            attempts: 0,
            preemptions: 0,
            device_quanta: 0,
            host_quanta: 0,
            device_seconds: 0.0,
            excluded_slots: Vec::new(),
            sick_strikes: 0,
            tag: 0,
        }
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Tags the job with the campaign it belongs to (resident service).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Arms a scripted fault plan for device placements.
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Widens the job into a crowd: `extra` holds the parameters of the
    /// walkers for chains `chain + 1..`, each with its own hash-split seed.
    // dqmc-lint: allow(hot_alloc) — crowd construction is sweep setup.
    pub fn with_crowd(mut self, extra: Vec<SimParams>) -> Self {
        self.width = 1 + extra.len();
        self.extra_params = extra;
        self
    }

    /// All walker parameters in chain order (base chain first) — the list
    /// `dqmc::Crowd::new` / `Crowd::resume_bytes` consume.
    // dqmc-lint: allow(hot_alloc) — runs at job placement, not per sweep.
    pub fn crowd_params(&self) -> Vec<SimParams> {
        let mut all = Vec::with_capacity(self.width);
        all.push(self.params.clone());
        all.extend(self.extra_params.iter().cloned());
        all
    }
}

#[derive(Debug)]
struct Entry {
    priority: u8,
    seq: u64,
    job: SweepJob,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then *lower* seq (older) first.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Error from [`JobQueue::submit`] on a full queue.
#[derive(Debug)]
pub struct QueueFull {
    /// The configured bound.
    pub bound: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue full (bound {})", self.bound)
    }
}

impl std::error::Error for QueueFull {}

/// Error from [`JobQueue::submit_batch`]: the whole batch was refused.
#[derive(Debug)]
pub enum AdmitError {
    /// Admitting the batch would push `outstanding` past the bound. The
    /// all-or-nothing refusal is the fair-admission primitive: a campaign
    /// too large for the remaining capacity cannot squat part of it and
    /// starve smaller tenants into deadlock.
    Full {
        /// The configured bound.
        bound: usize,
        /// Jobs the refused batch asked for.
        want: usize,
    },
    /// The queue was closed for new work ([`JobQueue::close`]).
    Closed,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Full { bound, want } => {
                write!(f, "batch of {want} refused: job queue bound is {bound}")
            }
            AdmitError::Closed => write!(f, "job queue is closed"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Outcome of a bounded-wait pop ([`JobQueue::pop_timeout`]).
// Boxing the job would put an allocation in the pop hot path, which this
// module's deny_hot_alloc contract forbids; the enum lives only across the
// caller's match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Pop {
    /// A job was dequeued; the capacity slot stays held until
    /// [`JobQueue::complete`].
    Job(SweepJob),
    /// The wait budget ran out with the heap empty but jobs still
    /// outstanding — a running job may yet yield back in. The caller
    /// should run its periodic bookkeeping (watchdog scan) and retry.
    Empty,
    /// The sweep is drained: nothing waiting, nothing outstanding.
    Drained,
}

#[derive(Debug)]
struct QueueState {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    /// Jobs submitted and not yet completed/failed (running jobs included).
    outstanding: usize,
    /// Set by [`JobQueue::close`]; a resident queue only reports
    /// [`Pop::Drained`] once closed *and* drained.
    closed: bool,
}

/// The shared bounded priority queue.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    bound: usize,
    /// Resident queues park idle workers on an empty drained queue
    /// instead of terminating them; batch queues terminate on drain.
    resident: bool,
}

impl JobQueue {
    /// An empty queue refusing more than `bound` outstanding jobs.
    pub fn new(bound: usize) -> Self {
        JobQueue::with_mode(bound, false)
    }

    /// A *resident* queue for a long-lived service: when the queue is
    /// empty and nothing is outstanding, pops report [`Pop::Empty`] (the
    /// worker parks and re-checks) rather than [`Pop::Drained`] — more
    /// campaigns may arrive at any time. Only [`JobQueue::close`] lets
    /// pops observe termination.
    pub fn new_resident(bound: usize) -> Self {
        JobQueue::with_mode(bound, true)
    }

    // dqmc-lint: allow(hot_alloc) — one-time construction; the heap is
    // sized here so pushes on the scheduling path never reallocate.
    fn with_mode(bound: usize, resident: bool) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                heap: BinaryHeap::with_capacity(bound),
                next_seq: 0,
                outstanding: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            bound,
            resident,
        }
    }

    /// The configured bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Submits a new job, failing when the outstanding count has reached
    /// the bound. New jobs may be submitted while workers run (late
    /// arrivals / priority cut-ins).
    pub fn submit(&self, job: SweepJob) -> Result<(), QueueFull> {
        let mut s = relock(self.state.lock());
        if s.outstanding >= self.bound {
            return Err(QueueFull { bound: self.bound });
        }
        s.outstanding += 1;
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry {
            priority: job.priority,
            seq,
            job,
        });
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Atomically admits a whole campaign's batch: either every job is
    /// admitted or none are. Refusal never partially consumes capacity,
    /// so concurrent tenants racing for the tail of the bound cannot
    /// strand each other's half-admitted campaigns.
    pub fn submit_batch(&self, jobs: Vec<SweepJob>) -> Result<(), AdmitError> {
        let mut s = relock(self.state.lock());
        if s.closed {
            return Err(AdmitError::Closed);
        }
        if s.outstanding + jobs.len() > self.bound {
            return Err(AdmitError::Full {
                bound: self.bound,
                want: jobs.len(),
            });
        }
        for job in jobs {
            s.outstanding += 1;
            let seq = s.next_seq;
            s.next_seq += 1;
            s.heap.push(Entry {
                priority: job.priority,
                seq,
                job,
            });
        }
        drop(s);
        self.cv.notify_all();
        Ok(())
    }

    /// Closes the queue for new work: [`JobQueue::submit_batch`] refuses
    /// from now on, outstanding jobs drain normally, and once the last
    /// one completes pops report [`Pop::Drained`] — the resident-service
    /// shutdown sequence. Idempotent.
    pub fn close(&self) {
        let mut s = relock(self.state.lock());
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Reserves one capacity slot for a job that exists but is deliberately
    /// kept *out* of the heap (a held job awaiting mid-sweep injection).
    /// Termination waits for it, and its eventual [`JobQueue::requeue`]
    /// cannot overflow the reserved capacity.
    pub fn submit_held(&self) -> Result<(), QueueFull> {
        let mut s = relock(self.state.lock());
        if s.outstanding >= self.bound {
            return Err(QueueFull { bound: self.bound });
        }
        s.outstanding += 1;
        Ok(())
    }

    /// Returns a yielded job to the queue. The job is still outstanding, so
    /// capacity is guaranteed; it draws a fresh sequence number and goes
    /// behind its priority class.
    pub fn requeue(&self, job: SweepJob) {
        let mut s = relock(self.state.lock());
        debug_assert!(s.outstanding > 0, "requeue of a non-outstanding job");
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry {
            priority: job.priority,
            seq,
            job,
        });
        drop(s);
        self.cv.notify_one();
    }

    /// Marks one popped job as finished (completed or permanently failed),
    /// releasing its capacity slot. The last completion wakes every blocked
    /// worker so they can observe termination.
    pub fn complete(&self) {
        let mut s = relock(self.state.lock());
        s.outstanding = s.outstanding.saturating_sub(1);
        let done = s.outstanding == 0;
        drop(s);
        if done {
            self.cv.notify_all();
        }
    }

    /// Pops the highest-priority job, blocking while the queue is empty but
    /// jobs are still outstanding. `None` means the sweep is drained (for
    /// a resident queue: drained *and* closed).
    pub fn pop_blocking(&self) -> Option<SweepJob> {
        let mut s = relock(self.state.lock());
        loop {
            if let Some(e) = s.heap.pop() {
                return Some(e.job);
            }
            if s.outstanding == 0 && (!self.resident || s.closed) {
                return None;
            }
            s = relock(self.cv.wait(s));
        }
    }

    /// [`JobQueue::pop_blocking`] with a bounded wait, for workers that
    /// must keep servicing a watchdog while idle. The budget is counted in
    /// condvar *wakeups* (spurious or timed), not wall time, so a worker
    /// polling with budget 1 re-checks its deadlines at a steady cadence.
    ///
    /// Returns [`Pop::Empty`] when the budget runs out with jobs still
    /// outstanding — the two-phase-termination window where a running job
    /// may yet yield back into the queue — and [`Pop::Drained`] only when
    /// the last outstanding job has completed.
    pub fn pop_timeout(&self, wait_budget: u32) -> Pop {
        let mut s = relock(self.state.lock());
        let mut waits = 0u32;
        loop {
            if let Some(e) = s.heap.pop() {
                return Pop::Job(e.job);
            }
            if s.outstanding == 0 && (!self.resident || s.closed) {
                return Pop::Drained;
            }
            if waits >= wait_budget {
                return Pop::Empty;
            }
            let (guard, _timed_out) = relock(self.cv.wait_timeout(s, Duration::from_millis(10)));
            s = guard;
            waits += 1;
        }
    }

    /// True when a job with priority strictly above `p` is waiting — the
    /// preemption check run by workers at every quantum boundary.
    pub fn waiting_priority_above(&self, p: u8) -> bool {
        relock(self.state.lock())
            .heap
            .peek()
            .is_some_and(|e| e.priority > p)
    }

    /// Jobs currently waiting in the queue (excludes running ones).
    pub fn waiting(&self) -> usize {
        relock(self.state.lock()).heap.len()
    }

    /// Poisons the state mutex by panicking while holding it — the
    /// regression hook for the poison-recovery tests (release builds
    /// included: the chaos CI tier runs `--release`). Panicking is the
    /// whole point here.
    // dqmc-lint: allow(panic_site)
    #[cfg(test)]
    pub(crate) fn poison_for_test(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = relock(self.state.lock());
            panic!("poisoning job queue for test");
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqmc::ModelParams;
    use lattice::Lattice;

    fn job(point: usize, chain: usize, priority: u8) -> SweepJob {
        let model = ModelParams::new(Lattice::square(2, 2, 1.0), 4.0, 0.0, 0.125, 4);
        SweepJob::new(point, chain, SimParams::new(model)).with_priority(priority)
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.submit(job(0, 0, 0)).unwrap();
        q.submit(job(1, 0, 0)).unwrap();
        q.submit(job(2, 0, 1)).unwrap();
        q.submit(job(3, 0, 0)).unwrap();
        let order: Vec<usize> = (0..4)
            .map(|_| {
                let j = q.pop_blocking().unwrap();
                q.complete();
                j.point
            })
            .collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn requeued_jobs_round_robin_within_class() {
        let q = JobQueue::new(4);
        q.submit(job(0, 0, 0)).unwrap();
        q.submit(job(1, 0, 0)).unwrap();
        let a = q.pop_blocking().unwrap();
        assert_eq!(a.point, 0);
        q.requeue(a); // fresh seq: goes behind point 1
        let b = q.pop_blocking().unwrap();
        assert_eq!(b.point, 1);
        q.complete();
        let a2 = q.pop_blocking().unwrap();
        assert_eq!(a2.point, 0);
        q.complete();
    }

    #[test]
    fn bound_is_enforced_for_new_submissions() {
        let q = JobQueue::new(2);
        q.submit(job(0, 0, 0)).unwrap();
        q.submit(job(1, 0, 0)).unwrap();
        let err = q.submit(job(2, 0, 0)).unwrap_err();
        assert_eq!(err.bound, 2);
        // Popping alone frees nothing — completion does.
        let j = q.pop_blocking().unwrap();
        assert!(q.submit(job(2, 0, 0)).is_err());
        drop(j);
        q.complete();
        q.submit(job(2, 0, 0)).unwrap();
    }

    #[test]
    fn preemption_probe_sees_higher_waiters_only() {
        let q = JobQueue::new(4);
        q.submit(job(0, 0, 0)).unwrap();
        assert!(!q.waiting_priority_above(0));
        assert!(q.waiting_priority_above(0) || q.waiting() == 1);
        q.submit(job(1, 0, 2)).unwrap();
        assert!(q.waiting_priority_above(0));
        assert!(q.waiting_priority_above(1));
        assert!(!q.waiting_priority_above(2));
    }

    #[test]
    fn queue_survives_poisoning_panic() {
        let q = JobQueue::new(4);
        q.submit(job(0, 0, 0)).unwrap();
        // A worker dies while holding the state lock; the mutex is now
        // poisoned. Every queue operation must recover, not propagate.
        q.poison_for_test();
        q.submit(job(1, 0, 1)).unwrap();
        assert_eq!(q.waiting(), 2);
        assert!(q.waiting_priority_above(0));
        let j = q.pop_blocking().unwrap();
        assert_eq!(j.point, 1, "priority order intact after poisoning");
        q.requeue(j);
        q.complete();
        q.complete();
        // Both capacity slots released; the heap still holds two entries
        // that will never pop (the sweep is over), but no lock panicked.
        assert!(q.submit(job(2, 0, 0)).is_ok());
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_drained() {
        let q = JobQueue::new(2);
        q.submit(job(0, 0, 0)).unwrap();
        let j = match q.pop_timeout(0) {
            Pop::Job(j) => j,
            other => panic!("expected a job, got {other:?}"),
        };
        // Heap empty, one job outstanding: a bounded wait must wake up
        // empty-handed rather than block or claim termination.
        assert!(matches!(q.pop_timeout(2), Pop::Empty));
        drop(j);
        q.complete();
        assert!(matches!(q.pop_timeout(0), Pop::Drained));
    }

    #[test]
    fn new_jobs_carry_clean_health_state() {
        let j = job(0, 0, 0);
        assert!(j.excluded_slots.is_empty());
        assert_eq!(j.sick_strikes, 0);
    }

    #[test]
    fn resident_queue_parks_instead_of_draining() {
        let q = JobQueue::new_resident(4);
        // Empty and nothing outstanding: a batch queue would drain; a
        // resident one reports Empty (park, re-check) until closed.
        assert!(matches!(q.pop_timeout(0), Pop::Empty));
        q.submit(job(0, 0, 0)).unwrap();
        assert!(matches!(q.pop_timeout(0), Pop::Job(_)));
        q.complete();
        assert!(matches!(q.pop_timeout(0), Pop::Empty));
        q.close();
        assert!(matches!(q.pop_timeout(0), Pop::Drained));
    }

    #[test]
    fn close_drains_outstanding_work_first() {
        let q = JobQueue::new_resident(4);
        q.submit(job(0, 0, 0)).unwrap();
        q.close();
        // Closed but not drained: the queued job must still pop and the
        // queue must wait for its completion before declaring Drained.
        let j = match q.pop_timeout(0) {
            Pop::Job(j) => j,
            other => panic!("expected the queued job, got {other:?}"),
        };
        assert!(matches!(q.pop_timeout(1), Pop::Empty));
        drop(j);
        q.complete();
        assert!(matches!(q.pop_timeout(0), Pop::Drained));
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let q = JobQueue::new_resident(3);
        q.submit_batch(vec![job(0, 0, 0), job(0, 1, 0)]).unwrap();
        // Two slots taken, batch of two refused — and nothing admitted.
        let err = q
            .submit_batch(vec![job(1, 0, 0), job(1, 1, 0)])
            .unwrap_err();
        match err {
            AdmitError::Full { bound, want } => {
                assert_eq!((bound, want), (3, 2));
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.waiting(), 2);
        // A batch that fits the remaining slot is admitted.
        q.submit_batch(vec![job(1, 0, 0)]).unwrap();
        assert_eq!(q.waiting(), 3);
    }

    #[test]
    fn closed_queue_refuses_batches() {
        let q = JobQueue::new_resident(4);
        q.close();
        assert!(matches!(
            q.submit_batch(vec![job(0, 0, 0)]),
            Err(AdmitError::Closed)
        ));
    }

    #[test]
    fn tags_ride_through_the_queue() {
        let q = JobQueue::new(2);
        q.submit(job(0, 0, 0).with_tag(17)).unwrap();
        let j = q.pop_blocking().unwrap();
        assert_eq!(j.tag, 17);
        q.complete();
    }

    #[test]
    fn drained_queue_unblocks_all_workers() {
        let q = std::sync::Arc::new(JobQueue::new(2));
        q.submit(job(0, 0, 0)).unwrap();
        // Pop before spawning so the helper thread can only ever see an
        // empty heap with one outstanding job — it must block, not race us
        // for the job.
        let j = q.pop_blocking().unwrap();
        drop(j);
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            // Blocks until the main thread completes the outstanding job.
            q2.pop_blocking().is_none()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.complete();
        assert!(t.join().unwrap(), "blocked worker must see termination");
    }
}
