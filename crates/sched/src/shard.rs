//! Shard planner: splits a (U, β) grid into contiguous point blocks for
//! multi-process execution (`crates/fleet`).
//!
//! The shard unit is a **whole grid point**: every chain of a point runs
//! inside one shard, so the shard's [`crate::report::PointSummary`] is
//! produced by the very same `summarize_point` pooling — in canonical
//! chain order — that the single-process sweep uses. Point summaries are
//! pure functions of (grid, seeds) by the determinism contract, which
//! makes the fleet merge trivial to get byte-exact: reassemble the
//! fragments in canonical point order and emit them through the one shared
//! [`crate::report::observables_json_for`] emitter.
//!
//! Blocks are *contiguous* in point order and weighted by each point's
//! slice count (β / Δτ): at fixed lattice size a sweep's cost is linear in
//! the number of imaginary-time slices, so a β-heavy grid splits by cost
//! rather than by point count. The partition is deterministic — same grid,
//! same process count, same plan — because the plan is part of the fleet's
//! reproducibility story: a re-run of a crashed shard must cover exactly
//! the points the dead process owned.

use crate::grid::GridSpec;
use util::codec::Fnv1a;

/// One process's slice of the campaign: a contiguous block of canonical
/// point indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardBlock {
    /// Shard id, `0..nshards`.
    pub shard: usize,
    /// Canonical (u-major) point indices this shard owns, ascending.
    pub points: Vec<usize>,
}

/// A full shard plan over a grid (or a subset of its points).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Blocks in shard order; every requested point appears in exactly
    /// one block.
    pub blocks: Vec<ShardBlock>,
}

impl ShardPlan {
    /// Total points across all blocks.
    pub fn total_points(&self) -> usize {
        self.blocks.iter().map(|b| b.points.len()).sum()
    }
}

/// Plans `procs` shards over the whole grid.
pub fn plan_shards(spec: &GridSpec, procs: usize) -> ShardPlan {
    let all: Vec<usize> = (0..spec.points().len()).collect();
    plan_shard_subset(spec, &all, procs)
}

/// Plans up to `procs` shards over a subset of canonical point indices
/// (the result-cache service shards only the points it missed on).
///
/// Produces `min(procs, points.len())` non-empty blocks: a process with
/// nothing to do is never spawned. Weights are the points' slice counts,
/// and blocks are closed greedily against the ideal remaining-weight
/// split, so the heaviest shard stays close to `total/procs` without any
/// randomized rebalancing — determinism is part of the plan's contract.
pub fn plan_shard_subset(spec: &GridSpec, points: &[usize], procs: usize) -> ShardPlan {
    let grid_points = spec.points();
    let mut wanted: Vec<usize> = points.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let weights: Vec<u64> = wanted
        .iter()
        .map(|&i| grid_points.get(i).map_or(1, |p| p.slices as u64).max(1))
        .collect();
    let total: u64 = weights.iter().sum();
    let nshards = procs.clamp(1, wanted.len().max(1));

    let mut blocks: Vec<ShardBlock> = Vec::with_capacity(nshards);
    let mut cursor = 0usize;
    let mut weight_left = total;
    for shard in 0..nshards {
        let shards_left = (nshards - shard) as u64;
        // Must leave at least one point for each later shard.
        let max_take = wanted.len() - cursor - (nshards - shard - 1);
        let target = weight_left.div_ceil(shards_left);
        let mut taken = 0usize;
        let mut acc = 0u64;
        while taken < max_take && (taken == 0 || acc + weights[cursor + taken] / 2 < target) {
            acc += weights[cursor + taken];
            taken += 1;
        }
        blocks.push(ShardBlock {
            shard,
            points: wanted[cursor..cursor + taken].to_vec(),
        });
        cursor += taken;
        weight_left -= acc;
    }
    // Rounding in the greedy walk can leave a tail; it belongs to the last
    // shard (contiguity demands it).
    if cursor < wanted.len() {
        if let Some(last) = blocks.last_mut() {
            last.points.extend_from_slice(&wanted[cursor..]);
        }
    }
    ShardPlan { blocks }
}

/// Content fingerprint of a grid's physics closure — what every shard of
/// one fleet campaign must agree on before its fragments may merge.
///
/// Folds the same inputs that fix the observable bytes: per-chain
/// parameter fingerprints (model, knobs, hash-split seed, sweep counts)
/// for every point, plus the chain count and crowd width. Scheduling
/// knobs (workers, devices, quanta, fault scripts) are excluded — the
/// determinism tier proves they cannot move the bytes, so two grids that
/// differ only there are mergeable.
pub fn grid_fingerprint(spec: &GridSpec) -> u64 {
    let mut f = Fnv1a::new();
    f.update(b"dqmc-fleet-grid-v1");
    f.update_u64(spec.chains as u64);
    f.update_u64(spec.crowd.max(1) as u64);
    let points = spec.points();
    f.update_u64(points.len() as u64);
    for point in &points {
        for chain in 0..spec.chains {
            f.update_u64(dqmc::params_fingerprint(&spec.chain_params(point, chain)));
        }
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        GridSpec::parse(
            "
            lx = 2
            ly = 2
            u = 2.0, 4.0
            beta = 1.0, 2.0, 4.0
            chains = 2
            warmup = 2
            sweeps = 4
            bin_size = 2
            cluster_size = 4
            seed = 9
            ",
        )
        .expect("grid parses")
    }

    fn flat(plan: &ShardPlan) -> Vec<usize> {
        plan.blocks.iter().flat_map(|b| b.points.clone()).collect()
    }

    #[test]
    fn plan_partitions_every_point_exactly_once_and_contiguously() {
        let s = spec();
        let npoints = s.points().len();
        for procs in 1..=8 {
            let plan = plan_shards(&s, procs);
            let all = flat(&plan);
            assert_eq!(all, (0..npoints).collect::<Vec<_>>(), "procs={procs}");
            assert_eq!(plan.blocks.len(), procs.min(npoints));
            for b in &plan.blocks {
                assert!(!b.points.is_empty(), "no empty shard at procs={procs}");
                assert!(b.points.windows(2).all(|w| w[1] == w[0] + 1));
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_weights_by_slices() {
        let s = spec();
        let a = plan_shards(&s, 2);
        let b = plan_shards(&s, 2);
        assert_eq!(a, b);
        // β = 1, 2, 4 at dtau 0.125 → slices 8/16/32 per U value. A
        // balanced-by-cost split of the 6 points cannot put all four
        // heavy (β ≥ 2) points in one shard.
        let points = s.points();
        let heavy = |b: &ShardBlock| b.points.iter().filter(|&&i| points[i].slices >= 16).count();
        assert!(a.blocks.iter().all(|b| heavy(b) < 4), "{a:?}");
    }

    #[test]
    fn subset_plans_cover_only_the_subset() {
        let s = spec();
        let plan = plan_shard_subset(&s, &[4, 1, 2], 2);
        assert_eq!(flat(&plan), vec![1, 2, 4]);
        assert_eq!(plan.blocks.len(), 2);
        // More shards than points: one point each, no empty processes.
        let plan = plan_shard_subset(&s, &[3, 0], 5);
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(flat(&plan), vec![0, 3]);
    }

    #[test]
    fn fingerprint_tracks_physics_not_scheduling() {
        let base = grid_fingerprint(&spec());
        assert_eq!(base, grid_fingerprint(&spec()), "deterministic");
        let mut seeded = spec();
        seeded.seed ^= 1;
        assert_ne!(base, grid_fingerprint(&seeded), "seed is physics");
        let mut sweeps = spec();
        sweeps.sweeps += 1;
        assert_ne!(base, grid_fingerprint(&sweeps), "sweep count is physics");
        let mut sched_only = spec();
        sched_only.workers = 7;
        sched_only.devices = 3;
        sched_only.quantum = 1;
        assert_eq!(
            base,
            grid_fingerprint(&sched_only),
            "scheduling knobs are not physics"
        );
    }
}
