//! The machine-readable result of a sweep campaign.
//!
//! A [`SweepReport`] has two layers with different guarantees:
//!
//! - the **observables** layer ([`SweepReport::observables_json`]) is a
//!   pure function of (grid, seeds) — byte-identical across worker counts,
//!   device-pool sizes, preemption schedules and scripted one-shot fault
//!   plans. CI diffs it between scheduling configurations.
//! - the **schedule** layer (the rest of [`SweepReport::to_json`]) is
//!   diagnostics: placements, preemptions, retries, recovery events, wall
//!   time. It legitimately varies run to run.
//!
//! JSON is emitted by hand (the workspace has no serde); floats use Rust's
//! shortest-roundtrip `Display`, so equal bits render as equal bytes, and
//! non-finite values render as `null` to stay inside the JSON grammar.

use dqmc::{JackknifeScalars, RecoveryTallies};
use util::codec::{ByteReader, ByteWriter, CodecError};

/// Pooled results for one grid point.
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// Flat point index (u-major).
    pub point: usize,
    /// On-site repulsion.
    pub u: f64,
    /// Inverse temperature.
    pub beta: f64,
    /// Time slices.
    pub slices: usize,
    /// Chains that completed.
    pub chains_ok: usize,
    /// Chains that exhausted their retry budget.
    pub chains_failed: usize,
    /// Complete measurement bins pooled across chains.
    pub bin_count: usize,
    /// Jackknifed scalar observables; `None` when every chain failed.
    pub scalars: Option<JackknifeScalars>,
    /// Mean Metropolis acceptance over completed chains.
    pub mean_acceptance: f64,
    /// Largest wrap-vs-recompute divergence any chain saw.
    pub max_wrap_error: f64,
    /// Recovery-ladder incidents summed over chains (schedule-dependent:
    /// faults only fire on device placements).
    pub recovery_events: u64,
    /// Preemptions suffered by this point's jobs.
    pub preemptions: u64,
    /// Scheduling quanta run on leased devices.
    pub device_quanta: u64,
    /// Scheduling quanta run on the host backend.
    pub host_quanta: u64,
    /// Modeled device-seconds consumed by this point's jobs (the simulated
    /// accelerator clock — the schedule-layer throughput currency).
    pub device_seconds: f64,
}

/// The full campaign result.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Campaign base seed.
    pub seed: u64,
    /// Chains per point.
    pub chains: usize,
    /// Crowd size B: chains batched per job (1 = solo jobs). Lives in the
    /// schedule layer — crowding may only change cost, never observables.
    pub crowd: usize,
    /// Warmup sweeps per chain.
    pub warmup: usize,
    /// Measurement sweeps per chain.
    pub sweeps: usize,
    /// Per-point pooled results, in point order.
    pub points: Vec<PointSummary>,
    /// Jobs scheduled.
    pub total_jobs: usize,
    /// Jobs that failed permanently.
    pub failed_jobs: usize,
    /// Total preemptions (checkpoint-park-requeue cycles).
    pub preemptions: u64,
    /// Scheduler-level job restarts after panics.
    pub retries: u64,
    /// Quanta run on devices, campaign-wide.
    pub device_quanta: u64,
    /// Quanta run on the host, campaign-wide.
    pub host_quanta: u64,
    /// Modeled device-seconds consumed campaign-wide. Wall clock measures
    /// the host running the simulation *of* the device; this measures the
    /// device being simulated — the honest axis for batching speedups.
    pub device_seconds: f64,
    /// Device leases granted by the pool.
    pub leases_granted: u64,
    /// Lease requests that fell back to the host.
    pub lease_misses: u64,
    /// Circuit-breaker openings (first-time and re-openings).
    pub quarantines: u64,
    /// Probation probes granted to quarantined slots.
    pub probes: u64,
    /// Quarantined slots re-admitted after a clean probe.
    pub readmissions: u64,
    /// Lease requests that skipped a quarantined slot.
    pub quarantine_skips: u64,
    /// Soft-deadline cooperative parks (fail-slow / sick placements).
    pub soft_parks: u64,
    /// Hard-deadline worker losses (wedged placements resurrected from
    /// their parked image).
    pub worker_losses: u64,
    /// Panics caught by the worker backstop. Classified errors return
    /// `Err` instead of unwinding, so this stays 0 under scripted storms.
    pub panics_caught: u64,
    /// Recovery-ladder actions pooled over completed chains, broken down
    /// by classification.
    pub recovery_tallies: RecoveryTallies,
    /// Worker threads used.
    pub workers: usize,
    /// Device-pool slots.
    pub devices: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
}

/// Shortest-roundtrip float, `null` when non-finite (NaN/inf are not JSON).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn jpair((v, e): (f64, f64)) -> String {
    format!("{{\"value\":{},\"err\":{}}}", jnum(v), jnum(e))
}

/// Assembles the deterministic observables section from per-point
/// summaries in point order — shared by [`SweepReport::observables_json`]
/// and by the result-cache service, which reassembles campaigns from a
/// mix of cached and freshly computed points. One emitter means a served
/// response can be compared byte-for-byte against an in-process run.
pub fn observables_json_for(
    seed: u64,
    chains: usize,
    warmup: usize,
    sweeps: usize,
    points: &[PointSummary],
) -> String {
    let points: Vec<String> = points.iter().map(|p| p.observables_json()).collect();
    format!(
        "{{\"seed\":{seed},\"chains\":{chains},\"warmup\":{warmup},\"sweeps\":{sweeps},\
         \"points\":[{}]}}",
        points.join(",")
    )
}

impl PointSummary {
    /// This point's fragment of the observables section — the payload a
    /// service streams to clients as the point completes.
    pub fn observables_json(&self) -> String {
        let mut s = format!(
            "{{\"point\":{},\"u\":{},\"beta\":{},\"slices\":{},\"chains\":{},\"bins\":{}",
            self.point,
            jnum(self.u),
            jnum(self.beta),
            self.slices,
            self.chains_ok,
            self.bin_count
        );
        match &self.scalars {
            Some(sc) => {
                s.push_str(&format!(
                    ",\"sign\":{},\"density\":{},\"double_occ\":{},\"kinetic\":{},\
                     \"potential\":{},\"saf\":{}",
                    jpair(sc.sign),
                    jpair(sc.density),
                    jpair(sc.double_occ),
                    jpair(sc.kinetic),
                    jpair(sc.potential),
                    jpair(sc.saf),
                ));
            }
            None => s.push_str(",\"failed\":true"),
        }
        s.push('}');
        s
    }

    /// Serialises the observables-layer fields (the pure function of
    /// (grid, seeds)) for a content-addressed result-cache entry. The
    /// schedule-layer fields — acceptance, wrap error, recovery and quanta
    /// counters — are *deliberately excluded*: they describe how one
    /// particular run was scheduled, and a cache replay has no schedule.
    pub fn encode_observables(&self, w: &mut ByteWriter) {
        w.put_u64(self.point as u64);
        w.put_f64(self.u);
        w.put_f64(self.beta);
        w.put_u64(self.slices as u64);
        w.put_u64(self.chains_ok as u64);
        w.put_u64(self.chains_failed as u64);
        w.put_u64(self.bin_count as u64);
        match &self.scalars {
            Some(sc) => {
                w.put_u8(1);
                for (v, e) in [
                    sc.sign,
                    sc.density,
                    sc.double_occ,
                    sc.kinetic,
                    sc.potential,
                    sc.saf,
                ] {
                    w.put_f64(v);
                    w.put_f64(e);
                }
            }
            None => w.put_u8(0),
        }
    }

    /// Decodes a summary written by [`PointSummary::encode_observables`].
    /// Schedule-layer fields come back zeroed — a cache hit never claims
    /// to have a schedule.
    pub fn decode_observables(r: &mut ByteReader<'_>) -> Result<PointSummary, CodecError> {
        let point = r.get_u64()? as usize;
        let u = r.get_f64()?;
        let beta = r.get_f64()?;
        let slices = r.get_u64()? as usize;
        let chains_ok = r.get_u64()? as usize;
        let chains_failed = r.get_u64()? as usize;
        let bin_count = r.get_u64()? as usize;
        let scalars = match r.get_u8()? {
            0 => None,
            1 => {
                let mut pairs = [(0.0f64, 0.0f64); 6];
                for p in pairs.iter_mut() {
                    *p = (r.get_f64()?, r.get_f64()?);
                }
                Some(JackknifeScalars {
                    sign: pairs[0],
                    density: pairs[1],
                    double_occ: pairs[2],
                    kinetic: pairs[3],
                    potential: pairs[4],
                    saf: pairs[5],
                })
            }
            other => {
                return Err(CodecError::Invalid(format!(
                    "scalars presence flag must be 0 or 1, found {other}"
                )))
            }
        };
        Ok(PointSummary {
            point,
            u,
            beta,
            slices,
            chains_ok,
            chains_failed,
            bin_count,
            scalars,
            mean_acceptance: 0.0,
            max_wrap_error: 0.0,
            recovery_events: 0,
            preemptions: 0,
            device_quanta: 0,
            host_quanta: 0,
            device_seconds: 0.0,
        })
    }

    fn schedule_json(&self) -> String {
        format!(
            "{{\"point\":{},\"acceptance\":{},\"max_wrap_error\":{},\"recovery_events\":{},\
             \"failed_chains\":{},\"preemptions\":{},\"device_quanta\":{},\"host_quanta\":{},\
             \"device_seconds\":{}}}",
            self.point,
            jnum(self.mean_acceptance),
            jnum(self.max_wrap_error),
            self.recovery_events,
            self.chains_failed,
            self.preemptions,
            self.device_quanta,
            self.host_quanta,
            jnum(self.device_seconds)
        )
    }
}

impl SweepReport {
    /// The deterministic physics section: byte-identical for a fixed
    /// (grid, seeds) no matter how the sweep was scheduled. This is the
    /// string the determinism tests and the CI smoke job compare.
    pub fn observables_json(&self) -> String {
        observables_json_for(
            self.seed,
            self.chains,
            self.warmup,
            self.sweeps,
            &self.points,
        )
    }

    /// The full report: observables plus schedule diagnostics. The health
    /// and recovery counters live *only* here — the observables section
    /// must not move when the schedule gets chaotic.
    pub fn to_json(&self) -> String {
        let sched: Vec<String> = self.points.iter().map(|p| p.schedule_json()).collect();
        let t = &self.recovery_tallies;
        format!(
            "{{\"observables\":{},\"schedule\":{{\"workers\":{},\"devices\":{},\"crowd\":{},\
             \"total_jobs\":{},\"failed_jobs\":{},\"preemptions\":{},\"retries\":{},\
             \"device_quanta\":{},\"host_quanta\":{},\"device_seconds\":{},\"leases_granted\":{},\
             \"lease_misses\":{},\"health\":{{\"quarantines\":{},\"probes\":{},\
             \"readmissions\":{},\"quarantine_skips\":{},\"soft_parks\":{},\
             \"worker_losses\":{},\"panics_caught\":{}}},\
             \"recovery\":{{\"retries\":{},\"shrinks\":{},\"fallbacks\":{},\
             \"repairs\":{},\"escalations\":{}}},\
             \"wall_seconds\":{},\"points\":[{}]}}}}",
            self.observables_json(),
            self.workers,
            self.devices,
            self.crowd,
            self.total_jobs,
            self.failed_jobs,
            self.preemptions,
            self.retries,
            self.device_quanta,
            self.host_quanta,
            jnum(self.device_seconds),
            self.leases_granted,
            self.lease_misses,
            self.quarantines,
            self.probes,
            self.readmissions,
            self.quarantine_skips,
            self.soft_parks,
            self.worker_losses,
            self.panics_caught,
            t.retries,
            t.shrinks,
            t.fallbacks,
            t.repairs,
            t.escalations,
            jnum(self.wall_seconds),
            sched.join(",")
        )
    }

    /// A compact human summary: one line per point.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            match &p.scalars {
                Some(sc) => out.push_str(&format!(
                    "point {:>3}  U={:<6} beta={:<6} | density {:.4} ± {:.4} | \
                     docc {:.4} ± {:.4} | S_AF {:.4} ± {:.4} | sign {:.3}\n",
                    p.point,
                    p.u,
                    p.beta,
                    sc.density.0,
                    sc.density.1,
                    sc.double_occ.0,
                    sc.double_occ.1,
                    sc.saf.0,
                    sc.saf.1,
                    sc.sign.0,
                )),
                None => out.push_str(&format!(
                    "point {:>3}  U={:<6} beta={:<6} | FAILED ({} chains)\n",
                    p.point, p.u, p.beta, p.chains_failed
                )),
            }
        }
        out.push_str(&format!(
            "jobs {}/{} ok | preemptions {} | retries {} | quanta dev/host {}/{} | \
             device {:.3}s | lease miss {}/{} | {:.2}s with {} workers, {} devices, crowd {}\n",
            self.total_jobs - self.failed_jobs,
            self.total_jobs,
            self.preemptions,
            self.retries,
            self.device_quanta,
            self.host_quanta,
            self.device_seconds,
            self.lease_misses,
            self.leases_granted + self.lease_misses,
            self.wall_seconds,
            self.workers,
            self.devices,
            self.crowd,
        ));
        let t = &self.recovery_tallies;
        out.push_str(&format!(
            "health: quarantines {} ({} readmitted, {} probes, {} skips) | \
             soft parks {} | workers lost {} | panics caught {}\n\
             recovery: {} retries, {} shrinks, {} fallbacks, {} repairs, {} escalations\n",
            self.quarantines,
            self.readmissions,
            self.probes,
            self.quarantine_skips,
            self.soft_parks,
            self.worker_losses,
            self.panics_caught,
            t.retries,
            t.shrinks,
            t.fallbacks,
            t.repairs,
            t.escalations,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepReport {
        SweepReport {
            seed: 7,
            chains: 2,
            crowd: 1,
            warmup: 4,
            sweeps: 8,
            points: vec![PointSummary {
                point: 0,
                u: 4.0,
                beta: 2.0,
                slices: 16,
                chains_ok: 2,
                chains_failed: 0,
                bin_count: 8,
                scalars: Some(JackknifeScalars {
                    sign: (1.0, 0.0),
                    density: (1.0, 0.01),
                    double_occ: (0.2, 0.005),
                    kinetic: (-1.2, 0.02),
                    potential: (0.8, 0.02),
                    saf: (1.5, 0.1),
                }),
                mean_acceptance: 0.45,
                max_wrap_error: 1e-12,
                recovery_events: 1,
                preemptions: 3,
                device_quanta: 5,
                host_quanta: 2,
                device_seconds: 0.25,
            }],
            total_jobs: 2,
            failed_jobs: 0,
            preemptions: 3,
            retries: 0,
            device_quanta: 5,
            host_quanta: 2,
            device_seconds: 0.25,
            leases_granted: 5,
            lease_misses: 2,
            quarantines: 2,
            probes: 3,
            readmissions: 1,
            quarantine_skips: 4,
            soft_parks: 2,
            worker_losses: 1,
            panics_caught: 0,
            recovery_tallies: RecoveryTallies {
                retries: 2,
                shrinks: 1,
                fallbacks: 1,
                repairs: 0,
                escalations: 3,
            },
            workers: 2,
            devices: 1,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn observables_json_is_valid_and_excludes_schedule() {
        let j = sample().observables_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"double_occ\":{\"value\":0.2,\"err\":0.005}"));
        // Schedule-dependent fields must NOT leak into the deterministic
        // section.
        assert!(!j.contains("preemptions"));
        assert!(!j.contains("recovery_events"));
        assert!(!j.contains("wall"));
        assert!(!j.contains("quanta"));
        assert!(!j.contains("device_seconds"));
        assert!(!j.contains("crowd"));
    }

    #[test]
    fn full_json_nests_both_sections() {
        let j = sample().to_json();
        assert!(j.contains("\"observables\":{"));
        assert!(j.contains("\"schedule\":{"));
        assert!(j.contains("\"preemptions\":3"));
        assert!(j.contains("\"lease_misses\":2"));
    }

    #[test]
    fn non_finite_values_render_as_null() {
        let mut r = sample();
        r.points[0].scalars = Some(JackknifeScalars {
            sign: (f64::NAN, 0.0),
            density: (f64::INFINITY, 0.0),
            double_occ: (0.0, 0.0),
            kinetic: (0.0, 0.0),
            potential: (0.0, 0.0),
            saf: (0.0, 0.0),
        });
        let j = r.observables_json();
        assert!(j.contains("\"sign\":{\"value\":null"));
        assert!(j.contains("\"density\":{\"value\":null"));
        assert!(!j.contains("NaN") && !j.contains("inf"));
    }

    #[test]
    fn failed_points_are_marked() {
        let mut r = sample();
        r.points[0].scalars = None;
        r.points[0].chains_failed = 2;
        assert!(r.observables_json().contains("\"failed\":true"));
        assert!(r.human_summary().contains("FAILED"));
    }

    #[test]
    fn human_summary_mentions_throughput_counters() {
        let s = sample().human_summary();
        assert!(s.contains("jobs 2/2 ok"));
        assert!(s.contains("2 workers, 1 devices"));
        assert!(s.contains("quarantines 2 (1 readmitted, 3 probes, 4 skips)"));
        assert!(s.contains("3 escalations"));
    }

    #[test]
    fn point_observables_codec_round_trips_bit_exactly() {
        let p = sample().points[0].clone();
        let mut w = ByteWriter::new();
        p.encode_observables(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let q = PointSummary::decode_observables(&mut r).expect("round trip");
        assert!(r.is_exhausted(), "decoder must consume the whole payload");
        // The observables fragment — the byte contract — is identical...
        assert_eq!(p.observables_json(), q.observables_json());
        // ...while the schedule layer is zeroed, not resurrected.
        assert_eq!(q.recovery_events, 0);
        assert_eq!(q.preemptions, 0);
        assert_eq!(q.device_seconds, 0.0);
    }

    #[test]
    fn point_observables_decoder_rejects_bad_flag_and_truncation() {
        let p = sample().points[0].clone();
        let mut w = ByteWriter::new();
        p.encode_observables(&mut w);
        let mut bytes = w.into_bytes();
        // Truncated payload.
        let cut = bytes.len() - 3;
        assert!(PointSummary::decode_observables(&mut ByteReader::new(&bytes[..cut])).is_err());
        // Scalars-presence flag outside {0, 1}.
        bytes[7 * 8] = 2;
        assert!(matches!(
            PointSummary::decode_observables(&mut ByteReader::new(&bytes)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn shared_assembler_matches_report_emitter() {
        let r = sample();
        assert_eq!(
            r.observables_json(),
            observables_json_for(r.seed, r.chains, r.warmup, r.sweeps, &r.points)
        );
    }

    #[test]
    fn health_counters_live_only_in_the_schedule_section() {
        let r = sample();
        let full = r.to_json();
        assert!(full.contains("\"health\":{\"quarantines\":2,\"probes\":3,\"readmissions\":1"));
        assert!(full.contains("\"quarantine_skips\":4,\"soft_parks\":2,\"worker_losses\":1"));
        assert!(full.contains("\"panics_caught\":0"));
        assert!(full.contains("\"recovery\":{\"retries\":2,\"shrinks\":1,\"fallbacks\":1"));
        // The deterministic observables section must not grow new keys:
        // chaos may reshape the schedule, never the physics bytes.
        let obs = r.observables_json();
        for key in [
            "quarantine",
            "probe",
            "readmission",
            "soft_park",
            "worker_loss",
            "panics",
            "escalation",
            "health",
        ] {
            assert!(!obs.contains(key), "observables leaked schedule key {key}");
        }
    }
}
