//! Dense column-major `f64` matrix.
//!
//! Storage is always packed (leading dimension equals the row count). The
//! blocked kernels in [`crate::blas3`] and [`crate::qr`] work on raw column
//! slices internally; `Matrix` keeps the public API safe and simple.

#![warn(clippy::undocumented_unsafe_blocks)]
#![warn(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use linalg::Matrix;
/// let a = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
/// assert_eq!(a[(1, 2)], 21.0);
/// assert_eq!(a.nrows(), 2);
/// assert_eq!(a.ncols(), 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `nrows × ncols`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Matrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Matrix { nrows, ncols, data }
    }

    /// Wraps an existing column-major buffer (`data.len() == nrows*ncols`).
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer length mismatch");
        Matrix { nrows, ncols, data }
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// True for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Underlying column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Underlying mutable column-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct mutable columns (for pivots swaps); `j1 != j2`.
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 != j2 && j1 < self.ncols && j2 < self.ncols);
        let m = self.nrows;
        let (lo, hi) = if j1 < j2 { (j1, j2) } else { (j2, j1) };
        let (a, b) = self.data.split_at_mut(hi * m);
        let first = &mut a[lo * m..(lo + 1) * m];
        let second = &mut b[..m];
        if j1 < j2 {
            (first, second)
        } else {
            (second, first)
        }
    }

    /// Unchecked element read (bounds checked only in debug builds).
    ///
    /// # Safety
    /// `i < nrows` and `j < ncols` must hold.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        // SAFETY: the caller guarantees i < nrows and j < ncols, so the flat
        // column-major index j*nrows + i is within data (len == nrows*ncols).
        unsafe { *self.data.get_unchecked(j * self.nrows + i) }
    }

    /// Unchecked element write (bounds checked only in debug builds).
    ///
    /// # Safety
    /// `i < nrows` and `j < ncols` must hold.
    #[inline]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        // SAFETY: the caller guarantees i < nrows and j < ncols, so the flat
        // column-major index j*nrows + i is within data (len == nrows*ncols).
        unsafe { *self.data.get_unchecked_mut(j * self.nrows + i) = v }
    }

    /// Swaps columns `j1` and `j2`.
    pub fn swap_cols(&mut self, j1: usize, j2: usize) {
        if j1 == j2 {
            return;
        }
        let (a, b) = self.two_cols_mut(j1, j2);
        a.swap_with_slice(b);
    }

    /// Swaps rows `i1` and `i2`.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        if i1 == i2 {
            return;
        }
        let m = self.nrows;
        for j in 0..self.ncols {
            self.data.swap(j * m + i1, j * m + i2);
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            let c = self.col(j);
            for i in 0..self.nrows {
                t.data[i * self.ncols + j] = c[i];
            }
        }
        t
    }

    /// Copies `src` into `self` (shapes must match).
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.nrows, src.nrows);
        assert_eq!(self.ncols, src.ncols);
        self.data.copy_from_slice(&src.data);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// `self += alpha * other` (shapes must match).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        for (x, &y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
    }

    /// Main diagonal as a vector (length `min(nrows, ncols)`).
    pub fn diag(&self) -> Vec<f64> {
        let k = self.nrows.min(self.ncols);
        (0..k).map(|i| self[(i, i)]).collect()
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        // Two-pass scaled sum to avoid overflow on the graded matrices DQMC
        // produces (elements spanning hundreds of orders of magnitude).
        let amax = self.max_abs();
        if amax == 0.0 || !amax.is_finite() {
            return amax;
        }
        let mut s = 0.0;
        for &x in &self.data {
            let t = x / amax;
            s += t * t;
        }
        amax * s.sqrt()
    }

    /// Largest absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// 1-norm (max column-sum of absolute values).
    pub fn norm_one(&self) -> f64 {
        (0..self.ncols)
            .map(|j| self.col(j).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0f64, f64::max)
    }

    /// Extracts the contiguous sub-matrix with rows `r0..r0+nr`, cols `c0..c0+nc`.
    pub fn submatrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(r0 + nr <= self.nrows && c0 + nc <= self.ncols);
        Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Copies the `out.nrows() × out.ncols()` block of `self` starting at
    /// `(r0, c0)` into `out` — the allocation-free counterpart of
    /// [`Matrix::submatrix`] for workspace-arena buffers.
    pub fn copy_submatrix_into(&self, r0: usize, c0: usize, out: &mut Matrix) {
        assert!(r0 + out.nrows <= self.nrows && c0 + out.ncols <= self.ncols);
        for j in 0..out.ncols {
            let src = &self.col(c0 + j)[r0..r0 + out.nrows];
            out.col_mut(j).copy_from_slice(src);
        }
    }

    /// Writes `block` into `self` at offset `(r0, c0)`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols);
        for j in 0..block.ncols {
            let src = block.col(j);
            let dst = &mut self.col_mut(c0 + j)[r0..r0 + block.nrows];
            dst.copy_from_slice(src);
        }
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Random matrix with i.i.d. uniform `[-1, 1)` entries (for tests/benches).
    pub fn random(nrows: usize, ncols: usize, rng: &mut util::Rng) -> Matrix {
        Matrix::from_fn(nrows, ncols, |_, _| 2.0 * rng.next_f64() - 1.0)
    }

    /// Consumes the matrix, returning the column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[j * self.nrows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.nrows && j < self.ncols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[j * self.nrows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let show_r = self.nrows.min(8);
        let show_c = self.ncols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.ncols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.nrows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a[(2, 1)], 21.0);
        assert_eq!(a.col(1), &[1.0, 11.0, 21.0]);
    }

    #[test]
    fn column_major_layout() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_and_diag() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.diag(), vec![1.0, 1.0, 1.0]);
        assert_eq!(i3[(0, 1)], 0.0);
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = util::Rng::new(3);
        let a = Matrix::random(5, 7, &mut rng);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose()[(2, 4)], a[(4, 2)]);
    }

    #[test]
    fn swap_cols_and_rows() {
        let mut a = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        a.swap_cols(0, 2);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 2)], 0.0);
        a.swap_rows(0, 1);
        assert_eq!(a[(0, 0)], 12.0);
        // self-swap is a no-op
        let b = a.clone();
        a.swap_cols(1, 1);
        a.swap_rows(0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn two_cols_mut_order() {
        let mut a = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        {
            let (c2, c0) = a.two_cols_mut(2, 0);
            assert_eq!(c2, &[20.0, 21.0]);
            assert_eq!(c0, &[0.0, 1.0]);
        }
        let (c0, c2) = a.two_cols_mut(0, 2);
        assert_eq!(c0, &[0.0, 1.0]);
        assert_eq!(c2, &[20.0, 21.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_col_major(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((a.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.norm_one(), 7.0);
        assert_eq!(Matrix::zeros(2, 2).norm_fro(), 0.0);
    }

    #[test]
    fn norm_fro_graded_no_overflow() {
        // Elements around 1e200: naive sum of squares would overflow.
        let a = Matrix::from_diag(&[1e200, 1e-200, 1.0]);
        assert!((a.norm_fro() / 1e200 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn submatrix_and_set() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = a.submatrix(1, 2, 2, 2);
        assert_eq!(s[(0, 0)], a[(1, 2)]);
        assert_eq!(s[(1, 1)], a[(2, 3)]);
        let mut b = Matrix::zeros(4, 4);
        b.set_submatrix(1, 2, &s);
        assert_eq!(b[(1, 2)], a[(1, 2)]);
        assert_eq!(b[(0, 0)], 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        a.scale(0.5);
        assert_eq!(a[(1, 1)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_col_major_checks_len() {
        let _ = Matrix::from_col_major(2, 2, vec![1.0; 3]);
    }
}
