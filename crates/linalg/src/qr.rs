//! Blocked Householder QR without pivoting (DGEQRF / DORGQR / DORMQR analogue).
//!
//! The factorization processes panels of [`NB`] columns: each panel is
//! factored with level-2 reflector applications, the reflectors are
//! aggregated into a compact WY representation `Q = I − V T Vᵀ` (dlarft), and
//! the trailing matrix is updated with three level-3 products (dlarfb). This
//! is the structure that lets unpivoted QR run near GEMM speed — the property
//! the paper's pre-pivoted stratification (its Algorithm 3) exploits.
//!
//! All per-panel staging (explicit V, the T factor, the W work matrices of
//! the block reflector) is leased from the [`crate::workspace`] arena, so a
//! steady-state factorization allocates nothing; `cargo xtask lint` enforces
//! this via the `deny_hot_alloc` tag below.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::blas1;
use crate::blas3::{gemm, Op};
use crate::matrix::Matrix;
use crate::workspace;

/// Panel width for the blocked algorithm.
pub const NB: usize = 32;

/// Compact QR factorization: `A = Q R`.
///
/// `a` stores R in and above the diagonal and the Householder vectors
/// (unit lower trapezoidal, implicit leading 1) below it; `tau` holds the
/// reflector scalars.
#[derive(Clone, Debug)]
pub struct QrFactors {
    /// Packed factorization (R above/on diagonal, V strictly below).
    pub a: Matrix,
    /// Reflector coefficients, length `min(m, n)`.
    pub tau: Vec<f64>,
}

/// Generates a Householder reflector (dlarfg analogue).
// dqmc-lint: allow(unchecked_kernel) — level-1 building block on the panel
// hot path; its output is covered by the qr_in_place exit check.
///
/// Given `alpha` and tail `x`, computes `(beta, tau)` and overwrites `x`
/// with the reflector tail `v[1..]` (with `v[0] = 1` implicit) such that
/// `H [alpha; x] = [beta; 0]`, `H = I − tau v vᵀ`.
pub fn house(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let xnorm = blas1::nrm2(x);
    if xnorm == 0.0 {
        // Already upper triangular in this column; H = I.
        return (alpha, 0.0);
    }
    let mut beta = -(alpha.hypot(xnorm)).copysign(alpha);
    // Guard against underflow in (alpha - beta) for tiny columns: LAPACK
    // rescales; for f64 and DQMC magnitudes the plain formula is adequate,
    // but keep the safe form for beta near zero.
    if beta == 0.0 {
        beta = f64::MIN_POSITIVE;
    }
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    blas1::scal(scale, x);
    (beta, tau)
}

/// Unblocked QR of the region `rows r0.., cols c0..c0+ncols` of `a`.
///
/// Reflector `j` (global column `c0 + j`) eliminates rows `r0+j+1..`.
/// `tau[j]` receives its coefficient. Only columns within the region are
/// updated; callers handle the trailing matrix.
fn qr_panel_unblocked(a: &mut Matrix, r0: usize, c0: usize, ncols: usize, tau: &mut [f64]) {
    let m = a.nrows();
    for j in 0..ncols {
        let row = r0 + j;
        if row >= m {
            tau[j] = 0.0;
            continue;
        }
        let col = c0 + j;
        // Generate the reflector from A[row.., col].
        let (beta, tj) = {
            let cj = a.col_mut(col);
            let (head, tail) = cj[row..].split_first_mut().expect("non-empty");
            let (beta, tj) = house(*head, tail);
            *head = beta;
            (beta, tj)
        };
        let _ = beta;
        tau[j] = tj;
        if tj == 0.0 {
            continue;
        }
        // Apply H to the remaining panel columns: c := c − tau v (vᵀ c).
        for jj in (j + 1)..ncols {
            let colr = c0 + jj;
            let (vcol, ccol) = {
                let (x, y) = a.two_cols_mut(col, colr);
                (x, y)
            };
            let v = &vcol[row..];
            let c = &mut ccol[row..];
            // vᵀc with implicit v[0] = 1.
            let mut s = c[0];
            for i in 1..v.len() {
                s += v[i] * c[i];
            }
            s *= tj;
            c[0] -= s;
            for i in 1..v.len() {
                c[i] -= s * v[i];
            }
        }
    }
}

/// Builds the T factor of the compact WY representation (dlarft analogue):
/// `Q = I − V T Vᵀ` with T upper triangular `nb × nb`, written into the
/// caller-provided (zeroed) `t`.
///
/// `v` is the m×nb unit-lower-trapezoidal reflector matrix (explicit form).
fn form_t_into(v: &Matrix, tau: &[f64], t: &mut Matrix) {
    let nb = v.ncols();
    debug_assert!(t.nrows() == nb && t.ncols() == nb);
    // Scratch for w = Vᵀ(:,0..j) v_j; nb ≤ NB so a stack array suffices.
    let mut w = [0.0f64; NB];
    for j in 0..nb {
        t[(j, j)] = tau[j];
        if j > 0 && tau[j] != 0.0 {
            for (l, wl) in w[..j].iter_mut().enumerate() {
                *wl = blas1::dot(v.col(l), v.col(j));
            }
            // T(0..j, j) = −tau_j * T(0..j,0..j) * w
            for r in 0..j {
                let mut s = 0.0;
                for l in r..j {
                    s += t[(r, l)] * w[l];
                }
                t[(r, j)] = -tau[j] * s;
            }
        }
    }
}

/// Extracts the explicit V (unit lower trapezoidal, m−r0 × nb) from the
/// packed factorization for panel starting at `(r0, c0)` into `v`.
fn extract_v_into(a: &Matrix, r0: usize, c0: usize, nb: usize, v: &mut Matrix) {
    let m = a.nrows();
    debug_assert!(v.nrows() == m - r0 && v.ncols() == nb);
    v.fill(0.0);
    for j in 0..nb {
        let col = a.col(c0 + j);
        let row = r0 + j;
        if row < m {
            v[(row - r0, j)] = 1.0;
            for i in (row + 1)..m {
                v[(i - r0, j)] = col[i];
            }
        }
    }
}

/// Leases workspace matrices for a panel's explicit (V, T) pair.
///
/// Callers return both with `workspace::put_matrix` once the block reflector
/// has been applied.
fn panel_vt(a: &Matrix, tau: &[f64], j0: usize, nb: usize) -> (Matrix, Matrix) {
    let mut v = workspace::take_matrix(a.nrows() - j0, nb);
    extract_v_into(a, j0, j0, nb, &mut v);
    let mut t = workspace::take_matrix(nb, nb);
    form_t_into(&v, tau, &mut t);
    (v, t)
}

/// Applies the block reflector: `C := (I − V Tᵀ Vᵀ) C`  when `trans`,
/// `C := (I − V T Vᵀ) C` otherwise. `C` is the rows `r0..` slice of `c`.
///
/// All three staging matrices (the C sub-block and the two W products) come
/// from the workspace arena.
fn apply_block_reflector(v: &Matrix, t: &Matrix, trans: bool, c: &mut Matrix, r0: usize) {
    let m = c.nrows();
    let n = c.ncols();
    let rows = m - r0;
    let nb = v.ncols();
    if n == 0 || rows == 0 {
        return;
    }
    // Work on the sub-block of C.
    let mut csub = workspace::take_matrix(rows, n);
    c.copy_submatrix_into(r0, 0, &mut csub);
    // W = Vᵀ C  (nb × n)
    let mut w = workspace::take_matrix(nb, n);
    gemm(1.0, v, Op::Trans, &csub, Op::NoTrans, 0.0, &mut w);
    // W := T W or Tᵀ W
    let mut tw = workspace::take_matrix(nb, n);
    gemm(
        1.0,
        t,
        if trans { Op::Trans } else { Op::NoTrans },
        &w,
        Op::NoTrans,
        0.0,
        &mut tw,
    );
    // C := C − V W
    gemm(-1.0, v, Op::NoTrans, &tw, Op::NoTrans, 1.0, &mut csub);
    c.set_submatrix(r0, 0, &csub);
    workspace::put_matrix(csub);
    workspace::put_matrix(w);
    workspace::put_matrix(tw);
}

/// Blocked QR factorization (DGEQRF analogue). Consumes `a`, returns factors.
// dqmc-lint: allow(hot_alloc) — `tau` is the returned factor payload, not
// scratch; all per-panel staging goes through the workspace arena.
pub fn qr_in_place(mut a: Matrix) -> QrFactors {
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut tau = vec![0.0; kmax];
    let mut j0 = 0;
    while j0 < kmax {
        let nb = NB.min(kmax - j0);
        qr_panel_unblocked(&mut a, j0, j0, nb, &mut tau[j0..j0 + nb]);
        if j0 + nb < n {
            let (v, t) = panel_vt(&a, &tau[j0..j0 + nb], j0, nb);
            // Update trailing columns: A := Qᵀ A = (I − V Tᵀ Vᵀ) A.
            let ntrail = n - (j0 + nb);
            let mut trailing = workspace::take_matrix(m - j0, ntrail);
            a.copy_submatrix_into(j0, j0 + nb, &mut trailing);
            apply_block_reflector(&v, &t, true, &mut trailing, 0);
            a.set_submatrix(j0, j0 + nb, &trailing);
            workspace::put_matrix(trailing);
            workspace::put_matrix(v);
            workspace::put_matrix(t);
        }
        j0 += nb;
    }
    crate::check_finite!(a.as_slice(), "qr_in_place packed factors ({m}x{n})");
    crate::check_finite!(&tau, "qr_in_place tau");
    QrFactors { a, tau }
}

impl QrFactors {
    /// Row count of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Column count of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// The upper-triangular/trapezoidal factor R (`min(m,n) × n`).
    pub fn r(&self) -> Matrix {
        let k = self.a.nrows().min(self.a.ncols());
        Matrix::from_fn(
            k,
            self.a.ncols(),
            |i, j| {
                if i <= j {
                    self.a[(i, j)]
                } else {
                    0.0
                }
            },
        )
    }

    /// Diagonal of R (length `min(m,n)`).
    pub fn r_diag(&self) -> Vec<f64> {
        self.a.diag()
    }

    /// Applies `Qᵀ` to `c` in place (`C := Qᵀ C`, DORMQR "L","T").
    pub fn apply_qt(&self, c: &mut Matrix) {
        assert_eq!(c.nrows(), self.a.nrows(), "apply_qt: row mismatch");
        let k = self.tau.len();
        let mut j0 = 0;
        while j0 < k {
            let nb = NB.min(k - j0);
            let (v, t) = panel_vt(&self.a, &self.tau[j0..j0 + nb], j0, nb);
            apply_block_reflector(&v, &t, true, c, j0);
            workspace::put_matrix(v);
            workspace::put_matrix(t);
            j0 += nb;
        }
    }

    /// Applies `Q` to `c` in place (`C := Q C`, DORMQR "L","N").
    pub fn apply_q(&self, c: &mut Matrix) {
        assert_eq!(c.nrows(), self.a.nrows(), "apply_q: row mismatch");
        let k = self.tau.len();
        // Q = H_1 H_2 … H_k, so apply blocks in reverse order, untransposed.
        for j0 in (0..k).step_by(NB).rev() {
            let nb = NB.min(k - j0);
            let (v, t) = panel_vt(&self.a, &self.tau[j0..j0 + nb], j0, nb);
            apply_block_reflector(&v, &t, false, c, j0);
            workspace::put_matrix(v);
            workspace::put_matrix(t);
        }
    }

    /// Forms the square `m × m` orthogonal factor Q explicitly (DORGQR).
    pub fn form_q(&self) -> Matrix {
        let m = self.a.nrows();
        let mut q = Matrix::identity(m);
        self.apply_q(&mut q);
        crate::check_orthogonal!(&q, 1e-11 * m.max(4) as f64, "qr form_q ({m}x{m})");
        q
    }

    /// Sign of `det Q`: each non-trivial Householder reflector contributes −1.
    ///
    /// DQMC needs the sign of `det(I + B_L…B_1)` for the fermion sign; the
    /// orthogonal factor's contribution comes from this count.
    pub fn q_det_sign(&self) -> f64 {
        let odd = self.tau.iter().filter(|&&t| t != 0.0).count() % 2 == 1;
        if odd {
            -1.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::matmul;
    use util::Rng;

    fn reconstruct(qr: &QrFactors) -> Matrix {
        let q = qr.form_q();
        let r_full = Matrix::from_fn(qr.nrows(), qr.ncols(), |i, j| {
            if i <= j {
                qr.a[(i, j)]
            } else {
                0.0
            }
        });
        matmul(&q, Op::NoTrans, &r_full, Op::NoTrans)
    }

    fn orthogonality_error(q: &Matrix) -> f64 {
        let qtq = matmul(q, Op::Trans, q, Op::NoTrans);
        qtq.max_abs_diff(&Matrix::identity(q.nrows()))
    }

    #[test]
    fn house_eliminates_tail() {
        let alpha = 3.0;
        let mut x = vec![4.0];
        let (beta, tau) = house(alpha, &mut x);
        // H [3;4] should map to [beta;0] with |beta| = 5.
        assert!((beta.abs() - 5.0).abs() < 1e-14);
        // Verify H [alpha; x] = [beta; 0]: v = [1; x], H y = y - tau v (v·y)
        let v = [1.0, x[0]];
        let y = [3.0, 4.0];
        let vy = v[0] * y[0] + v[1] * y[1];
        let h0 = y[0] - tau * v[0] * vy;
        let h1 = y[1] - tau * v[1] * vy;
        assert!((h0 - beta).abs() < 1e-14);
        assert!(h1.abs() < 1e-14);
    }

    #[test]
    fn house_zero_tail_is_identity() {
        let mut x: Vec<f64> = vec![0.0, 0.0];
        let (beta, tau) = house(7.0, &mut x);
        assert_eq!(beta, 7.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn qr_square_reconstruction() {
        for &n in &[1usize, 2, 5, 16, 33, 64, 100] {
            let mut rng = Rng::new(n as u64);
            let a = Matrix::random(n, n, &mut rng);
            let qr = qr_in_place(a.clone());
            let rec = reconstruct(&qr);
            let err = rec.max_abs_diff(&a) / a.max_abs().max(1.0);
            assert!(err < 1e-13 * n.max(4) as f64, "n={n} err={err}");
            assert!(orthogonality_error(&qr.form_q()) < 1e-13 * n.max(4) as f64);
        }
    }

    #[test]
    fn qr_tall_and_wide() {
        let mut rng = Rng::new(99);
        for &(m, n) in &[(40usize, 20usize), (20, 40), (65, 33), (33, 65)] {
            let a = Matrix::random(m, n, &mut rng);
            let qr = qr_in_place(a.clone());
            let rec = reconstruct(&qr);
            assert!(
                rec.max_abs_diff(&a) < 1e-12,
                "m={m} n={n}: {}",
                rec.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = Rng::new(4);
        let a = Matrix::random(30, 30, &mut rng);
        let qr = qr_in_place(a);
        let r = qr.r();
        for j in 0..30 {
            for i in (j + 1)..30 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn apply_qt_then_q_is_identity() {
        let mut rng = Rng::new(5);
        let a = Matrix::random(50, 50, &mut rng);
        let qr = qr_in_place(a);
        let c0 = Matrix::random(50, 7, &mut rng);
        let mut c = c0.clone();
        qr.apply_qt(&mut c);
        qr.apply_q(&mut c);
        assert!(c.max_abs_diff(&c0) < 1e-12);
    }

    #[test]
    fn apply_qt_matches_explicit() {
        let mut rng = Rng::new(6);
        let a = Matrix::random(40, 40, &mut rng);
        let qr = qr_in_place(a);
        let q = qr.form_q();
        let c0 = Matrix::random(40, 10, &mut rng);
        let mut c = c0.clone();
        qr.apply_qt(&mut c);
        let explicit = matmul(&q, Op::Trans, &c0, Op::NoTrans);
        assert!(c.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn qt_a_equals_r() {
        let mut rng = Rng::new(8);
        let a = Matrix::random(25, 25, &mut rng);
        let qr = qr_in_place(a.clone());
        let mut qta = a.clone();
        qr.apply_qt(&mut qta);
        // Below-diagonal entries should be ~0, above match R.
        for j in 0..25 {
            for i in 0..25 {
                if i > j {
                    assert!(qta[(i, j)].abs() < 1e-12, "({i},{j})");
                } else {
                    assert!((qta[(i, j)] - qr.a[(i, j)]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let qr = qr_in_place(Matrix::identity(10));
        let q = qr.form_q();
        // Q should be ± identity columns; QR of I gives R = I, Q = I.
        assert!(q.max_abs_diff(&Matrix::identity(10)) < 1e-14);
    }

    #[test]
    fn qr_rank_deficient_stays_finite() {
        // Two identical columns: still a valid QR, R just has a zero diagonal.
        let mut a = Matrix::zeros(6, 3);
        for i in 0..6 {
            a[(i, 0)] = (i + 1) as f64;
            a[(i, 1)] = (i + 1) as f64;
            a[(i, 2)] = 1.0;
        }
        let qr = qr_in_place(a.clone());
        let rec = reconstruct(&qr);
        assert!(rec.max_abs_diff(&a) < 1e-12);
        assert!(qr.a.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn q_det_sign_matches_lu_determinant() {
        for seed in 0..5u64 {
            let mut rng = Rng::new(40 + seed);
            let a = Matrix::random(15, 15, &mut rng);
            let qr = qr_in_place(a);
            let q = qr.form_q();
            let det = crate::lu::lu_in_place(q).unwrap().det();
            assert!(
                (det - qr.q_det_sign()).abs() < 1e-10,
                "det {det} vs sign {}",
                qr.q_det_sign()
            );
        }
    }

    #[test]
    fn qr_graded_matrix_accuracy() {
        // Columns scaled over 60 orders of magnitude — the DQMC regime.
        let mut rng = Rng::new(12);
        let n = 24;
        let mut a = Matrix::random(n, n, &mut rng);
        for j in 0..n {
            let s = 10f64.powi((j as i32 - 12) * 5);
            blas1::scal(s, a.col_mut(j));
        }
        let qr = qr_in_place(a.clone());
        let rec = reconstruct(&qr);
        // Column-wise relative error (each column has its own scale).
        for j in 0..n {
            let scale = blas1::nrm2(a.col(j));
            let mut diff = 0.0f64;
            for i in 0..n {
                diff = diff.max((rec[(i, j)] - a[(i, j)]).abs());
            }
            assert!(diff / scale < 1e-12, "col {j}: {}", diff / scale);
        }
    }
}
