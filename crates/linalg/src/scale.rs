//! Diagonal scalings and column norms — the paper's hand-written OpenMP
//! kernels (§IV-B), here parallelised with Rayon.
//!
//! In the stratification loop these level-2 operations are not negligible
//! (total cost O(N²L) against O(N³L) level-3 work at modest N), so the paper
//! parallelises them explicitly rather than calling level-1 BLAS in a loop:
//!
//! - `row_scale`: `A ← diag(d) · A` (the `V_i` factor of `B_i = V_i B`),
//! - `col_scale`: `A ← A · diag(d)` (the `D_{i−1}` factor of step 3a),
//! - `col_norms`: one norm per column, several columns per task (the
//!   pre-pivoting key computation of Algorithm 3).
//!
//! This module is tagged `deny_hot_alloc`: `cargo xtask lint` rejects heap
//! allocation in its non-test code unless a pragma justifies it.
#![cfg_attr(any(), deny_hot_alloc)]

use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use rayon::prelude::*;

/// Element count above which the scalings dispatch to the thread pool.
const PAR_MIN: usize = 32 * 1024;

/// `A ← diag(d) · A` — scales row `i` by `d[i]`.
pub fn row_scale(d: &[f64], a: &mut Matrix) {
    let m = a.nrows();
    assert_eq!(d.len(), m, "row_scale: diagonal length mismatch");
    crate::check_finite!(d, "row_scale diagonal (len {m})");
    let work = |col: &mut [f64]| {
        for (i, x) in col.iter_mut().enumerate() {
            *x *= d[i];
        }
    };
    if par_enabled(a.as_slice().len() >= PAR_MIN) {
        a.as_mut_slice().par_chunks_mut(m).for_each(work);
    } else {
        a.as_mut_slice().chunks_mut(m).for_each(work);
    }
}

/// `A ← A · diag(d)` — scales column `j` by `d[j]`.
pub fn col_scale(d: &[f64], a: &mut Matrix) {
    let m = a.nrows();
    let n = a.ncols();
    assert_eq!(d.len(), n, "col_scale: diagonal length mismatch");
    crate::check_finite!(d, "col_scale diagonal (len {n})");
    if par_enabled(a.as_slice().len() >= PAR_MIN) {
        a.as_mut_slice()
            .par_chunks_mut(m)
            .zip(d.par_iter())
            .for_each(|(col, &dj)| {
                for x in col.iter_mut() {
                    *x *= dj;
                }
            });
    } else {
        for j in 0..n {
            let dj = d[j];
            for x in a.col_mut(j) {
                *x *= dj;
            }
        }
    }
}

/// `A ← diag(d)⁻¹ · A` — divides row `i` by `d[i]` (graded T-matrix update).
// dqmc-lint: allow(hot_alloc) -- one O(m) reciprocal buffer per call, not per
// element; fusing the division into row_scale would duplicate the kernel.
pub fn row_scale_inv(d: &[f64], a: &mut Matrix) {
    let inv: Vec<f64> = d.iter().map(|&x| 1.0 / x).collect();
    // A zero in d turns into Inf here; catch it before it spreads through A.
    crate::check_finite!(&inv, "row_scale_inv reciprocal diagonal (len {})", d.len());
    row_scale(&inv, a);
}

/// Euclidean norm of every column, computed in parallel.
///
/// Uses the overflow-safe scaled accumulation of [`crate::blas1::nrm2`]:
/// the graded matrices of the stratification have column norms spanning
/// hundreds of orders of magnitude.
// dqmc-lint: allow(hot_alloc) -- the result vector IS the output; callers
// reuse it as the pre-pivoting key buffer.
pub fn col_norms(a: &Matrix) -> Vec<f64> {
    let m = a.nrows();
    let norms: Vec<f64> = if par_enabled(a.as_slice().len() >= PAR_MIN) {
        a.as_slice().par_chunks(m).map(crate::blas1::nrm2).collect()
    } else {
        a.as_slice().chunks(m).map(crate::blas1::nrm2).collect()
    };
    crate::check_finite!(&norms, "col_norms output ({m}x{})", a.ncols());
    norms
}

/// `A ← diag(r) · A · diag(c)` in one pass (wrapping kernel of Algorithm 7).
pub fn row_col_scale(r: &[f64], c: &[f64], a: &mut Matrix) {
    let m = a.nrows();
    assert_eq!(r.len(), m, "row_col_scale: row diagonal mismatch");
    assert_eq!(c.len(), a.ncols(), "row_col_scale: col diagonal mismatch");
    crate::check_finite!(r, "row_col_scale row diagonal (len {m})");
    crate::check_finite!(c, "row_col_scale col diagonal (len {})", c.len());
    let work = |(col, &cj): (&mut [f64], &f64)| {
        for (i, x) in col.iter_mut().enumerate() {
            *x *= r[i] * cj;
        }
    };
    if par_enabled(a.as_slice().len() >= PAR_MIN) {
        a.as_mut_slice()
            .par_chunks_mut(m)
            .zip(c.par_iter())
            .for_each(work);
    } else {
        a.as_mut_slice().chunks_mut(m).zip(c.iter()).for_each(work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::Rng;

    #[test]
    fn row_scale_matches_explicit() {
        let mut rng = Rng::new(1);
        let a0 = Matrix::random(7, 5, &mut rng);
        let d: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut a = a0.clone();
        row_scale(&d, &mut a);
        for j in 0..5 {
            for i in 0..7 {
                assert_eq!(a[(i, j)], d[i] * a0[(i, j)]);
            }
        }
    }

    #[test]
    fn col_scale_matches_explicit() {
        let mut rng = Rng::new(2);
        let a0 = Matrix::random(4, 6, &mut rng);
        let d: Vec<f64> = (0..6).map(|j| (j + 1) as f64).collect();
        let mut a = a0.clone();
        col_scale(&d, &mut a);
        for j in 0..6 {
            for i in 0..4 {
                assert_eq!(a[(i, j)], d[j] * a0[(i, j)]);
            }
        }
    }

    #[test]
    fn row_scale_inv_round_trip() {
        let mut rng = Rng::new(3);
        let a0 = Matrix::random(9, 9, &mut rng);
        let d: Vec<f64> = (0..9).map(|i| 1.5 + i as f64).collect();
        let mut a = a0.clone();
        row_scale(&d, &mut a);
        row_scale_inv(&d, &mut a);
        assert!(a.max_abs_diff(&a0) < 1e-14);
    }

    #[test]
    fn col_norms_match_nrm2() {
        let mut rng = Rng::new(4);
        let a = Matrix::random(30, 12, &mut rng);
        let norms = col_norms(&a);
        for j in 0..12 {
            assert!((norms[j] - crate::blas1::nrm2(a.col(j))).abs() < 1e-15);
        }
    }

    #[test]
    fn parallel_paths_match_serial() {
        // Big enough to trigger PAR_MIN.
        let mut rng = Rng::new(5);
        let a0 = Matrix::random(256, 256, &mut rng);
        let d: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).cos() + 2.0).collect();

        let mut a_big = a0.clone();
        row_scale(&d, &mut a_big);
        // serial reference via per-element loop
        let mut a_ref = a0.clone();
        for j in 0..256 {
            for i in 0..256 {
                a_ref[(i, j)] *= d[i];
            }
        }
        assert!(a_big.max_abs_diff(&a_ref) < 1e-15);

        let norms = col_norms(&a0);
        for j in 0..256 {
            assert!((norms[j] - crate::blas1::nrm2(a0.col(j))).abs() < 1e-12);
        }
    }

    #[test]
    fn row_col_scale_composes() {
        let mut rng = Rng::new(6);
        let a0 = Matrix::random(8, 8, &mut rng);
        let r: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let c: Vec<f64> = (0..8).map(|i| 2.0 - 0.1 * i as f64).collect();
        let mut a1 = a0.clone();
        row_col_scale(&r, &c, &mut a1);
        let mut a2 = a0.clone();
        row_scale(&r, &mut a2);
        col_scale(&c, &mut a2);
        // One fused multiply vs two sequential ones: a few ulps of slack.
        assert!(a1.max_abs_diff(&a2) < 1e-14);
    }

    #[test]
    fn col_norms_graded_no_overflow() {
        let mut a = Matrix::zeros(4, 2);
        a[(0, 0)] = 1e200;
        a[(1, 0)] = 1e200;
        a[(0, 1)] = 1e-200;
        let n = col_norms(&a);
        assert!((n[0] / (1e200 * 2f64.sqrt()) - 1.0).abs() < 1e-12);
        assert!(n[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        let mut a = Matrix::zeros(3, 3);
        row_scale(&[1.0, 2.0], &mut a);
    }
}
