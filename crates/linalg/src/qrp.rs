//! QR factorization with column pivoting (DGEQP3 analogue).
//!
//! Implements the Quintana-Ortí–Sun–Bischof BLAS-3 algorithm used by LAPACK's
//! `dgeqp3`: panels accumulate an auxiliary matrix `F = Aᵀ V T` so the trailing
//! update is a level-3 product, **but** pivot selection forces a level-2
//! matrix–vector product per column (building each new column of F against the
//! whole trailing matrix) plus partial-column-norm downdates with the
//! machine-epsilon recompute safeguard. That per-column level-2 traffic is
//! exactly why DGEQP3 runs far below DGEQRF and DGEMM in the paper's Figure 1,
//! and why the paper's Algorithm 3 replaces it with a cheap pre-pivot + plain
//! QR.
//!
//! Per-panel staging (the F matrix, flag buffer, trailing-update blocks)
//! comes from the [`crate::workspace`] arena and the per-column scratch is
//! stack-allocated, so a steady-state factorization performs no heap
//! allocation; the `deny_hot_alloc` tag below makes `cargo xtask lint`
//! enforce that. The column-norm downdate sweep (the paper's §IV-B
//! fine-grain loop) runs on the Rayon pool above
//! [`PAR_DOWNDATE_CUTOFF`] columns.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::blas1;
use crate::blas3::{gemm, Op};
use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use crate::perm::Permutation;
use crate::qr::{house, NB};
use crate::workspace;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Trailing-column count above which the norm-downdate sweep is parallel.
/// Below it the per-element work (a handful of flops) cannot amortise task
/// dispatch.
pub const PAR_DOWNDATE_CUTOFF: usize = 256;

/// Compact pivoted QR factorization: `A P = Q R`.
#[derive(Clone, Debug)]
pub struct QrpFactors {
    /// Packed factorization (R above/on diagonal, Householder tails below).
    pub a: Matrix,
    /// Reflector coefficients, length `min(m, n)`.
    pub tau: Vec<f64>,
    /// `jpvt[j]` is the original index of the column now in position `j`,
    /// i.e. `A[:, jpvt[j]] == (Q R)[:, j]`.
    pub jpvt: Vec<usize>,
}

/// Pivoted QR factorization (DGEQP3 analogue). Consumes `a`.
// dqmc-lint: allow(hot_alloc) — tau/jpvt are the returned factor payload and
// vn1/vn2 the once-per-factorization norm bookkeeping; per-panel scratch goes
// through the workspace arena.
pub fn qrp_in_place(mut a: Matrix) -> QrpFactors {
    let m = a.nrows();
    let n = a.ncols();
    // Pivot selection compares column norms, so a NaN/Inf input is a hard
    // error here no matter what; in checked builds report it up front.
    crate::check_finite!(a.as_slice(), "qrp_in_place input ({m}x{n})");
    let k = m.min(n);
    let mut tau = vec![0.0; k];
    let mut jpvt: Vec<usize> = (0..n).collect();
    // Partial column norms: vn1 = current estimate, vn2 = value at last
    // exact recomputation (dlaqps bookkeeping).
    let mut vn1: Vec<f64> = (0..n).map(|j| blas1::nrm2(a.col(j))).collect();
    let mut vn2 = vn1.clone();
    let tol3z = f64::EPSILON.sqrt();

    let mut j0 = 0;
    while j0 < k {
        let nb = NB.min(k - j0);
        let nf = factor_panel(
            &mut a,
            j0,
            nb,
            &mut tau[j0..],
            &mut jpvt,
            &mut vn1,
            &mut vn2,
            tol3z,
        );
        j0 += nf;
    }
    crate::check_graded!(&a.diag(), 1.0 + 1e-7, "qrp_in_place R diagonal ({m}x{n})");
    QrpFactors { a, tau, jpvt }
}

/// Factors up to `nb` columns of the panel starting at `(j0, j0)`, applies
/// the aggregated block update to the trailing matrix, and refreshes any
/// partial norms whose downdates became untrustworthy. Returns the number of
/// columns actually factored (≥ 1; fewer than `nb` when a norm recompute
/// forces early panel termination).
#[allow(clippy::too_many_arguments)]
fn factor_panel(
    a: &mut Matrix,
    j0: usize,
    nb: usize,
    tau: &mut [f64],
    jpvt: &mut [usize],
    vn1: &mut [f64],
    vn2: &mut [f64],
    tol3z: f64,
) -> usize {
    let m = a.nrows();
    let n = a.ncols();
    // F is (n - j0) × nb: row i corresponds to column j0 + i of A. Leased
    // zeroed from the arena, as is the recompute flag buffer (0.0 = clean,
    // 1.0 = downdate no longer certifiable — f64 so it pools with the rest).
    let mut f = workspace::take_matrix(n - j0, nb);
    let mut flagged = workspace::take(n);
    let mut nf = nb;

    for j in 0..nb {
        let jj = j0 + j; // current global column == pivot row (m ≥ n usage)
                         // 1. Pivot: bring the column with the largest partial norm to jj.
        let p = (jj..n)
            .max_by(|&x, &y| vn1[x].partial_cmp(&vn1[y]).expect("NaN column norm"))
            .expect("non-empty pivot range");
        if p != jj {
            a.swap_cols(jj, p);
            vn1.swap(jj, p);
            vn2.swap(jj, p);
            jpvt.swap(jj, p);
            flagged.swap(jj, p);
            f.swap_rows(jj - j0, p - j0);
        }

        // 2. Update rows jj..m of column jj with the panel reflectors
        //    generated so far: A(jj:m, jj) -= Σ_{l<j} v_l(jj:m) F(jj-j0, l).
        //    Rows j0..jj were already brought current by the per-pivot-row
        //    updates of step 5 in earlier iterations.
        for l in 0..j {
            let coef = f[(jj - j0, l)];
            if coef != 0.0 {
                let (vcol, ccol) = a.two_cols_mut(j0 + l, jj);
                // i ≥ jj > j0+l, so v_l is entirely in stored form here.
                for i in jj..m {
                    ccol[i] -= coef * vcol[i];
                }
            }
        }

        // 3. Generate the Householder reflector from A(jj:m, jj).
        let tj = {
            let cj = a.col_mut(jj);
            let (head, tail) = cj[jj..].split_first_mut().expect("non-empty");
            let (beta, tj) = house(*head, tail);
            *head = beta;
            tj
        };
        tau[j] = tj;

        // 4. F(:, j) = tau_j * (A_true trailing)ᵀ v_j. The stored trailing
        //    columns lag behind by the panel reflectors, so correct with
        //    F(:,j) -= tau_j F(:,0:j) (Vᵀ v_j).
        if tj != 0.0 {
            // Raw products against stored columns (parallel level-2 sweep —
            // this is the unavoidable DGEQP3 bottleneck). F's column j is
            // contiguous, so the parallel sweep writes it directly.
            {
                let a_ro: &Matrix = a;
                let vj_col = a_ro.col(jj);
                let fcol = f.col_mut(j);
                fcol[..=j].fill(0.0);
                let dot_one = |(off, out): (usize, &mut f64)| {
                    let c = a_ro.col(j0 + j + 1 + off);
                    // v_j has implicit 1 at row jj.
                    let mut s = c[jj];
                    for r in (jj + 1)..m {
                        s += vj_col[r] * c[r];
                    }
                    *out = tj * s;
                };
                if par_enabled(true) {
                    fcol[j + 1..].par_iter_mut().enumerate().for_each(dot_one);
                } else {
                    fcol[j + 1..].iter_mut().enumerate().for_each(dot_one);
                }
            }
            // w_l = v_lᵀ v_j over rows jj..m (v_j vanishes above jj).
            // j < nb ≤ NB, so stack scratch suffices.
            if j > 0 {
                let mut w = [0.0f64; NB];
                for (l, wl) in w[..j].iter_mut().enumerate() {
                    let vl = a.col(j0 + l);
                    let vj = a.col(jj);
                    let mut s = vl[jj]; // v_j(jj) = 1
                    for r in (jj + 1)..m {
                        s += vl[r] * vj[r];
                    }
                    *wl = s;
                }
                // F(:, j) -= tau_j * F(:, 0:j) * w
                for i in 0..(n - j0) {
                    let mut s = 0.0;
                    for (l, &wl) in w[..j].iter().enumerate() {
                        s += f[(i, l)] * wl;
                    }
                    f[(i, j)] -= tj * s;
                }
            }
        }

        // 5. Update pivot row jj of the trailing columns so the norm
        //    downdates see current values:
        //    A(jj, c) -= Σ_{l≤j} V(jj, l) F(c-j0, l).
        if jj + 1 < n {
            // j < nb ≤ NB: stack scratch for the V row.
            let mut vrow = [0.0f64; NB];
            for (l, vr) in vrow[..j].iter_mut().enumerate() {
                *vr = a[(jj, j0 + l)];
            }
            vrow[j] = 1.0;
            for c in (jj + 1)..n {
                let mut s = 0.0;
                for (l, &vr) in vrow[..=j].iter().enumerate() {
                    s += vr * f[(c - j0, l)];
                }
                a[(jj, c)] -= s;
            }
        }

        // 6. Downdate partial norms (dlaqps formula with recompute guard).
        // Above the cutoff the sweep runs on the Rayon pool — this is the
        // paper's §IV-B fine-grain parallel loop. The stop flag is an atomic
        // so the decision stays exact under a real threaded pool; the
        // recompute *counter* is taken later from the flag buffer, serially,
        // so it is exact regardless of scheduling.
        let base = jj + 1;
        let must_stop = if par_enabled(n - base >= PAR_DOWNDATE_CUTOFF) {
            let stop = AtomicBool::new(false);
            let a_ro: &Matrix = a;
            vn1[base..n]
                .par_iter_mut()
                .zip(flagged[base..n].par_iter_mut())
                .enumerate()
                .for_each(|(off, (v1, fl))| {
                    let c = base + off;
                    if downdate_one(a_ro[(jj, c)], v1, vn2[c], fl, tol3z) {
                        stop.store(true, Ordering::Relaxed);
                    }
                });
            stop.load(Ordering::Relaxed)
        } else {
            let mut stop = false;
            for c in base..n {
                stop |= downdate_one(a[(jj, c)], &mut vn1[c], vn2[c], &mut flagged[c], tol3z);
            }
            stop
        };
        if must_stop {
            nf = j + 1;
            break;
        }
    }

    // Aggregated trailing update on rows below the factored block:
    // A(j0+nf:m, j0+nf:n) -= V(nf:, 0:nf) F(nf:, 0:nf)ᵀ.
    let r1 = j0 + nf;
    if r1 < m && r1 < n {
        // Rows r1.. of the panel's V sit entirely below every reflector's
        // unit diagonal, so they are exactly the stored block A[r1.., j0..].
        let mut vlow = workspace::take_matrix(m - r1, nf);
        a.copy_submatrix_into(r1, j0, &mut vlow);
        let mut ftrail = workspace::take_matrix(n - r1, nf);
        f.copy_submatrix_into(nf, 0, &mut ftrail);
        let mut trail = workspace::take_matrix(m - r1, n - r1);
        a.copy_submatrix_into(r1, r1, &mut trail);
        gemm(
            -1.0,
            &vlow,
            Op::NoTrans,
            &ftrail,
            Op::Trans,
            1.0,
            &mut trail,
        );
        a.set_submatrix(r1, r1, &trail);
        workspace::put_matrix(vlow);
        workspace::put_matrix(ftrail);
        workspace::put_matrix(trail);
    }

    // Refresh partial norms that the downdate could no longer certify, and
    // record how often the safeguard fired (surfaced via dqmc::diagnostics).
    let mut recomputed = 0u64;
    for c in r1..n {
        if flagged[c] != 0.0 {
            let tail = &a.col(c)[r1.min(m)..];
            vn1[c] = blas1::nrm2(tail);
            vn2[c] = vn1[c];
            recomputed += 1;
        }
    }
    crate::check::note_norm_downdate_recomputes(recomputed);
    workspace::put_matrix(f);
    workspace::put(flagged);
    nf
}

/// One dlaqps partial-norm downdate. Returns `true` when the estimate can no
/// longer be certified (`flag` is set and the caller must end the panel so
/// the norm is recomputed exactly).
#[inline]
fn downdate_one(ajc: f64, vn1c: &mut f64, vn2c: f64, flag: &mut f64, tol3z: f64) -> bool {
    if *vn1c == 0.0 {
        return false;
    }
    let temp = (ajc.abs() / *vn1c).min(1.0);
    let temp = ((1.0 + temp) * (1.0 - temp)).max(0.0);
    let ratio = *vn1c / vn2c;
    let temp2 = temp * ratio * ratio;
    if temp2 <= tol3z {
        *flag = 1.0;
        true
    } else {
        *vn1c *= temp.sqrt();
        false
    }
}

impl QrpFactors {
    /// Row count of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Column count of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// The upper-triangular factor R (`min(m,n) × n`).
    pub fn r(&self) -> Matrix {
        let k = self.a.nrows().min(self.a.ncols());
        Matrix::from_fn(
            k,
            self.a.ncols(),
            |i, j| {
                if i <= j {
                    self.a[(i, j)]
                } else {
                    0.0
                }
            },
        )
    }

    /// Diagonal of R (length `min(m,n)`), non-increasing in magnitude.
    pub fn r_diag(&self) -> Vec<f64> {
        self.a.diag()
    }

    /// The column permutation as a [`Permutation`] (maps factored position →
    /// original column index).
    // dqmc-lint: allow(hot_alloc) — returns an owned Permutation; not on the
    // factorization hot path.
    pub fn permutation(&self) -> Permutation {
        Permutation::from_forward(self.jpvt.clone())
    }

    /// Reinterprets the packed Householder data as unpivoted [`crate::QrFactors`]
    /// to reuse Q application/formation (the reflectors are identical).
    // dqmc-lint: allow(hot_alloc) — one copy of the packed factors per Q
    // application; callers are post-processing, not the panel loop.
    fn as_qr(&self) -> crate::qr::QrFactors {
        crate::qr::QrFactors {
            a: self.a.clone(),
            tau: self.tau.clone(),
        }
    }

    /// Forms the square orthogonal factor Q explicitly.
    pub fn form_q(&self) -> Matrix {
        self.as_qr().form_q()
    }

    /// Applies `Qᵀ` in place (`C := Qᵀ C`).
    pub fn apply_qt(&self, c: &mut Matrix) {
        self.as_qr().apply_qt(c);
    }

    /// Applies `Q` in place (`C := Q C`).
    pub fn apply_q(&self, c: &mut Matrix) {
        self.as_qr().apply_q(c);
    }

    /// Sign of `det Q` (see [`crate::QrFactors::q_det_sign`]).
    pub fn q_det_sign(&self) -> f64 {
        self.as_qr().q_det_sign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::matmul;
    use util::Rng;

    /// Checks A P = Q R column by column, with per-column relative error
    /// (columns of graded matrices carry wildly different scales).
    fn check_factorization(a: &Matrix, qrp: &QrpFactors, tol: f64) {
        let q = qrp.form_q();
        let r = Matrix::from_fn(a.nrows(), a.ncols(), |i, j| {
            if i <= j {
                qrp.a[(i, j)]
            } else {
                0.0
            }
        });
        let qr = matmul(&q, Op::NoTrans, &r, Op::NoTrans);
        for j in 0..a.ncols() {
            let orig = qrp.jpvt[j];
            let scale = crate::blas1::nrm2(a.col(orig)).max(1e-300);
            for i in 0..a.nrows() {
                let err = (qr[(i, j)] - a[(i, orig)]).abs() / scale;
                assert!(err < tol, "({i},{j}) rel err {err}");
            }
        }
    }

    #[test]
    fn factorizes_random_square() {
        for &n in &[1usize, 3, 8, 17, 33, 50, 80] {
            let mut rng = Rng::new(100 + n as u64);
            let a = Matrix::random(n, n, &mut rng);
            let qrp = qrp_in_place(a.clone());
            check_factorization(&a, &qrp, 1e-12 * n.max(4) as f64);
        }
    }

    #[test]
    fn factorizes_tall() {
        let mut rng = Rng::new(7);
        let a = Matrix::random(60, 35, &mut rng);
        let qrp = qrp_in_place(a.clone());
        check_factorization(&a, &qrp, 1e-12);
    }

    #[test]
    fn diag_r_non_increasing() {
        let mut rng = Rng::new(8);
        let a = Matrix::random(64, 64, &mut rng);
        let qrp = qrp_in_place(a.clone());
        let d = qrp.r_diag();
        for w in d.windows(2) {
            assert!(
                w[0].abs() >= w[1].abs() * (1.0 - 1e-10),
                "diagonal not graded: {} < {}",
                w[0].abs(),
                w[1].abs()
            );
        }
    }

    #[test]
    fn jpvt_is_a_permutation() {
        let mut rng = Rng::new(9);
        let a = Matrix::random(40, 40, &mut rng);
        let qrp = qrp_in_place(a);
        let mut seen = [false; 40];
        for &p in &qrp.jpvt {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn graded_matrix_pivots_descending() {
        // Columns with widely different scales: pivoting must pick the big
        // ones first regardless of initial order.
        let mut rng = Rng::new(10);
        let n = 48;
        let mut a = Matrix::random(n, n, &mut rng);
        for j in 0..n {
            let s = 10f64.powi(((j * 7) % n) as i32 - 24);
            crate::blas1::scal(s, a.col_mut(j));
        }
        let qrp = qrp_in_place(a.clone());
        check_factorization(&a, &qrp, 1e-10);
        let d = qrp.r_diag();
        for w in d.windows(2) {
            assert!(w[0].abs() >= w[1].abs() * (1.0 - 1e-10));
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        // Rank-2 matrix of size 10: trailing diagonal of R ≈ 0.
        let mut rng = Rng::new(11);
        let u = Matrix::random(10, 2, &mut rng);
        let v = Matrix::random(10, 2, &mut rng);
        let a = matmul(&u, Op::NoTrans, &v, Op::Trans);
        let qrp = qrp_in_place(a.clone());
        check_factorization(&a, &qrp, 1e-12);
        let d = qrp.r_diag();
        assert!(d[0].abs() > 1e-8);
        assert!(d[1].abs() > 1e-12);
        for &x in &d[2..] {
            assert!(x.abs() < 1e-12, "expected ~0, got {x}");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(6, 6);
        let qrp = qrp_in_place(a.clone());
        check_factorization(&a, &qrp, 1e-14);
        assert!(qrp.r_diag().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn identity_needs_no_pivoting_effect() {
        let a = Matrix::identity(12);
        let qrp = qrp_in_place(a.clone());
        check_factorization(&a, &qrp, 1e-14);
        let d = qrp.r_diag();
        for &x in &d {
            assert!((x.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn matches_unpivoted_qr_on_prepivoted_input() {
        // If columns are already in descending-norm order with strong
        // grading, QRP should keep them (nearly) in place.
        let mut rng = Rng::new(13);
        let n = 24;
        let mut a = Matrix::random(n, n, &mut rng);
        for j in 0..n {
            crate::blas1::scal(10f64.powi(-(3 * j as i32)), a.col_mut(j));
        }
        let qrp = qrp_in_place(a.clone());
        assert_eq!(qrp.jpvt, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_accessor_consistent() {
        let mut rng = Rng::new(14);
        let a = Matrix::random(20, 20, &mut rng);
        let qrp = qrp_in_place(a.clone());
        let p = qrp.permutation();
        for j in 0..20 {
            assert_eq!(p.forward(j), qrp.jpvt[j]);
        }
    }
}
