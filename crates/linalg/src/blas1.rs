//! Level-1 vector kernels (ddot / daxpy / dscal / dnrm2 / idamax analogues).
//!
//! These are the scalar building blocks of the factorizations. They are
//! written as straightforward loops over slices; the compiler autovectorises
//! them, and at DQMC matrix sizes their cost is negligible next to level-3
//! work — exactly the balance the paper assumes.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    // Four-way unrolled accumulation: better ILP and reproducible results.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = 4 * k;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in 4 * chunks..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow/underflow
/// (the graded DQMC matrices have columns spanning ~1e±150).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest absolute value (first on ties).
///
/// Returns `None` for an empty slice.
pub fn idamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut bestval = x[0].abs();
    for (i, &xi) in x.iter().enumerate().skip(1) {
        let a = xi.abs();
        if a > bestval {
            best = i;
            bestval = a;
        }
    }
    Some(best)
}

/// Swaps the contents of two equal-length slices.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    x.swap_with_slice(y);
}

/// `y = x` copy.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // length > 4 exercises the unrolled path + remainder
        let x: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let y = vec![1.0; 9];
        assert_eq!(dot(&x, &y), 45.0);
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scal_basic() {
        let mut x = [1.0, -2.0, 3.0];
        scal(-2.0, &mut x);
        assert_eq!(x, [-2.0, 4.0, -6.0]);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn nrm2_extreme_scales() {
        // Would overflow with naive sum of squares.
        let big = nrm2(&[1e200, 1e200]);
        assert!((big / (1e200 * 2.0f64.sqrt()) - 1.0).abs() < 1e-12);
        // Would underflow to 0 naively.
        let small = nrm2(&[1e-200, 1e-200]);
        assert!((small / (1e-200 * 2.0f64.sqrt()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idamax_ties_and_signs() {
        assert_eq!(idamax(&[1.0, -5.0, 5.0, 2.0]), Some(1));
        assert_eq!(idamax(&[]), None);
        assert_eq!(idamax(&[0.0]), Some(0));
    }

    #[test]
    fn swap_and_copy() {
        let mut a = [1.0, 2.0];
        let mut b = [3.0, 4.0];
        swap(&mut a, &mut b);
        assert_eq!(a, [3.0, 4.0]);
        let mut c = [0.0; 2];
        copy(&a, &mut c);
        assert_eq!(c, [3.0, 4.0]);
    }
}
