//! LU factorization with partial pivoting (DGETRF / DGETRS / DGETRI analogues).
//!
//! Used once per Green's-function assembly to solve
//! `(D_b Qᵀ + D_s T) G = D_b Qᵀ`. Right-looking blocked algorithm: unblocked
//! panel factorization, pivot-row swaps across the full matrix, a triangular
//! solve for the upper block row, and a GEMM trailing update that carries
//! almost all the flops.

use crate::blas3::{gemm, Op};
use crate::matrix::Matrix;
use crate::tri;
use crate::{Error, Result};

/// Panel width.
const NB: usize = 32;

/// Compact LU factorization with row pivoting: `P A = L U`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    pub lu: Matrix,
    /// Row interchanges: at step `i`, row `i` was swapped with `ipiv[i] ≥ i`.
    pub ipiv: Vec<usize>,
}

/// Factors a square matrix. Returns [`Error::Singular`] on an exactly zero pivot.
pub fn lu_in_place(mut a: Matrix) -> Result<LuFactors> {
    let n = a.nrows();
    assert!(a.is_square(), "lu: matrix must be square");
    let mut ipiv = vec![0usize; n];

    let mut j0 = 0;
    while j0 < n {
        let nb = NB.min(n - j0);
        // --- Unblocked factorization of panel columns j0..j0+nb ---
        for j in j0..(j0 + nb) {
            // Pivot search in column j, rows j..n.
            let col = a.col(j);
            let mut p = j;
            let mut best = col[j].abs();
            for (i, &v) in col.iter().enumerate().take(n).skip(j + 1) {
                if v.abs() > best {
                    best = v.abs();
                    p = i;
                }
            }
            ipiv[j] = p;
            if best == 0.0 {
                return Err(Error::Singular(j));
            }
            if p != j {
                a.swap_rows(j, p); // swap across the *entire* matrix
            }
            // Scale multipliers and update remaining panel columns.
            let pivot = a[(j, j)];
            {
                let cj = a.col_mut(j);
                for i in (j + 1)..n {
                    cj[i] /= pivot;
                }
            }
            for jj in (j + 1)..(j0 + nb) {
                let (cj, cjj) = a.two_cols_mut(j, jj);
                let mult = cjj[j];
                if mult != 0.0 {
                    for i in (j + 1)..n {
                        cjj[i] -= mult * cj[i];
                    }
                }
            }
        }
        let j1 = j0 + nb;
        if j1 < n {
            // --- U block row: U12 = L11⁻¹ A12 ---
            let l11 = a.submatrix(j0, j0, nb, nb);
            let mut a12 = a.submatrix(j0, j1, nb, n - j1);
            tri::trsm_lower_unit(&l11, &mut a12);
            a.set_submatrix(j0, j1, &a12);
            // --- Trailing update: A22 -= L21 U12 ---
            let l21 = a.submatrix(j1, j0, n - j1, nb);
            let mut a22 = a.submatrix(j1, j1, n - j1, n - j1);
            gemm(-1.0, &l21, Op::NoTrans, &a12, Op::NoTrans, 1.0, &mut a22);
            a.set_submatrix(j1, j1, &a22);
        }
        j0 = j1;
    }
    Ok(LuFactors { lu: a, ipiv })
}

impl LuFactors {
    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A X = B` in place (B becomes X).
    pub fn solve_in_place(&self, b: &mut Matrix) {
        assert_eq!(b.nrows(), self.order(), "solve: RHS row mismatch");
        // Apply row interchanges in factorization order.
        for (i, &p) in self.ipiv.iter().enumerate() {
            if p != i {
                b.swap_rows(i, p);
            }
        }
        tri::trsm_lower_unit(&self.lu, b);
        tri::trsm_upper(&self.lu, b);
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut m = Matrix::from_col_major(b.len(), 1, b.to_vec());
        self.solve_in_place(&mut m);
        m.into_vec()
    }

    /// Explicit inverse `A⁻¹` (solves against the identity).
    pub fn inverse(&self) -> Matrix {
        let mut inv = Matrix::identity(self.order());
        self.solve_in_place(&mut inv);
        inv
    }

    /// Determinant: product of U's diagonal times the pivot sign.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.order() {
            d *= self.lu[(i, i)];
            if self.ipiv[i] != i {
                d = -d;
            }
        }
        d
    }

    /// Sign of the determinant and log of its absolute value — the numerically
    /// safe form for DQMC weights, whose determinants overflow f64 range.
    pub fn sign_log_det(&self) -> (f64, f64) {
        let mut sign = 1.0;
        let mut logabs = 0.0;
        for i in 0..self.order() {
            let d = self.lu[(i, i)];
            if d < 0.0 {
                sign = -sign;
            }
            logabs += d.abs().ln();
            if self.ipiv[i] != i {
                sign = -sign;
            }
        }
        (sign, logabs)
    }
}

/// Convenience: solve `A X = B`, consuming a copy of `A`.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let f = lu_in_place(a.clone())?;
    let mut x = b.clone();
    f.solve_in_place(&mut x);
    Ok(x)
}

/// Convenience: explicit inverse.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Ok(lu_in_place(a.clone())?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::matmul;
    use util::Rng;

    fn diag_dominant(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let mut a = Matrix::random(n, n, &mut rng);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn reconstruction_pa_equals_lu() {
        for &n in &[1usize, 2, 7, 32, 33, 70] {
            let mut rng = Rng::new(n as u64);
            let a = Matrix::random(n, n, &mut rng);
            let f = lu_in_place(a.clone()).unwrap();
            // Build P A by replaying the swaps on A.
            let mut pa = a.clone();
            for (i, &p) in f.ipiv.iter().enumerate() {
                if p != i {
                    pa.swap_rows(i, p);
                }
            }
            let l = Matrix::from_fn(n, n, |i, j| match i.cmp(&j) {
                std::cmp::Ordering::Greater => f.lu[(i, j)],
                std::cmp::Ordering::Equal => 1.0,
                std::cmp::Ordering::Less => 0.0,
            });
            let u = Matrix::from_fn(n, n, |i, j| if i <= j { f.lu[(i, j)] } else { 0.0 });
            let lu = matmul(&l, Op::NoTrans, &u, Op::NoTrans);
            assert!(
                lu.max_abs_diff(&pa) < 1e-12 * n.max(4) as f64,
                "n={n}: {}",
                lu.max_abs_diff(&pa)
            );
        }
    }

    #[test]
    fn solve_round_trip() {
        for &n in &[1usize, 5, 40, 100] {
            let a = diag_dominant(n, 100 + n as u64);
            let mut rng = Rng::new(7);
            let x = Matrix::random(n, 4, &mut rng);
            let b = matmul(&a, Op::NoTrans, &x, Op::NoTrans);
            let sol = solve(&a, &b).unwrap();
            assert!(sol.max_abs_diff(&x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn solve_vec_matches_matrix_solve() {
        let a = diag_dominant(12, 3);
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let f = lu_in_place(a.clone()).unwrap();
        let x = f.solve_vec(&b);
        let bm = Matrix::from_col_major(12, 1, b);
        let xm = solve(&a, &bm).unwrap();
        for i in 0..12 {
            assert!((x[i] - xm[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = diag_dominant(30, 4);
        let inv = inverse(&a).unwrap();
        let prod = matmul(&a, Op::NoTrans, &inv, Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(30)) < 1e-10);
    }

    #[test]
    fn det_of_known_matrix() {
        // det [[1,2],[3,4]] = -2
        let a = Matrix::from_col_major(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let f = lu_in_place(a).unwrap();
        assert!((f.det() + 2.0).abs() < 1e-14);
    }

    #[test]
    fn det_matches_permutation_parity() {
        // Permutation matrix with a single swap: det = -1.
        let mut a = Matrix::identity(4);
        a.swap_rows(1, 3);
        let f = lu_in_place(a).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn sign_log_det_consistent_with_det() {
        let a = diag_dominant(9, 5);
        let f = lu_in_place(a).unwrap();
        let (s, l) = f.sign_log_det();
        let d = f.det();
        assert_eq!(s, d.signum());
        assert!((l - d.abs().ln()).abs() < 1e-10);
    }

    #[test]
    fn sign_log_det_handles_huge_determinants() {
        // diag(1e200, 1e200, 1e200): det overflows, sign_log_det must not.
        let a = Matrix::from_diag(&[1e200, 1e200, 1e200]);
        let f = lu_in_place(a).unwrap();
        let (s, l) = f.sign_log_det();
        assert_eq!(s, 1.0);
        assert!((l - 3.0 * 200.0 * std::f64::consts::LN_10).abs() < 1e-6);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = 0.0;
        match lu_in_place(a) {
            Err(Error::Singular(_)) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn pivoting_beats_naive_on_small_pivot() {
        // Classic example where no-pivot LU is catastrophically inaccurate.
        let eps = 1e-18;
        let a = Matrix::from_col_major(2, 2, vec![eps, 1.0, 1.0, 1.0]);
        let b = Matrix::from_col_major(2, 1, vec![1.0, 2.0]);
        let x = solve(&a, &b).unwrap();
        // Exact solution ≈ [1, 1].
        assert!((x[(0, 0)] - 1.0).abs() < 1e-9);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let _ = lu_in_place(Matrix::zeros(2, 3));
    }
}
