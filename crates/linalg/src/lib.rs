//! Dense linear-algebra substrate for the DQMC workspace.
//!
//! The paper's computations run on MKL's DGEMM / DGEQRF / DGEQP3 / LU. This
//! crate is a from-scratch Rust stand-in implementing the same *algorithmic
//! structure* — blocked level-3 kernels parallelised with Rayon, a blocked
//! Householder QR, a Quintana-Ortí–Sun–Bischof style QR with column pivoting
//! whose pivot-norm updates are inherently level-2 (the very property the
//! paper's pre-pivoting contribution works around), and partial-pivoting LU.
//!
//! Matrices are dense, column-major, `f64` ([`Matrix`]). Dimension mismatches
//! panic (programming errors); numerical rank problems return
//! [`Error`] values.
//!
//! # Module map
//!
//! | module | LAPACK/BLAS analogue | role in the paper |
//! |---|---|---|
//! | [`blas1`] | ddot/daxpy/dnrm2/… | building blocks |
//! | [`blas2`] | dgemv/dger | delayed-update rows/cols |
//! | [`blas3`] | dgemm | clustering, wrapping, T products (Fig. 1 baseline) |
//! | [`qr`] | dgeqrf/dorgqr/dormqr | Algorithm 3 (pre-pivoted stratification) |
//! | [`qrp`] | dgeqp3 | Algorithm 2 (original stratification) |
//! | [`lu`] | dgetrf/dgetrs/dgetri | final Green's-function assembly |
//! | [`tri`] | dtrsm/dtrmm/dtrtri | T-matrix updates |
//! | [`eig`] | dsyev (Jacobi) | matrix exponential of K |
//! | [`expm`] | — | B = e^{−ΔτK} |
//! | [`scale`] | custom OpenMP kernels of §IV-B | row/col scalings, column norms |
//! | [`perm`] | dlapmt | pivoting and pre-pivoting |

//!
//! # Checked-invariants mode
//!
//! With the `checked-invariants` cargo feature the kernels assert runtime
//! invariants (NaN/Inf taint on outputs, Q orthogonality, grading of
//! pivoted-QR diagonals) through the macros in [`check`]; without the
//! feature the macros expand to nothing. See [`check`] for the contract.

pub mod batch;
pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod check;
pub mod eig;
pub mod expm;
pub mod lu;
pub mod matrix;
pub mod parallelism;
pub mod perm;
pub mod qr;
pub mod qrp;
pub mod scale;
pub mod simd;
pub mod svd;
pub mod tri;
pub mod tsqr;
pub mod workspace;

pub use batch::{dgemm_strided_batched, qrp_batched, GemmOperand};
pub use blas3::{gemm, gemm_naive, gemm_with_kernel, Op};
pub use eig::SymEig;
pub use expm::sym_expm;
pub use lu::LuFactors;
pub use matrix::Matrix;
pub use parallelism::{enter_worker_scope, in_worker_scope, par_enabled, WorkerScope};
pub use perm::Permutation;
pub use qr::QrFactors;
pub use qrp::QrpFactors;
pub use simd::{kernel_path, KernelPath};
pub use svd::{condition_number, svd, Svd};
pub use tsqr::{tsqr, Tsqr};

/// Errors from numerically rank-revealing operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// An exactly (or numerically) singular pivot was encountered;
    /// the payload is the zero-based index of the offending column.
    Singular(usize),
    /// An iterative algorithm failed to converge within its iteration cap.
    NoConvergence,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Singular(i) => write!(f, "singular pivot at column {i}"),
            Error::NoConvergence => write!(f, "iteration failed to converge"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
