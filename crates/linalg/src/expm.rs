//! Matrix exponential of symmetric matrices.
//!
//! DQMC needs `B = e^{−Δτ K}` (and its inverse `e^{+Δτ K}` for wrapping),
//! where `K` is the symmetric hopping matrix. Both are computed from a single
//! eigendecomposition `K = S Λ Sᵀ` as `e^{sK} = S e^{sΛ} Sᵀ`, which is exact
//! up to round-off and — unlike Padé scaling-and-squaring — gives a
//! *consistent pair* of forward and inverse exponentials.

use crate::blas3::{gemm, Op};
use crate::eig::{sym_eig, SymEig};
use crate::matrix::Matrix;
use crate::scale::col_scale;
use crate::Result;

/// Computes `e^{s A}` for symmetric `A`.
pub fn sym_expm(a: &Matrix, s: f64) -> Result<Matrix> {
    let e = sym_eig(a)?;
    Ok(expm_from_eig(&e, s))
}

/// Computes `e^{s A}` from a precomputed eigendecomposition of `A`.
///
/// Useful to get `e^{−ΔτK}` and `e^{+ΔτK}` from one factorization.
pub fn expm_from_eig(e: &SymEig, s: f64) -> Matrix {
    let n = e.vectors.nrows();
    // S · diag(e^{sλ}) · Sᵀ
    let mut scaled = e.vectors.clone();
    let d: Vec<f64> = e.values.iter().map(|&l| (s * l).exp()).collect();
    col_scale(&d, &mut scaled);
    let mut out = Matrix::zeros(n, n);
    gemm(
        1.0,
        &scaled,
        Op::NoTrans,
        &e.vectors,
        Op::Trans,
        0.0,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::matmul;
    use util::Rng;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::random(n, n, &mut rng);
        let mut a = b.clone();
        let bt = b.transpose();
        a.axpy(1.0, &bt);
        a.scale(0.5);
        a
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let a = Matrix::zeros(5, 5);
        let e = sym_expm(&a, 1.0).unwrap();
        assert!(e.max_abs_diff(&Matrix::identity(5)) < 1e-14);
    }

    #[test]
    fn exp_of_diagonal() {
        let a = Matrix::from_diag(&[1.0, -2.0, 0.5]);
        let e = sym_expm(&a, 2.0).unwrap();
        assert!((e[(0, 0)] - (2.0f64).exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-4.0f64).exp()).abs() < 1e-14);
        assert!((e[(2, 2)] - (1.0f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn forward_times_inverse_is_identity() {
        let a = random_symmetric(12, 1);
        let ef = sym_expm(&a, -0.125).unwrap();
        let eb = sym_expm(&a, 0.125).unwrap();
        let prod = matmul(&ef, Op::NoTrans, &eb, Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(12)) < 1e-12);
    }

    #[test]
    fn semigroup_property() {
        // e^{sA} e^{tA} = e^{(s+t)A}
        let a = random_symmetric(8, 2);
        let e1 = sym_expm(&a, 0.3).unwrap();
        let e2 = sym_expm(&a, 0.4).unwrap();
        let e3 = sym_expm(&a, 0.7).unwrap();
        let prod = matmul(&e1, Op::NoTrans, &e2, Op::NoTrans);
        assert!(prod.max_abs_diff(&e3) < 1e-11);
    }

    #[test]
    fn matches_taylor_series_for_small_argument() {
        let a = random_symmetric(6, 3);
        let s = 1e-3;
        let e = sym_expm(&a, s).unwrap();
        // I + sA + (sA)²/2 + (sA)³/6
        let mut taylor = Matrix::identity(6);
        taylor.axpy(s, &a);
        let a2 = matmul(&a, Op::NoTrans, &a, Op::NoTrans);
        taylor.axpy(s * s / 2.0, &a2);
        let a3 = matmul(&a2, Op::NoTrans, &a, Op::NoTrans);
        taylor.axpy(s * s * s / 6.0, &a3);
        assert!(e.max_abs_diff(&taylor) < 1e-11);
    }

    #[test]
    fn exponential_is_symmetric_positive_definite() {
        let a = random_symmetric(10, 4);
        let e = sym_expm(&a, -0.5).unwrap();
        assert!(crate::eig::is_symmetric(&e, 1e-10));
        // All eigenvalues of e^{sA} are positive.
        let ee = crate::eig::sym_eig(&e).unwrap();
        assert!(ee.values.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn shared_eig_reuse_consistent() {
        let a = random_symmetric(7, 5);
        let eig = crate::eig::sym_eig(&a).unwrap();
        let e1 = expm_from_eig(&eig, -0.2);
        let e2 = sym_expm(&a, -0.2).unwrap();
        assert!(e1.max_abs_diff(&e2) < 1e-13);
    }
}
