//! Column/row permutations (dlapmt analogue).
//!
//! Both stratification algorithms permute columns: Algorithm 2 gets its
//! permutation from pivoted QR, Algorithm 3 *pre-computes* one by sorting
//! column norms in descending order and then runs an unpivoted QR. The
//! `P` produced either way enters the T-matrix update as `Pᵀ T`.

use crate::matrix::Matrix;

/// A permutation of `n` items.
///
/// Internally stores the *forward* map: `forward[j]` is the original index of
/// the item placed at position `j`. As a matrix, `P = [e_{f(0)} … e_{f(n−1)}]`,
/// so `(A P)[:, j] = A[:, f(j)]` and `(Pᵀ B)[j, :] = B[f(j), :]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `n` items.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n).collect(),
        }
    }

    /// Builds from a forward map (`forward[j]` = source index of position `j`).
    ///
    /// Panics if `forward` is not a permutation of `0..n`.
    pub fn from_forward(forward: Vec<usize>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &p in &forward {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Permutation { forward }
    }

    /// Permutation that sorts `keys` into descending order (stable):
    /// position `j` receives the index of the `j`-th largest key.
    ///
    /// This is the paper's *pre-pivoting* step: keys are column norms.
    pub fn sort_descending(keys: &[f64]) -> Self {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by(|&i, &j| {
            keys[j]
                .partial_cmp(&keys[i])
                .expect("NaN key in sort_descending")
                .then(i.cmp(&j))
        });
        Permutation { forward: idx }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Source index of position `j`.
    #[inline]
    pub fn forward(&self, j: usize) -> usize {
        self.forward[j]
    }

    /// Destination position of source index `i` (inverse map).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.forward.len()];
        for (j, &src) in self.forward.iter().enumerate() {
            inv[src] = j;
        }
        Permutation { forward: inv }
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.forward.iter().enumerate().all(|(j, &p)| j == p)
    }

    /// Number of positions where this differs from the identity — the
    /// "column interchange count" the paper observes to be small for
    /// progressively graded matrices.
    pub fn displacement(&self) -> usize {
        self.forward
            .iter()
            .enumerate()
            .filter(|&(j, &p)| j != p)
            .count()
    }

    /// Returns `A · P` (reorders columns: column `j` of the result is column
    /// `forward[j]` of `A`).
    pub fn permute_cols(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.ncols(), self.len());
        let mut out = Matrix::zeros(a.nrows(), a.ncols());
        for j in 0..a.ncols() {
            out.col_mut(j).copy_from_slice(a.col(self.forward[j]));
        }
        out
    }

    /// Returns `A · Pᵀ` (column `forward[j]` of the result is column `j` of `A`).
    pub fn permute_cols_inv(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.ncols(), self.len());
        let mut out = Matrix::zeros(a.nrows(), a.ncols());
        for j in 0..a.ncols() {
            out.col_mut(self.forward[j]).copy_from_slice(a.col(j));
        }
        out
    }

    /// Returns `Pᵀ · A` (row `j` of the result is row `forward[j]` of `A`).
    pub fn permute_rows_t(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.nrows(), self.len());
        let mut out = Matrix::zeros(a.nrows(), a.ncols());
        for j in 0..a.ncols() {
            let src = a.col(j);
            let dst = out.col_mut(j);
            for (i, d) in dst.iter_mut().enumerate() {
                *d = src[self.forward[i]];
            }
        }
        out
    }

    /// Returns `P · A` (row `forward[i]` of the result is row `i` of `A`).
    pub fn permute_rows(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.nrows(), self.len());
        let mut out = Matrix::zeros(a.nrows(), a.ncols());
        for j in 0..a.ncols() {
            let src = a.col(j);
            let dst = out.col_mut(j);
            for (i, &s) in src.iter().enumerate() {
                dst[self.forward[i]] = s;
            }
        }
        out
    }

    /// Applies to a vector as `Pᵀ x` (entry `j` of the result is `x[forward[j]]`).
    pub fn permute_vec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        self.forward.iter().map(|&p| x[p]).collect()
    }

    /// Dense matrix form of `P` (mostly for tests).
    pub fn to_matrix(&self) -> Matrix {
        let n = self.len();
        let mut p = Matrix::zeros(n, n);
        for j in 0..n {
            p[(self.forward[j], j)] = 1.0;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{matmul, Op};
    use util::Rng;

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.displacement(), 0);
        let mut rng = Rng::new(1);
        let a = Matrix::random(5, 5, &mut rng);
        assert_eq!(p.permute_cols(&a), a);
        assert_eq!(p.permute_rows_t(&a), a);
    }

    #[test]
    fn sort_descending_orders_keys() {
        let keys = [3.0, 1.0, 4.0, 1.5, 9.0];
        let p = Permutation::sort_descending(&keys);
        let sorted: Vec<f64> = (0..5).map(|j| keys[p.forward(j)]).collect();
        assert_eq!(sorted, vec![9.0, 4.0, 3.0, 1.5, 1.0]);
    }

    #[test]
    fn sort_descending_stable_on_ties() {
        let keys = [2.0, 5.0, 2.0];
        let p = Permutation::sort_descending(&keys);
        assert_eq!(p.forward(0), 1);
        assert_eq!(p.forward(1), 0); // first of the tied pair keeps priority
        assert_eq!(p.forward(2), 2);
    }

    #[test]
    fn matrix_form_matches_permute_cols() {
        let mut rng = Rng::new(2);
        let a = Matrix::random(6, 6, &mut rng);
        let p = Permutation::from_forward(vec![2, 0, 5, 1, 4, 3]);
        let ap1 = p.permute_cols(&a);
        let ap2 = matmul(&a, Op::NoTrans, &p.to_matrix(), Op::NoTrans);
        assert!(ap1.max_abs_diff(&ap2) < 1e-15);
    }

    #[test]
    fn matrix_form_matches_permute_rows_t() {
        let mut rng = Rng::new(3);
        let a = Matrix::random(6, 4, &mut rng);
        let p = Permutation::from_forward(vec![2, 0, 5, 1, 4, 3]);
        let pa1 = p.permute_rows_t(&a);
        let pa2 = matmul(&p.to_matrix(), Op::Trans, &a, Op::NoTrans);
        assert!(pa1.max_abs_diff(&pa2) < 1e-15);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_forward(vec![3, 1, 0, 2]);
        let mut rng = Rng::new(4);
        let a = Matrix::random(4, 4, &mut rng);
        let back = p.inverse().permute_cols(&p.permute_cols(&a));
        assert_eq!(back, a);
        let back2 = p.permute_cols_inv(&p.permute_cols(&a));
        assert_eq!(back2, a);
        let back3 = p.permute_rows(&p.permute_rows_t(&a));
        assert_eq!(back3, a);
    }

    #[test]
    fn vec_permutation() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        assert_eq!(p.permute_vec_t(&[10.0, 20.0, 30.0]), vec![30.0, 10.0, 20.0]);
    }

    #[test]
    fn displacement_counts_moved() {
        let p = Permutation::from_forward(vec![0, 2, 1, 3]);
        assert_eq!(p.displacement(), 2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicate_indices() {
        let _ = Permutation::from_forward(vec![0, 0, 1]);
    }
}
