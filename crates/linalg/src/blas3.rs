//! Level-3 matrix–matrix multiply (DGEMM analogue).
//!
//! Cache-blocked, packed GEMM in the Goto/BLIS style:
//!
//! - the k-dimension is tiled by `KC`, each slab packed once,
//! - within a slab, A is packed into `MR`-row micro-panels and B into
//!   `NR`-column micro-panels,
//! - an `MR × NR` register-tile micro-kernel runs over the packed panels,
//! - macro-tiles (`MC × NC`) are distributed over the Rayon pool.
//!
//! The micro-kernel is selected at runtime through [`crate::simd`]: an
//! AVX2+FMA 8×6 tile on capable `x86_64` hosts, the portable scalar 8×4
//! tile otherwise (`LINALG_KERNEL=scalar|fma` pins a path). Packing
//! buffers come from the [`crate::workspace`] arena, so steady-state GEMM
//! calls perform no heap allocation.
//!
//! This reproduces the property the paper's Figure 1 rests on: GEMM reaches a
//! high fraction of peak even at DQMC sizes (N ≈ 256…2048) because every
//! floating-point operation streams from packed, cache-resident buffers —
//! unlike pivoted QR, which must keep returning to level-2 norm updates.
//!
//! This module is a `dqmc-lint` hot module: heap allocation inside its
//! loops is rejected by `cargo xtask lint` unless explicitly waived.

#![cfg_attr(any(), deny_hot_alloc)]
#![warn(clippy::undocumented_unsafe_blocks)]

use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use crate::simd::{self, KernelPath};
use crate::workspace;
use rayon::prelude::*;

/// Transpose flag for a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape.
    pub(crate) fn rows(self, a: &Matrix) -> usize {
        match self {
            Op::NoTrans => a.nrows(),
            Op::Trans => a.ncols(),
        }
    }
    /// Columns of `op(A)` given the stored shape.
    pub(crate) fn cols(self, a: &Matrix) -> usize {
        match self {
            Op::NoTrans => a.ncols(),
            Op::Trans => a.nrows(),
        }
    }
}

/// Micro-kernel tile height (rows of packed A panels; shared by both paths).
pub(crate) const MR: usize = 8;
/// Cache block for the k dimension.
pub(crate) const KC: usize = 256;
/// Cache block for the m dimension (per parallel task).
pub(crate) const MC: usize = 128;
/// Cache block for the n dimension (per parallel task).
pub(crate) const NC: usize = 512;
/// Below this flop count the blocked/parallel machinery is pure overhead.
pub(crate) const SMALL_FLOPS: usize = 48 * 48 * 48;

/// General matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`. The
/// micro-kernel path is chosen once per process by [`simd::kernel_path`].
///
/// # Examples
///
/// ```
/// use linalg::{gemm, Matrix, Op};
/// let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
/// let id = Matrix::identity(2);
/// let mut c = Matrix::zeros(2, 2);
/// gemm(1.0, &a, Op::NoTrans, &id, Op::NoTrans, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
pub fn gemm(alpha: f64, a: &Matrix, opa: Op, b: &Matrix, opb: Op, beta: f64, c: &mut Matrix) {
    gemm_impl(simd::kernel_path(), alpha, a, opa, b, opb, beta, c);
    // Taint check on the output only: C is *allowed* to carry NaN garbage in
    // with beta = 0 (LAPACK semantics), so inputs are deliberately unchecked.
    crate::check_finite!(c.as_slice(), "gemm output ({}x{})", c.nrows(), c.ncols());
}

/// [`gemm`] with an explicitly pinned micro-kernel path.
///
/// Used by the kernel-equivalence tests and the `fig1` bench to compare the
/// scalar and FMA paths within one process (the env override in
/// [`simd::kernel_path`] is latched once and cannot switch mid-run). An
/// unavailable `path` silently falls back to scalar, so this is safe to call
/// with [`KernelPath::Fma`] on any host.
pub fn gemm_with_kernel(
    path: KernelPath,
    alpha: f64,
    a: &Matrix,
    opa: Op,
    b: &Matrix,
    opb: Op,
    beta: f64,
    c: &mut Matrix,
) {
    gemm_impl(path, alpha, a, opa, b, opb, beta, c);
    crate::check_finite!(c.as_slice(), "gemm output ({}x{})", c.nrows(), c.ncols());
}

fn gemm_impl(
    path: KernelPath,
    alpha: f64,
    a: &Matrix,
    opa: Op,
    b: &Matrix,
    opb: Op,
    beta: f64,
    c: &mut Matrix,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let n = opb.cols(b);
    assert_eq!(opb.rows(b), k, "gemm: inner dimensions disagree");
    assert_eq!(c.nrows(), m, "gemm: C row count");
    assert_eq!(c.ncols(), n, "gemm: C column count");

    // Apply beta once up front.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    if m * n * k <= SMALL_FLOPS {
        gemm_small(alpha, a, opa, b, opb, c);
        return;
    }

    let path = if path.available() {
        path
    } else {
        KernelPath::Scalar
    };
    match path {
        KernelPath::Scalar => gemm_blocked::<4>(false, alpha, a, opa, b, opb, c, m, n, k),
        KernelPath::Fma => gemm_blocked::<6>(true, alpha, a, opa, b, opb, c, m, n, k),
    }
}

/// The blocked path, monomorphised per micro-tile width `NR`.
///
/// `use_fma` selects the AVX2+FMA micro-kernel (callers guarantee host
/// support and `NR == 6`); otherwise the scalar register tile runs. Packing
/// buffers are leased from the thread-local workspace arena — zero heap
/// traffic once the arena is warm.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<const NR: usize>(
    use_fma: bool,
    alpha: f64,
    a: &Matrix,
    opa: Op,
    b: &Matrix,
    opb: Op,
    c: &mut Matrix,
    m: usize,
    n: usize,
    k: usize,
) {
    // The n cache block must stay a multiple of the micro-tile width so the
    // packed-panel index arithmetic holds (512 for NR=4, 510 for NR=6).
    let ncb = NC / NR * NR;
    let mut packed_a = workspace::take(padded(m, MR) * KC.min(k));
    let mut packed_b = workspace::take(KC.min(k) * padded(n, NR));

    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        pack_a_full(a, opa, pc, kc, m, &mut packed_a);
        pack_b_full::<NR>(b, opb, pc, kc, n, &mut packed_b);

        // Macro-tile grid over C.
        let mblocks = m.div_ceil(MC);
        let nblocks = n.div_ceil(ncb);
        let cdata = SendPtr(c.as_mut_slice().as_mut_ptr());
        let ldc = m;
        let pa = &packed_a;
        let pb = &packed_b;

        let tile = |t: usize| {
            let bi = t % mblocks;
            let bj = t / mblocks;
            let ic = bi * MC;
            let jc = bj * ncb;
            let mc = MC.min(m - ic);
            let nc = ncb.min(n - jc);
            // SAFETY: tasks write disjoint (ic..ic+mc) x (jc..jc+nc) tiles of C.
            let cptr = cdata;
            macro_kernel::<NR>(use_fma, alpha, pa, pb, kc, ic, jc, mc, nc, cptr.0, ldc);
        };
        if par_enabled(true) {
            (0..mblocks * nblocks).into_par_iter().for_each(tile);
        } else {
            (0..mblocks * nblocks).for_each(tile);
        }
        pc += kc;
    }

    workspace::put(packed_a);
    workspace::put(packed_b);
}

/// Raw pointer wrapper so disjoint C tiles can be written from Rayon tasks.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(pub(crate) *mut f64);
// SAFETY: SendPtr is only created in `gemm_blocked` and only dereferenced
// inside `macro_kernel`, where each Rayon task writes a tile of C disjoint
// from every other task's tile; no aliasing writes can occur.
unsafe impl Send for SendPtr {}
// SAFETY: shared references to SendPtr only copy the pointer value; all
// dereferences go through the disjoint-tile discipline above.
unsafe impl Sync for SendPtr {}

pub(crate) fn padded(x: usize, r: usize) -> usize {
    x.div_ceil(r) * r
}

/// Reads `op(A)[i, p]` for the logical (post-op) index pair.
#[inline(always)]
fn read_op(a: &Matrix, op: Op, i: usize, p: usize) -> f64 {
    // SAFETY: callers iterate within the logical bounds of op(A).
    unsafe {
        match op {
            Op::NoTrans => a.get_unchecked(i, p),
            Op::Trans => a.get_unchecked(p, i),
        }
    }
}

/// Packs all MR-row micro-panels of `op(A)[0..m, pc..pc+kc]`.
///
/// Layout: panel r0 (rows r0..r0+MR) occupies `kc*MR` consecutive values,
/// k-major: element (r0+i, pc+p) at `panel_base + p*MR + i`. Rows beyond `m`
/// are zero-padded.
pub(crate) fn pack_a_full(a: &Matrix, opa: Op, pc: usize, kc: usize, m: usize, buf: &mut [f64]) {
    let panels = m.div_ceil(MR);
    let pack_panel = |(pi, panel): (usize, &mut [f64])| {
        let r0 = pi * MR;
        let rows = MR.min(m - r0);
        for p in 0..kc {
            let dst = &mut panel[p * MR..(p + 1) * MR];
            for i in 0..rows {
                dst[i] = read_op(a, opa, r0 + i, pc + p);
            }
            for d in dst.iter_mut().take(MR).skip(rows) {
                *d = 0.0;
            }
        }
    };
    let buf = &mut buf[..panels * kc * MR];
    if par_enabled(true) {
        buf.par_chunks_mut(kc * MR).enumerate().for_each(pack_panel);
    } else {
        buf.chunks_mut(kc * MR).enumerate().for_each(pack_panel);
    }
}

/// Packs all NR-column micro-panels of `op(B)[pc..pc+kc, 0..n]`.
///
/// Layout: panel c0 occupies `kc*NR` consecutive values, k-major: element
/// (pc+p, c0+j) at `panel_base + p*NR + j`. Columns beyond `n` are zero-padded.
pub(crate) fn pack_b_full<const NR: usize>(
    b: &Matrix,
    opb: Op,
    pc: usize,
    kc: usize,
    n: usize,
    buf: &mut [f64],
) {
    let panels = n.div_ceil(NR);
    let pack_panel = |(pi, panel): (usize, &mut [f64])| {
        let c0 = pi * NR;
        let cols = NR.min(n - c0);
        for p in 0..kc {
            let dst = &mut panel[p * NR..(p + 1) * NR];
            for j in 0..cols {
                dst[j] = read_op(b, opb, pc + p, c0 + j);
            }
            for d in dst.iter_mut().take(NR).skip(cols) {
                *d = 0.0;
            }
        }
    };
    let buf = &mut buf[..panels * kc * NR];
    if par_enabled(true) {
        buf.par_chunks_mut(kc * NR).enumerate().for_each(pack_panel);
    } else {
        buf.chunks_mut(kc * NR).enumerate().for_each(pack_panel);
    }
}

/// Computes one MC×NC macro-tile of C from packed panels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn macro_kernel<const NR: usize>(
    use_fma: bool,
    alpha: f64,
    packed_a: &[f64],
    packed_b: &[f64],
    kc: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    cptr: *mut f64,
    ldc: usize,
) {
    debug_assert_eq!(ic % MR, 0);
    debug_assert_eq!(jc % NR, 0);
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bpanel = &packed_b[(jc + jr) / NR * (kc * NR)..][..kc * NR];
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let apanel = &packed_a[(ic + ir) / MR * (kc * MR)..][..kc * MR];
            let mut acc = [[0.0f64; MR]; NR];
            run_micro::<NR>(use_fma, kc, apanel, bpanel, &mut acc);
            // Accumulate into C (bounds-clipped tile edges).
            for (j, accj) in acc.iter().enumerate().take(nr) {
                let cj = jc + jr + j;
                for (i, &v) in accj.iter().enumerate().take(mr) {
                    let ci = ic + ir + i;
                    // SAFETY: ci < m, cj < n by construction; tiles disjoint
                    // across tasks.
                    unsafe {
                        *cptr.add(cj * ldc + ci) += alpha * v;
                    }
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// Dispatches one register tile to the selected micro-kernel.
#[inline(always)]
fn run_micro<const NR: usize>(
    use_fma: bool,
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    acc: &mut [[f64; MR]; NR],
) {
    #[cfg(target_arch = "x86_64")]
    if use_fma && NR == 6 {
        // SAFETY: `use_fma` is only set by `gemm_impl` after
        // `KernelPath::Fma.available()` confirmed avx2+fma; panels hold
        // kc*MR / kc*NR elements and `acc` is a contiguous 8×6 tile.
        unsafe {
            simd::micro_kernel_fma_8x6(kc, apanel, bpanel, acc.as_mut_ptr().cast::<f64>());
        }
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_fma;
    micro_kernel::<NR>(kc, apanel, bpanel, acc);
}

/// Scalar register-tile kernel:
/// `acc[j][i] += Σ_p apanel[p*MR+i] * bpanel[p*NR+j]`.
#[inline(always)]
fn micro_kernel<const NR: usize>(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    acc: &mut [[f64; MR]; NR],
) {
    for p in 0..kc {
        // SAFETY: callers pass panels of exactly kc*MR and kc*NR elements,
        // so both ranges are in bounds for every p < kc.
        let (a, b) = unsafe {
            (
                apanel.get_unchecked(p * MR..(p + 1) * MR),
                bpanel.get_unchecked(p * NR..(p + 1) * NR),
            )
        };
        for j in 0..NR {
            let bj = b[j];
            let accj = &mut acc[j];
            for i in 0..MR {
                accj[i] += a[i] * bj;
            }
        }
    }
}

/// Serial path for small products: column-major friendly j-p-i loops.
pub(crate) fn gemm_small(alpha: f64, a: &Matrix, opa: Op, b: &Matrix, opb: Op, c: &mut Matrix) {
    let m = c.nrows();
    let n = c.ncols();
    let k = opa.cols(a);
    match (opa, opb) {
        (Op::NoTrans, _) => {
            for j in 0..n {
                for p in 0..k {
                    let bpj = alpha * read_op(b, opb, p, j);
                    if bpj != 0.0 {
                        let acol = a.col(p);
                        let ccol = c.col_mut(j);
                        for i in 0..m {
                            ccol[i] += bpj * acol[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::NoTrans) => {
            // C[i,j] += alpha * dot(A[:,i], B[:,j])
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let s = crate::blas1::dot(a.col(i), bcol);
                    c[(i, j)] += alpha * s;
                }
            }
        }
        (Op::Trans, Op::Trans) => {
            for j in 0..n {
                for i in 0..m {
                    let mut s = 0.0;
                    let acol = a.col(i);
                    for p in 0..k {
                        s += acol[p] * read_op(b, Op::Trans, p, j);
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
}

/// Reference triple-loop GEMM for correctness tests.
// dqmc-lint: allow(unchecked_kernel) — test oracle; checking it would mask
// the very taint the checked `gemm` is supposed to attribute.
pub fn gemm_naive(alpha: f64, a: &Matrix, opa: Op, b: &Matrix, opb: Op, beta: f64, c: &mut Matrix) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let n = opb.cols(b);
    assert_eq!(opb.rows(b), k);
    assert_eq!(c.nrows(), m);
    assert_eq!(c.ncols(), n);
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..k {
                s += read_op(a, opa, i, p) * read_op(b, opb, p, j);
            }
            let old = c[(i, j)];
            c[(i, j)] = alpha * s + if beta == 0.0 { 0.0 } else { beta * old };
        }
    }
}

/// Convenience: allocate and return `op(A) * op(B)`.
// dqmc-lint: allow(unchecked_kernel) — delegates to `gemm`, which checks.
pub fn matmul(a: &Matrix, opa: Op, b: &Matrix, opb: Op) -> Matrix {
    let mut c = Matrix::zeros(opa.rows(a), opb.cols(b));
    gemm(1.0, a, opa, b, opb, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use util::Rng;

    fn check_against_naive(m: usize, n: usize, k: usize, opa: Op, opb: Op, seed: u64) {
        let mut rng = Rng::new(seed);
        let (ar, ac) = match opa {
            Op::NoTrans => (m, k),
            Op::Trans => (k, m),
        };
        let (br, bc) = match opb {
            Op::NoTrans => (k, n),
            Op::Trans => (n, k),
        };
        let a = Matrix::random(ar, ac, &mut rng);
        let b = Matrix::random(br, bc, &mut rng);
        let c0 = Matrix::random(m, n, &mut rng);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(1.7, &a, opa, &b, opb, 0.3, &mut c1);
        gemm_naive(1.7, &a, opa, &b, opb, 0.3, &mut c2);
        let scale = c2.max_abs().max(1.0);
        assert!(
            c1.max_abs_diff(&c2) / scale < 1e-12 * k.max(4) as f64,
            "mismatch m={m} n={n} k={k} {opa:?} {opb:?}: {}",
            c1.max_abs_diff(&c2)
        );
    }

    #[test]
    fn all_op_combinations_small() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (8, 4, 16), (13, 9, 11)] {
            for &opa in &[Op::NoTrans, Op::Trans] {
                for &opb in &[Op::NoTrans, Op::Trans] {
                    check_against_naive(m, n, k, opa, opb, 42 + m as u64);
                }
            }
        }
    }

    #[test]
    fn blocked_path_exercised() {
        // Sizes beyond SMALL_FLOPS and beyond one KC/MC/NC block, with
        // non-multiple-of-tile edges.
        for &(m, n, k) in &[(130, 70, 300), (257, 513, 100), (64, 64, 600)] {
            for &opa in &[Op::NoTrans, Op::Trans] {
                for &opb in &[Op::NoTrans, Op::Trans] {
                    check_against_naive(m, n, k, opa, opb, 7);
                }
            }
        }
    }

    #[test]
    fn pinned_paths_match_naive_on_blocked_sizes() {
        // Both explicit kernel paths, on a size past SMALL_FLOPS with odd
        // tile edges (61 % 8 ≠ 0, 53 % 4 ≠ 0, 53 % 6 ≠ 0).
        let (m, n, k) = (61, 53, 67);
        let mut rng = Rng::new(11);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        for path in [KernelPath::Scalar, KernelPath::Fma] {
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm_with_kernel(path, 1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c1);
            gemm_naive(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c2);
            assert!(
                c1.max_abs_diff(&c2) < 1e-12 * k as f64,
                "path {:?}: {}",
                path,
                c1.max_abs_diff(&c2)
            );
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C (LAPACK semantics).
        let a = Matrix::identity(2);
        let mut c = Matrix::from_col_major(2, 2, vec![f64::NAN; 4]);
        gemm(1.0, &a, Op::NoTrans, &a, Op::NoTrans, 0.0, &mut c);
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn alpha_zero_scales_only() {
        let a = Matrix::identity(3);
        let mut c = Matrix::identity(3);
        gemm(0.0, &a, Op::NoTrans, &a, Op::NoTrans, 2.0, &mut c);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 0.0);
    }

    #[test]
    fn identity_product() {
        let mut rng = Rng::new(1);
        let a = Matrix::random(50, 50, &mut rng);
        let id = Matrix::identity(50);
        let c = matmul(&a, Op::NoTrans, &id, Op::NoTrans);
        assert!(c.max_abs_diff(&a) < 1e-14);
        let c = matmul(&id, Op::NoTrans, &a, Op::NoTrans);
        assert!(c.max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn associativity_sanity() {
        let mut rng = Rng::new(2);
        let a = Matrix::random(40, 30, &mut rng);
        let b = Matrix::random(30, 20, &mut rng);
        let x = Matrix::random(20, 1, &mut rng);
        let ab = matmul(&a, Op::NoTrans, &b, Op::NoTrans);
        let abx1 = matmul(&ab, Op::NoTrans, &x, Op::NoTrans);
        let bx = matmul(&b, Op::NoTrans, &x, Op::NoTrans);
        let abx2 = matmul(&a, Op::NoTrans, &bx, Op::NoTrans);
        assert!(abx1.max_abs_diff(&abx2) < 1e-12);
    }

    #[test]
    fn transpose_identity_ataa() {
        // (A^T A) is symmetric.
        let mut rng = Rng::new(3);
        let a = Matrix::random(60, 40, &mut rng);
        let ata = matmul(&a, Op::Trans, &a, Op::NoTrans);
        let diff = ata.max_abs_diff(&ata.transpose());
        assert!(diff < 1e-12);
    }

    #[test]
    fn empty_dimensions() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(2, 3, |_, _| 5.0);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
        assert_eq!(c.max_abs(), 0.0, "k=0 with beta=0 must zero C");
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
    }
}
