//! Singular value decomposition via one-sided Jacobi (the high-relative-
//! accuracy method of Drmač & Veselić cited by the paper's §IV).
//!
//! DQMC needs singular values for *analysis*, not for the hot path: the
//! graded diagonal `D` of the stratified decomposition already estimates
//! them, and this module provides the independent, provably accurate
//! reference — one-sided Jacobi computes even the tiniest singular values
//! of strongly graded matrices to high *relative* accuracy, which
//! bidiagonalisation-based SVDs cannot.

use crate::blas1;
use crate::matrix::Matrix;
use crate::{Error, Result};

/// Maximum sweeps before declaring failure.
const MAX_SWEEPS: usize = 60;

/// Thin SVD `A = U · diag(s) · Vᵀ` of an `m × n` matrix with `m ≥ n`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m × n`, orthonormal columns).
    pub u: Matrix,
    /// Singular values, descending, non-negative.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × n`, orthogonal).
    pub v: Matrix,
}

/// Computes the thin SVD by one-sided Jacobi rotations on the columns.
///
/// Requires `m ≥ n` (transpose first otherwise). Returns
/// [`Error::NoConvergence`] only if the orthogonalisation stalls (not
/// observed for finite inputs).
pub fn svd(a: &Matrix) -> Result<Svd> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "svd: need m ≥ n (transpose the input)");
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    // One-sided Jacobi: orthogonalise column pairs of U, accumulating V.
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (app, aqq, apq) = {
                    let cp = u.col(p);
                    let cq = u.col(q);
                    (blas1::dot(cp, cp), blas1::dot(cq, cq), blas1::dot(cp, cq))
                };
                if apq == 0.0 {
                    continue;
                }
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                // Stop rotating pairs that are numerically orthogonal
                // (relative criterion — the key to graded accuracy).
                if apq.abs() <= 1e-16 * denom {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = if zeta >= 0.0 {
                    1.0 / (zeta + (1.0 + zeta * zeta).sqrt())
                } else {
                    -1.0 / (-zeta + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut u, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
        if off < 1e-15 {
            converged = true;
            break;
        }
    }
    if !converged {
        // Final check with a tighter criterion; graded matrices may need it.
        let mut worst = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let cp = u.col(p);
                let cq = u.col(q);
                let denom = (blas1::dot(cp, cp) * blas1::dot(cq, cq)).sqrt();
                if denom > 0.0 {
                    worst = worst.max(blas1::dot(cp, cq).abs() / denom);
                }
            }
        }
        if worst > 1e-10 {
            return Err(Error::NoConvergence);
        }
    }

    // Extract singular values as column norms; normalise U's columns.
    let s: Vec<f64> = (0..n).map(|j| blas1::nrm2(u.col(j))).collect();
    for j in 0..n {
        if s[j] > 0.0 {
            blas1::scal(1.0 / s[j], u.col_mut(j));
        }
    }
    // Sort descending, permuting U and V along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| s[j].partial_cmp(&s[i]).expect("NaN singular value"));
    let mut us = Matrix::zeros(m, n);
    let mut vs = Matrix::zeros(n, n);
    let mut ss = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        us.col_mut(dst).copy_from_slice(u.col(src));
        vs.col_mut(dst).copy_from_slice(v.col(src));
        ss[dst] = s[src];
    }
    Ok(Svd {
        u: us,
        s: ss,
        v: vs,
    })
}

fn rotate_cols(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let (cp, cq) = m.two_cols_mut(p, q);
    for i in 0..cp.len() {
        let (a, b) = (cp[i], cq[i]);
        cp[i] = c * a - s * b;
        cq[i] = s * a + c * b;
    }
}

/// Spectral condition number `σ_max / σ_min` (∞ for singular input).
pub fn condition_number(a: &Matrix) -> Result<f64> {
    let work = if a.nrows() >= a.ncols() {
        a.clone()
    } else {
        a.transpose()
    };
    let d = svd(&work)?;
    let smin = *d.s.last().expect("non-empty");
    Ok(if smin == 0.0 {
        f64::INFINITY
    } else {
        d.s[0] / smin
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{matmul, Op};
    use util::Rng;

    fn check_svd(a: &Matrix, d: &Svd, tol: f64) {
        let n = a.ncols();
        // Reconstruction A = U S Vᵀ.
        let mut usv = d.u.clone();
        crate::scale::col_scale(&d.s, &mut usv);
        let rec = matmul(&usv, Op::NoTrans, &d.v, Op::Trans);
        assert!(
            rec.max_abs_diff(a) <= tol * a.max_abs().max(1e-300),
            "reconstruction"
        );
        // Orthonormality.
        let utu = matmul(&d.u, Op::Trans, &d.u, Op::NoTrans);
        assert!(utu.max_abs_diff(&Matrix::identity(n)) < 1e-11);
        let vtv = matmul(&d.v, Op::Trans, &d.v, Op::NoTrans);
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-11);
        // Ordering and positivity.
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-13);
        assert!((d.s[1] - 2.0).abs() < 1e-13);
        assert!((d.s[2] - 1.0).abs() < 1e-13);
        check_svd(&a, &d, 1e-12);
    }

    #[test]
    fn random_square_and_tall() {
        let mut rng = Rng::new(1);
        for &(m, n) in &[(8usize, 8usize), (12, 7), (20, 20)] {
            let a = Matrix::random(m, n, &mut rng);
            let d = svd(&a).unwrap();
            check_svd(&a, &d, 1e-11);
        }
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let mut rng = Rng::new(2);
        let a = Matrix::random(10, 10, &mut rng);
        let d = svd(&a).unwrap();
        let ata = matmul(&a, Op::Trans, &a, Op::NoTrans);
        let e = crate::eig::sym_eig(&ata).unwrap();
        for (i, &s) in d.s.iter().enumerate() {
            let lam = e.values[9 - i].max(0.0);
            assert!(
                (s * s - lam).abs() < 1e-9 * lam.max(1.0),
                "{} vs {}",
                s * s,
                lam
            );
        }
    }

    #[test]
    fn graded_matrix_relative_accuracy() {
        // Columns scaled over 24 orders of magnitude: one-sided Jacobi must
        // recover each singular value to high relative accuracy.
        let scales = [1e12, 1e6, 1.0, 1e-6, 1e-12];
        let mut rng = Rng::new(3);
        // Orthogonal-ish base times diagonal: singular values ≈ scales.
        let base = Matrix::random(5, 5, &mut rng);
        let q = crate::qr::qr_in_place(base).form_q();
        let mut a = q.clone();
        crate::scale::col_scale(&scales, &mut a);
        let d = svd(&a).unwrap();
        for (s, want) in d.s.iter().zip(scales.iter()) {
            assert!(
                (s - want).abs() < 1e-10 * want,
                "relative accuracy lost: {s} vs {want}"
            );
        }
    }

    #[test]
    fn rank_deficient_matrix() {
        let mut rng = Rng::new(4);
        let u = Matrix::random(8, 2, &mut rng);
        let v = Matrix::random(8, 2, &mut rng);
        let a = matmul(&u, Op::NoTrans, &v, Op::Trans);
        let d = svd(&a).unwrap();
        check_svd(&a, &d, 1e-11);
        assert!(d.s[1] > 1e-10);
        for &s in &d.s[2..] {
            assert!(s < 1e-10, "rank-2 matrix: trailing σ = {s}");
        }
    }

    #[test]
    fn condition_number_of_known_matrix() {
        let a = Matrix::from_diag(&[100.0, 1.0, 0.01]);
        let c = condition_number(&a).unwrap();
        assert!((c - 1e4).abs() < 1e-6 * 1e4);
        let id = Matrix::identity(6);
        assert!((condition_number(&id).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_number_handles_wide_matrices() {
        let mut rng = Rng::new(5);
        let a = Matrix::random(4, 9, &mut rng);
        let c1 = condition_number(&a).unwrap();
        let c2 = condition_number(&a.transpose()).unwrap();
        assert!((c1 - c2).abs() < 1e-8 * c1);
    }

    #[test]
    fn zero_matrix_condition_is_infinite() {
        let a = Matrix::zeros(3, 3);
        assert!(condition_number(&a).unwrap().is_infinite());
    }
}
