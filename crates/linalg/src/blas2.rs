//! Level-2 matrix–vector kernels (dgemv / dger analogues).
//!
//! The delayed-update machinery of the DQMC sweep (§II-B of the paper) is
//! built on exactly these: computing one row and one column of the implicitly
//! updated Green's function costs two `gemv`-like products, and flushing the
//! accumulated updates is a `gemm` in [`crate::blas3`].

use crate::matrix::Matrix;

/// `y = alpha * A * x + beta * y`.
pub fn gemv(alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv: A.ncols != x.len");
    assert_eq!(a.nrows(), y.len(), "gemv: A.nrows != y.len");
    if beta != 1.0 {
        if beta == 0.0 {
            y.fill(0.0);
        } else {
            for yi in y.iter_mut() {
                *yi *= beta;
            }
        }
    }
    // Column-major: accumulate columns scaled by x[j] (sequential-stride reads).
    for j in 0..a.ncols() {
        let axj = alpha * x[j];
        if axj != 0.0 {
            let col = a.col(j);
            for i in 0..y.len() {
                y[i] += axj * col[i];
            }
        }
    }
}

/// `y = alpha * Aᵀ * x + beta * y`.
pub fn gemv_t(alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.nrows(), x.len(), "gemv_t: A.nrows != x.len");
    assert_eq!(a.ncols(), y.len(), "gemv_t: A.ncols != y.len");
    for (j, yj) in y.iter_mut().enumerate() {
        let s = crate::blas1::dot(a.col(j), x);
        *yj = alpha * s + if beta == 0.0 { 0.0 } else { beta * *yj };
    }
}

/// Rank-1 update `A += alpha * x * yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.nrows(), x.len(), "ger: A.nrows != x.len");
    assert_eq!(a.ncols(), y.len(), "ger: A.ncols != y.len");
    for j in 0..a.ncols() {
        let ayj = alpha * y[j];
        if ayj != 0.0 {
            let col = a.col_mut(j);
            for i in 0..x.len() {
                col[i] += ayj * x[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        // [1 2; 3 4; 5 6]
        Matrix::from_col_major(3, 2, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0])
    }

    #[test]
    fn gemv_known() {
        let a = small();
        let mut y = vec![1.0, 1.0, 1.0];
        gemv(1.0, &a, &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn gemv_beta_accumulate() {
        let a = small();
        let mut y = vec![100.0, 100.0, 100.0];
        gemv(2.0, &a, &[1.0, 0.0], 0.5, &mut y);
        assert_eq!(y, vec![52.0, 56.0, 60.0]);
    }

    #[test]
    fn gemv_t_known() {
        let a = small();
        let mut y = vec![0.0, 0.0];
        gemv_t(1.0, &a, &[1.0, 1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn gemv_t_matches_explicit_transpose() {
        let mut rng = util::Rng::new(5);
        let a = Matrix::random(6, 4, &mut rng);
        let x: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.5; 4];
        let mut y2 = y1.clone();
        gemv_t(1.3, &a, &x, 0.7, &mut y1);
        gemv(1.3, &a.transpose(), &x, 0.7, &mut y2);
        for (u, v) in y1.iter().zip(y2.iter()) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn ger_known() {
        let mut a = Matrix::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], &mut a);
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 0)], 12.0);
        assert_eq!(a[(0, 1)], 8.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn ger_zero_alpha_noop() {
        let mut a = Matrix::identity(2);
        let b = a.clone();
        ger(0.0, &[1.0, 1.0], &[1.0, 1.0], &mut a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "gemv")]
    fn gemv_shape_mismatch() {
        let a = small();
        let mut y = vec![0.0; 3];
        gemv(1.0, &a, &[1.0; 3], 0.0, &mut y);
    }
}
