//! Runtime-dispatched SIMD micro-kernels for the GEMM register tile.
//!
//! The paper's performance argument (Figure 1, Table I) rests on DGEMM
//! reaching a high fraction of machine peak; MKL gets there with
//! ISA-specific micro-kernels selected at runtime. This module reproduces
//! that structure for the blocked GEMM in [`crate::blas3`]:
//!
//! - an **AVX2 + FMA** micro-kernel (`x86_64` only) computing an 8 × 6
//!   register tile — 12 accumulator `ymm` registers, two A loads and six
//!   broadcast-FMA pairs per k step,
//! - the portable **scalar** 8 × 4 kernel in `blas3` as the fallback,
//! - a one-time [`KernelPath`] selection (`is_x86_feature_detected!`) cached
//!   in a `OnceLock`, overridable with `LINALG_KERNEL=scalar|fma` so tests
//!   and benches can pin a path.
//!
//! Numerics: the FMA kernel fuses each multiply-add (one rounding instead of
//! two), so its results differ from the scalar path by at most ~1 ulp per
//! accumulation step. The scalar path is untouched by dispatch and remains
//! bit-identical to the pre-SIMD implementation — the kernel-equivalence
//! tests in `tests/kernel_paths.rs` pin both properties.

use std::sync::OnceLock;

/// Which GEMM micro-kernel the blocked path uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar 8×4 register tile (bit-identical to the pre-SIMD
    /// implementation; always available).
    Scalar,
    /// AVX2+FMA 8×6 register tile (`x86_64` with avx2+fma only).
    Fma,
}

impl KernelPath {
    /// Micro-tile width (columns of packed B panels) for this path.
    pub fn nr(self) -> usize {
        match self {
            KernelPath::Scalar => 4,
            KernelPath::Fma => 6,
        }
    }

    /// Stable name used by `LINALG_KERNEL` and the bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Fma => "fma",
        }
    }

    /// Whether this path can run on the current host.
    pub fn available(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            KernelPath::Fma => fma_detected(),
        }
    }
}

/// True when the host supports the AVX2+FMA kernel.
#[cfg(target_arch = "x86_64")]
fn fma_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Non-x86_64 hosts never support the FMA kernel.
#[cfg(not(target_arch = "x86_64"))]
fn fma_detected() -> bool {
    false
}

static DISPATCH: OnceLock<KernelPath> = OnceLock::new();

/// The process-wide kernel path: `LINALG_KERNEL` override when set (an
/// unavailable or unrecognised request falls back to scalar with a warning),
/// otherwise the fastest detected path. Computed once and cached.
pub fn kernel_path() -> KernelPath {
    *DISPATCH.get_or_init(select_kernel_path)
}

/// Uncached selection logic behind [`kernel_path`] (unit-testable).
fn select_kernel_path() -> KernelPath {
    match std::env::var("LINALG_KERNEL") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" => KernelPath::Scalar,
            "fma" => {
                if KernelPath::Fma.available() {
                    KernelPath::Fma
                } else {
                    eprintln!(
                        "linalg: LINALG_KERNEL=fma requested but avx2+fma not \
                         detected; using scalar"
                    );
                    KernelPath::Scalar
                }
            }
            other => {
                eprintln!("linalg: unknown LINALG_KERNEL value {other:?}; using auto-detection");
                detect()
            }
        },
        Err(_) => detect(),
    }
}

/// Fastest kernel path the host supports (no env override, no cache).
pub fn detect() -> KernelPath {
    if KernelPath::Fma.available() {
        KernelPath::Fma
    } else {
        KernelPath::Scalar
    }
}

/// AVX2+FMA micro-kernel: an 8×6 register tile over packed panels.
///
/// `apanel` holds `kc` steps of 8 A values (k-major), `bpanel` holds `kc`
/// steps of 6 B values. `acc` points to a zero-initialised column-major
/// 8×6 tile (`acc[j*8 + i]`), which receives
/// `acc[j][i] = Σ_p apanel[p*8+i] · bpanel[p*6+j]`.
///
/// Register budget: 12 accumulators + 2 A vectors + 1 B broadcast = 15 of
/// the 16 `ymm` registers — the classic BLIS-style occupancy.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2 and FMA (checked by
/// [`KernelPath::available`]), `apanel.len() ≥ kc*8`, `bpanel.len() ≥ kc*6`,
/// and `acc` is valid for 48 writes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn micro_kernel_fma_8x6(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    acc: *mut f64,
) {
    use std::arch::x86_64::*;
    debug_assert!(apanel.len() >= kc * 8);
    debug_assert!(bpanel.len() >= kc * 6);

    let mut c00 = _mm256_setzero_pd();
    let mut c01 = _mm256_setzero_pd();
    let mut c10 = _mm256_setzero_pd();
    let mut c11 = _mm256_setzero_pd();
    let mut c20 = _mm256_setzero_pd();
    let mut c21 = _mm256_setzero_pd();
    let mut c30 = _mm256_setzero_pd();
    let mut c31 = _mm256_setzero_pd();
    let mut c40 = _mm256_setzero_pd();
    let mut c41 = _mm256_setzero_pd();
    let mut c50 = _mm256_setzero_pd();
    let mut c51 = _mm256_setzero_pd();

    let mut ap = apanel.as_ptr();
    let mut bp = bpanel.as_ptr();
    for _ in 0..kc {
        let a0 = _mm256_loadu_pd(ap);
        let a1 = _mm256_loadu_pd(ap.add(4));

        let b0 = _mm256_broadcast_sd(&*bp);
        c00 = _mm256_fmadd_pd(a0, b0, c00);
        c01 = _mm256_fmadd_pd(a1, b0, c01);
        let b1 = _mm256_broadcast_sd(&*bp.add(1));
        c10 = _mm256_fmadd_pd(a0, b1, c10);
        c11 = _mm256_fmadd_pd(a1, b1, c11);
        let b2 = _mm256_broadcast_sd(&*bp.add(2));
        c20 = _mm256_fmadd_pd(a0, b2, c20);
        c21 = _mm256_fmadd_pd(a1, b2, c21);
        let b3 = _mm256_broadcast_sd(&*bp.add(3));
        c30 = _mm256_fmadd_pd(a0, b3, c30);
        c31 = _mm256_fmadd_pd(a1, b3, c31);
        let b4 = _mm256_broadcast_sd(&*bp.add(4));
        c40 = _mm256_fmadd_pd(a0, b4, c40);
        c41 = _mm256_fmadd_pd(a1, b4, c41);
        let b5 = _mm256_broadcast_sd(&*bp.add(5));
        c50 = _mm256_fmadd_pd(a0, b5, c50);
        c51 = _mm256_fmadd_pd(a1, b5, c51);

        ap = ap.add(8);
        bp = bp.add(6);
    }

    _mm256_storeu_pd(acc, c00);
    _mm256_storeu_pd(acc.add(4), c01);
    _mm256_storeu_pd(acc.add(8), c10);
    _mm256_storeu_pd(acc.add(12), c11);
    _mm256_storeu_pd(acc.add(16), c20);
    _mm256_storeu_pd(acc.add(20), c21);
    _mm256_storeu_pd(acc.add(24), c30);
    _mm256_storeu_pd(acc.add(28), c31);
    _mm256_storeu_pd(acc.add(32), c40);
    _mm256_storeu_pd(acc.add(36), c41);
    _mm256_storeu_pd(acc.add(40), c50);
    _mm256_storeu_pd(acc.add(44), c51);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(KernelPath::Scalar.available());
    }

    #[test]
    fn nr_matches_paths() {
        assert_eq!(KernelPath::Scalar.nr(), 4);
        assert_eq!(KernelPath::Fma.nr(), 6);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Fma.name(), "fma");
    }

    #[test]
    fn detect_returns_available_path() {
        assert!(detect().available());
    }

    #[test]
    fn kernel_path_is_stable() {
        // Cached: two reads agree.
        assert_eq!(kernel_path(), kernel_path());
        assert!(kernel_path().available());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn fma_tile_matches_scalar_reference() {
        if !KernelPath::Fma.available() {
            eprintln!("skipping: host lacks avx2+fma");
            return;
        }
        let kc = 37;
        let apanel: Vec<f64> = (0..kc * 8).map(|i| (i as f64 * 0.37).sin()).collect();
        let bpanel: Vec<f64> = (0..kc * 6).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut acc = [0.0f64; 48];
        // SAFETY: availability checked above; panel lengths are kc*8 and
        // kc*6; acc holds 48 elements.
        unsafe { micro_kernel_fma_8x6(kc, &apanel, &bpanel, acc.as_mut_ptr()) };
        for j in 0..6 {
            for i in 0..8 {
                let mut s = 0.0;
                for p in 0..kc {
                    s += apanel[p * 8 + i] * bpanel[p * 6 + j];
                }
                let got = acc[j * 8 + i];
                assert!(
                    (got - s).abs() <= 1e-14 * s.abs().max(1.0),
                    "({i},{j}): {got} vs {s}"
                );
            }
        }
    }
}
