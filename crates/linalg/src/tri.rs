//! Triangular multiply and solve kernels (DTRMM / DTRSM analogues).
//!
//! The stratification T-matrix update `T_i = (D_i⁻¹ R_i)(P_iᵀ T_{i−1})` is an
//! upper-triangular times dense product, and the final Green's-function
//! assembly solves a dense system via LU, whose forward/back substitutions
//! live here. Right-hand-side columns are independent, so the solves
//! parallelise over the Rayon pool.
//!
//! This module is tagged `deny_hot_alloc`: `cargo xtask lint` rejects heap
//! allocation in its non-test code unless a pragma justifies it.
#![cfg_attr(any(), deny_hot_alloc)]

use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use rayon::prelude::*;

/// Minimum RHS-columns × order before parallel dispatch pays off.
const PAR_THRESHOLD: usize = 64 * 64;

/// `B := L⁻¹ B` with `L` unit lower triangular (strictly-lower part of `a`
/// is used; the diagonal is taken as 1). Forward substitution.
pub fn trsm_lower_unit(a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    assert!(a.is_square(), "trsm: L must be square");
    assert_eq!(b.nrows(), n, "trsm: B row mismatch");
    let solve_col = |col: &mut [f64]| {
        for i in 0..n {
            let xi = col[i];
            if xi != 0.0 {
                let acol = a.col(i);
                for r in (i + 1)..n {
                    col[r] -= acol[r] * xi;
                }
            }
        }
    };
    run_cols(b, n, solve_col);
    crate::check_finite!(b.as_slice(), "trsm_lower_unit output ({n}x{})", b.ncols());
}

/// `B := U⁻¹ B` with `U` upper triangular (upper part of `a` including the
/// diagonal). Back substitution. Panics on a zero diagonal.
pub fn trsm_upper(a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    assert!(a.is_square(), "trsm: U must be square");
    assert_eq!(b.nrows(), n, "trsm: B row mismatch");
    let solve_col = |col: &mut [f64]| {
        for i in (0..n).rev() {
            let d = a[(i, i)];
            assert!(d != 0.0, "trsm_upper: zero diagonal at {i}");
            let xi = col[i] / d;
            col[i] = xi;
            if xi != 0.0 {
                let acol = a.col(i);
                for r in 0..i {
                    col[r] -= acol[r] * xi;
                }
            }
        }
    };
    run_cols(b, n, solve_col);
    crate::check_finite!(b.as_slice(), "trsm_upper output ({n}x{})", b.ncols());
}

/// `B := U B` with `U` upper triangular (upper part of `a` incl. diagonal).
pub fn trmm_upper(a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    assert!(a.is_square(), "trmm: U must be square");
    assert_eq!(b.nrows(), n, "trmm: B row mismatch");
    let mul_col = |col: &mut [f64]| {
        // In-place top-down: row i of the result only needs rows ≥ i of B.
        for i in 0..n {
            let mut s = a[(i, i)] * col[i];
            for p in (i + 1)..n {
                s += a[(i, p)] * col[p];
            }
            col[i] = s;
        }
    };
    run_cols(b, n, mul_col);
    crate::check_finite!(b.as_slice(), "trmm_upper output ({n}x{})", b.ncols());
}

/// `B := Uᵀ B` with `U` upper triangular (so `Uᵀ` is lower triangular).
pub fn trmm_upper_t(a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    assert!(a.is_square(), "trmm: U must be square");
    assert_eq!(b.nrows(), n, "trmm: B row mismatch");
    let mul_col = |col: &mut [f64]| {
        // Row i of Uᵀ has entries U[p, i] for p ≤ i; go bottom-up.
        for i in (0..n).rev() {
            let acol = a.col(i);
            let mut s = 0.0;
            for (p, &apv) in acol.iter().enumerate().take(i + 1) {
                s += apv * col[p];
            }
            col[i] = s;
        }
    };
    run_cols(b, n, mul_col);
    crate::check_finite!(b.as_slice(), "trmm_upper_t output ({n}x{})", b.ncols());
}

/// Runs a per-column kernel serially or in parallel depending on size.
fn run_cols(b: &mut Matrix, n: usize, f: impl Fn(&mut [f64]) + Sync) {
    let ncols = b.ncols();
    if par_enabled(n * ncols >= PAR_THRESHOLD && ncols > 1) {
        b.as_mut_slice().par_chunks_mut(n).for_each(&f);
    } else {
        for j in 0..ncols {
            f(b.col_mut(j));
        }
    }
}

/// Inverse of an upper-triangular matrix (used by tests and the recycling
/// consistency checks). Panics on zero diagonal.
// dqmc-lint: allow(unchecked_kernel) -- delegates to trsm_upper, which checks.
pub fn upper_inverse(a: &Matrix) -> Matrix {
    let n = a.nrows();
    assert!(a.is_square());
    let mut inv = Matrix::identity(n);
    trsm_upper(a, &mut inv);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm_naive, matmul, Op};
    use util::Rng;

    fn random_upper(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(n, n, |i, j| {
            if i < j {
                2.0 * rng.next_f64() - 1.0
            } else if i == j {
                1.0 + rng.next_f64() // well away from zero
            } else {
                0.0
            }
        })
    }

    fn random_unit_lower(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::from_fn(n, n, |i, j| {
            if i > j {
                2.0 * rng.next_f64() - 1.0
            } else if i == j {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn lower_unit_solve_round_trip() {
        for &n in &[1usize, 5, 20, 70] {
            let l = random_unit_lower(n, n as u64);
            let mut rng = Rng::new(77);
            let x = Matrix::random(n, 3, &mut rng);
            let b = matmul(&l, Op::NoTrans, &x, Op::NoTrans);
            let mut sol = b.clone();
            trsm_lower_unit(&l, &mut sol);
            assert!(sol.max_abs_diff(&x) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn lower_unit_ignores_diagonal_values() {
        // The stored diagonal should be treated as 1 regardless of content.
        let mut l = random_unit_lower(8, 3);
        let mut rng = Rng::new(5);
        let x = Matrix::random(8, 2, &mut rng);
        let b = matmul(&l, Op::NoTrans, &x, Op::NoTrans);
        for i in 0..8 {
            l[(i, i)] = 99.0; // garbage that must be ignored
        }
        let mut sol = b.clone();
        trsm_lower_unit(&l, &mut sol);
        assert!(sol.max_abs_diff(&x) < 1e-12);
    }

    #[test]
    fn upper_solve_round_trip() {
        for &n in &[1usize, 4, 17, 64, 90] {
            let u = random_upper(n, 10 + n as u64);
            let mut rng = Rng::new(88);
            let x = Matrix::random(n, 5, &mut rng);
            let b = matmul(&u, Op::NoTrans, &x, Op::NoTrans);
            let mut sol = b.clone();
            trsm_upper(&u, &mut sol);
            assert!(sol.max_abs_diff(&x) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn trmm_matches_gemm() {
        let n = 33;
        let u = random_upper(n, 7);
        let mut rng = Rng::new(9);
        let b0 = Matrix::random(n, 6, &mut rng);
        let mut b = b0.clone();
        trmm_upper(&u, &mut b);
        let mut reference = Matrix::zeros(n, 6);
        gemm_naive(1.0, &u, Op::NoTrans, &b0, Op::NoTrans, 0.0, &mut reference);
        assert!(b.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn trmm_t_matches_gemm() {
        let n = 21;
        let u = random_upper(n, 8);
        let mut rng = Rng::new(10);
        let b0 = Matrix::random(n, 4, &mut rng);
        let mut b = b0.clone();
        trmm_upper_t(&u, &mut b);
        let mut reference = Matrix::zeros(n, 4);
        gemm_naive(1.0, &u, Op::Trans, &b0, Op::NoTrans, 0.0, &mut reference);
        assert!(b.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn parallel_path_consistent() {
        // Large enough to hit the parallel branch.
        let n = 80;
        let u = random_upper(n, 11);
        let mut rng = Rng::new(12);
        let b0 = Matrix::random(n, 80, &mut rng);
        let mut b_par = b0.clone();
        trsm_upper(&u, &mut b_par);
        // Column-by-column serial reference.
        let mut b_ser = Matrix::zeros(n, 80);
        for j in 0..80 {
            let mut col = Matrix::from_col_major(n, 1, b0.col(j).to_vec());
            trsm_upper(&u, &mut col);
            b_ser.col_mut(j).copy_from_slice(col.col(0));
        }
        assert!(b_par.max_abs_diff(&b_ser) < 1e-14);
    }

    #[test]
    fn upper_inverse_is_inverse() {
        let u = random_upper(25, 13);
        let inv = upper_inverse(&u);
        let prod = matmul(&u, Op::NoTrans, &inv, Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(25)) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let mut u = random_upper(4, 14);
        u[(2, 2)] = 0.0;
        let mut b = Matrix::identity(4);
        trsm_upper(&u, &mut b);
    }
}
