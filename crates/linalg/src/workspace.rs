//! Reusable scratch-buffer arena for the kernel hot paths.
//!
//! The blocked GEMM packs its operands into panel buffers, the blocked QR
//! materialises V/T/W panels, and the pivoted QR builds an auxiliary F
//! matrix — all of these used to be `vec![…]` allocations made again on
//! every call, inside loops that run `O(N·sweeps)` times over a simulation.
//! The paper's kernels amortise such staging buffers across the entire run
//! (MKL keeps per-thread packing arenas; the GPU path allocates device
//! buffers once); this module gives the Rust kernels the same property.
//!
//! Buffers live in a **thread-local pool**: [`take`] pops (or grows) a
//! buffer, [`put`] returns it. Each call borrows the pool only for the
//! duration of the pop/push, so nested kernels (a QR whose block reflector
//! calls GEMM, which takes its own packing buffers) compose without
//! re-entrancy hazards, and with a real threaded Rayon pool every worker
//! simply owns an independent arena — no locks on the hot path.
//!
//! The pool is bounded ([`MAX_POOLED`] buffers, largest kept) so pathological
//! call patterns cannot hoard memory. Returned buffers are always
//! **zero-filled** to keep kernel semantics identical to a fresh
//! `vec![0.0; len]` — the memset is O(buffer), negligible against the
//! O(buffer·N) flops every consumer performs on it.
//!
//! This module is a `dqmc-lint` hot module: the only allocation points are
//! the explicitly pardoned one-time growth sites below.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::matrix::Matrix;
use std::cell::RefCell;

/// Upper bound on pooled buffers per thread (beyond this, the smallest is
/// dropped on [`put`]).
const MAX_POOLED: usize = 16;

/// A pool of reusable `f64` buffers. Usually accessed through the
/// thread-local [`take`]/[`put`] free functions; owning one directly is
/// useful for tests and for callers that want deterministic lifetimes.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty arena.
    // dqmc-lint: allow(hot_alloc) — `Vec::new` here is the empty pool
    // constant; it performs no heap allocation.
    pub const fn new() -> Self {
        Workspace { pool: Vec::new() }
    }

    /// Number of buffers currently parked in the pool (test hook).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing pooled
    /// capacity when possible.
    // dqmc-lint: allow(hot_alloc) — this is the arena's one growth site: a
    // buffer is allocated (or grown) only when no pooled buffer has enough
    // capacity, i.e. O(1) times per (thread, size class) over a whole run.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        // Best fit: the smallest pooled buffer whose capacity suffices —
        // keeps big GEMM panels from being burned on tiny requests.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        let mut buf = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            // No pooled buffer fits: grow the largest (if any) or start fresh.
            None => self.pool.pop().unwrap_or_default(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse. When the pool is full the
    /// smallest-capacity buffer is dropped, so the arena converges on the
    /// working set's largest size classes.
    pub fn put(&mut self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        self.pool.push(buf);
        if self.pool.len() > MAX_POOLED {
            if let Some(i) = (0..self.pool.len()).min_by_key(|&i| self.pool[i].capacity()) {
                self.pool.swap_remove(i);
            }
        }
    }

    /// Takes a zeroed `nrows × ncols` matrix backed by a pooled buffer.
    pub fn take_matrix(&mut self, nrows: usize, ncols: usize) -> Matrix {
        Matrix::from_col_major(nrows, ncols, self.take(nrows * ncols))
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn put_matrix(&mut self, m: Matrix) {
        self.put(m.into_vec());
    }
}

thread_local! {
    /// Per-thread arena behind the free-function API.
    static POOL: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Takes a zero-filled buffer of `len` elements from this thread's arena.
///
/// The borrow of the thread-local pool lasts only for the pop itself, so
/// kernels that take buffers and then call other workspace-using kernels
/// nest without restriction.
pub fn take(len: usize) -> Vec<f64> {
    POOL.with(|p| p.borrow_mut().take(len))
}

/// Returns a buffer to this thread's arena.
pub fn put(buf: Vec<f64>) {
    POOL.with(|p| p.borrow_mut().put(buf));
}

/// Takes a zeroed `nrows × ncols` matrix backed by this thread's arena.
pub fn take_matrix(nrows: usize, ncols: usize) -> Matrix {
    POOL.with(|p| p.borrow_mut().take_matrix(nrows, ncols))
}

/// Returns a matrix's backing buffer to this thread's arena.
pub fn put_matrix(m: Matrix) {
    POOL.with(|p| p.borrow_mut().put_matrix(m));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut b = ws.take(8);
        b.iter_mut().for_each(|x| *x = 7.0);
        ws.put(b);
        let b2 = ws.take(8);
        assert_eq!(b2.len(), 8);
        assert!(b2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn reuses_capacity() {
        let mut ws = Workspace::new();
        let b = ws.take(100);
        let p = b.as_ptr();
        ws.put(b);
        // Smaller request should reuse the same allocation.
        let b2 = ws.take(50);
        assert_eq!(b2.as_ptr(), p);
        assert_eq!(b2.len(), 50);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        let mut ws = Workspace::new();
        let big = ws.take(1000);
        let small = ws.take(10);
        let big_ptr = big.as_ptr();
        let small_ptr = small.as_ptr();
        ws.put(big);
        ws.put(small);
        let got = ws.take(10);
        assert_eq!(
            got.as_ptr(),
            small_ptr,
            "small request must not burn the big buffer"
        );
        ws.put(got);
        let got = ws.take(500);
        assert_eq!(got.as_ptr(), big_ptr);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        let bufs: Vec<_> = (1..=MAX_POOLED + 5).map(|i| ws.take(i * 8)).collect();
        for b in bufs {
            ws.put(b);
        }
        assert!(ws.pooled() <= MAX_POOLED);
        // The largest size classes survive the eviction.
        let caps: Vec<usize> = (0..ws.pooled()).map(|_| ws.take(1).capacity()).collect();
        assert!(caps.iter().all(|&c| c >= 6 * 8));
    }

    #[test]
    fn matrix_round_trip() {
        let mut ws = Workspace::new();
        let mut m = ws.take_matrix(4, 3);
        m[(2, 1)] = 5.0;
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 3);
        ws.put_matrix(m);
        let m2 = ws.take_matrix(3, 4);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn thread_local_api_round_trips() {
        let b = take(64);
        assert_eq!(b.len(), 64);
        put(b);
        let m = take_matrix(8, 8);
        put_matrix(m);
    }

    #[test]
    fn empty_buffer_not_pooled() {
        let mut ws = Workspace::new();
        ws.put(Vec::new());
        assert_eq!(ws.pooled(), 0);
    }
}
