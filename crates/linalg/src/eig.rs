//! Symmetric eigensolver via the cyclic Jacobi method (DSYEV analogue).
//!
//! Jacobi is slower than tridiagonalisation+QR but simple, embarrassingly
//! accurate (small relative errors even for graded matrices — see Drmač &
//! Veselić, cited by the paper), and used here only once per simulation to
//! exponentiate the hopping matrix `K`. Translation-invariant lattices bypass
//! it entirely via the analytic plane-wave diagonalisation in the `lattice`
//! crate.

use crate::matrix::Matrix;
use crate::{Error, Result};

/// Maximum number of cyclic sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Eigendecomposition of a symmetric matrix: `A = V diag(values) Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `values` order.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input must be symmetric to machine precision (checked cheaply);
/// returns [`Error::NoConvergence`] if the off-diagonal mass does not reach
/// round-off within the sweep cap (does not happen for finite inputs in
/// practice).
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    let n = a.nrows();
    assert!(a.is_square(), "sym_eig: matrix must be square");
    debug_assert!(is_symmetric(a, 1e-12), "sym_eig: matrix not symmetric");
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let off_norm = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for j in 0..n {
            for i in 0..j {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        (2.0 * s).sqrt()
    };

    let fro = m.norm_fro().max(f64::MIN_POSITIVE);
    let tol = 1e-15 * fro;
    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        if off_norm(&m) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable rotation computation (Golub & Van Loan §8.5).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                rotate(&mut m, p, q, c, s);
                rotate_cols(&mut v, p, q, c, s);
            }
        }
    }
    if !converged && off_norm(&m) > tol * 10.0 {
        return Err(Error::NoConvergence);
    }

    // Extract and sort ascending, carrying eigenvectors along.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        vectors.col_mut(dst).copy_from_slice(v.col(src));
    }
    Ok(SymEig { values, vectors })
}

/// Applies the two-sided Jacobi rotation J(p,q,θ)ᵀ M J(p,q,θ), keeping M
/// symmetric.
fn rotate(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
    for i in 0..n {
        if i != p && i != q {
            let aip = m[(i, p)];
            let aiq = m[(i, q)];
            m[(i, p)] = c * aip - s * aiq;
            m[(p, i)] = m[(i, p)];
            m[(i, q)] = s * aip + c * aiq;
            m[(q, i)] = m[(i, q)];
        }
    }
}

/// Post-multiplies V by the rotation (accumulates eigenvectors).
fn rotate_cols(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let (cp, cq) = v.two_cols_mut(p, q);
    for i in 0..cp.len() {
        let vip = cp[i];
        let viq = cq[i];
        cp[i] = c * vip - s * viq;
        cq[i] = s * vip + c * viq;
    }
}

/// Cheap symmetry check.
pub fn is_symmetric(a: &Matrix, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.nrows();
    let scale = a.max_abs().max(1.0);
    for j in 0..n {
        for i in 0..j {
            if (a[(i, j)] - a[(j, i)]).abs() > tol * scale {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{matmul, Op};
    use util::Rng;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::random(n, n, &mut rng);
        let mut a = b.clone();
        let bt = b.transpose();
        a.axpy(1.0, &bt);
        a.scale(0.5);
        a
    }

    fn check_decomposition(a: &Matrix, e: &SymEig, tol: f64) {
        let n = a.nrows();
        // A V = V diag(λ)
        let av = matmul(a, Op::NoTrans, &e.vectors, Op::NoTrans);
        for j in 0..n {
            for i in 0..n {
                let expect = e.values[j] * e.vectors[(i, j)];
                assert!(
                    (av[(i, j)] - expect).abs() < tol,
                    "A·v mismatch at ({i},{j}): {} vs {expect}",
                    av[(i, j)]
                );
            }
        }
        // VᵀV = I
        let vtv = matmul(&e.vectors, Op::Trans, &e.vectors, Op::NoTrans);
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < tol);
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_col_major(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-14);
        assert!((e.values[1] - 3.0).abs() < 1e-14);
        check_decomposition(&a, &e, 1e-13);
    }

    #[test]
    fn random_symmetric_decomposition() {
        for &n in &[1usize, 2, 5, 16, 40] {
            let a = random_symmetric(n, 50 + n as u64);
            let e = sym_eig(&a).unwrap();
            check_decomposition(&a, &e, 1e-11 * n.max(2) as f64);
            // ascending order
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-14);
            }
        }
    }

    #[test]
    fn trace_and_frobenius_invariants() {
        let n = 20;
        let a = random_symmetric(n, 9);
        let e = sym_eig(&a).unwrap();
        let trace_a: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let trace_l: f64 = e.values.iter().sum();
        assert!((trace_a - trace_l).abs() < 1e-10);
        let fro2_a: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let fro2_l: f64 = e.values.iter().map(|x| x * x).sum();
        assert!((fro2_a - fro2_l).abs() < 1e-9);
    }

    #[test]
    fn ring_hopping_matrix_spectrum() {
        // 1D periodic hopping matrix: eigenvalues are -2 cos(2πk/n).
        let n = 8;
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k[(i, (i + 1) % n)] = -1.0;
            k[((i + 1) % n, i)] = -1.0;
        }
        let e = sym_eig(&k).unwrap();
        let mut expect: Vec<f64> = (0..n)
            .map(|j| -2.0 * (2.0 * std::f64::consts::PI * j as f64 / n as f64).cos())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in e.values.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn degenerate_eigenvalues_handled() {
        // Identity: all eigenvalues 1, any orthonormal basis acceptable.
        let a = Matrix::identity(6);
        let e = sym_eig(&a).unwrap();
        for &v in &e.values {
            assert!((v - 1.0).abs() < 1e-14);
        }
        check_decomposition(&a, &e, 1e-13);
    }

    #[test]
    fn symmetry_check() {
        let a = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(is_symmetric(&a, 1e-12));
        let b = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 1.0]);
        assert!(!is_symmetric(&b, 1e-12));
        assert!(!is_symmetric(&Matrix::zeros(2, 3), 1e-12));
    }
}
