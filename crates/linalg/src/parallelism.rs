//! Worker-scope parallelism gate: keeps kernel-level Rayon fan-out off the
//! scheduler's worker threads.
//!
//! The sweep scheduler (`sched::runner`) runs one Markov chain per worker
//! thread, and every chain calls into this crate's Rayon-parallelised
//! kernels (GEMM tiles, QRP downdates, the §IV-B scalings). With W workers
//! all dispatching onto the *one global* Rayon pool, kernel tasks from
//! different chains interleave on the same pool threads — nested
//! parallelism by composition. That oversubscribes the machine (W × pool
//! threads runnable), serializes workers behind each other's kernel tails,
//! and is the prime suspect for the 0.301 parallel efficiency recorded in
//! `BENCH_sched.json` at 4 workers.
//!
//! The fix is a thread-local scope flag: a scheduler worker calls
//! [`enter_worker_scope`] once at the top of its loop, and every kernel
//! dispatch site asks [`par_enabled`] instead of testing its size
//! threshold directly. Inside a worker scope the kernels take their serial
//! branches — each chain is already one unit of coarse-grained parallelism,
//! exactly the hierarchical-parallelism discipline of the QMCPACK redesign
//! (PAPERS.md, arXiv:2209.14487): parallelize across walkers *or* within a
//! kernel, never both on the same pool.
//!
//! Numerics are unaffected: the parallel and serial branches of every
//! kernel are bit-identical by the crate's determinism contract, so this
//! gate changes scheduling only. `cargo xtask lint` rule R9 enforces that
//! no new global-pool dispatch appears inside a worker body without going
//! through this gate.

use std::cell::Cell;

thread_local! {
    static IN_WORKER_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard for a worker scope; restores the previous state on drop so
/// nested scopes (a worker running scheduler code reentrantly) compose.
#[derive(Debug)]
pub struct WorkerScope {
    prev: bool,
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        IN_WORKER_SCOPE.with(|f| f.set(self.prev));
    }
}

/// Marks the current thread as a scheduler worker until the returned guard
/// drops. Kernel dispatch sites consulted through [`par_enabled`] take
/// their serial branches while the scope is live.
#[must_use = "the scope ends when the guard drops"]
pub fn enter_worker_scope() -> WorkerScope {
    IN_WORKER_SCOPE.with(|f| {
        let prev = f.get();
        f.set(true);
        WorkerScope { prev }
    })
}

/// True when the current thread is inside a scheduler worker scope.
pub fn in_worker_scope() -> bool {
    IN_WORKER_SCOPE.with(|f| f.get())
}

/// The single gate every kernel's parallel-dispatch decision goes through:
/// `want` is the kernel's own size-threshold verdict, and the result is
/// additionally false inside a worker scope.
pub fn par_enabled(want: bool) -> bool {
    want && !in_worker_scope()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_gates_and_restores() {
        assert!(!in_worker_scope());
        assert!(par_enabled(true));
        assert!(!par_enabled(false));
        {
            let _scope = enter_worker_scope();
            assert!(in_worker_scope());
            assert!(!par_enabled(true), "worker scope forces serial branches");
        }
        assert!(!in_worker_scope(), "guard drop restores the previous state");
        assert!(par_enabled(true));
    }

    #[test]
    fn nested_scopes_compose() {
        let outer = enter_worker_scope();
        {
            let _inner = enter_worker_scope();
            assert!(in_worker_scope());
        }
        assert!(
            in_worker_scope(),
            "inner drop must not clear the outer scope"
        );
        drop(outer);
        assert!(!in_worker_scope());
    }

    #[test]
    fn scope_is_thread_local() {
        let _scope = enter_worker_scope();
        let other = std::thread::spawn(in_worker_scope).join().unwrap();
        assert!(!other, "worker scope must not leak across threads");
    }
}
