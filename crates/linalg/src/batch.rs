//! Strided-batch kernels for crowd execution (cuBLAS
//! `cublasDgemmStridedBatched` analogue).
//!
//! A *crowd* of B walkers stepped in lockstep issues the same GEMM shape B
//! times with different payloads. Looping [`crate::gemm`] already recycles
//! its packing buffers through the workspace arena, but it re-packs any
//! operand the B calls *share* (the `e^{−ΔτK}` exponential in wrapping and
//! clustering) once per walker. The batched driver here packs a
//! [`GemmOperand::Shared`] operand once per `KC` slab for the whole crowd
//! and streams only the per-walker operand, so the packing tax — like the
//! launch tax on the simulated device — is paid once per crowd.
//!
//! **Bit-identity contract**: for every entry `e`, the values written to
//! `cs[e]` are bit-identical to a solo `gemm` call on that entry's
//! operands. This holds because packing is a pure data re-arrangement (the
//! packed slabs contain the same values whether packed once or B times) and
//! the per-entry macro-/micro-kernel call sequence is exactly the solo one.
//! The crowd execution model (DESIGN.md §13) leans on this: batching may
//! only change *cost*, never *bytes*.
//!
//! This module is a `dqmc-lint` hot module: heap allocation inside its
//! loops is rejected by `cargo xtask lint` unless explicitly waived.

#![cfg_attr(any(), deny_hot_alloc)]

use crate::blas3::{self, Op, SendPtr, KC, MC, MR, NC, SMALL_FLOPS};
use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use crate::qrp::{self, QrpFactors};
use crate::simd::{self, KernelPath};
use crate::workspace;
use rayon::prelude::*;

/// One side of a batched GEMM: either a single operand shared by every
/// entry of the batch, or one operand per entry.
#[derive(Clone, Copy, Debug)]
pub enum GemmOperand<'a> {
    /// The same matrix multiplies every entry (packed once per crowd).
    Shared(&'a Matrix),
    /// Entry `e` uses `ms[e]` (packed per entry, like solo GEMM).
    Each(&'a [&'a Matrix]),
}

impl<'a> GemmOperand<'a> {
    /// The matrix entry `e` of the batch sees.
    fn entry(&self, e: usize) -> &'a Matrix {
        match self {
            GemmOperand::Shared(m) => m,
            GemmOperand::Each(ms) => ms[e],
        }
    }

    fn check_batch(&self, b: usize, side: &str) {
        if let GemmOperand::Each(ms) = self {
            assert_eq!(ms.len(), b, "dgemm_strided_batched: {side} operand count");
        }
    }
}

/// Batched general matrix multiply over a stack of B entries:
/// `C_e = alpha * op(A_e) * op(B_e) + beta * C_e` for each `e`.
///
/// All entries must share one shape (that is what makes the batch
/// "strided": entry `e` of a stacked buffer is one matrix-stride past entry
/// `e−1`, as in cuBLAS's strided-batched API). A [`GemmOperand::Shared`]
/// operand is packed once per `KC` slab for the whole batch instead of once
/// per entry. Every entry's result is bit-identical to a solo [`crate::gemm`]
/// call (see the module docs for why).
pub fn dgemm_strided_batched(
    alpha: f64,
    a: GemmOperand<'_>,
    opa: Op,
    b: GemmOperand<'_>,
    opb: Op,
    beta: f64,
    cs: &mut [&mut Matrix],
) {
    let bsz = cs.len();
    if bsz == 0 {
        return;
    }
    a.check_batch(bsz, "A");
    b.check_batch(bsz, "B");
    let m = opa.rows(a.entry(0));
    let k = opa.cols(a.entry(0));
    let n = opb.cols(b.entry(0));
    for e in 0..bsz {
        let (ae, be) = (a.entry(e), b.entry(e));
        assert_eq!(opa.rows(ae), m, "dgemm_strided_batched: A[{e}] row count");
        assert_eq!(
            opa.cols(ae),
            k,
            "dgemm_strided_batched: A[{e}] column count"
        );
        assert_eq!(opb.rows(be), k, "dgemm_strided_batched: inner dimensions");
        assert_eq!(
            opb.cols(be),
            n,
            "dgemm_strided_batched: B[{e}] column count"
        );
        assert_eq!(cs[e].nrows(), m, "dgemm_strided_batched: C[{e}] row count");
        assert_eq!(
            cs[e].ncols(),
            n,
            "dgemm_strided_batched: C[{e}] column count"
        );
    }

    // Beta once up front, exactly as gemm_impl does per entry.
    for c in cs.iter_mut() {
        if beta == 0.0 {
            c.fill(0.0);
        } else if beta != 1.0 {
            c.scale(beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    if m * n * k <= SMALL_FLOPS {
        // Below the blocked threshold the solo path is serial and unpacked;
        // batching has nothing to amortise, so run the identical small path
        // per entry.
        for (e, c) in cs.iter_mut().enumerate() {
            blas3::gemm_small(alpha, a.entry(e), opa, b.entry(e), opb, c);
        }
    } else {
        let path = simd::kernel_path();
        let path = if path.available() {
            path
        } else {
            KernelPath::Scalar
        };
        match path {
            KernelPath::Scalar => blocked_batched::<4>(false, alpha, &a, opa, &b, opb, cs, m, n, k),
            KernelPath::Fma => blocked_batched::<6>(true, alpha, &a, opa, &b, opb, cs, m, n, k),
        }
    }
    for _c in cs.iter() {
        crate::check_finite!(
            _c.as_slice(),
            "dgemm_strided_batched output ({}x{})",
            _c.nrows(),
            _c.ncols()
        );
    }
}

/// The blocked batched path, monomorphised per micro-tile width `NR`
/// exactly like `gemm_blocked`. One pair of packing buffers is leased for
/// the whole crowd; a shared operand's slab is packed once per `pc`
/// iteration, a per-entry operand's slab once per entry (the solo cost).
#[allow(clippy::too_many_arguments)]
fn blocked_batched<const NR: usize>(
    use_fma: bool,
    alpha: f64,
    a: &GemmOperand<'_>,
    opa: Op,
    b: &GemmOperand<'_>,
    opb: Op,
    cs: &mut [&mut Matrix],
    m: usize,
    n: usize,
    k: usize,
) {
    let ncb = NC / NR * NR;
    let mut packed_a = workspace::take(blas3::padded(m, MR) * KC.min(k));
    let mut packed_b = workspace::take(KC.min(k) * blas3::padded(n, NR));

    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        if let GemmOperand::Shared(am) = a {
            blas3::pack_a_full(am, opa, pc, kc, m, &mut packed_a);
        }
        if let GemmOperand::Shared(bm) = b {
            blas3::pack_b_full::<NR>(bm, opb, pc, kc, n, &mut packed_b);
        }
        for (e, c) in cs.iter_mut().enumerate() {
            if let GemmOperand::Each(ams) = a {
                blas3::pack_a_full(ams[e], opa, pc, kc, m, &mut packed_a);
            }
            if let GemmOperand::Each(bms) = b {
                blas3::pack_b_full::<NR>(bms[e], opb, pc, kc, n, &mut packed_b);
            }

            // Macro-tile grid over C_e — byte-for-byte the solo tile loop.
            let mblocks = m.div_ceil(MC);
            let nblocks = n.div_ceil(ncb);
            let cdata = SendPtr(c.as_mut_slice().as_mut_ptr());
            let ldc = m;
            let pa = &packed_a;
            let pb = &packed_b;
            let tile = |t: usize| {
                let bi = t % mblocks;
                let bj = t / mblocks;
                let ic = bi * MC;
                let jc = bj * ncb;
                let mc = MC.min(m - ic);
                let nc = ncb.min(n - jc);
                // SAFETY: tasks write disjoint (ic..ic+mc) x (jc..jc+nc)
                // tiles of C_e; entries are processed sequentially so no two
                // entries' writes coexist.
                let cptr = cdata;
                blas3::macro_kernel::<NR>(use_fma, alpha, pa, pb, kc, ic, jc, mc, nc, cptr.0, ldc);
            };
            if par_enabled(true) {
                (0..mblocks * nblocks).into_par_iter().for_each(tile);
            } else {
                (0..mblocks * nblocks).for_each(tile);
            }
        }
        pc += kc;
    }

    workspace::put(packed_a);
    workspace::put(packed_b);
}

/// Batched pivoted QR over a stack of B factor-chain matrices.
///
/// Entry `e` of the result is bit-identical to `qrp_in_place(ms[e])`: the
/// factorizations are independent, so the batch fans the entries out over
/// the Rayon pool (each entry pinning its own inner kernels to their serial
/// branch — lint rule R9's worker-scope discipline) when crowd-level
/// parallelism is available, and runs them serially inside a worker scope.
/// Either schedule produces the same bytes.
// dqmc-lint: allow(hot_alloc) — the output Vec is the API (one factor set
// per batch entry); QRP runs at cluster boundaries, not per slice.
pub fn qrp_batched(ms: Vec<Matrix>) -> Vec<QrpFactors> {
    if par_enabled(ms.len() > 1) {
        ms.into_par_iter()
            .map(|m| {
                let _serial_kernels = crate::parallelism::enter_worker_scope();
                qrp::qrp_in_place(m)
            })
            .collect()
    } else {
        ms.into_iter().map(qrp::qrp_in_place).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use util::Rng;

    fn random(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        Matrix::random(m, n, &mut rng)
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.ncols(), b.ncols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
        }
    }

    /// Batched vs per-entry solo gemm, bitwise, for one configuration.
    fn check_case(m: usize, n: usize, k: usize, shared_a: bool, shared_b: bool, seed: u64) {
        let bsz = 3;
        let shared = random(
            if shared_a { m } else { k },
            if shared_a { k } else { n },
            seed,
        );
        let each: Vec<Matrix> = (0..bsz)
            .map(|e| {
                if shared_a {
                    random(k, n, seed + 10 + e as u64)
                } else {
                    random(m, k, seed + 10 + e as u64)
                }
            })
            .collect();
        let c0: Vec<Matrix> = (0..bsz)
            .map(|e| random(m, n, seed + 20 + e as u64))
            .collect();

        // Solo reference.
        let mut solo = c0.clone();
        for e in 0..bsz {
            let (a, b) = if shared_a {
                (&shared, &each[e])
            } else {
                (&each[e], &shared)
            };
            gemm(1.7, a, Op::NoTrans, b, Op::NoTrans, 0.3, &mut solo[e]);
        }

        // Batched.
        let mut batched = c0;
        let each_refs: Vec<&Matrix> = each.iter().collect();
        let mut c_refs: Vec<&mut Matrix> = batched.iter_mut().collect();
        let (a_op, b_op) = match (shared_a, shared_b) {
            (true, false) => (GemmOperand::Shared(&shared), GemmOperand::Each(&each_refs)),
            (false, true) => (GemmOperand::Each(&each_refs), GemmOperand::Shared(&shared)),
            _ => unreachable!("one side shared in these tests"),
        };
        dgemm_strided_batched(1.7, a_op, Op::NoTrans, b_op, Op::NoTrans, 0.3, &mut c_refs);

        for e in 0..bsz {
            assert_bits_eq(&batched[e], &solo[e], &format!("entry {e} ({m}x{n}x{k})"));
        }
    }

    #[test]
    fn batched_matches_solo_bitwise_small_path() {
        // Below SMALL_FLOPS: the per-entry small path.
        check_case(16, 16, 16, true, false, 1);
        check_case(16, 16, 16, false, true, 2);
        check_case(7, 13, 5, true, false, 3);
    }

    #[test]
    fn batched_matches_solo_bitwise_blocked_path() {
        // Past SMALL_FLOPS (64³ > 48³): the packed blocked path, where the
        // shared-operand slab is packed once per crowd.
        check_case(64, 64, 64, true, false, 4);
        check_case(64, 64, 64, false, true, 5);
        // Odd edges and a k past one KC slab.
        check_case(61, 53, 300, true, false, 6);
    }

    #[test]
    fn each_each_matches_solo_bitwise() {
        let bsz = 2;
        let a: Vec<Matrix> = (0..bsz).map(|e| random(64, 64, 30 + e as u64)).collect();
        let b: Vec<Matrix> = (0..bsz).map(|e| random(64, 64, 40 + e as u64)).collect();
        let mut solo: Vec<Matrix> = (0..bsz).map(|_| Matrix::zeros(64, 64)).collect();
        for e in 0..bsz {
            gemm(
                1.0,
                &a[e],
                Op::NoTrans,
                &b[e],
                Op::NoTrans,
                0.0,
                &mut solo[e],
            );
        }
        let mut batched: Vec<Matrix> = (0..bsz).map(|_| Matrix::zeros(64, 64)).collect();
        let a_refs: Vec<&Matrix> = a.iter().collect();
        let b_refs: Vec<&Matrix> = b.iter().collect();
        let mut c_refs: Vec<&mut Matrix> = batched.iter_mut().collect();
        dgemm_strided_batched(
            1.0,
            GemmOperand::Each(&a_refs),
            Op::NoTrans,
            GemmOperand::Each(&b_refs),
            Op::NoTrans,
            0.0,
            &mut c_refs,
        );
        for e in 0..bsz {
            assert_bits_eq(&batched[e], &solo[e], &format!("each-each entry {e}"));
        }
    }

    #[test]
    fn transposed_operands_supported() {
        // The crowd paths use NoTrans only, but the driver mirrors gemm's
        // full Op surface; spot-check a Trans combination bitwise.
        let a = random(64, 70, 50);
        let bs: Vec<Matrix> = (0..2).map(|e| random(64, 66, 60 + e as u64)).collect();
        let mut solo: Vec<Matrix> = (0..2).map(|_| Matrix::zeros(70, 66)).collect();
        for e in 0..2 {
            gemm(1.0, &a, Op::Trans, &bs[e], Op::NoTrans, 0.0, &mut solo[e]);
        }
        let mut batched: Vec<Matrix> = (0..2).map(|_| Matrix::zeros(70, 66)).collect();
        let b_refs: Vec<&Matrix> = bs.iter().collect();
        let mut c_refs: Vec<&mut Matrix> = batched.iter_mut().collect();
        dgemm_strided_batched(
            1.0,
            GemmOperand::Shared(&a),
            Op::Trans,
            GemmOperand::Each(&b_refs),
            Op::NoTrans,
            0.0,
            &mut c_refs,
        );
        for e in 0..2 {
            assert_bits_eq(&batched[e], &solo[e], &format!("trans entry {e}"));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let a = random(4, 4, 70);
        let mut cs: Vec<&mut Matrix> = Vec::new();
        dgemm_strided_batched(
            1.0,
            GemmOperand::Shared(&a),
            Op::NoTrans,
            GemmOperand::Shared(&a),
            Op::NoTrans,
            0.0,
            &mut cs,
        );
    }

    #[test]
    fn qrp_batched_matches_solo_bitwise() {
        let ms: Vec<Matrix> = (0..4).map(|e| random(32, 32, 80 + e as u64)).collect();
        let solo: Vec<QrpFactors> = ms.iter().map(|m| qrp::qrp_in_place(m.clone())).collect();
        let batched = qrp_batched(ms);
        assert_eq!(batched.len(), solo.len());
        for (e, (b, s)) in batched.iter().zip(&solo).enumerate() {
            assert_bits_eq(&b.a, &s.a, &format!("qrp entry {e} packed factors"));
            assert_eq!(b.jpvt, s.jpvt, "qrp entry {e} pivots");
            for (x, y) in b.tau.iter().zip(&s.tau) {
                assert_eq!(x.to_bits(), y.to_bits(), "qrp entry {e} tau");
            }
        }
    }

    #[test]
    fn qrp_batched_serial_in_worker_scope_matches() {
        let ms: Vec<Matrix> = (0..3).map(|e| random(24, 24, 90 + e as u64)).collect();
        let outside = qrp_batched(ms.clone());
        let inside = {
            let _scope = crate::parallelism::enter_worker_scope();
            qrp_batched(ms)
        };
        for (e, (a, b)) in outside.iter().zip(&inside).enumerate() {
            assert_bits_eq(&a.a, &b.a, &format!("scope entry {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = random(4, 3, 99);
        let b = random(4, 4, 98);
        let mut c = Matrix::zeros(4, 4);
        let mut cs = vec![&mut c];
        dgemm_strided_batched(
            1.0,
            GemmOperand::Shared(&a),
            Op::NoTrans,
            GemmOperand::Shared(&b),
            Op::NoTrans,
            0.0,
            &mut cs,
        );
    }
}
