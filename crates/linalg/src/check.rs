//! Runtime invariant layer for the numerical kernels.
//!
//! DQMC failures are rarely loud: a NaN born in one cluster product
//! silently propagates through dozens of GEMMs before an observable turns
//! into garbage, and a loss of grading in `D` degrades the Green's function
//! without crashing anything. This module provides *checked-invariants*
//! mode: assertion macros that the kernels and the stratification layer
//! call at their natural checkpoints —
//!
//! - [`check_finite!`]: NaN/Inf taint on kernel outputs (and on the factor
//!   entering each cluster boundary, so a poisoned B-matrix is reported
//!   *by boundary index* instead of surfacing later as a cryptic pivot
//!   failure),
//! - [`check_orthogonal!`]: `‖QᵀQ − I‖_max` residual after each stratified
//!   QR,
//! - [`check_graded!`]: monotone (descending-magnitude) grading of `D`,
//!   with algorithm-dependent slack (QRP grades strictly; pre-pivoting
//!   preserves grading "although not as strong", §IV-A of the paper).
//!
//! Every macro expands to a `#[cfg(feature = "checked-invariants")]` block:
//! **without the feature the expansion is empty** — no branch, no format
//! machinery, zero cost. The helper functions below are always compiled
//! (they are tiny) so they can be unit-tested without the feature.
//!
//! Independently of the feature, this module owns the **norm-downdate
//! safeguard counter**: [`crate::qrp`] increments it whenever the dlaqps
//! machine-epsilon guard forces an exact column-norm recomputation. The
//! counter is a plain relaxed atomic on a rare fallback path (its cost is
//! dwarfed by the recomputation it records), so it stays live in release
//! builds and is surfaced through `dqmc::diagnostics`.

use crate::blas3::{matmul, Op};
use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// Panics if any element of `data` is NaN or ±Inf, naming `ctx`.
///
/// The panic message has the form
/// `invariant violation: non-finite value <v> at flat index <i> in <ctx>`.
pub fn assert_all_finite(ctx: &str, data: &[f64]) {
    for (i, &x) in data.iter().enumerate() {
        assert!(
            x.is_finite(),
            "invariant violation: non-finite value {x} at flat index {i} in {ctx}"
        );
    }
}

/// Panics if `‖QᵀQ − I‖_max > tol`, naming `ctx`.
pub fn assert_orthogonal(ctx: &str, q: &Matrix, tol: f64) {
    let qtq = matmul(q, Op::Trans, q, Op::NoTrans);
    let resid = qtq.max_abs_diff(&Matrix::identity(q.ncols()));
    assert!(
        resid <= tol,
        "invariant violation: Q orthogonality residual {resid:.3e} exceeds {tol:.3e} in {ctx}"
    );
}

/// Panics unless `slack · |d[j]| ≥ |d[j+1]|` for every adjacent pair,
/// naming `ctx`.
///
/// Pairs already down at roundoff level relative to the leading magnitude
/// (below `1e-13 · |d[0]|`) are exempt: in rank-deficient problems the
/// trailing diagonal is numerical noise and its ordering carries no
/// information.
pub fn assert_graded(ctx: &str, d: &[f64], slack: f64) {
    let floor = d.first().map_or(0.0, |x| 1e-13 * x.abs());
    for (j, w) in d.windows(2).enumerate() {
        let (hi, lo) = (w[0].abs(), w[1].abs());
        if lo <= floor {
            continue;
        }
        assert!(
            slack * hi >= lo,
            "invariant violation: grading broken at {j}: |d[{j}]| = {hi:.6e} then \
             |d[{}]| = {lo:.6e} (slack {slack}) in {ctx}",
            j + 1
        );
    }
}

/// Returns the flat index and value of the first non-finite element of
/// `data`, or `None` when every element is finite.
///
/// Unlike [`assert_all_finite`] this never panics and is compiled
/// unconditionally: the recovery layer in `dqmc::sweep` uses it as an
/// always-on taint detector so that a poisoned cluster product or wrapped
/// Green's function can be *repaired* (retry, cluster shrink, host
/// fallback) instead of aborting the run.
pub fn first_non_finite(data: &[f64]) -> Option<(usize, f64)> {
    data.iter()
        .enumerate()
        .find(|(_, x)| !x.is_finite())
        .map(|(i, &x)| (i, x))
}

/// Cumulative count of exact column-norm recomputations forced by the
/// dlaqps downdate safeguard in [`crate::qrp`].
static NORM_DOWNDATE_RECOMPUTES: AtomicU64 = AtomicU64::new(0);

/// Records `n` safeguard-forced norm recomputations (called by `qrp`).
pub fn note_norm_downdate_recomputes(n: u64) {
    if n > 0 {
        NORM_DOWNDATE_RECOMPUTES.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total safeguard-forced norm recomputations since process start (or the
/// last [`reset_norm_downdate_recomputes`]).
pub fn norm_downdate_recomputes() -> u64 {
    NORM_DOWNDATE_RECOMPUTES.load(Ordering::Relaxed)
}

/// Resets the safeguard counter (for per-phase accounting in diagnostics).
pub fn reset_norm_downdate_recomputes() {
    NORM_DOWNDATE_RECOMPUTES.store(0, Ordering::Relaxed);
}

/// Asserts every element of a `&[f64]` is finite — expands to nothing
/// without the `checked-invariants` feature.
///
/// Usage: `check_finite!(m.as_slice(), "gemm output ({m}x{n})")`; the
/// context arguments are `format!`-style and are only evaluated in checked
/// builds.
#[macro_export]
macro_rules! check_finite {
    ($data:expr, $($ctx:tt)+) => {
        #[cfg(feature = "checked-invariants")]
        {
            $crate::check::assert_all_finite(&format!($($ctx)+), $data);
        }
    };
}

/// Asserts `‖QᵀQ − I‖_max ≤ tol` for a `&Matrix` — expands to nothing
/// without the `checked-invariants` feature.
#[macro_export]
macro_rules! check_orthogonal {
    ($q:expr, $tol:expr, $($ctx:tt)+) => {
        #[cfg(feature = "checked-invariants")]
        {
            $crate::check::assert_orthogonal(&format!($($ctx)+), $q, $tol);
        }
    };
}

/// Asserts descending-magnitude grading of a `&[f64]` diagonal within a
/// multiplicative `slack` — expands to nothing without the
/// `checked-invariants` feature.
#[macro_export]
macro_rules! check_graded {
    ($d:expr, $slack:expr, $($ctx:tt)+) => {
        #[cfg(feature = "checked-invariants")]
        {
            $crate::check::assert_graded(&format!($($ctx)+), $d, $slack);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_accepts_normal_data() {
        assert_all_finite("test", &[0.0, -1.5, 1e300, f64::MIN_POSITIVE]);
    }

    #[test]
    #[should_panic(expected = "non-finite value NaN at flat index 2 in here")]
    fn finite_rejects_nan_with_index() {
        assert_all_finite("here", &[1.0, 2.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn finite_rejects_inf() {
        assert_all_finite("inf case", &[f64::INFINITY]);
    }

    #[test]
    fn orthogonal_accepts_identity_and_rotation() {
        assert_orthogonal("id", &Matrix::identity(5), 1e-15);
        let c = 0.6f64;
        let s = 0.8f64;
        let rot = Matrix::from_col_major(2, 2, vec![c, s, -s, c]);
        assert_orthogonal("rot", &rot, 1e-14);
    }

    #[test]
    #[should_panic(expected = "orthogonality residual")]
    fn orthogonal_rejects_scaled_matrix() {
        let mut m = Matrix::identity(3);
        m.scale(2.0);
        assert_orthogonal("scaled", &m, 1e-10);
    }

    #[test]
    fn graded_accepts_descending_and_noise_tail() {
        assert_graded("desc", &[1e10, 1e4, 1.0, 1e-8], 1.0 + 1e-8);
        // Trailing noise below 1e-13·d[0] may be unordered.
        assert_graded("noise", &[1.0, 1e-16, 5e-16], 1.0 + 1e-8);
        assert_graded("empty", &[], 1.0);
        assert_graded("zeros", &[0.0, 0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "grading broken at 0")]
    fn graded_rejects_inversion() {
        assert_graded("bad", &[1.0, 100.0], 10.0);
    }

    #[test]
    fn graded_slack_allows_mild_inversion() {
        assert_graded("mild", &[1.0, 5.0, 2.0], 10.0);
    }

    #[test]
    fn first_non_finite_locates_taint() {
        assert_eq!(first_non_finite(&[1.0, -2.0, 0.0]), None);
        assert_eq!(first_non_finite(&[]), None);
        let (i, v) = first_non_finite(&[1.0, f64::INFINITY, f64::NAN]).unwrap();
        assert_eq!(i, 1);
        assert!(v.is_infinite());
        let (i, v) = first_non_finite(&[f64::NAN]).unwrap();
        assert_eq!(i, 0);
        assert!(v.is_nan());
    }

    #[test]
    fn counter_accumulates() {
        // Other tests (qrp) may bump the counter concurrently; only check
        // that our own increments are visible as a lower bound.
        let before = norm_downdate_recomputes();
        note_norm_downdate_recomputes(3);
        note_norm_downdate_recomputes(0);
        note_norm_downdate_recomputes(2);
        assert!(norm_downdate_recomputes() >= before + 5);
    }
}
