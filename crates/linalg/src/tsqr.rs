//! Communication-avoiding tall-skinny QR (TSQR).
//!
//! The paper's outlook leans on exactly this family of algorithms: its
//! refs [31]/[32] are the tile-QR multicore papers and [35] is
//! "Communication-Avoiding QR Decomposition for GPUs" (Anderson et al.,
//! IPDPS 2011) — the kernel the authors planned to move the stratification
//! onto. TSQR factors an `m × n` panel (`m ≫ n`) by QR-ing independent row
//! blocks and combining the small R factors up a binary tree; each block
//! factorization is independent, so the tree parallelises with no
//! inter-block communication until the (tiny) combine steps.
//!
//! Here the row-block factorizations run on the Rayon pool, and the
//! explicit thin Q is reconstructed down the tree. Same `A = Q R`
//! contract as [`crate::qr`] (R's diagonal sign convention may differ;
//! both are valid QRs).

use crate::blas3::{gemm, Op};
use crate::matrix::Matrix;
use crate::parallelism::par_enabled;
use crate::qr::qr_in_place;
use rayon::prelude::*;

/// Result of a TSQR factorization: thin, explicit factors.
#[derive(Clone, Debug)]
pub struct Tsqr {
    /// `m × n` with orthonormal columns.
    pub q: Matrix,
    /// `n × n` upper triangular.
    pub r: Matrix,
}

/// Factors `A = Q R` by blocked TSQR with row blocks of at least
/// `block_rows` rows (clamped to `≥ n` so every block is tall).
pub fn tsqr(a: &Matrix, block_rows: usize) -> Tsqr {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "tsqr: need m ≥ n");
    let br = block_rows.max(n);
    let nblocks = (m / br).max(1);
    if nblocks == 1 {
        let f = qr_in_place(a.clone());
        let r = thin_r(&f.a, n);
        let q = thin_q(&f, n);
        crate::check_orthogonal!(&q, 1e-11 * m.max(4) as f64, "tsqr single-block Q ({m}x{n})");
        return Tsqr { q, r };
    }

    // Level 0: independent QRs of the row blocks (parallel). The last block
    // absorbs the remainder so every block stays tall (≥ br ≥ n rows).
    let blocks: Vec<(usize, usize)> = (0..nblocks)
        .map(|b| {
            let lo = b * br;
            let hi = if b + 1 == nblocks { m } else { (b + 1) * br };
            (lo, hi)
        })
        .collect();
    let leaf_qr = |&(lo, hi): &(usize, usize)| {
        let f = qr_in_place(a.submatrix(lo, 0, hi - lo, n));
        (thin_q(&f, n), thin_r(&f.a, n))
    };
    let level0: Vec<(Matrix, Matrix)> = if par_enabled(true) {
        blocks.par_iter().map(leaf_qr).collect()
    } else {
        blocks.iter().map(leaf_qr).collect()
    };

    // Combine up a binary tree; record the combine Qs to rebuild Q later.
    // state: per surviving leaf range, the current R; tree: per level, the
    // (2n × n or n × n carried) combine Q factors.
    let mut rs: Vec<Matrix> = level0.iter().map(|(_, r)| r.clone()).collect();
    let mut tree: Vec<Vec<Option<Matrix>>> = Vec::new();
    while rs.len() > 1 {
        let pairs = rs.len() / 2;
        let carried = rs.len() % 2 == 1;
        let combine_pair = |p: usize| {
            // Stack the two R's and QR the 2n × n stack.
            let mut stack = Matrix::zeros(2 * n, n);
            stack.set_submatrix(0, 0, &rs[2 * p]);
            stack.set_submatrix(n, 0, &rs[2 * p + 1]);
            let f = qr_in_place(stack);
            (thin_q(&f, n), thin_r(&f.a, n))
        };
        let combined: Vec<(Matrix, Matrix)> = if par_enabled(true) {
            (0..pairs).into_par_iter().map(combine_pair).collect()
        } else {
            (0..pairs).map(combine_pair).collect()
        };
        let mut level: Vec<Option<Matrix>> = Vec::with_capacity(pairs + 1);
        let mut next_rs = Vec::with_capacity(pairs + 1);
        for (q, r) in combined {
            level.push(Some(q));
            next_rs.push(r);
        }
        if carried {
            level.push(None); // odd leftover carries through unchanged
            next_rs.push(rs.last().expect("odd leftover").clone());
        }
        tree.push(level);
        rs = next_rs;
    }
    let r = rs.into_iter().next().expect("root R");

    // Rebuild Q top-down: start from the root's identity coefficient and
    // push the combine Qs back down the tree.
    // coeff[i] is the n × n matrix C_i such that Q = diag(Q0_blocks) · C.
    let mut coeff: Vec<Matrix> = vec![Matrix::identity(n)];
    for level in tree.iter().rev() {
        let mut expanded = Vec::with_capacity(level.len() * 2);
        for (slot, c) in level.iter().zip(coeff.iter()) {
            match slot {
                Some(qc) => {
                    // qc is 2n × n: top half feeds the left child, bottom
                    // half the right child.
                    let top = qc.submatrix(0, 0, n, n);
                    let bot = qc.submatrix(n, 0, n, n);
                    let mut left = Matrix::zeros(n, n);
                    gemm(1.0, &top, Op::NoTrans, c, Op::NoTrans, 0.0, &mut left);
                    let mut right = Matrix::zeros(n, n);
                    gemm(1.0, &bot, Op::NoTrans, c, Op::NoTrans, 0.0, &mut right);
                    expanded.push(left);
                    expanded.push(right);
                }
                None => expanded.push(c.clone()),
            }
        }
        coeff = expanded;
    }
    debug_assert_eq!(coeff.len(), nblocks);

    // Q = block-diagonal(level-0 Qs) · coeff, assembled blockwise (parallel).
    let mut q = Matrix::zeros(m, n);
    let assemble_block = |(b, &(lo, hi)): (usize, &(usize, usize))| {
        let mut piece = Matrix::zeros(hi - lo, n);
        gemm(
            1.0,
            &level0[b].0,
            Op::NoTrans,
            &coeff[b],
            Op::NoTrans,
            0.0,
            &mut piece,
        );
        (lo, piece)
    };
    let parts: Vec<(usize, Matrix)> = if par_enabled(true) {
        blocks.par_iter().enumerate().map(assemble_block).collect()
    } else {
        blocks.iter().enumerate().map(assemble_block).collect()
    };
    for (lo, piece) in parts {
        q.set_submatrix(lo, 0, &piece);
    }
    crate::check_orthogonal!(&q, 1e-11 * m.max(4) as f64, "tsqr assembled Q ({m}x{n})");
    Tsqr { q, r }
}

/// Upper-triangular top `n × n` of a packed QR result.
fn thin_r(packed: &Matrix, n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| if i <= j { packed[(i, j)] } else { 0.0 })
}

/// Explicit thin Q (`m × n`) from packed factors.
fn thin_q(f: &crate::qr::QrFactors, n: usize) -> Matrix {
    let m = f.a.nrows();
    let mut id = Matrix::zeros(m, n);
    for j in 0..n {
        id[(j, j)] = 1.0;
    }
    f.apply_q(&mut id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::matmul;
    use util::Rng;

    fn check(a: &Matrix, f: &Tsqr, tol: f64) {
        let n = a.ncols();
        // Orthonormal columns.
        let qtq = matmul(&f.q, Op::Trans, &f.q, Op::NoTrans);
        assert!(
            qtq.max_abs_diff(&Matrix::identity(n)) < tol,
            "orthogonality {}",
            qtq.max_abs_diff(&Matrix::identity(n))
        );
        // R upper triangular.
        for j in 0..n {
            for i in (j + 1)..n {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
        // Reconstruction.
        let rec = matmul(&f.q, Op::NoTrans, &f.r, Op::NoTrans);
        assert!(
            rec.max_abs_diff(a) < tol * a.max_abs().max(1.0),
            "reconstruction {}",
            rec.max_abs_diff(a)
        );
    }

    #[test]
    fn single_block_degenerates_to_plain_qr() {
        let mut rng = Rng::new(1);
        let a = Matrix::random(12, 5, &mut rng);
        let f = tsqr(&a, 100);
        check(&a, &f, 1e-12);
    }

    #[test]
    fn multi_block_tall_panel() {
        let mut rng = Rng::new(2);
        for &(m, n, br) in &[(64usize, 6usize, 8usize), (100, 10, 16), (33, 4, 5)] {
            let a = Matrix::random(m, n, &mut rng);
            let f = tsqr(&a, br);
            check(&a, &f, 1e-11);
        }
    }

    #[test]
    fn odd_block_count_carries_leftover() {
        // 5 blocks of 8 rows: tree has odd carries at two levels.
        let mut rng = Rng::new(3);
        let a = Matrix::random(40, 4, &mut rng);
        let f = tsqr(&a, 8);
        check(&a, &f, 1e-11);
    }

    #[test]
    fn square_input_works() {
        let mut rng = Rng::new(4);
        let a = Matrix::random(16, 16, &mut rng);
        let f = tsqr(&a, 4); // blocks clamp to ≥ n = one block
        check(&a, &f, 1e-11);
    }

    #[test]
    fn r_matches_plain_qr_up_to_signs() {
        let mut rng = Rng::new(5);
        let a = Matrix::random(60, 5, &mut rng);
        let f = tsqr(&a, 10);
        let plain = qr_in_place(a.clone());
        for j in 0..5 {
            for i in 0..=j {
                assert!(
                    (f.r[(i, j)].abs() - plain.a[(i, j)].abs()).abs() < 1e-10,
                    "R({i},{j})"
                );
            }
        }
    }

    #[test]
    fn graded_panel_stays_accurate() {
        let mut rng = Rng::new(6);
        let mut a = Matrix::random(48, 6, &mut rng);
        for j in 0..6 {
            crate::blas1::scal(10f64.powi(4 * j as i32 - 12), a.col_mut(j));
        }
        let f = tsqr(&a, 12);
        // Column-relative reconstruction error.
        let rec = matmul(&f.q, Op::NoTrans, &f.r, Op::NoTrans);
        for j in 0..6 {
            let scale = crate::blas1::nrm2(a.col(j));
            let mut diff = 0.0f64;
            for i in 0..48 {
                diff = diff.max((rec[(i, j)] - a[(i, j)]).abs());
            }
            assert!(diff / scale < 1e-11, "col {j}: {}", diff / scale);
        }
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn wide_input_rejected() {
        let a = Matrix::zeros(3, 5);
        let _ = tsqr(&a, 2);
    }
}
