//! Cross-kernel equivalence: the runtime-dispatched FMA micro-kernel and the
//! portable scalar micro-kernel must agree to rounding error on every GEMM
//! shape the solvers produce.
//!
//! Both paths share packing, blocking, and the small-matrix fallback; only
//! the innermost register tile differs (8×6 AVX2+FMA vs 8×4 scalar). A fused
//! multiply-add rounds once where the scalar path rounds twice, so results
//! are *not* bit-identical — the contract is agreement within an
//! accumulation-length-scaled ulp bound, verified here against shapes that
//! stress every edge: sub-tile sizes, prime dimensions, tile boundaries,
//! cache-block boundaries, all four transpose combinations, and the
//! alpha/beta special cases the dispatcher short-circuits.
//!
//! The whole suite also runs under `LINALG_KERNEL=scalar` in CI, which
//! pins the dispatcher itself; here we bypass the process-wide cache via
//! `gemm_with_kernel` so one process covers both paths.

use linalg::blas3::gemm_naive;
use linalg::{gemm_with_kernel, KernelPath, Matrix, Op};

/// Elementwise tolerance for comparing two summation orders of a length-`k`
/// dot product with |entries| ≤ 1: a couple of ulps per accumulation step.
fn tol(k: usize, alpha: f64, beta: f64) -> f64 {
    let scale = alpha.abs() * (k as f64) + beta.abs() + 1.0;
    2.0 * f64::EPSILON * (k as f64 + 4.0) * scale
}

/// Runs one GEMM on both kernel paths (and the naive reference) and checks
/// pairwise agreement. Returns silently when the FMA path is unavailable on
/// the host — the scalar-vs-naive check still runs.
fn check_case(m: usize, n: usize, k: usize, alpha: f64, beta: f64, opa: Op, opb: Op, seed: u64) {
    let mut rng = util::Rng::new(seed);
    let a = match opa {
        Op::NoTrans => Matrix::random(m, k, &mut rng),
        Op::Trans => Matrix::random(k, m, &mut rng),
    };
    let b = match opb {
        Op::NoTrans => Matrix::random(k, n, &mut rng),
        Op::Trans => Matrix::random(n, k, &mut rng),
    };
    let c0 = Matrix::random(m, n, &mut rng);

    let mut c_ref = c0.clone();
    gemm_naive(alpha, &a, opa, &b, opb, beta, &mut c_ref);
    let mut c_scalar = c0.clone();
    gemm_with_kernel(
        KernelPath::Scalar,
        alpha,
        &a,
        opa,
        &b,
        opb,
        beta,
        &mut c_scalar,
    );

    let t = tol(k, alpha, beta);
    let label = format!("m={m} n={n} k={k} α={alpha} β={beta} {opa:?}/{opb:?}");
    assert!(
        c_scalar.max_abs_diff(&c_ref) <= t,
        "scalar vs naive: {} > {t} ({label})",
        c_scalar.max_abs_diff(&c_ref)
    );

    if KernelPath::Fma.available() {
        let mut c_fma = c0.clone();
        gemm_with_kernel(KernelPath::Fma, alpha, &a, opa, &b, opb, beta, &mut c_fma);
        assert!(
            c_fma.max_abs_diff(&c_scalar) <= t,
            "fma vs scalar: {} > {t} ({label})",
            c_fma.max_abs_diff(&c_scalar)
        );
    }
}

#[test]
fn paths_agree_on_edge_and_prime_sizes() {
    // Sub-tile, exact-tile, tile+1, primes, and a size past the KC=256 and
    // MC/NC cache-block boundaries.
    let sizes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 5),
        (7, 7, 7),
        (8, 6, 8), // exactly one FMA tile
        (8, 4, 8), // exactly one scalar tile
        (9, 7, 9), // one past both tile shapes
        (16, 12, 16),
        (17, 13, 31),
        (61, 53, 67),
        (129, 127, 257), // crosses MC, NR-block, and KC boundaries
    ];
    for (i, &(m, n, k)) in sizes.iter().enumerate() {
        check_case(m, n, k, 1.0, 0.0, Op::NoTrans, Op::NoTrans, 100 + i as u64);
    }
}

#[test]
fn paths_agree_on_all_op_combinations() {
    let ops = [Op::NoTrans, Op::Trans];
    let mut seed = 200;
    for &opa in &ops {
        for &opb in &ops {
            for &(m, n, k) in &[(13, 11, 17), (64, 48, 64), (97, 89, 101)] {
                check_case(m, n, k, 1.0, 1.0, opa, opb, seed);
                seed += 1;
            }
        }
    }
}

#[test]
fn paths_agree_on_alpha_beta_grid() {
    for (i, &alpha) in [0.0, 1.0, -0.5].iter().enumerate() {
        for (j, &beta) in [0.0, 1.0, -0.5].iter().enumerate() {
            check_case(
                33,
                29,
                41,
                alpha,
                beta,
                Op::NoTrans,
                Op::Trans,
                300 + (3 * i + j) as u64,
            );
        }
    }
}

#[test]
fn dispatched_default_matches_pinned_path() {
    // Whatever `kernel_path()` picked for this process must equal one of the
    // two pinned paths bit-for-bit (the dispatcher adds no third behaviour).
    let mut rng = util::Rng::new(400);
    let a = Matrix::random(37, 43, &mut rng);
    let b = Matrix::random(43, 31, &mut rng);
    let c0 = Matrix::random(37, 31, &mut rng);

    let mut c_default = c0.clone();
    linalg::gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 1.0, &mut c_default);
    let mut c_pinned = c0.clone();
    gemm_with_kernel(
        linalg::kernel_path(),
        1.0,
        &a,
        Op::NoTrans,
        &b,
        Op::NoTrans,
        1.0,
        &mut c_pinned,
    );
    assert_eq!(
        c_default.as_slice(),
        c_pinned.as_slice(),
        "dispatched gemm must be the pinned kernel, exactly"
    );
}

#[test]
fn unavailable_fma_request_falls_back_to_scalar_semantics() {
    // `gemm_with_kernel(Fma, …)` on any host must produce a valid product
    // (scalar fallback when the ISA is missing) — never garbage or a panic.
    let mut rng = util::Rng::new(500);
    let a = Matrix::random(19, 23, &mut rng);
    let b = Matrix::random(23, 17, &mut rng);
    let mut c = Matrix::zeros(19, 17);
    gemm_with_kernel(
        KernelPath::Fma,
        1.0,
        &a,
        Op::NoTrans,
        &b,
        Op::NoTrans,
        0.0,
        &mut c,
    );
    let mut c_ref = Matrix::zeros(19, 17);
    gemm_naive(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c_ref);
    assert!(c.max_abs_diff(&c_ref) <= tol(23, 1.0, 0.0));
}

#[test]
fn factorizations_identical_numerics_across_paths() {
    // QR/QRP/LU consume GEMM through `gemm`; pinning the path through the
    // same inputs must keep their *invariants* (reconstruction) intact on
    // both kernels. This is the in-process analogue of the CI job that
    // reruns the whole suite under LINALG_KERNEL=scalar.
    use linalg::blas3::matmul;
    let n = 48;
    let mut rng = util::Rng::new(600);
    let a = Matrix::random(n, n, &mut rng);

    let f = linalg::qr::qr_in_place(a.clone());
    let q = f.form_q();
    let r = Matrix::from_fn(n, n, |i, j| if i <= j { f.a[(i, j)] } else { 0.0 });
    let rec = matmul(&q, Op::NoTrans, &r, Op::NoTrans);
    assert!(rec.max_abs_diff(&a) < 1e-12 * n as f64);

    let fp = linalg::qrp::qrp_in_place(a.clone());
    let d = fp.r_diag();
    for w in d.windows(2) {
        assert!(w[0].abs() >= w[1].abs() * (1.0 - 1e-9), "R diagonal graded");
    }
}
