//! Property-based tests of the linear-algebra substrate's invariants.

use linalg::blas3::{gemm_naive, matmul};
use linalg::{gemm, Matrix, Op, Permutation};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-1, 1] and bounded dimensions.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-1.0f64..1.0, m * n)
            .prop_map(move |v| Matrix::from_col_major(m, n, v))
    })
}

/// Strategy: a square matrix.
fn square(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n)
            .prop_map(move |v| Matrix::from_col_major(n, n, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gemm_matches_naive_all_ops(
        a in matrix(24),
        kb in 1usize..24,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
    ) {
        let (opa, opb) = (
            if ta { Op::Trans } else { Op::NoTrans },
            if tb { Op::Trans } else { Op::NoTrans },
        );
        let (m, k) = match opa { Op::NoTrans => (a.nrows(), a.ncols()), Op::Trans => (a.ncols(), a.nrows()) };
        let _ = kb;
        let mut rng = util::Rng::new(7);
        let b = match opb {
            Op::NoTrans => Matrix::random(k, 5, &mut rng),
            Op::Trans => Matrix::random(5, k, &mut rng),
        };
        let c0 = Matrix::random(m, 5, &mut rng);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(alpha, &a, opa, &b, opb, beta, &mut c1);
        gemm_naive(alpha, &a, opa, &b, opb, beta, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-11);
    }

    #[test]
    fn qr_reconstructs_and_q_orthogonal(a in square(20)) {
        let n = a.nrows();
        let f = linalg::qr::qr_in_place(a.clone());
        let q = f.form_q();
        let qtq = matmul(&q, Op::Trans, &q, Op::NoTrans);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(n)) < 1e-11);
        let r = Matrix::from_fn(n, n, |i, j| if i <= j { f.a[(i, j)] } else { 0.0 });
        let rec = matmul(&q, Op::NoTrans, &r, Op::NoTrans);
        prop_assert!(rec.max_abs_diff(&a) < 1e-10 * (n as f64).max(1.0));
    }

    #[test]
    fn qrp_pivots_give_valid_permutation_and_graded_diag(a in square(20)) {
        let n = a.nrows();
        let f = linalg::qrp::qrp_in_place(a.clone());
        // jpvt is a permutation of 0..n.
        let mut seen = vec![false; n];
        for &p in &f.jpvt {
            prop_assert!(p < n && !seen[p]);
            seen[p] = true;
        }
        // |diag(R)| is non-increasing.
        let d = f.r_diag();
        for w in d.windows(2) {
            prop_assert!(w[0].abs() >= w[1].abs() * (1.0 - 1e-9));
        }
        // A·P = Q·R columnwise.
        let q = f.form_q();
        let r = Matrix::from_fn(n, n, |i, j| if i <= j { f.a[(i, j)] } else { 0.0 });
        let qr = matmul(&q, Op::NoTrans, &r, Op::NoTrans);
        for j in 0..n {
            for i in 0..n {
                prop_assert!((qr[(i, j)] - a[(i, f.jpvt[j])]).abs() < 1e-10 * n as f64);
            }
        }
    }

    #[test]
    fn lu_solve_residual_small(a0 in square(20)) {
        let n = a0.nrows();
        // Diagonally dominate to stay comfortably nonsingular.
        let mut a = a0;
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let mut rng = util::Rng::new(3);
        let x = Matrix::random(n, 3, &mut rng);
        let b = matmul(&a, Op::NoTrans, &x, Op::NoTrans);
        let sol = linalg::lu::solve(&a, &b).unwrap();
        prop_assert!(sol.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn lu_det_sign_consistency(a0 in square(12)) {
        let n = a0.nrows();
        let mut a = a0;
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let f = linalg::lu::lu_in_place(a).unwrap();
        let (s, l) = f.sign_log_det();
        let d = f.det();
        prop_assert_eq!(s, d.signum());
        prop_assert!((l - d.abs().ln()).abs() < 1e-8 * l.abs().max(1.0));
    }

    #[test]
    fn permutation_inverse_roundtrip(n in 1usize..30, seed in 0u64..1000) {
        let mut rng = util::Rng::new(seed);
        // Random permutation via Fisher–Yates.
        let mut fwd: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.next_range(i as u64 + 1) as usize;
            fwd.swap(i, j);
        }
        let p = Permutation::from_forward(fwd);
        let a = Matrix::random(n, n, &mut rng);
        let back = p.inverse().permute_cols(&p.permute_cols(&a));
        prop_assert_eq!(back, a.clone());
        let back2 = p.permute_rows(&p.permute_rows_t(&a));
        prop_assert_eq!(back2, a);
    }

    #[test]
    fn nrm2_scaling_invariant(v in proptest::collection::vec(-1.0f64..1.0, 1..50), s in 1e-10f64..1e10) {
        let base = linalg::blas1::nrm2(&v);
        let scaled: Vec<f64> = v.iter().map(|x| x * s).collect();
        let got = linalg::blas1::nrm2(&scaled);
        prop_assert!((got - s * base).abs() <= 1e-12 * (s * base).abs());
    }

    #[test]
    fn jacobi_eigen_decomposition(a0 in square(12)) {
        let n = a0.nrows();
        // Symmetrise.
        let mut a = a0.clone();
        a.axpy(1.0, &a0.transpose());
        a.scale(0.5);
        let e = linalg::eig::sym_eig(&a).unwrap();
        let av = matmul(&a, Op::NoTrans, &e.vectors, Op::NoTrans);
        for j in 0..n {
            for i in 0..n {
                prop_assert!((av[(i, j)] - e.values[j] * e.vectors[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn svd_reconstruction_and_invariants(a in matrix(14)) {
        let work = if a.nrows() >= a.ncols() { a.clone() } else { a.transpose() };
        let d = linalg::svd(&work).unwrap();
        // Reconstruction.
        let mut usv = d.u.clone();
        linalg::scale::col_scale(&d.s, &mut usv);
        let rec = matmul(&usv, Op::NoTrans, &d.v, Op::Trans);
        prop_assert!(rec.max_abs_diff(&work) < 1e-10 * work.max_abs().max(1.0));
        // σ descending and non-negative.
        for w in d.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-14);
        }
        prop_assert!(d.s.iter().all(|&x| x >= 0.0));
        // ‖A‖_F² = Σσ².
        let fro2: f64 = work.as_slice().iter().map(|x| x * x).sum();
        let s2: f64 = d.s.iter().map(|x| x * x).sum();
        prop_assert!((fro2 - s2).abs() < 1e-9 * fro2.max(1.0));
    }

    #[test]
    fn tsqr_matches_contract(m in 8usize..48, n in 1usize..6, br in 4usize..16, seed in 0u64..500) {
        prop_assume!(m >= n);
        let mut rng = util::Rng::new(seed);
        let a = Matrix::random(m, n, &mut rng);
        let f = linalg::tsqr(&a, br);
        let qtq = matmul(&f.q, Op::Trans, &f.q, Op::NoTrans);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(n)) < 1e-11);
        let rec = matmul(&f.q, Op::NoTrans, &f.r, Op::NoTrans);
        prop_assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn trsm_inverts_trmm(n in 1usize..24, seed in 0u64..500) {
        let mut rng = util::Rng::new(seed);
        let u = Matrix::from_fn(n, n, |i, j| {
            if i < j { rng.next_f64() - 0.5 } else if i == j { 1.0 + rng.next_f64() } else { 0.0 }
        });
        let x = Matrix::random(n, 4, &mut rng);
        let mut y = x.clone();
        linalg::tri::trmm_upper(&u, &mut y);
        linalg::tri::trsm_upper(&u, &mut y);
        prop_assert!(y.max_abs_diff(&x) < 1e-9);
    }
}
