//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` §3 for the index). Because the paper's production runs took
//! 36 hours on a 12-core node, each binary defaults to a scaled-down
//! workload that preserves the *shape* of the result and accepts `--full`
//! to run paper-scale parameters. Output is whitespace-aligned text, one
//! record per line, suitable for piping into plotting tools.

use dqmc::{HsField, ModelParams, SimParams};
use lattice::Lattice;
use std::time::Instant;

/// Common command-line options for the harness binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchOpts {
    /// Run paper-scale parameters instead of the scaled-down defaults.
    pub full: bool,
    /// Run a seconds-scale workload (CI perf-smoke); overrides `--full`.
    pub smoke: bool,
    /// Override the RNG seed.
    pub seed: Option<u64>,
    /// Fixed device-pool size for scheduler benches; `None` scales the
    /// pool with the worker count.
    pub pool_size: Option<usize>,
    /// Override the lattice side for scheduler benches (`--lx`).
    pub lx: Option<usize>,
    /// Override the measurement sweeps per chain for scheduler benches
    /// (`--sweeps`).
    pub sweeps: Option<usize>,
    /// Override the crowd size B for scheduler benches (`--crowd`).
    pub crowd: Option<usize>,
}

impl BenchOpts {
    /// Parses `--full`, `--seed <u64>`, `--pool-size <usize>`,
    /// `--lx <usize>`, `--sweeps <usize>` and `--crowd <usize>` from
    /// `std::env::args`.
    pub fn from_env() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        let usize_arg = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{flag} requires an integer"))
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => opts.full = true,
                "--smoke" => opts.smoke = true,
                "--seed" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer");
                    opts.seed = Some(v);
                }
                "--pool-size" => opts.pool_size = Some(usize_arg(&mut args, "--pool-size")),
                "--lx" => opts.lx = Some(usize_arg(&mut args, "--lx")),
                "--sweeps" => opts.sweeps = Some(usize_arg(&mut args, "--sweeps")),
                "--crowd" => opts.crowd = Some(usize_arg(&mut args, "--crowd")),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full (paper-scale parameters), --smoke (CI-scale), \
                         --seed <u64>, --pool-size <usize> (fixed device pool), \
                         --lx <usize> (lattice side), --sweeps <usize> (measurement \
                         sweeps per chain), --crowd <usize> (walkers batched per job)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// The seed to use (default 1234).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(1234)
    }
}

/// Flop count of an `n×n×n` GEMM.
pub fn flops_gemm(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Flop count of an `n×n` Householder QR.
pub fn flops_qr(n: usize) -> f64 {
    4.0 / 3.0 * (n as f64).powi(3)
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Best-of-`reps` timing (warm cache) of a repeatable closure.
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        std::hint::black_box(&out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Standard half-filled square-lattice model used across the harness.
pub fn square_model(lside: usize, u: f64, beta: f64, dtau: f64) -> ModelParams {
    let slices = (beta / dtau).round().max(1.0) as usize;
    ModelParams::new(Lattice::square(lside, lside, 1.0), u, 0.0, dtau, slices)
}

/// A thermalised HS field + factory pair for kernel-level workloads:
/// runs a few warmup sweeps so the field is physically plausible rather
/// than uniformly random.
pub fn thermalised_state(
    model: &ModelParams,
    warmup: usize,
    seed: u64,
) -> (dqmc::BMatrixFactory, HsField) {
    let params = SimParams::new(model.clone())
        .with_seed(seed)
        .with_sweeps(warmup, 0);
    let mut core = dqmc::sweep::DqmcCore::new(params);
    for _ in 0..warmup {
        core.sweep(None);
    }
    let fac = dqmc::BMatrixFactory::new(model);
    (fac, core.h)
}

/// Lattice side lengths for the scaling studies (paper: 256…1024 sites).
pub fn site_sweep(full: bool) -> Vec<usize> {
    if full {
        vec![16, 20, 24, 28, 32] // N = 256 … 1024, the paper's range
    } else {
        vec![6, 8, 10, 12, 14] // N = 36 … 196, same shape in minutes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_formulas() {
        assert_eq!(flops_gemm(10), 2000.0);
        assert!((flops_qr(10) - 4000.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn timing_helpers_positive() {
        let (v, t) = time_once(|| (0..1000).sum::<usize>());
        assert_eq!(v, 499_500);
        assert!(t >= 0.0);
        let best = time_best(3, || std::hint::black_box(42));
        assert!(best >= 0.0);
    }

    #[test]
    fn square_model_slices() {
        let m = square_model(4, 2.0, 8.0, 0.125);
        assert_eq!(m.slices, 64);
        assert_eq!(m.nsites(), 16);
        assert!(m.is_half_filled());
    }

    #[test]
    fn thermalised_state_produces_mixed_field() {
        let m = square_model(2, 4.0, 1.0, 0.125);
        let (_, h) = thermalised_state(&m, 3, 9);
        assert!(h.mean().abs() < 1.0, "field should not stay saturated");
    }

    #[test]
    fn site_sweep_ranges() {
        assert_eq!(site_sweep(false).len(), 5);
        assert_eq!(*site_sweep(true).last().unwrap(), 32);
    }
}
