//! Figure 3: average wall-clock time of one Green's-function evaluation vs
//! number of sites, for the original method (Algorithm 2, clusters rebuilt
//! every evaluation) and the improved method of the paper (Algorithm 3 with
//! pre-pivoting + cluster recycling).
//!
//! The paper reports up to 3× speedup at L = 160 on 12 Westmere cores;
//! the reproduced quantity is the ratio's shape across N.
//!
//! Usage: `cargo run --release -p bench --bin fig3 [--full]`

use bench::{site_sweep, square_model, thermalised_state, time_once, BenchOpts};
use dqmc::{greens_from_udt, stratify, ClusterCache, Spin, StratAlgo};
use util::table::{fmt_f, Table};

/// Times `evals` successive Green's-function evaluations in the style of a
/// sweep: between evaluations one cluster is invalidated (as one slice of
/// field updates would) so recycling shows its real benefit.
fn avg_eval_seconds(
    fac: &dqmc::BMatrixFactory,
    h: &dqmc::HsField,
    k: usize,
    algo: StratAlgo,
    recycle: bool,
    evals: usize,
) -> f64 {
    let slices = h.slices();
    let mut cache = ClusterCache::new(slices, k);
    let nclusters = cache.nclusters();
    let mut total = 0.0;
    for e in 0..evals {
        if !recycle {
            cache.invalidate_all();
        } else {
            // One cluster went stale since the last evaluation.
            let (lo, _) = cache.range(e % nclusters);
            cache.invalidate_slice(lo);
        }
        let boundary = ((e % nclusters) + 1) * k - 1;
        let boundary = boundary.min(slices - 1);
        let (_, secs) = time_once(|| {
            let factors = cache.factors_after_slice(fac, h, boundary, Spin::Up);
            greens_from_udt(&stratify(&factors, algo))
        });
        total += secs;
    }
    total / evals as f64
}

fn main() {
    let opts = BenchOpts::from_env();
    let (beta, dtau, evals) = if opts.full {
        (32.0, 0.2, 20) // L = 160, the paper's depth
    } else {
        (8.0, 0.2, 10) // L = 40
    };
    let k = 10;

    println!(
        "# Figure 3: seconds per Green's function evaluation (L = {})",
        (beta / dtau) as usize
    );
    let mut table = Table::new(vec!["N", "qrp-rebuild", "prepivot-recycle", "speedup"]);
    for lside in site_sweep(opts.full) {
        let n = lside * lside;
        let model = square_model(lside, 4.0, beta, dtau);
        let (fac, h) = thermalised_state(&model, 2, opts.seed());
        let t_old = avg_eval_seconds(&fac, &h, k, StratAlgo::Qrp, false, evals);
        let t_new = avg_eval_seconds(&fac, &h, k, StratAlgo::PrePivot, true, evals);
        table.row(vec![
            n.to_string(),
            fmt_f(t_old, 4),
            fmt_f(t_new, 4),
            fmt_f(t_old / t_new, 2),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: up to 3x faster with pre-pivoting + cluster reuse");
}
