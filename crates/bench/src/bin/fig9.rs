//! Figure 9: performance of matrix clustering (Algorithm 4/5) and wrapping
//! (Algorithm 6/7) on the simulated GPU, against the device and host DGEMM
//! rates, across matrix sizes.
//!
//! Times are produced by the deterministic device model (`gpusim`); the
//! numerics behind them are real and verified against the host path. The
//! reproduced shape: clustering ≈ device DGEMM ≫ wrapping > host DGEMM.
//!
//! Usage: `cargo run --release -p bench --bin fig9 [--full]`

use bench::BenchOpts;
use dqmc::{BMatrixFactory, HsField, ModelParams, Spin};
use gpusim::{cluster_custom_kernel, wrap_on_device, Device, DeviceSpec, HostSpec};
use lattice::Lattice;
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let sides: &[usize] = if opts.full {
        &[8, 12, 16, 20, 24, 28, 32]
    } else {
        &[8, 12, 16, 20]
    };
    let k = 10usize;

    println!("# Figure 9: simulated-GPU GFlop/s of clustering and wrapping vs N");
    let mut table = Table::new(vec![
        "N",
        "gpu-cluster",
        "gpu-wrap",
        "gpu-dgemm",
        "cpu-dgemm",
    ]);
    for &lside in sides {
        let n = lside * lside;
        let model = ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.125, k);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(opts.seed());
        let h = HsField::random(n, k, &mut rng);

        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let expk = dev.set_matrix(fac.expk());
        let expk_inv = dev.set_matrix(fac.expk_inv());

        // Clustering: k−1 GEMMs of order n per transfer round trip.
        dev.reset_clock();
        let _ = cluster_custom_kernel(&mut dev, &expk, &fac, &h, 0, k, Spin::Up);
        let t_cluster = dev.elapsed();
        let f_cluster = (k - 1) as f64 * 2.0 * (n as f64).powi(3);

        // Wrapping: 2 GEMMs per G round trip.
        let g = dqmc::greens_from_udt(&dqmc::stratify(
            &[fac.cluster(&h, 0, k, Spin::Up)],
            dqmc::StratAlgo::PrePivot,
        ))
        .g;
        dev.reset_clock();
        let _ = wrap_on_device(&mut dev, &expk, &expk_inv, &fac, &h, 0, Spin::Up, &g);
        let t_wrap = dev.elapsed();
        let f_wrap = 2.0 * 2.0 * (n as f64).powi(3);

        let host = HostSpec::nehalem_2s4c();
        table.row(vec![
            n.to_string(),
            fmt_f(f_cluster / t_cluster / 1e9, 1),
            fmt_f(f_wrap / t_wrap / 1e9, 1),
            fmt_f(dev.spec().gemm_rate(n), 1),
            fmt_f(host.gemm_rate(n), 1),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: clustering near GPU dgemm; wrapping lower but above CPU dgemm");
}
