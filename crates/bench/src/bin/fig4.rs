//! Figure 4: effective GFlop/s of the Green's-function evaluation vs N,
//! against the DGEMM and DGEQRF rates at the same order.
//!
//! The paper's claim: the improved evaluation runs at roughly 70 % of the
//! DGEMM rate and *above* DGEQRF. The flop attribution per evaluation is
//! `L_k` stratification iterations (GEMM + QR + form-Q + T update) plus the
//! clustering GEMMs actually rebuilt and the final assembly.
//!
//! Usage: `cargo run --release -p bench --bin fig4 [--full]`

use bench::{
    flops_gemm, flops_qr, site_sweep, square_model, thermalised_state, time_best, BenchOpts,
};
use dqmc::{greens_from_udt, stratify, ClusterCache, Spin, StratAlgo};
use linalg::{gemm, Matrix, Op};
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let (beta, dtau) = if opts.full { (32.0, 0.2) } else { (8.0, 0.2) };
    let k = 10usize;
    let slices = (beta / dtau) as usize;
    let lk = slices.div_ceil(k);

    println!("# Figure 4: Green's function evaluation GFlop/s vs kernels (L = {slices})");
    let mut table = Table::new(vec!["N", "greens-eval", "dgemm", "dgeqrf"]);
    for lside in site_sweep(opts.full) {
        let n = lside * lside;
        let model = square_model(lside, 4.0, beta, dtau);
        let (fac, h) = thermalised_state(&model, 2, opts.seed());

        // One evaluation with a warm cache and one stale cluster: the
        // steady-state workload of a sweep.
        let mut cache = ClusterCache::new(slices, k);
        let _ = cache.factors_after_slice(&fac, &h, slices - 1, Spin::Up);
        let secs = time_best(3, || {
            cache.invalidate_slice(0);
            let factors = cache.factors_after_slice(&fac, &h, slices - 1, Spin::Up);
            greens_from_udt(&stratify(&factors, StratAlgo::PrePivot))
        });
        // Flops: k−1 clustering GEMMs (one rebuilt cluster) + per-iteration
        // stratification work + assembly (matching gpusim::hybrid's model).
        let nf = n as f64;
        let flops = (k - 1) as f64 * 2.0 * nf.powi(3)
            + lk as f64 * (2.0 + 4.0 / 3.0 + 4.0 / 3.0 + 1.0) * nf.powi(3)
            + 8.0 / 3.0 * nf.powi(3);

        let mut rng = util::Rng::new(opts.seed());
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        let t_gemm = time_best(3, || {
            let mut c = Matrix::zeros(n, n);
            gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
            c
        });
        let t_qr = time_best(3, || linalg::qr::qr_in_place(a.clone()));

        table.row(vec![
            n.to_string(),
            fmt_f(flops / secs / 1e9, 2),
            fmt_f(flops_gemm(n) / t_gemm / 1e9, 2),
            fmt_f(flops_qr(n) / t_qr / 1e9, 2),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: evaluation ≈ 70% of dgemm and above dgeqrf");
}
