//! Dynamic-measurement study: the imaginary-time Green's function
//! `G_loc(τ)` and `G_k(τ)` at Γ, M, X from the DQMC engine's unequal-time
//! machinery, compared against exact diagonalisation where the cluster is
//! small enough (2-site dimer).
//!
//! Not a numbered figure in the paper (its measurements are the static
//! ones), but QUEST's measurement suite is "both static and dynamic" —
//! this exercises the dynamic half end-to-end.
//!
//! Usage: `cargo run --release -p bench --bin gtau [--full]`

use bench::BenchOpts;
use dqmc::{ModelParams, SimParams, Simulation};
use lattice::Lattice;

fn main() {
    let opts = BenchOpts::from_env();

    // Part 1: dimer vs exact diagonalisation.
    let (u, beta, dtau): (f64, f64, f64) = (4.0, 2.0, 0.05);
    let slices = (beta / dtau).round() as usize;
    let (warm, meas) = if opts.full { (500, 5000) } else { (200, 1000) };
    println!("# G_loc(tau): DQMC dimer vs exact diagonalisation (U={u}, beta={beta})");
    let model = ModelParams::new(Lattice::square(2, 1, 1.0), u, 0.0, dtau, slices);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(warm, meas)
            .with_seed(opts.seed())
            .with_cluster_size(10)
            .with_bin_size(20)
            .with_unequal_time(true),
    );
    sim.run();
    let exact =
        ed::ThermalEnsemble::new(ed::HubbardEd::new(Lattice::square(2, 1, 1.0), u, 0.0), beta);
    let tdm = sim.time_dependent().expect("enabled");
    println!("tau     dqmc      err       ed");
    for (tau, (g, e)) in tdm.taus().iter().zip(tdm.gloc()) {
        println!(
            "{tau:>5.2}  {g:>8.5}  {e:>8.5}  {:>8.5}",
            exact.greens_tau_local(*tau)
        );
    }

    // Part 2: momentum-resolved decay on a lattice.
    let lside = if opts.full { 8 } else { 4 };
    println!("\n# G_k(tau) on {lside}x{lside}, U=4, beta=4 (decay rate ~ quasiparticle energy)");
    let model = ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.1, 40);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(warm / 4, meas / 4)
            .with_seed(opts.seed() + 1)
            .with_cluster_size(10)
            .with_bin_size(10)
            .with_unequal_time(true),
    );
    sim.run();
    let tdm = sim.time_dependent().expect("enabled");
    println!("tau     G_Gamma      G_M        G_X");
    let (gg, gm, gx) = (tdm.gk(0), tdm.gk(1), tdm.gk(2));
    for (i, tau) in tdm.taus().iter().enumerate() {
        println!(
            "{tau:>5.2}  {:>9.5}  {:>9.5}  {:>9.5}",
            gg[i].0, gm[i].0, gx[i].0
        );
    }
    println!("# Gamma (filled, eps<0): G(0) ~ 0 and grows to ~1 at beta as");
    println!("# e^(-(beta-tau)|eps|); M mirrors it (ph symmetry); X (on the");
    println!("# Fermi surface) stays near 1/2 and symmetric about beta/2.");
}
