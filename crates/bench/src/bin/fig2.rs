//! Figure 2: distribution of relative differences between the Green's
//! functions of Algorithm 2 (QRP stratification) and Algorithm 3
//! (pre-pivoted stratification), sampled from a running DQMC simulation,
//! for U = 2 … 8.
//!
//! Paper parameters: 16×16 lattice, L = 160 (β = 32, Δτ = 0.2), 1000
//! evaluations per U. Default here: 8×8, L = 40, 200 evaluations — the
//! observed distribution sits in the same ~1e−13…1e−10 band and is equally
//! insensitive to U, which is the claim under test.
//!
//! Usage: `cargo run --release -p bench --bin fig2 [--full]`

use bench::BenchOpts;
use dqmc::{greens_from_udt, stratify, SimParams, Spin, StratAlgo};
use util::stats::FiveNumber;
use util::table::{fmt_e, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let (lside, beta, dtau, evals) = if opts.full {
        (16, 32.0, 0.2, 1000)
    } else {
        (8, 8.0, 0.2, 200)
    };

    println!("# Figure 2: ‖G_qrp − G_prepivot‖_F / ‖G_qrp‖_F distribution per U");
    println!("# lattice {lside}x{lside}, beta {beta}, dtau {dtau}, {evals} evaluations");
    let mut table = Table::new(vec!["U", "min", "q1", "median", "q3", "max"]);

    for u in [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0] {
        let model = bench::square_model(lside, u, beta, dtau);
        let params = SimParams::new(model)
            .with_seed(opts.seed() + u as u64)
            .with_cluster_size(10);
        let mut core = dqmc::sweep::DqmcCore::new(params);

        let mut diffs = Vec::with_capacity(evals);
        // Sample Green's function evaluations from an evolving field: one
        // sweep between samples keeps configurations decorrelated enough.
        while diffs.len() < evals {
            core.sweep(None);
            for spin in Spin::BOTH {
                if diffs.len() >= evals {
                    break;
                }
                let l = core.params.model.slices - 1;
                let factors = core.cache.factors_after_slice(&core.fac, &core.h, l, spin);
                let g_qrp = greens_from_udt(&stratify(&factors, StratAlgo::Qrp));
                let g_pre = greens_from_udt(&stratify(&factors, StratAlgo::PrePivot));
                diffs.push(dqmc::greens::relative_difference(&g_pre.g, &g_qrp.g));
            }
        }
        let f = FiveNumber::from_samples(&diffs);
        table.row(vec![
            format!("{u}"),
            fmt_e(f.min, 2),
            fmt_e(f.q1, 2),
            fmt_e(f.median, 2),
            fmt_e(f.q3, 2),
            fmt_e(f.max, 2),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: most differences below 1e-12; U has no significant impact");
}
