//! Figure 7: z-component spin–spin correlation C_zz(r) on a small and a
//! large lattice (paper: 12×12 vs 32×32, ρ = 1, U = 2, β = 32).
//!
//! The half-filled Hubbard model orders antiferromagnetically: C_zz(r)
//! alternates sign in a chessboard pattern. The harness prints the full
//! displacement grid (minimal-image coordinates) and the staggered
//! magnitude |C_zz| at the longest distance — the quantity whose
//! extrapolation to N → ∞ decides true long-range order.
//!
//! Usage: `cargo run --release -p bench --bin fig7 [--full]`

use bench::{square_model, BenchOpts};
use dqmc::{SimParams, Simulation};

fn main() {
    let opts = BenchOpts::from_env();
    let (sides, beta, dtau, warm, meas): (&[usize], f64, f64, usize, usize) = if opts.full {
        (&[12, 32], 32.0, 0.2, 1000, 2000)
    } else {
        (&[4, 8], 6.0, 0.15, 80, 160)
    };
    // U = 2 per the paper; the AF chessboard is weak but visible.
    let u = 2.0;

    println!("# Figure 7: C_zz(r) chessboard, rho=1 U={u} beta={beta}");
    for &lside in sides {
        let model = square_model(lside, u, beta, dtau);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(warm, meas)
                .with_seed(opts.seed() + lside as u64)
                .with_bin_size(10),
        );
        sim.run();
        let czz = sim.observables().czz();
        let lat = lattice::Lattice::square(lside, lside, 1.0);
        println!("\n# lattice {lside}x{lside}");
        println!("x  y  czz");
        for dy in 0..lside {
            for dx in 0..lside {
                let (x, y) = lat.min_image(dx, dy);
                println!("{x}  {y}  {:.5}", czz[(dx, dy)]);
            }
        }
        // Longest-distance correlation C_zz(L/2, L/2).
        let far = czz[(lside / 2, lside / 2)];
        let (saf, saf_err) = sim.observables().af_structure_factor();
        println!("# C_zz(L/2,L/2) = {far:.5}   S(pi,pi) = {saf:.4} +- {saf_err:.4}");
    }
    println!("\n# paper: chessboard sign pattern; large lattices estimate the");
    println!("# asymptotic C_zz(L/2,L/2) far better");
}
