//! Figure 10: Green's-function evaluation performance on the hybrid
//! CPU+GPU system vs the CPU-only path, across system sizes (L = 160,
//! clustering on the device, stratification on the host).
//!
//! Usage: `cargo run --release -p bench --bin fig10 [--full]`

use bench::BenchOpts;
use dqmc::{BMatrixFactory, HsField, ModelParams, Spin, StratAlgo};
use gpusim::{gpu_stratified_greens, hybrid_greens, Device, DeviceSpec, HostSpec};
use lattice::Lattice;
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let (sides, slices): (&[usize], usize) = if opts.full {
        (&[8, 12, 16, 20, 24, 28, 32], 160)
    } else {
        (&[8, 12, 16, 20], 40)
    };
    let k = 10;

    println!("# Figure 10: hybrid CPU+GPU vs CPU-only Green's evaluation (L = {slices})");
    println!("# (gpu-full = stratification on the device too: the paper's future work)");
    let mut table = Table::new(vec![
        "N",
        "hybrid-gflops",
        "cpu-gflops",
        "speedup",
        "gpu-full-speedup",
    ]);
    for &lside in sides {
        let n = lside * lside;
        let model = ModelParams::new(Lattice::square(lside, lside, 1.0), 4.0, 0.0, 0.125, slices);
        let fac = BMatrixFactory::new(&model);
        let mut rng = util::Rng::new(opts.seed());
        let h = HsField::random(n, slices, &mut rng);

        let mut dev = Device::new(DeviceSpec::tesla_c2050());
        let host = HostSpec::nehalem_2s4c();
        let rep = hybrid_greens(&mut dev, &host, &fac, &h, Spin::Up, k, StratAlgo::PrePivot);
        let mut dev2 = Device::new(DeviceSpec::tesla_c2050());
        let full =
            gpu_stratified_greens(&mut dev2, &host, &fac, &h, Spin::Up, k, StratAlgo::PrePivot);
        table.row(vec![
            n.to_string(),
            fmt_f(rep.hybrid_gflops(), 1),
            fmt_f(rep.cpu_gflops(), 1),
            fmt_f(rep.cpu_seconds / rep.hybrid_seconds, 2),
            fmt_f(rep.cpu_seconds / full.gpu_seconds, 2),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: hybrid clearly above CPU-only, gap widening with N");
}
