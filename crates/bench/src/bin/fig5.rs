//! Figure 5: mean momentum distribution ⟨n_k⟩ along the momentum-space
//! symmetry line (0,0) → (π,π) → (π,0) → (0,0) for several lattice sizes.
//!
//! Paper parameters: ρ = 1, U = 2, β = 32 (L = 160), lattices 16²…32²,
//! 1000 + 2000 sweeps. Default here: U = 2, β = 6, lattices 4²…8², reduced
//! sweeps — the sharp Fermi-surface crossing near the middle of the
//! (0,0)→(π,π) segment survives the scaling-down.
//!
//! Usage: `cargo run --release -p bench --bin fig5 [--full]`

use bench::{square_model, BenchOpts};
use dqmc::{SimParams, Simulation};

fn main() {
    let opts = BenchOpts::from_env();
    let (sides, beta, dtau, warm, meas): (&[usize], f64, f64, usize, usize) = if opts.full {
        (&[16, 20, 24, 28, 32], 32.0, 0.2, 1000, 2000)
    } else {
        (&[4, 6, 8], 6.0, 0.15, 60, 120)
    };

    println!("# Figure 5: <n_k> along (0,0)->(pi,pi)->(pi,0)->(0,0)");
    println!("# rho=1 U=2 beta={beta} ; columns: arc then one <n_k> column per lattice");
    let mut runs = Vec::new();
    for &lside in sides {
        let model = square_model(lside, 2.0, beta, dtau);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(warm, meas)
                .with_seed(opts.seed() + lside as u64)
                .with_bin_size(10),
        );
        sim.run();
        let path = sim.observables().momentum_distribution_path();
        eprintln!(
            "# {lside}x{lside}: sign {:.3}, acceptance {:.2}",
            sim.observables().avg_sign().0,
            sim.acceptance_rate()
        );
        runs.push((lside, path));
    }

    // Print each lattice as its own block (path lengths differ).
    for (lside, path) in &runs {
        println!("\n# lattice {lside}x{lside}");
        println!("arc  n_k");
        for (arc, v) in path {
            println!("{arc:.4}  {v:.4}");
        }
    }
    println!("\n# paper: sharp Fermi surface near the middle of (0,0)->(pi,pi);");
    println!("# larger lattices resolve the discontinuity better");
}
