//! Table I: percentage of simulation time per phase — delayed rank-1
//! updates, stratification, clustering, wrapping, physical measurements —
//! across system sizes.
//!
//! The paper's profile at N = 256…1024: stratification ≈ 44–49 %, delayed
//! updates ≈ 14–17 %, clustering and wrapping ≈ 8–12 % each, measurements
//! ≈ 18–20 %; Green's-function work in total ≈ 65 % (down from 95 % in
//! sequential QUEST).
//!
//! Usage: `cargo run --release -p bench --bin table1 [--full]`

use bench::{site_sweep, square_model, BenchOpts};
use dqmc::{SimParams, Simulation};
use util::table::{fmt_f, Table};

fn profile_row(
    lside: usize,
    beta: f64,
    dtau: f64,
    warm: usize,
    meas: usize,
    seed: u64,
    dynamic: bool,
) -> Vec<String> {
    let n = lside * lside;
    let model = square_model(lside, 4.0, beta, dtau);
    let mut sim = Simulation::new(
        SimParams::new(model)
            .with_sweeps(warm, meas)
            .with_seed(seed)
            .with_unequal_time(dynamic),
    );
    sim.run();
    let rep = sim.phase_report();
    let pct = |name: &str| {
        rep.rows
            .iter()
            .find(|(p, _, _)| p == name)
            .map(|(_, _, pct)| *pct)
            .unwrap_or(0.0)
    };
    vec![
        n.to_string(),
        fmt_f(pct("delayed-update"), 1),
        fmt_f(pct("stratification"), 1),
        fmt_f(pct("clustering"), 1),
        fmt_f(pct("wrapping"), 1),
        fmt_f(pct("measurement"), 1),
    ]
}

fn main() {
    let opts = BenchOpts::from_env();
    let (beta, dtau, warm, meas) = if opts.full {
        (32.0, 0.2, 100, 200)
    } else {
        (4.0, 0.2, 10, 20)
    };
    let headers = vec![
        "N",
        "delayed-update",
        "stratification",
        "clustering",
        "wrapping",
        "measurement",
    ];

    println!("# Table I: % of execution time per phase (beta={beta}, {warm}+{meas} sweeps)");
    println!("# (a) static measurements only");
    let mut table = Table::new(headers.clone());
    for lside in site_sweep(opts.full) {
        table.row(profile_row(
            lside,
            beta,
            dtau,
            warm,
            meas,
            opts.seed(),
            false,
        ));
    }
    print!("{}", table.render());

    // QUEST's measurement suite includes dynamic (unequal-time) observables,
    // which is what makes its measurement share ≈ 18-20 %. Enable ours for
    // the comparable profile.
    println!("\n# (b) with dynamic (unequal-time) measurements, as QUEST runs them");
    let mut table = Table::new(headers);
    for lside in site_sweep(opts.full) {
        table.row(profile_row(
            lside,
            beta,
            dtau,
            warm,
            meas,
            opts.seed(),
            true,
        ));
    }
    print!("{}", table.render());
    println!("# paper (N=256..1024): 14-17 / 44-49 / 8-12 / 9-12 / 18-20");
}
