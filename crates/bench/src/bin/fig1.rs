//! Figure 1: performance of DGEMM vs DGEQRF vs DGEQP3 across matrix sizes.
//!
//! The paper's point: matrix–matrix multiply reaches near-peak even at DQMC
//! sizes, unpivoted QR lands below it (panel overhead), and pivoted QR far
//! below both (level-2 norm updates) — which is why replacing QRP with a
//! pre-pivot + QR pays. Absolute GFlop/s depend on the machine; the ordering
//! and the gap shape are the reproduced result.
//!
//! Since the SIMD dispatch landed, the GEMM row is measured twice: once on
//! the runtime-selected kernel (FMA where the host supports it) and once
//! pinned to the portable scalar kernel, so the figure doubles as the
//! micro-kernel speedup record. Results are also written to
//! `BENCH_fig1.json` for the checked-in benchmark artifact.
//!
//! Usage: `cargo run --release -p bench --bin fig1 [--full | --smoke]`

use bench::{flops_gemm, flops_qr, time_best, BenchOpts};
use linalg::{gemm_with_kernel, kernel_path, KernelPath, Matrix, Op};
use util::table::{fmt_f, Table};

struct Row {
    n: usize,
    gemm: f64,
    gemm_scalar: f64,
    qr: f64,
    qrp: f64,
}

fn main() {
    let opts = BenchOpts::from_env();
    let sizes: &[usize] = if opts.smoke {
        &[64, 128, 256]
    } else if opts.full {
        &[128, 256, 384, 512, 768, 1024, 1536, 2048]
    } else {
        &[128, 256, 384, 512, 768, 1024]
    };
    let reps = |n: usize| if n <= 512 { 3 } else { 1 };
    let dispatched = kernel_path();

    println!("# Figure 1: kernel GFlop/s vs matrix size");
    println!("# (expected shape: gemm > qr > qrp at every size)");
    println!("# dispatched gemm kernel: {}", dispatched.name());
    let mut table = Table::new(vec![
        "N",
        "dgemm",
        "dgemm(scalar)",
        "speedup",
        "dgeqrf",
        "dgeqp3",
    ]);
    let mut rows = Vec::new();
    for &n in sizes {
        let mut rng = util::Rng::new(opts.seed());
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);

        let mut c = Matrix::zeros(n, n);
        let t_gemm = time_best(reps(n), || {
            gemm_with_kernel(
                dispatched,
                1.0,
                &a,
                Op::NoTrans,
                &b,
                Op::NoTrans,
                0.0,
                &mut c,
            );
        });
        let t_gemm_scalar = time_best(reps(n), || {
            gemm_with_kernel(
                KernelPath::Scalar,
                1.0,
                &a,
                Op::NoTrans,
                &b,
                Op::NoTrans,
                0.0,
                &mut c,
            );
        });
        let t_qr = time_best(reps(n), || linalg::qr::qr_in_place(a.clone()));
        let t_qrp = time_best(reps(n), || linalg::qrp::qrp_in_place(a.clone()));

        let row = Row {
            n,
            gemm: flops_gemm(n) / t_gemm / 1e9,
            gemm_scalar: flops_gemm(n) / t_gemm_scalar / 1e9,
            qr: flops_qr(n) / t_qr / 1e9,
            qrp: flops_qr(n) / t_qrp / 1e9,
        };
        table.row(vec![
            n.to_string(),
            fmt_f(row.gemm, 2),
            fmt_f(row.gemm_scalar, 2),
            fmt_f(row.gemm / row.gemm_scalar, 2),
            fmt_f(row.qr, 2),
            fmt_f(row.qrp, 2),
        ]);
        rows.push(row);
    }
    print!("{}", table.render());

    let json = render_json(dispatched, &rows);
    let path = "BENCH_fig1.json";
    match util::vfs::write_atomic(std::path::Path::new(path), json.as_bytes()) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if let Some(last) = rows.last() {
        eprintln!(
            "gemm speedup over scalar at N={}: {:.2}x",
            last.n,
            last.gemm / last.gemm_scalar
        );
    }
}

/// Hand-rendered JSON (no serde in the dependency closure).
fn render_json(dispatched: KernelPath, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"kernel\": \"{}\",\n", dispatched.name()));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"n\": {}, \"gemm_gflops\": {:.3}, \"gemm_scalar_gflops\": {:.3}, \
             \"gemm_speedup\": {:.3}, \"qr_gflops\": {:.3}, \"qrp_gflops\": {:.3}}}{}\n",
            r.n,
            r.gemm,
            r.gemm_scalar,
            r.gemm / r.gemm_scalar,
            r.qr,
            r.qrp,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let last = rows.last().expect("at least one size");
    s.push_str(&format!(
        "  \"gemm_speedup_at_max_n\": {:.3}\n",
        last.gemm / last.gemm_scalar
    ));
    s.push_str("}\n");
    s
}
