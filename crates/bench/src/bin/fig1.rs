//! Figure 1: performance of DGEMM vs DGEQRF vs DGEQP3 across matrix sizes.
//!
//! The paper's point: matrix–matrix multiply reaches near-peak even at DQMC
//! sizes, unpivoted QR lands below it (panel overhead), and pivoted QR far
//! below both (level-2 norm updates) — which is why replacing QRP with a
//! pre-pivot + QR pays. Absolute GFlop/s depend on the machine; the ordering
//! and the gap shape are the reproduced result.
//!
//! Usage: `cargo run --release -p bench --bin fig1 [--full]`

use bench::{flops_gemm, flops_qr, time_best, BenchOpts};
use linalg::{gemm, Matrix, Op};
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let sizes: &[usize] = if opts.full {
        &[128, 256, 384, 512, 768, 1024, 1536, 2048]
    } else {
        &[128, 256, 384, 512, 768, 1024]
    };
    let reps = |n: usize| if n <= 512 { 3 } else { 1 };

    println!("# Figure 1: kernel GFlop/s vs matrix size");
    println!("# (expected shape: gemm > qr > qrp at every size)");
    let mut table = Table::new(vec!["N", "dgemm", "dgeqrf", "dgeqp3"]);
    for &n in sizes {
        let mut rng = util::Rng::new(opts.seed());
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);

        let t_gemm = time_best(reps(n), || {
            let mut c = Matrix::zeros(n, n);
            gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
            c
        });
        let t_qr = time_best(reps(n), || linalg::qr::qr_in_place(a.clone()));
        let t_qrp = time_best(reps(n), || linalg::qrp::qrp_in_place(a.clone()));

        table.row(vec![
            n.to_string(),
            fmt_f(flops_gemm(n) / t_gemm / 1e9, 2),
            fmt_f(flops_qr(n) / t_qr / 1e9, 2),
            fmt_f(flops_qr(n) / t_qrp / 1e9, 2),
        ]);
    }
    print!("{}", table.render());
}
