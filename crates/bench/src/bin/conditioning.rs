//! Chain-conditioning study — quantifying the paper's §III motivation that
//! `B_L⋯B_1` is "extremely ill-conditioned" at low temperature or strong
//! coupling. Prints `log10 κ(B(τ,0))` versus τ for several U, estimated
//! from the graded D of the stratified decomposition (no product is ever
//! formed, so the numbers remain meaningful at any β).
//!
//! Usage: `cargo run --release -p bench --bin conditioning [--full]`

use bench::{square_model, thermalised_state, BenchOpts};
use dqmc::{condition_profile, Spin, StratAlgo};
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let (lside, beta, dtau) = if opts.full {
        (16, 32.0, 0.2)
    } else {
        (6, 8.0, 0.2)
    };
    let us = [0.0, 2.0, 4.0, 8.0];

    println!("# log10 condition number of B(tau,0) vs tau ({lside}x{lside}, beta={beta})");
    let mut profiles = Vec::new();
    for &u in &us {
        let model = square_model(lside, u, beta, dtau);
        let (fac, h) = thermalised_state(&model, 2, opts.seed());
        profiles.push(condition_profile(
            &fac,
            &h,
            dtau,
            10,
            Spin::Up,
            StratAlgo::PrePivot,
        ));
    }

    let mut table = Table::new(vec!["tau", "U=0", "U=2", "U=4", "U=8"]);
    for (i, &tau) in profiles[0].taus.iter().enumerate() {
        let mut row = vec![fmt_f(tau, 1)];
        for p in &profiles {
            row.push(fmt_f(p.log_condition()[i], 1));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!(
        "# growth rates (decades per unit tau): {}",
        profiles
            .iter()
            .zip(us.iter())
            .map(|(p, u)| format!("U={u}: {:.2}", p.growth_rate()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("# f64 holds ~308 decades: naive products fail long before beta=32");
}
