//! Crowd-batched walker execution: the two-axis throughput study.
//!
//! **Axis 1 — crowd size.** The same campaign runs with jobs of B = 1, 4
//! and 8 chains at a fixed 4 workers. A crowd job steps its B walkers in
//! lockstep and routes their wrap and cluster kernels through the
//! strided-batch device path: one kernel launch covers all B walkers, and
//! per-walker PCIe transactions collapse into stacked transfers that pay
//! the bus latency once. Per-walker FLOP cost is unchanged — the win is
//! launch overhead and transfer latency amortisation, so it shows up on the
//! *modeled device clock*.
//!
//! **Axis 2 — workers.** The best crowd size re-runs with 1, 2, 4 and 8
//! workers (device pool scaling with the worker count), showing the two
//! axes compose: crowding shrinks per-job device time, workers spread jobs.
//!
//! **Metric honesty.** Wall-clock here measures the *host simulating the
//! device* (and on a 1-core CI box, worker rows cannot speed up at all);
//! the batching win is recorded in `device_seconds` — the simulated
//! accelerator clock the cost model advances for launches, transfers and
//! compute. `chains_per_device_s` is the headline throughput axis, and the
//! observables section is cross-checked byte-identical across every row:
//! crowding and worker count must never move the physics.
//!
//! `BENCH_crowd.json` is the checked-in artifact; regenerate with
//! `cargo run --release -p bench --bin crowd`. `--lx`/`--sweeps` scale the
//! workload; `--crowd <B>` overrides the crowd used for the worker axis.

use bench::BenchOpts;
use sched::{EventLog, GridSpec, SchedConfig};

struct Row {
    crowd: usize,
    workers: usize,
    pool: usize,
    wall_s: f64,
    device_s: f64,
    jobs_per_s: f64,
    chains_per_device_s: f64,
    leases: u64,
    lease_misses: u64,
}

fn grid(opts: &BenchOpts, crowd: usize) -> GridSpec {
    let (l, sweeps, chains) = if opts.full {
        (8, 200, 8)
    } else if opts.smoke {
        (2, 12, 8)
    } else {
        (4, 60, 8)
    };
    let l = opts.lx.unwrap_or(l);
    let sweeps = opts.sweeps.unwrap_or(sweeps);
    let mut spec = GridSpec::parse(&format!(
        "
        lx = {l}
        ly = {l}
        u = 2.0, 4.0
        beta = 1.0, 2.0
        chains = {chains}
        warmup = {}
        sweeps = {sweeps}
        bin_size = 4
        cluster_size = 8
        quantum = 0
        crowd = {crowd}
        ",
        sweeps / 4,
    ))
    .expect("benchmark grid parses");
    spec.seed = opts.seed();
    spec
}

fn run_row(opts: &BenchOpts, crowd: usize, workers: usize, reference: &mut Option<String>) -> Row {
    let spec = grid(opts, crowd);
    let pool = opts.pool_size.unwrap_or(workers);
    let cfg = SchedConfig {
        workers,
        devices: pool,
        queue_bound: 0,
        quantum: spec.quantum,
        yield_every_quanta: 0,
        job_retries: 1,
        hold_points: Vec::new(),
        ..SchedConfig::default()
    };
    let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
    let obs = report.observables_json();
    match reference {
        Some(r) => assert_eq!(
            *r, obs,
            "crowd {crowd} / {workers} workers changed the physics"
        ),
        None => *reference = Some(obs),
    }
    let njobs = spec.total_jobs();
    Row {
        crowd,
        workers,
        pool,
        wall_s: report.wall_seconds,
        device_s: report.device_seconds,
        jobs_per_s: njobs as f64 / report.wall_seconds,
        chains_per_device_s: if report.device_seconds > 0.0 {
            njobs as f64 / report.device_seconds
        } else {
            0.0
        },
        leases: report.leases_granted,
        lease_misses: report.lease_misses,
    }
}

fn print_row(r: &Row) {
    println!(
        "{:>6} {:>8} {:>6} {:>10.3} {:>10.4} {:>10.2} {:>14.2} {:>8} {:>8}",
        r.crowd,
        r.workers,
        r.pool,
        r.wall_s,
        r.device_s,
        r.jobs_per_s,
        r.chains_per_device_s,
        r.leases,
        r.lease_misses
    );
}

fn main() {
    let opts = BenchOpts::from_env();
    let probe = grid(&opts, 1);
    println!(
        "# crowd throughput: {} points x {} chains = {} chain-jobs, {} sweeps each",
        probe.us.len() * probe.betas.len(),
        probe.chains,
        probe.total_jobs(),
        probe.warmup + probe.sweeps
    );
    println!(
        "{:>6} {:>8} {:>6} {:>10} {:>10} {:>10} {:>14} {:>8} {:>8}",
        "crowd",
        "workers",
        "pool",
        "wall_s",
        "device_s",
        "jobs/s",
        "chains/dev_s",
        "leases",
        "misses"
    );

    let mut reference: Option<String> = None;

    // Axis 1: crowd size at fixed 4 workers.
    let crowd_axis: Vec<Row> = [1usize, 4, 8]
        .iter()
        .map(|&b| {
            let r = run_row(&opts, b, 4, &mut reference);
            print_row(&r);
            r
        })
        .collect();

    // Axis 2: worker count at the best (largest) crowd.
    let best_crowd = opts.crowd.unwrap_or(8);
    let worker_axis: Vec<Row> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let r = run_row(&opts, best_crowd, w, &mut reference);
            print_row(&r);
            r
        })
        .collect();

    let solo = &crowd_axis[0];
    let best = crowd_axis.last().expect("crowd axis is non-empty");
    let modeled_speedup = solo.device_s / best.device_s;
    println!(
        "# modeled device-clock speedup, crowd {} vs crowd 1 at 4 workers: {:.2}x",
        best.crowd, modeled_speedup
    );

    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"grid\": {{\"lx\": {}, \"points\": {}, \"chains\": {}, \"jobs\": {}, \"sweeps\": {}}},\n",
        probe.lx,
        probe.us.len() * probe.betas.len(),
        probe.chains,
        probe.total_jobs(),
        probe.warmup + probe.sweeps
    ));
    let render = |rows: &[Row]| -> String {
        rows.iter()
            .enumerate()
            .map(|(i, r)| {
                format!(
                    "    {{\"crowd\": {}, \"workers\": {}, \"pool\": {}, \"wall_s\": {:.3}, \
                     \"device_s\": {:.6}, \"jobs_per_s\": {:.3}, \
                     \"chains_per_device_s\": {:.3}, \"leases\": {}, \"lease_misses\": {}}}{}\n",
                    r.crowd,
                    r.workers,
                    r.pool,
                    r.wall_s,
                    r.device_s,
                    r.jobs_per_s,
                    r.chains_per_device_s,
                    r.leases,
                    r.lease_misses,
                    if i + 1 == rows.len() { "" } else { "," }
                )
            })
            .collect()
    };
    out.push_str("  \"crowd_axis\": [\n");
    out.push_str(&render(&crowd_axis));
    out.push_str("  ],\n  \"worker_axis\": [\n");
    out.push_str(&render(&worker_axis));
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"modeled_device_speedup_best_vs_solo\": {modeled_speedup:.3},\n"
    ));
    out.push_str(
        "  \"note\": \"wall_s measures the host simulating the device (1-core CI boxes \
         cannot show worker scaling); device_s is the simulated accelerator clock, the \
         honest axis for the batching win; observables are byte-identical across all rows\"\n",
    );
    out.push_str("}\n");

    let path = "BENCH_crowd.json";
    match util::vfs::write_atomic(std::path::Path::new(path), out.as_bytes()) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
