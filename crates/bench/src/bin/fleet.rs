//! Fleet sharding: wall time versus process count.
//!
//! Runs the same campaign once in-process (`sched::run_sweep`, the
//! reference) and then through `fleet::run_fleet` with 1, 2 and 4 child
//! processes (8 under `--full`). Each row records wall time, speedup over
//! the single-process fleet, respawn/kill counts (always 0 here — the
//! fault hooks are a test feature) and the host core count. The
//! observables bytes are asserted identical across every row and against
//! the in-process reference: a sharding harness that moved a byte would
//! be benchmarking the wrong physics.
//!
//! `BENCH_fleet.json` is the checked-in artifact; regenerate with
//! `cargo run --release -p bench --bin fleet`. `--lx <n>` and
//! `--sweeps <n>` scale the workload.
//!
//! Process-level sharding pays per-child costs the in-process scheduler
//! does not: process spawn, grid re-parse, manifest/report codec I/O and
//! one service warm-up per shard. On a campaign whose points dominate
//! (seconds each), those costs vanish; the smoke grid here is small
//! enough that they are visible — which is itself worth recording.

use bench::BenchOpts;
use fleet::{ChildCommand, FleetConfig};
use sched::{EventLog, GridSpec, SchedConfig};

struct Row {
    procs: usize,
    host_cores: usize,
    wall_s: f64,
    speedup: f64,
    shards: usize,
    respawns: u32,
    kills: u32,
}

fn grid_text(opts: &BenchOpts) -> String {
    let (l, sweeps, chains) = if opts.full {
        (6, 96, 4)
    } else if opts.smoke {
        (2, 12, 2)
    } else {
        (4, 48, 4)
    };
    let l = opts.lx.unwrap_or(l);
    let sweeps = opts.sweeps.unwrap_or(sweeps);
    // 8 points so a 4-process fleet still gets 2 points per shard; the
    // per-point workers/devices knobs ride inside each child's service.
    format!(
        "
        lx = {l}
        ly = {l}
        u = 2.0, 4.0
        beta = 0.5, 1.0, 1.5, 2.0
        chains = {chains}
        warmup = {}
        sweeps = {sweeps}
        bin_size = 4
        cluster_size = 8
        seed = {}
        workers = 2
        devices = 1
        quantum = 8
        ",
        sweeps / 4,
        // GridSpec::parse seeds from the text, so the seed has to be
        // baked in here: fleet children re-parse this exact string.
        opts.seed(),
    )
}

fn main() {
    // Fleet re-entry: each shard child is this same binary, relaunched as
    // `fleet shard-child <manifest> <report> <heartbeat>`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("shard-child") {
        std::process::exit(fleet::child_main(&args[1..]));
    }
    let opts = BenchOpts::from_env();
    let text = grid_text(&opts);
    let spec = GridSpec::parse(&text).expect("benchmark grid parses");
    let njobs = spec.total_jobs();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let child = ChildCommand::current_exe("shard-child").expect("locate own executable");

    println!(
        "# fleet sharding: {} points x {} chains = {} jobs, {} sweeps each, {} host cores",
        spec.points().len(),
        spec.chains,
        njobs,
        spec.warmup + spec.sweeps,
        host_cores
    );

    // In-process reference: the bytes every fleet row must reproduce.
    let cfg = SchedConfig::from_spec(&spec);
    let (reference, ref_wall) = {
        let start = std::time::Instant::now();
        let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
        (report.observables_json(), start.elapsed().as_secs_f64())
    };
    println!("# in-process reference: {ref_wall:.3} s");
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "procs", "shards", "wall_s", "speedup", "respawns", "kills"
    );

    let proc_counts: &[usize] = if opts.full { &[1, 2, 4, 8] } else { &[1, 2, 4] };
    let mut rows: Vec<Row> = Vec::new();
    for &procs in proc_counts {
        let workdir = std::env::temp_dir().join(format!("dqmc-bench-fleet-{}", std::process::id()));
        let fleet_cfg = FleetConfig::new(procs, child.clone(), workdir);
        let out = fleet::run_fleet(&text, &fleet_cfg)
            .unwrap_or_else(|e| panic!("fleet run with {procs} procs failed: {e}"));
        assert_eq!(
            out.observables, reference,
            "fleet with {procs} procs changed the physics"
        );
        let speedup = match rows.first() {
            Some(base) => base.wall_s / out.wall_seconds,
            None => 1.0,
        };
        println!(
            "{:>6} {:>8} {:>10.3} {:>8.2} {:>8} {:>8}",
            procs, out.shards, out.wall_seconds, speedup, out.respawns, out.kills
        );
        rows.push(Row {
            procs,
            host_cores,
            wall_s: out.wall_seconds,
            speedup,
            shards: out.shards,
            respawns: out.respawns,
            kills: out.kills,
        });
    }

    let json = render_json(&spec, njobs, ref_wall, &rows);
    assert_eq!(
        json.matches("\"host_cores\"").count(),
        rows.len(),
        "every BENCH_fleet.json row must record host_cores"
    );
    let path = "BENCH_fleet.json";
    match util::vfs::write_atomic(std::path::Path::new(path), json.as_bytes()) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}

fn render_json(spec: &GridSpec, njobs: usize, ref_wall: f64, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"grid\": {{\"lx\": {}, \"points\": {}, \"chains\": {}, \"jobs\": {}, \
         \"sweeps\": {}}},\n",
        spec.lx,
        spec.points().len(),
        spec.chains,
        njobs,
        spec.warmup + spec.sweeps
    ));
    out.push_str(&format!(
        "  \"in_process_wall_s\": {ref_wall:.3},\n  \"bytes_identical_across_rows\": true,\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"procs\": {}, \"shards\": {}, \"host_cores\": {}, \"wall_s\": {:.3}, \
             \"speedup\": {:.3}, \"respawns\": {}, \"kills\": {}}}{}\n",
            r.procs,
            r.shards,
            r.host_cores,
            r.wall_s,
            r.speedup,
            r.respawns,
            r.kills,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
