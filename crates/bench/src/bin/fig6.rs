//! Figure 6: colour-contour data of the mean momentum distribution ⟨n_k⟩
//! on a small and a large lattice (paper: 12×12 vs 32×32).
//!
//! Emits the full (kx, ky, ⟨n_k⟩) grid for each lattice; the larger lattice
//! resolves the Fermi surface in far more detail — the paper's argument for
//! pushing N beyond 500.
//!
//! Usage: `cargo run --release -p bench --bin fig6 [--full]`

use bench::{square_model, BenchOpts};
use dqmc::{SimParams, Simulation};
use std::f64::consts::PI;

fn main() {
    let opts = BenchOpts::from_env();
    let (sides, beta, dtau, warm, meas): (&[usize], f64, f64, usize, usize) = if opts.full {
        (&[12, 32], 32.0, 0.2, 1000, 2000)
    } else {
        (&[4, 8], 6.0, 0.15, 60, 120)
    };

    println!("# Figure 6: <n_k> grid, rho=1 U=2 beta={beta}");
    for &lside in sides {
        let model = square_model(lside, 2.0, beta, dtau);
        let mut sim = Simulation::new(
            SimParams::new(model)
                .with_sweeps(warm, meas)
                .with_seed(opts.seed() + lside as u64)
                .with_bin_size(10),
        );
        sim.run();
        let nk = sim.observables().momentum_distribution();
        println!("\n# lattice {lside}x{lside}");
        println!("kx  ky  n_k");
        for ny in 0..lside {
            for nx in 0..lside {
                // Fold to (−π, π] for the contour plot convention.
                let fold = |i: usize| {
                    let k = 2.0 * PI * i as f64 / lside as f64;
                    if k > PI {
                        k - 2.0 * PI
                    } else {
                        k
                    }
                };
                println!("{:.4}  {:.4}  {:.4}", fold(nx), fold(ny), nk[(nx, ny)]);
            }
        }
    }
    println!("\n# paper: the larger lattice reveals much more Fermi-surface detail");
}
