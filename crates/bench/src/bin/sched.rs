//! Sweep-scheduler throughput: jobs/second versus worker count.
//!
//! Runs the same small campaign through `sched::run_sweep` with 1, 2, 4
//! and 8 workers and reports wall time, job throughput and scaling
//! efficiency. The device pool scales with the worker count by default so
//! the rows measure scheduler overhead rather than device starvation; pin
//! it with `--pool-size <n>` to measure contention (e.g. `--pool-size 2`
//! reproduces the old fixed-pool shape, where the 4-worker row lost half
//! its leases to misses). Because each job is an independent
//! Markov chain, the campaign is embarrassingly parallel and the scheduler
//! overhead (queue, leases, checkpoint parking) is exactly what the scaling
//! gap measures. The observables section is also cross-checked between the
//! runs — a scheduling benchmark that silently changed the physics would be
//! measuring the wrong thing.
//!
//! `BENCH_sched.json` is the checked-in artifact; regenerate with
//! `cargo run --release -p bench --bin sched`. `--lx <n>` and
//! `--sweeps <n>` scale the workload (side length / measurement sweeps);
//! `--crowd <B>` batches B chains per job through the strided-batch device
//! path (see `--bin crowd` for the dedicated crowd-axis study).

use bench::BenchOpts;
use sched::{EventLog, GridSpec, SchedConfig};

struct Row {
    workers: usize,
    pool: usize,
    /// Physical parallelism actually available to this run. Recorded per
    /// row so an efficiency of 0.145 at 8 workers on a 1-core CI host
    /// reads as oversubscription, not a scheduler regression.
    host_cores: usize,
    wall_s: f64,
    jobs_per_s: f64,
    efficiency: f64,
    preemptions: u64,
    leases: u64,
    lease_misses: u64,
}

fn grid(opts: &BenchOpts) -> GridSpec {
    // chains is the parallelism axis: enough jobs to keep 4 workers busy.
    let (l, sweeps, chains) = if opts.full {
        (8, 200, 8)
    } else if opts.smoke {
        (2, 12, 4)
    } else {
        (6, 96, 8)
    };
    // --lx / --sweeps tune the workload without editing the grid: the
    // defaults above target a 1-worker wall of >= 10 s on a laptop core.
    let l = opts.lx.unwrap_or(l);
    let sweeps = opts.sweeps.unwrap_or(sweeps);
    let mut spec = GridSpec::parse(&format!(
        "
        lx = {l}
        ly = {l}
        u = 2.0, 4.0
        beta = 1.0, 2.0
        chains = {chains}
        warmup = {}
        sweeps = {sweeps}
        bin_size = 4
        cluster_size = 8
        quantum = 0
        crowd = {}
        ",
        sweeps / 4,
        opts.crowd.unwrap_or(1),
    ))
    .expect("benchmark grid parses");
    spec.seed = opts.seed();
    spec
}

fn main() {
    let opts = BenchOpts::from_env();
    let spec = grid(&opts);
    let njobs = spec.total_jobs();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# sched throughput: {} points x {} chains = {} jobs, {} sweeps each, {} host cores",
        spec.us.len() * spec.betas.len(),
        spec.chains,
        njobs,
        spec.warmup + spec.sweeps,
        host_cores
    );
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "workers", "pool", "wall_s", "jobs/s", "effcy", "preemptions", "leases", "misses"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut reference: Option<String> = None;
    for workers in [1usize, 2, 4, 8] {
        let pool = opts.pool_size.unwrap_or(workers);
        let cfg = SchedConfig {
            workers,
            devices: pool,
            queue_bound: 0,
            quantum: spec.quantum,
            yield_every_quanta: 0,
            job_retries: 1,
            hold_points: Vec::new(),
            ..SchedConfig::default()
        };
        let report = sched::run_sweep(&spec, &cfg, &EventLog::new());
        let obs = report.observables_json();
        match &reference {
            Some(r) => assert_eq!(
                *r, obs,
                "scheduler changed the physics between worker counts"
            ),
            None => reference = Some(obs),
        }
        let wall = report.wall_seconds;
        let jobs_per_s = njobs as f64 / wall;
        let efficiency = match rows.first() {
            Some(base) => (base.wall_s / wall) / workers as f64,
            None => 1.0,
        };
        println!(
            "{:>8} {:>6} {:>10.3} {:>10.2} {:>10.2} {:>12} {:>8} {:>8}",
            workers,
            pool,
            wall,
            jobs_per_s,
            efficiency,
            report.preemptions,
            report.leases_granted,
            report.lease_misses
        );
        rows.push(Row {
            workers,
            pool,
            host_cores,
            wall_s: wall,
            jobs_per_s,
            efficiency,
            preemptions: report.preemptions,
            leases: report.leases_granted,
            lease_misses: report.lease_misses,
        });
    }

    let json = render_json(&spec, njobs, &rows);
    // Interpretability contract: every row must carry the host's core
    // count — scaling numbers without it are unreadable across machines.
    assert_eq!(
        json.matches("\"host_cores\"").count(),
        rows.len(),
        "every BENCH_sched.json row must record host_cores"
    );
    let path = "BENCH_sched.json";
    match util::vfs::write_atomic(std::path::Path::new(path), json.as_bytes()) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}

fn render_json(spec: &GridSpec, njobs: usize, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"grid\": {{\"lx\": {}, \"points\": {}, \"chains\": {}, \"crowd\": {}, \
         \"jobs\": {}, \"sweeps\": {}}},\n",
        spec.lx,
        spec.us.len() * spec.betas.len(),
        spec.chains,
        spec.crowd,
        njobs,
        spec.warmup + spec.sweeps
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"pool\": {}, \"host_cores\": {}, \"wall_s\": {:.3}, \
             \"jobs_per_s\": {:.3}, \"efficiency\": {:.3}, \"preemptions\": {}, \"leases\": {}, \
             \"lease_misses\": {}}}{}\n",
            r.workers,
            r.pool,
            r.host_cores,
            r.wall_s,
            r.jobs_per_s,
            r.efficiency,
            r.preemptions,
            r.leases,
            r.lease_misses,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let best = rows.last().expect("at least one row");
    out.push_str(&format!(
        "  \"speedup_at_max_workers\": {:.3}\n}}\n",
        rows[0].wall_s / best.wall_s
    ));
    out
}
