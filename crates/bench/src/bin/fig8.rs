//! Figure 8: total DQMC simulation wall-clock time vs number of sites,
//! against the nominal O(N³) prediction anchored at the smallest size.
//!
//! The paper's observation: measured times grow *slower* than N³ because
//! the linear-algebra kernels' parallel/cache efficiency improves with
//! matrix size (their 1024-site run cost 28× the 256-site run instead of
//! the nominal 64×). The same sub-cubic shape appears here.
//!
//! Usage: `cargo run --release -p bench --bin fig8 [--full]`

use bench::{site_sweep, square_model, time_once, BenchOpts};
use dqmc::{SimParams, Simulation};
use util::table::{fmt_f, Table};

fn main() {
    let opts = BenchOpts::from_env();
    let (beta, dtau, warm, meas) = if opts.full {
        (32.0, 0.2, 1000, 2000) // the paper's 36-hour configuration
    } else {
        (4.0, 0.2, 10, 20)
    };

    println!("# Figure 8: whole-simulation seconds vs N, with N^3 nominal line");
    println!("# beta={beta}, {warm}+{meas} sweeps");
    let mut table = Table::new(vec!["N", "seconds", "nominal-N^3", "ratio"]);
    let mut anchor: Option<(usize, f64)> = None;
    for lside in site_sweep(opts.full) {
        let n = lside * lside;
        let model = square_model(lside, 4.0, beta, dtau);
        let (_, secs) = time_once(|| {
            let mut sim = Simulation::new(
                SimParams::new(model)
                    .with_sweeps(warm, meas)
                    .with_seed(opts.seed()),
            );
            sim.run();
            sim
        });
        let (n0, t0) = *anchor.get_or_insert((n, secs));
        let nominal = t0 * (n as f64 / n0 as f64).powi(3);
        table.row(vec![
            n.to_string(),
            fmt_f(secs, 2),
            fmt_f(nominal, 2),
            fmt_f(secs / nominal, 2),
        ]);
    }
    print!("{}", table.render());
    println!("# paper: measured/nominal ratio < 1 (28/64 at N=1024 vs N=256)");
}
