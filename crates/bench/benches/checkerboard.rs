//! Checkerboard vs dense kinetic multiply.
//!
//! The split-bond kinetic operator applies in O(N·bonds) per column instead
//! of a dense O(N²) GEMM row — the advantage that makes very large lattices
//! tractable. This bench measures both at growing N.
//!
//! `cargo bench -p bench --bench checkerboard`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lattice::{Checkerboard, Lattice};
use linalg::{gemm, Matrix, Op};
use std::hint::black_box;

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkerboard");
    group.sample_size(10);
    for &lside in &[8usize, 16, 24] {
        let n = lside * lside;
        let lat = Lattice::square(lside, lside, 1.0);
        let cb = Checkerboard::new(&lat);
        let (dense, _) = lat.expk(0.125, 0.0);
        let mut rng = util::Rng::new(lside as u64);
        let m = Matrix::random(n, n, &mut rng);

        group.bench_with_input(BenchmarkId::new("dense-gemm", n), &n, |b, _| {
            b.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm(1.0, &dense, Op::NoTrans, &m, Op::NoTrans, 0.0, &mut out);
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("split-bond", n), &n, |b, _| {
            b.iter(|| {
                let mut out = m.clone();
                cb.apply_left(-0.125, false, &mut out);
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
