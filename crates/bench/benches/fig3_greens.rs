//! Criterion benches behind Figures 3/4: Green's-function evaluation with
//! the original (QRP, rebuild-everything) and improved (pre-pivot, recycle)
//! stratification pipelines.
//!
//! `cargo bench -p bench --bench fig3_greens`

use bench::{square_model, thermalised_state};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqmc::{greens_from_udt, stratify, ClusterCache, Spin, StratAlgo};
use std::hint::black_box;

fn bench_greens(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    let k = 10;
    for &lside in &[6usize, 8, 10] {
        let model = square_model(lside, 4.0, 8.0, 0.2); // L = 40
        let (fac, h) = thermalised_state(&model, 2, 99);
        let slices = model.slices;

        group.bench_with_input(
            BenchmarkId::new("qrp-rebuild", lside * lside),
            &lside,
            |bench, _| {
                let mut cache = ClusterCache::new(slices, k);
                bench.iter(|| {
                    cache.invalidate_all();
                    let f = cache.factors_after_slice(&fac, &h, slices - 1, Spin::Up);
                    black_box(greens_from_udt(&stratify(&f, StratAlgo::Qrp)))
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("prepivot-recycle", lside * lside),
            &lside,
            |bench, _| {
                let mut cache = ClusterCache::new(slices, k);
                let _ = cache.factors_after_slice(&fac, &h, slices - 1, Spin::Up);
                bench.iter(|| {
                    cache.invalidate_slice(0); // one stale cluster, as in a sweep
                    let f = cache.factors_after_slice(&fac, &h, slices - 1, Spin::Up);
                    black_box(greens_from_udt(&stratify(&f, StratAlgo::PrePivot)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_greens);
criterion_main!(benches);
