//! Criterion benches behind Figure 1: DGEMM vs DGEQRF vs DGEQP3.
//!
//! `cargo bench -p bench --bench fig1_kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use linalg::{gemm, Matrix, Op};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let mut rng = util::Rng::new(n as u64);
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);

        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("dgemm", n), &n, |bench, _| {
            bench.iter(|| {
                let mut out = Matrix::zeros(n, n);
                gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut out);
                black_box(out)
            })
        });

        group.throughput(Throughput::Elements((4 * n * n * n / 3) as u64));
        group.bench_with_input(BenchmarkId::new("dgeqrf", n), &n, |bench, _| {
            bench.iter(|| black_box(linalg::qr::qr_in_place(a.clone())))
        });
        group.bench_with_input(BenchmarkId::new("dgeqp3", n), &n, |bench, _| {
            bench.iter(|| black_box(linalg::qrp::qrp_in_place(a.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
