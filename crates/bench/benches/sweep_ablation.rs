//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - delayed-update block size (1 = plain rank-1 `ger`s vs QUEST's 32),
//! - cluster size k (1 = stratify every slice vs the paper's 10),
//! - cluster recycling on/off.
//!
//! Each configuration runs one full DQMC sweep on the same seed; the
//! physics is identical (asserted in the dqmc tests), only the cost moves.
//!
//! `cargo bench -p bench --bench sweep_ablation`

use bench::square_model;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dqmc::{sweep::DqmcCore, SimParams};
use std::hint::black_box;

fn sweep_once(params: SimParams) {
    let mut core = DqmcCore::new(params);
    core.sweep(None);
    black_box(core.acceptance_rate());
}

fn bench_ablation(c: &mut Criterion) {
    let lside = 6;
    let model = square_model(lside, 4.0, 8.0, 0.2); // N = 36, L = 40
    let base = SimParams::new(model).with_seed(5);

    let mut group = c.benchmark_group("sweep_ablation");
    group.sample_size(10);

    for &nb in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("delay_block", nb), &nb, |b, _| {
            b.iter(|| sweep_once(base.clone().with_delay_block(nb)))
        });
    }
    for &k in &[1usize, 4, 10] {
        group.bench_with_input(BenchmarkId::new("cluster_size", k), &k, |b, _| {
            b.iter(|| sweep_once(base.clone().with_cluster_size(k)))
        });
    }
    for &recycle in &[false, true] {
        group.bench_with_input(BenchmarkId::new("recycle", recycle), &recycle, |b, _| {
            b.iter(|| sweep_once(base.clone().with_recycle(recycle)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
