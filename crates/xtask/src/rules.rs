//! The dqmc-lint rule set.
//!
//! Four rules, all driven by the [`crate::lexer`] scan:
//!
//! - **unsafe-site** (R1): `unsafe` and `*_unchecked` may only appear in
//!   files on the `unsafe` allowlist, and every `unsafe` token must carry a
//!   `// SAFETY:` comment (or a `# Safety` doc section) in the contiguous
//!   comment/attribute block directly above it.
//! - **hot-alloc** (R2): in modules tagged `#![cfg_attr(any(), deny_hot_alloc)]`,
//!   heap-allocating calls are forbidden outside `#[cfg(test)]` code unless
//!   the enclosing function carries `// dqmc-lint: allow(hot_alloc)`.
//! - **unchecked-kernel** (R3): in the kernel files (blas3/qr/qrp/tri/scale/
//!   tsqr), every free `pub fn` must route through the invariant layer
//!   (a `check_finite!`/`check_orthogonal!`/`check_graded!` call in its body)
//!   or carry `// dqmc-lint: allow(unchecked_kernel)`.
//! - **rayon-raw-ptr** (R4): a function whose body contains both a Rayon
//!   parallel-iterator call and raw-pointer manipulation must be on the
//!   `rayon-raw-ptr` allowlist (audited for disjoint-write discipline).
//! - **panic-site** (R5): in scheduler and device-pool sources
//!   (`sched/src`, `gpusim/src`), non-test code must not introduce
//!   `panic!` / `.expect(` / `.unwrap()` — failures there belong in the
//!   structured error taxonomy, not in unwinding. Opt-outs: the
//!   `// dqmc-lint: allow(panic_site)` pragma on the enclosing function,
//!   or a `panic-site <file>` allowlist entry.

use crate::lexer::{words, SourceFile};
use std::fmt;
use std::path::Path;

/// Which rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// R1: undocumented or un-allowlisted `unsafe`.
    UnsafeSite,
    /// R2: heap allocation in a `deny_hot_alloc` module.
    HotAlloc,
    /// R3: public kernel bypassing the invariant layer.
    UncheckedKernel,
    /// R4: rayon closure over raw pointers outside the audited list.
    RayonRawPtr,
    /// R5: panic/expect/unwrap in scheduler or device-pool non-test code.
    PanicSite,
}

impl Rule {
    /// Stable identifier used in reports and allowlist categories.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeSite => "unsafe-site",
            Rule::HotAlloc => "hot-alloc",
            Rule::UncheckedKernel => "unchecked-kernel",
            Rule::RayonRawPtr => "rayon-raw-ptr",
            Rule::PanicSite => "panic-site",
        }
    }
}

/// One finding, reported as `file:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the finding is in (as scanned).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// Parsed `lint.allow`: per-category lists of allowed paths / functions.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Files (suffix-matched) where `unsafe` is permitted.
    pub unsafe_files: Vec<String>,
    /// `file::fn` entries audited for rayon-over-raw-pointer use.
    pub rayon_fns: Vec<(String, String)>,
    /// Files (suffix-matched) where R5 panic sites are pardoned wholesale
    /// (legacy infallible wrappers predating the error taxonomy).
    pub panic_files: Vec<String>,
}

impl Allowlist {
    /// Parses the `lint.allow` format: `unsafe <path>`,
    /// `rayon-raw-ptr <path>::<fn>` and `panic-site <path>` lines; `#`
    /// starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut out = Allowlist::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (cat, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("lint.allow:{}: missing path", i + 1))?;
            let rest = rest.trim();
            match cat {
                "unsafe" => out.unsafe_files.push(rest.to_owned()),
                "rayon-raw-ptr" => {
                    let (file, func) = rest
                        .rsplit_once("::")
                        .ok_or_else(|| format!("lint.allow:{}: need <path>::<fn>", i + 1))?;
                    out.rayon_fns.push((file.to_owned(), func.to_owned()));
                }
                "panic-site" => out.panic_files.push(rest.to_owned()),
                other => return Err(format!("lint.allow:{}: unknown category {other}", i + 1)),
            }
        }
        Ok(out)
    }

    fn allows_unsafe(&self, path: &str) -> bool {
        self.unsafe_files.iter().any(|p| suffix_match(path, p))
    }

    fn allows_rayon(&self, path: &str, func: &str) -> bool {
        self.rayon_fns
            .iter()
            .any(|(p, f)| f == func && suffix_match(path, p))
    }

    fn allows_panics(&self, path: &str) -> bool {
        self.panic_files.iter().any(|p| suffix_match(path, p))
    }
}

/// `path` ends with allowlist entry `pat`, on a path-component boundary.
fn suffix_match(path: &str, pat: &str) -> bool {
    let path = path.replace('\\', "/");
    path == pat || path.ends_with(&format!("/{pat}"))
}

/// Kernel files subject to R3 (every public entry checks or opts out).
const KERNEL_FILES: [&str; 6] = [
    "blas3.rs", "qr.rs", "qrp.rs", "tri.rs", "scale.rs", "tsqr.rs",
];

/// Substrings (in blanked code) that indicate heap allocation.
const ALLOC_TOKENS: [&str; 8] = [
    "vec!",
    "Vec::new",
    "Box::new",
    ".clone()",
    ".collect",
    ".to_vec",
    "with_capacity",
    "String::from",
];

/// Invariant-layer entry points recognised by R3.
const CHECK_TOKENS: [&str; 3] = ["check_finite!", "check_orthogonal!", "check_graded!"];

/// Rayon parallel-dispatch markers for R4.
const PAR_TOKENS: [&str; 5] = [
    "into_par_iter",
    "par_iter",
    "par_chunks",
    "par_bridge",
    "rayon::join",
];

/// Raw-pointer manipulation markers for R4.
const PTR_TOKENS: [&str; 4] = ["as_mut_ptr", ".as_ptr()", "*mut ", "*const "];

/// Unwinding markers for R5. `.expect(` deliberately excludes
/// `.expect_err(` (different token) and `unwrap_or_else` does not match
/// `.unwrap()` — the poison-recovering relock idiom stays clean.
const PANIC_TOKENS: [&str; 3] = ["panic!", ".expect(", ".unwrap()"];

/// Path fragments that put a file in R5's jurisdiction: the subsystems
/// whose failures must travel as classified [`DqmcError`]s, not unwinds.
const PANIC_SCOPES: [&str; 2] = ["sched/src/", "gpusim/src/"];

/// Opt-out pragmas (searched in the comment block above a function).
const PRAGMA_HOT_ALLOC: &str = "dqmc-lint: allow(hot_alloc)";
const PRAGMA_UNCHECKED: &str = "dqmc-lint: allow(unchecked_kernel)";
const PRAGMA_PANIC: &str = "dqmc-lint: allow(panic_site)";

/// Runs all four rules over one scanned file.
pub fn check_file(f: &SourceFile, allow: &Allowlist) -> Vec<Violation> {
    let mut out = Vec::new();
    let path = f.path.display().to_string();
    check_unsafe(f, allow, &path, &mut out);
    check_hot_alloc(f, &path, &mut out);
    check_kernels(f, &path, &mut out);
    check_rayon_ptrs(f, allow, &path, &mut out);
    check_panic_sites(f, allow, &path, &mut out);
    out
}

fn check_unsafe(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    let allowed = allow.allows_unsafe(path);
    for (ln, line) in f.code.iter().enumerate() {
        for w in words(line) {
            let is_unsafe = w == "unsafe";
            let is_unchecked = matches!(
                w,
                "get_unchecked" | "get_unchecked_mut" | "set_unchecked" | "unwrap_unchecked"
            );
            if !(is_unsafe || is_unchecked) {
                continue;
            }
            if !allowed {
                out.push(Violation {
                    path: path.to_owned(),
                    line: ln + 1,
                    rule: Rule::UnsafeSite,
                    msg: format!(
                        "`{w}` in a file not on the unsafe allowlist \
                         (crates/xtask/lint.allow)"
                    ),
                });
                break; // one finding per line is enough
            }
            if is_unsafe
                && !f.comment_block_above_contains(ln, "SAFETY:")
                && !f.comment_block_above_contains(ln, "# Safety")
            {
                out.push(Violation {
                    path: path.to_owned(),
                    line: ln + 1,
                    rule: Rule::UnsafeSite,
                    msg: "`unsafe` without a `// SAFETY:` comment or `# Safety` \
                          doc section directly above"
                        .to_owned(),
                });
                break;
            }
        }
    }
}

fn check_hot_alloc(f: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    let tagged = f
        .code
        .iter()
        .any(|l| l.contains("cfg_attr") && l.contains("deny_hot_alloc"));
    if !tagged {
        return;
    }
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = ALLOC_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|func| f.comment_block_above_contains(func.sig_line, PRAGMA_HOT_ALLOC));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::HotAlloc,
                msg: format!(
                    "heap allocation (`{tok}`) in a deny_hot_alloc module; hoist \
                     the buffer or justify with `// {PRAGMA_HOT_ALLOC}`"
                ),
            });
        }
    }
}

fn check_kernels(f: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    let name = f
        .path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if !KERNEL_FILES.contains(&name.as_str()) {
        return;
    }
    for func in &f.fns {
        if !(func.free && func.is_pub) || f.is_test[func.sig_line] {
            continue;
        }
        let body_checks = (func.body.0..=func.body.1)
            .any(|ln| CHECK_TOKENS.iter().any(|t| f.code[ln].contains(t)));
        if body_checks || f.comment_block_above_contains(func.sig_line, PRAGMA_UNCHECKED) {
            continue;
        }
        out.push(Violation {
            path: path.to_owned(),
            line: func.sig_line + 1,
            rule: Rule::UncheckedKernel,
            msg: format!(
                "public kernel `{}` neither calls the invariant layer \
                 (check_finite!/check_orthogonal!/check_graded!) nor opts out \
                 with `// {PRAGMA_UNCHECKED}`",
                func.name
            ),
        });
    }
}

fn check_rayon_ptrs(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    for func in &f.fns {
        let mut has_par = false;
        let mut has_ptr = false;
        for ln in func.body.0..=func.body.1 {
            let line = &f.code[ln];
            has_par |= PAR_TOKENS.iter().any(|t| line.contains(t));
            has_ptr |= PTR_TOKENS.iter().any(|t| line.contains(t));
        }
        if has_par && has_ptr && !allow.allows_rayon(path, &func.name) {
            out.push(Violation {
                path: path.to_owned(),
                line: func.sig_line + 1,
                rule: Rule::RayonRawPtr,
                msg: format!(
                    "`{}` mixes a rayon parallel iterator with raw pointers but \
                     is not on the rayon-raw-ptr allowlist",
                    func.name
                ),
            });
        }
    }
}

fn check_panic_sites(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    let norm = path.replace('\\', "/");
    if !PANIC_SCOPES.iter().any(|s| norm.contains(s)) || allow.allows_panics(path) {
        return;
    }
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = PANIC_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|func| f.comment_block_above_contains(func.sig_line, PRAGMA_PANIC));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::PanicSite,
                msg: format!(
                    "`{tok}` in scheduler/device-pool non-test code; return a \
                     classified DqmcError (or justify with `// {PRAGMA_PANIC}`)"
                ),
            });
        }
    }
}

/// Relative-path helper for reports: strips `base` from `p` when possible.
pub fn display_path(p: &Path, base: &Path) -> String {
    p.strip_prefix(base).unwrap_or(p).display().to_string()
}
