//! The dqmc-lint rule set.
//!
//! Ten rules, all driven by the [`crate::lexer`] scan. R1–R5 and R10 are
//! the line-oriented hygiene rules; R6–R9 (in [`crate::conc`]) are the
//! block-aware concurrency-discipline rules introduced with the
//! `lock_order.toml` registry.
//!
//! - **unsafe-site** (R1): `unsafe` and `*_unchecked` may only appear in
//!   files on the `unsafe` allowlist, and every `unsafe` token must carry a
//!   `// SAFETY:` comment (or a `# Safety` doc section) in the contiguous
//!   comment/attribute block directly above it.
//! - **hot-alloc** (R2): in modules tagged `#![cfg_attr(any(), deny_hot_alloc)]`,
//!   heap-allocating calls are forbidden outside `#[cfg(test)]` code unless
//!   the enclosing function carries `// dqmc-lint: allow(hot_alloc)`.
//! - **unchecked-kernel** (R3): in the kernel files (blas3/qr/qrp/tri/scale/
//!   tsqr), every free `pub fn` must route through the invariant layer
//!   (a `check_finite!`/`check_orthogonal!`/`check_graded!` call in its body)
//!   or carry `// dqmc-lint: allow(unchecked_kernel)`.
//! - **rayon-raw-ptr** (R4): a function whose body contains both a Rayon
//!   parallel-iterator call and raw-pointer manipulation must be on the
//!   `rayon-raw-ptr` allowlist (audited for disjoint-write discipline).
//! - **panic-site** (R5): in scheduler and device-pool sources
//!   (`sched/src`, `gpusim/src`), non-test code must not introduce
//!   `panic!` / `.expect(` / `.unwrap()` — failures there belong in the
//!   structured error taxonomy, not in unwinding. Opt-outs: the
//!   `// dqmc-lint: allow(panic_site)` pragma on the enclosing function,
//!   or a `panic-site <file>` allowlist entry.
//! - **guard-across-call** (R6), **lock-order** (R7), **nondet-source**
//!   (R8), **nested-par** (R9): see [`crate::conc`].
//! - **direct-fs** (R10): non-test code outside `util/src/vfs.rs` must not
//!   call `std::fs::{File::create, write, rename}` directly — every file
//!   publication goes through `util::vfs::write_atomic`, the one audited
//!   path where fault injection, scrubbing and durability live. Opt-outs:
//!   the `// dqmc-lint: allow(direct_fs)` pragma on the enclosing
//!   function, or a `direct-fs <file>` allowlist entry.
//! - **stale-allow**: an allowlist entry no code needed during the run —
//!   the pardoned pattern is gone, so the entry must be deleted before it
//!   silently pardons something new.

use crate::conc;
use crate::lexer::{words, SourceFile};
use crate::registry::Registry;
use std::cell::Cell;
use std::fmt;
use std::path::Path;

/// Which rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// R1: undocumented or un-allowlisted `unsafe`.
    UnsafeSite,
    /// R2: heap allocation in a `deny_hot_alloc` module.
    HotAlloc,
    /// R3: public kernel bypassing the invariant layer.
    UncheckedKernel,
    /// R4: rayon closure over raw pointers outside the audited list.
    RayonRawPtr,
    /// R5: panic/expect/unwrap in scheduler or device-pool non-test code.
    PanicSite,
    /// R6: a MutexGuard held across an expensive (blocking/compute) call.
    GuardAcrossCall,
    /// R7: lock acquired out of hierarchy order, or not registered.
    LockOrder,
    /// R8: nondeterminism source on an observable-bytes path.
    NondetSource,
    /// R9: rayon fan-out not gated behind the worker-scope check.
    NestedPar,
    /// R10: direct filesystem mutation outside the audited write path.
    DirectFs,
    /// Allowlist entry that pardoned nothing during the run.
    StaleAllow,
}

impl Rule {
    /// Stable identifier used in reports and allowlist categories.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeSite => "unsafe-site",
            Rule::HotAlloc => "hot-alloc",
            Rule::UncheckedKernel => "unchecked-kernel",
            Rule::RayonRawPtr => "rayon-raw-ptr",
            Rule::PanicSite => "panic-site",
            Rule::GuardAcrossCall => "guard-across-call",
            Rule::LockOrder => "lock-order",
            Rule::NondetSource => "nondet-source",
            Rule::NestedPar => "nested-par",
            Rule::DirectFs => "direct-fs",
            Rule::StaleAllow => "stale-allow",
        }
    }
}

/// One finding, reported as `file:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the finding is in (as scanned).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// One file-scoped allowlist entry, with use tracking for staleness.
#[derive(Clone, Debug)]
pub struct FileEntry {
    /// Path suffix the entry pardons.
    pub pat: String,
    /// 1-based `lint.allow` line the entry came from.
    pub line: usize,
    /// Set when the entry pardoned (or was consulted for) a real site.
    pub used: Cell<bool>,
}

/// One function-scoped allowlist entry (`<path>::<fn>`), with use tracking.
#[derive(Clone, Debug)]
pub struct FnEntry {
    /// Path suffix of the file the function lives in.
    pub file: String,
    /// Function name.
    pub func: String,
    /// 1-based `lint.allow` line the entry came from.
    pub line: usize,
    /// Set when the entry pardoned a real site.
    pub used: Cell<bool>,
}

/// Parsed `lint.allow`: per-category lists of allowed paths / functions.
///
/// Every lookup that matches marks its entry used; [`Allowlist::stale`]
/// returns the leftovers so `xtask lint` can fail on entries whose
/// pardoned pattern no longer exists (they would otherwise silently
/// pardon whatever shows up in that file next).
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Files (suffix-matched) where `unsafe` is permitted.
    pub unsafe_files: Vec<FileEntry>,
    /// `file::fn` entries audited for rayon-over-raw-pointer use.
    pub rayon_fns: Vec<FnEntry>,
    /// Files (suffix-matched) where R5 panic sites are pardoned wholesale
    /// (legacy infallible wrappers predating the error taxonomy).
    pub panic_files: Vec<FileEntry>,
    /// `file::fn` entries audited to hold a guard across expensive work.
    pub guard_fns: Vec<FnEntry>,
    /// `file::fn` entries audited for out-of-order lock acquisition.
    pub order_fns: Vec<FnEntry>,
    /// Files where R8 nondeterminism sources are pardoned wholesale.
    pub nondet_files: Vec<FileEntry>,
    /// `file::fn` entries audited for ungated rayon fan-out.
    pub nested_fns: Vec<FnEntry>,
    /// Files where R10 direct filesystem calls are pardoned wholesale.
    pub direct_fs_files: Vec<FileEntry>,
}

fn file_entry(pat: &str, line: usize) -> FileEntry {
    FileEntry {
        pat: pat.to_owned(),
        line,
        used: Cell::new(false),
    }
}

fn fn_entry(rest: &str, line: usize) -> Result<FnEntry, String> {
    let (file, func) = rest
        .rsplit_once("::")
        .ok_or_else(|| format!("lint.allow:{line}: need <path>::<fn>"))?;
    Ok(FnEntry {
        file: file.to_owned(),
        func: func.to_owned(),
        line,
        used: Cell::new(false),
    })
}

fn hit_file(entries: &[FileEntry], path: &str) -> bool {
    let mut any = false;
    for e in entries {
        if suffix_match(path, &e.pat) {
            e.used.set(true);
            any = true;
        }
    }
    any
}

fn hit_fn(entries: &[FnEntry], path: &str, func: &str) -> bool {
    let mut any = false;
    for e in entries {
        if e.func == func && suffix_match(path, &e.file) {
            e.used.set(true);
            any = true;
        }
    }
    any
}

impl Allowlist {
    /// Parses the `lint.allow` format: `<category> <path>` or
    /// `<category> <path>::<fn>` lines; `#` starts a comment. Categories:
    /// `unsafe`, `rayon-raw-ptr`, `panic-site`, `guard-across-call`,
    /// `lock-order`, `nondet-source`, `nested-par`, `direct-fs`.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut out = Allowlist::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (cat, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("lint.allow:{}: missing path", i + 1))?;
            let rest = rest.trim();
            let ln = i + 1;
            match cat {
                "unsafe" => out.unsafe_files.push(file_entry(rest, ln)),
                "rayon-raw-ptr" => out.rayon_fns.push(fn_entry(rest, ln)?),
                "panic-site" => out.panic_files.push(file_entry(rest, ln)),
                "guard-across-call" => out.guard_fns.push(fn_entry(rest, ln)?),
                "lock-order" => out.order_fns.push(fn_entry(rest, ln)?),
                "nondet-source" => out.nondet_files.push(file_entry(rest, ln)),
                "nested-par" => out.nested_fns.push(fn_entry(rest, ln)?),
                "direct-fs" => out.direct_fs_files.push(file_entry(rest, ln)),
                other => return Err(format!("lint.allow:{}: unknown category {other}", i + 1)),
            }
        }
        Ok(out)
    }

    fn allows_unsafe(&self, path: &str) -> bool {
        hit_file(&self.unsafe_files, path)
    }

    fn allows_rayon(&self, path: &str, func: &str) -> bool {
        hit_fn(&self.rayon_fns, path, func)
    }

    fn allows_panics(&self, path: &str) -> bool {
        hit_file(&self.panic_files, path)
    }

    pub(crate) fn allows_guard(&self, path: &str, func: &str) -> bool {
        hit_fn(&self.guard_fns, path, func)
    }

    pub(crate) fn allows_order(&self, path: &str, func: &str) -> bool {
        hit_fn(&self.order_fns, path, func)
    }

    pub(crate) fn allows_nondet(&self, path: &str) -> bool {
        hit_file(&self.nondet_files, path)
    }

    pub(crate) fn allows_nested(&self, path: &str, func: &str) -> bool {
        hit_fn(&self.nested_fns, path, func)
    }

    fn allows_direct_fs(&self, path: &str) -> bool {
        hit_file(&self.direct_fs_files, path)
    }

    /// Entries no lookup matched: `(lint.allow line, entry description)`.
    pub fn stale(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        let files: [(&str, &[FileEntry]); 4] = [
            ("unsafe", &self.unsafe_files),
            ("panic-site", &self.panic_files),
            ("nondet-source", &self.nondet_files),
            ("direct-fs", &self.direct_fs_files),
        ];
        for (cat, entries) in files {
            for e in entries {
                if !e.used.get() {
                    out.push((e.line, format!("{cat} {}", e.pat)));
                }
            }
        }
        let fns: [(&str, &[FnEntry]); 4] = [
            ("rayon-raw-ptr", &self.rayon_fns),
            ("guard-across-call", &self.guard_fns),
            ("lock-order", &self.order_fns),
            ("nested-par", &self.nested_fns),
        ];
        for (cat, entries) in fns {
            for e in entries {
                if !e.used.get() {
                    out.push((e.line, format!("{cat} {}::{}", e.file, e.func)));
                }
            }
        }
        out.sort();
        out
    }

    /// Stale entries as reportable violations against `allow_path`.
    pub fn stale_violations(&self, allow_path: &str) -> Vec<Violation> {
        self.stale()
            .into_iter()
            .map(|(line, entry)| Violation {
                path: allow_path.to_owned(),
                line,
                rule: Rule::StaleAllow,
                msg: format!(
                    "allowlist entry `{entry}` pardoned nothing this run; \
                     delete it (the pattern it audited is gone)"
                ),
            })
            .collect()
    }
}

/// `path` ends with allowlist entry `pat`, on a path-component boundary.
pub(crate) fn suffix_match(path: &str, pat: &str) -> bool {
    let path = path.replace('\\', "/");
    path == pat || path.ends_with(&format!("/{pat}"))
}

/// Kernel files subject to R3 (every public entry checks or opts out).
const KERNEL_FILES: [&str; 6] = [
    "blas3.rs", "qr.rs", "qrp.rs", "tri.rs", "scale.rs", "tsqr.rs",
];

/// Substrings (in blanked code) that indicate heap allocation.
const ALLOC_TOKENS: [&str; 8] = [
    "vec!",
    "Vec::new",
    "Box::new",
    ".clone()",
    ".collect",
    ".to_vec",
    "with_capacity",
    "String::from",
];

/// Invariant-layer entry points recognised by R3.
const CHECK_TOKENS: [&str; 3] = ["check_finite!", "check_orthogonal!", "check_graded!"];

/// Rayon parallel-dispatch markers for R4.
const PAR_TOKENS: [&str; 5] = [
    "into_par_iter",
    "par_iter",
    "par_chunks",
    "par_bridge",
    "rayon::join",
];

/// Raw-pointer manipulation markers for R4.
const PTR_TOKENS: [&str; 4] = ["as_mut_ptr", ".as_ptr()", "*mut ", "*const "];

/// Unwinding markers for R5. `.expect(` deliberately excludes
/// `.expect_err(` (different token) and `unwrap_or_else` does not match
/// `.unwrap()` — the poison-recovering relock idiom stays clean.
const PANIC_TOKENS: [&str; 3] = ["panic!", ".expect(", ".unwrap()"];

/// Path fragments that put a file in R5's jurisdiction: the subsystems
/// whose failures must travel as classified [`DqmcError`]s, not unwinds.
const PANIC_SCOPES: [&str; 2] = ["sched/src/", "gpusim/src/"];

/// Direct filesystem-mutation markers for R10. `fs::write(` cannot match
/// `vfs::write_atomic(` (the character after `write` differs), so the
/// audited path itself never trips the rule at call sites.
const FS_TOKENS: [&str; 3] = ["File::create(", "fs::write(", "fs::rename("];

/// The one file allowed to perform direct filesystem mutation: the
/// audited write path itself (and its fault-injection residues).
const FS_EXEMPT: &str = "util/src/vfs.rs";

/// Opt-out pragmas (searched in the comment block above a function).
const PRAGMA_HOT_ALLOC: &str = "dqmc-lint: allow(hot_alloc)";
const PRAGMA_UNCHECKED: &str = "dqmc-lint: allow(unchecked_kernel)";
const PRAGMA_PANIC: &str = "dqmc-lint: allow(panic_site)";
const PRAGMA_DIRECT_FS: &str = "dqmc-lint: allow(direct_fs)";

/// Runs every rule over one scanned file.
pub fn check_file(f: &SourceFile, allow: &Allowlist, reg: &Registry) -> Vec<Violation> {
    let mut out = Vec::new();
    let path = f.path.display().to_string();
    check_unsafe(f, allow, &path, &mut out);
    check_hot_alloc(f, &path, &mut out);
    check_kernels(f, &path, &mut out);
    check_rayon_ptrs(f, allow, &path, &mut out);
    check_panic_sites(f, allow, &path, &mut out);
    check_direct_fs(f, allow, &path, &mut out);
    conc::check_concurrency(f, allow, reg, &path, &mut out);
    out
}

fn check_unsafe(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    // Consulted lazily so an entry for a file with no unsafe left reads
    // as unused (stale), not as pardoning thin air.
    let mut allowed: Option<bool> = None;
    for (ln, line) in f.code.iter().enumerate() {
        for w in words(line) {
            let is_unsafe = w == "unsafe";
            let is_unchecked = matches!(
                w,
                "get_unchecked" | "get_unchecked_mut" | "set_unchecked" | "unwrap_unchecked"
            );
            if !(is_unsafe || is_unchecked) {
                continue;
            }
            let allowed = *allowed.get_or_insert_with(|| allow.allows_unsafe(path));
            if !allowed {
                out.push(Violation {
                    path: path.to_owned(),
                    line: ln + 1,
                    rule: Rule::UnsafeSite,
                    msg: format!(
                        "`{w}` in a file not on the unsafe allowlist \
                         (crates/xtask/lint.allow)"
                    ),
                });
                break; // one finding per line is enough
            }
            if is_unsafe
                && !f.comment_block_above_contains(ln, "SAFETY:")
                && !f.comment_block_above_contains(ln, "# Safety")
            {
                out.push(Violation {
                    path: path.to_owned(),
                    line: ln + 1,
                    rule: Rule::UnsafeSite,
                    msg: "`unsafe` without a `// SAFETY:` comment or `# Safety` \
                          doc section directly above"
                        .to_owned(),
                });
                break;
            }
        }
    }
}

fn check_hot_alloc(f: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    let tagged = f
        .code
        .iter()
        .any(|l| l.contains("cfg_attr") && l.contains("deny_hot_alloc"));
    if !tagged {
        return;
    }
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = ALLOC_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|func| f.comment_block_above_contains(func.sig_line, PRAGMA_HOT_ALLOC));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::HotAlloc,
                msg: format!(
                    "heap allocation (`{tok}`) in a deny_hot_alloc module; hoist \
                     the buffer or justify with `// {PRAGMA_HOT_ALLOC}`"
                ),
            });
        }
    }
}

fn check_kernels(f: &SourceFile, path: &str, out: &mut Vec<Violation>) {
    let name = f
        .path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if !KERNEL_FILES.contains(&name.as_str()) {
        return;
    }
    for func in &f.fns {
        if !(func.free && func.is_pub) || f.is_test[func.sig_line] {
            continue;
        }
        let body_checks = (func.body.0..=func.body.1)
            .any(|ln| CHECK_TOKENS.iter().any(|t| f.code[ln].contains(t)));
        if body_checks || f.comment_block_above_contains(func.sig_line, PRAGMA_UNCHECKED) {
            continue;
        }
        out.push(Violation {
            path: path.to_owned(),
            line: func.sig_line + 1,
            rule: Rule::UncheckedKernel,
            msg: format!(
                "public kernel `{}` neither calls the invariant layer \
                 (check_finite!/check_orthogonal!/check_graded!) nor opts out \
                 with `// {PRAGMA_UNCHECKED}`",
                func.name
            ),
        });
    }
}

fn check_rayon_ptrs(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    for func in &f.fns {
        let mut has_par = false;
        let mut has_ptr = false;
        for ln in func.body.0..=func.body.1 {
            let line = &f.code[ln];
            has_par |= PAR_TOKENS.iter().any(|t| line.contains(t));
            has_ptr |= PTR_TOKENS.iter().any(|t| line.contains(t));
        }
        if has_par && has_ptr && !allow.allows_rayon(path, &func.name) {
            out.push(Violation {
                path: path.to_owned(),
                line: func.sig_line + 1,
                rule: Rule::RayonRawPtr,
                msg: format!(
                    "`{}` mixes a rayon parallel iterator with raw pointers but \
                     is not on the rayon-raw-ptr allowlist",
                    func.name
                ),
            });
        }
    }
}

fn check_panic_sites(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    let norm = path.replace('\\', "/");
    if !PANIC_SCOPES.iter().any(|s| norm.contains(s)) {
        return;
    }
    // Like `check_unsafe`: the allowlist is consulted only once a panic
    // token actually exists, so entries for cleaned-up files go stale.
    let mut allowed: Option<bool> = None;
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = PANIC_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        if *allowed.get_or_insert_with(|| allow.allows_panics(path)) {
            continue;
        }
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|func| f.comment_block_above_contains(func.sig_line, PRAGMA_PANIC));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::PanicSite,
                msg: format!(
                    "`{tok}` in scheduler/device-pool non-test code; return a \
                     classified DqmcError (or justify with `// {PRAGMA_PANIC}`)"
                ),
            });
        }
    }
}

fn check_direct_fs(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    if suffix_match(path, FS_EXEMPT) {
        return;
    }
    // Like `check_panic_sites`: consult the allowlist only once a token
    // actually exists, so entries for cleaned-up files go stale.
    let mut allowed: Option<bool> = None;
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = FS_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        if *allowed.get_or_insert_with(|| allow.allows_direct_fs(path)) {
            continue;
        }
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|func| f.comment_block_above_contains(func.sig_line, PRAGMA_DIRECT_FS));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::DirectFs,
                msg: format!(
                    "direct filesystem mutation (`{tok}`) outside util::vfs; \
                     publish through util::vfs::write_atomic so faults, \
                     scrubbing and durability stay centralised (or justify \
                     with `// {PRAGMA_DIRECT_FS}`)"
                ),
            });
        }
    }
}

/// Relative-path helper for reports: strips `base` from `p` when possible.
pub fn display_path(p: &Path, base: &Path) -> String {
    p.strip_prefix(base).unwrap_or(p).display().to_string()
}
