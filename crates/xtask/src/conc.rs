//! The concurrency-discipline rules (R6–R9), built on the block-aware
//! lexer (brace depths, guard-binding lifetimes) and the checked-in
//! `lock_order.toml` registry.
//!
//! - **guard-across-call** (R6): a `MutexGuard` bound with `let` stays
//!   live to the end of its block (or an explicit `drop`). If an
//!   expensive call — a device op, a GEMM/QR factorization, checkpoint
//!   encoding, a condvar or queue wait, a sleep — happens inside that
//!   span, every other thread contending for the lock stalls behind the
//!   slow work. The sanctioned condvar idiom (`s = relock(cv.wait(s))`)
//!   is exempt: the wait *consumes* the named guard, releasing the lock.
//! - **lock-order** (R7): every `<receiver>.lock()` in the scoped
//!   subsystems must map to a registered lock name, and a lock acquired
//!   while another guard is live must rank *after* it in the hierarchy
//!   (`order` in `lock_order.toml`, coarse → fine). Cycles need two
//!   threads disagreeing on order; a single total order kills them all.
//! - **nondet-source** (R8): files on the registry's observable-bytes
//!   list must not consult `HashMap`/`HashSet` iteration order, wall
//!   clocks, or thread identity — byte-level checkpoint/observable
//!   reproducibility is a tier-1 contract here.
//! - **nested-par** (R9): rayon fan-out in library code must sit in a
//!   block opened by a `par_enabled(..)` dispatch, so kernels fall back
//!   to their serial branch inside a scheduler worker instead of
//!   stacking W workers × K kernel tasks on one global pool (the
//!   oversubscription profile behind the 0.301 parallel efficiency the
//!   4-worker bench recorded). Registered worker entry points must
//!   establish that scope via `enter_worker_scope`.
//!
//! Opt-outs mirror R1–R5: `// dqmc-lint: allow(guard_across_call)` /
//! `allow(lock_order)` / `allow(nondet_source)` / `allow(nested_par)`
//! pragmas on the enclosing function, or the matching `lint.allow`
//! categories (`guard-across-call`/`lock-order` `<file>::<fn>`,
//! `nondet-source <file>`, `nested-par <file>::<fn>`).

use crate::lexer::SourceFile;
use crate::registry::Registry;
use crate::rules::{Allowlist, Rule, Violation};

/// Calls that must not run under a held lock (R6). Dotted / suffixed
/// forms so plain `fn` definitions don't trip the scan.
const EXPENSIVE_TOKENS: [&str; 14] = [
    ".wait(",
    ".wait_timeout(",
    "pop_timeout(",
    "sleep(",
    "gemm(",
    "matmul(",
    "qr_in_place(",
    "qrp_factor(",
    "tsqr(",
    "checkpoint_bytes(",
    "to_bytes(",
    ".encode(",
    "run_sweep",
    "wrap_on_device",
];

/// Condvar-style calls that *consume* the guard they are passed.
const CONSUMING_TOKENS: [&str; 2] = [".wait(", ".wait_timeout("];

/// Nondeterminism sources for R8.
const NONDET_TOKENS: [&str; 6] = [
    "HashMap",
    "HashSet",
    "Instant::now",
    "SystemTime",
    "thread::current",
    "ThreadId",
];

/// Rayon fan-out markers (kept in sync with R4's list).
const PAR_TOKENS: [&str; 5] = [
    "into_par_iter",
    "par_iter",
    "par_chunks",
    "par_bridge",
    "rayon::join",
];

/// Path fragments in R6/R7 jurisdiction: the lock-holding subsystems.
/// `fleet/src/` is deliberately lock-free (see lock_order.toml); keeping
/// it in scope means the first mutex anyone adds there must be
/// registered, not discovered in a deadlock.
const LOCK_SCOPES: [&str; 5] = [
    "sched/src/",
    "gpusim/src/",
    "core/src/",
    "serve/src/",
    "fleet/src/",
];

/// Path fragments in R9 jurisdiction: library crates whose fan-out must
/// be worker-scope gated. (The rayon shim itself and xtask are out.)
const PAR_SCOPES: [&str; 5] = [
    "linalg/src/",
    "lattice/src/",
    "core/src/",
    "sched/src/",
    "gpusim/src/",
];

const PRAGMA_GUARD: &str = "dqmc-lint: allow(guard_across_call)";
const PRAGMA_ORDER: &str = "dqmc-lint: allow(lock_order)";
const PRAGMA_NONDET: &str = "dqmc-lint: allow(nondet_source)";
const PRAGMA_NESTED: &str = "dqmc-lint: allow(nested_par)";

/// One lock acquisition: a `<receiver>.lock()` call and, when bound with
/// `let`, the span the resulting guard stays live over.
#[derive(Debug)]
struct LockEvent {
    /// 0-based line of the `.lock()` call.
    line: usize,
    /// Receiver field (`self.state.lock()` → `state`).
    field: String,
    /// Binding name when `let`-bound (`None` for same-statement
    /// temporaries, whose guard dies at the semicolon).
    name: Option<String>,
    /// Last 0-based line the guard can still be live on.
    end: usize,
}

/// Entry point: runs R6–R9 over one scanned file.
pub fn check_concurrency(
    f: &SourceFile,
    allow: &Allowlist,
    reg: &Registry,
    path: &str,
    out: &mut Vec<Violation>,
) {
    let norm = path.replace('\\', "/");
    if LOCK_SCOPES.iter().any(|s| norm.contains(s)) {
        let events = collect_lock_events(f);
        check_guard_across_call(f, allow, path, &events, out);
        check_lock_order(f, allow, reg, path, &events, out);
    }
    if reg.is_observable_path(path) {
        check_nondet_sources(f, allow, path, out);
    }
    if PAR_SCOPES.iter().any(|s| norm.contains(s)) {
        check_nested_par(f, allow, path, out);
    }
    check_worker_scopes(f, reg, path, out);
}

/// Finds every `.lock()` call outside test code and computes the bound
/// guard's live span: to the end of the enclosing block, cut short by an
/// explicit `drop(name)`.
fn collect_lock_events(f: &SourceFile) -> Vec<LockEvent> {
    let mut out = Vec::new();
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(pos) = line.find(".lock()") else {
            continue;
        };
        let field: String = line[..pos]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if field.is_empty() {
            continue;
        }
        // A `let` binds the *guard* only when nothing but closers follow
        // the `.lock()` (the relock-wrapped idiom). Indexing/cloning
        // through the lock (`relock(x.lock())[i].y.clone()`) binds data;
        // that guard is a temporary, dead at the semicolon.
        let rest = &line[pos + ".lock()".len()..];
        let binds_guard = rest
            .chars()
            .all(|c| c == ')' || c == ';' || c == ',' || c.is_whitespace());
        let name = if binds_guard {
            let_binding_name(line)
        } else {
            None
        };
        let end = match &name {
            Some(n) => {
                let scope_end = f.scope_end(ln);
                (ln + 1..=scope_end)
                    .find(|&m| f.code[m].contains(&format!("drop({n})")))
                    .unwrap_or(scope_end)
            }
            None => ln,
        };
        out.push(LockEvent {
            line: ln,
            field,
            name,
            end,
        });
    }
    out
}

/// The identifier a `let` statement on `line` binds, skipping `mut` and
/// ignoring the discard pattern `_`.
fn let_binding_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name != "_").then_some(name)
}

/// R6: expensive calls inside a guard's live span.
fn check_guard_across_call(
    f: &SourceFile,
    allow: &Allowlist,
    path: &str,
    events: &[LockEvent],
    out: &mut Vec<Violation>,
) {
    for ev in events {
        let Some(guard) = &ev.name else {
            continue; // temporary: released at the semicolon
        };
        for ln in ev.line + 1..=ev.end {
            if f.is_test[ln] {
                continue;
            }
            let line = &f.code[ln];
            let Some(tok) = EXPENSIVE_TOKENS.iter().find(|t| line.contains(*t)) else {
                continue;
            };
            // Sanctioned condvar idiom: the wait consumes this guard,
            // releasing the lock for the duration of the block.
            let consumed = CONSUMING_TOKENS.contains(tok)
                && line
                    .find(tok)
                    .map(|p| &line[p + tok.len()..])
                    .is_some_and(|rest| rest.trim_start().starts_with(guard.as_str()));
            if consumed {
                continue;
            }
            let func = f.enclosing_fn(ln);
            let pardoned = func.is_some_and(|fun| {
                f.comment_block_above_contains(fun.sig_line, PRAGMA_GUARD)
                    || allow.allows_guard(path, &fun.name)
            });
            if !pardoned {
                out.push(Violation {
                    path: path.to_owned(),
                    line: ln + 1,
                    rule: Rule::GuardAcrossCall,
                    msg: format!(
                        "guard `{guard}` (lock `{}`, taken on line {}) is \
                         still held across `{tok}`; drop it first or move \
                         the slow work out of the critical section",
                        ev.field,
                        ev.line + 1
                    ),
                });
            }
            break; // one finding per guard is enough
        }
    }
}

/// R7: every lock must be registered, and nested acquisitions must
/// follow the registry's total order.
fn check_lock_order(
    f: &SourceFile,
    allow: &Allowlist,
    reg: &Registry,
    path: &str,
    events: &[LockEvent],
    out: &mut Vec<Violation>,
) {
    if reg.order.is_empty() {
        return; // no registry (bare fixture run): nothing to enforce
    }
    let pardoned = |ln: usize| {
        f.enclosing_fn(ln).is_some_and(|fun| {
            f.comment_block_above_contains(fun.sig_line, PRAGMA_ORDER)
                || allow.allows_order(path, &fun.name)
        })
    };
    let ranks: Vec<Option<(usize, &str)>> = events
        .iter()
        .map(|ev| {
            let name = reg.lock_name(path, &ev.field)?;
            reg.rank(name).map(|r| (r, name))
        })
        .collect();
    for (ev, rank) in events.iter().zip(&ranks) {
        if rank.is_none() && !pardoned(ev.line) {
            out.push(Violation {
                path: path.to_owned(),
                line: ev.line + 1,
                rule: Rule::LockOrder,
                msg: format!(
                    "lock receiver `{}` is not in the lock_order.toml \
                     registry; name it and place it in the hierarchy",
                    ev.field
                ),
            });
        }
    }
    for (i, (held, held_rank)) in events.iter().zip(&ranks).enumerate() {
        let Some((hr, hname)) = held_rank else {
            continue;
        };
        if held.name.is_none() {
            continue; // temporary: gone before anything else locks
        }
        for (inner, inner_rank) in events.iter().zip(&ranks).skip(i + 1) {
            let Some((ir, iname)) = inner_rank else {
                continue;
            };
            let nested = inner.line > held.line && inner.line <= held.end;
            if nested && ir <= hr && !pardoned(inner.line) {
                out.push(Violation {
                    path: path.to_owned(),
                    line: inner.line + 1,
                    rule: Rule::LockOrder,
                    msg: format!(
                        "lock `{iname}` acquired while `{hname}` (line {}) \
                         is held, against the registry order `{}`",
                        held.line + 1,
                        reg.order.join(" < ")
                    ),
                });
            }
        }
    }
}

/// R8: nondeterminism sources on observable-bytes paths.
fn check_nondet_sources(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    let mut allowed: Option<bool> = None;
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = NONDET_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        if *allowed.get_or_insert_with(|| allow.allows_nondet(path)) {
            continue;
        }
        let pardoned = f
            .enclosing_fn(ln)
            .is_some_and(|fun| f.comment_block_above_contains(fun.sig_line, PRAGMA_NONDET));
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::NondetSource,
                msg: format!(
                    "`{tok}` on an observable-bytes path (lock_order.toml \
                     [r8]); checkpoint and observable encodings must be \
                     bit-reproducible"
                ),
            });
        }
    }
}

/// R9 (gating): each rayon fan-out line must sit in a block whose opener
/// chain carries a `par_enabled(..)` dispatch.
fn check_nested_par(f: &SourceFile, allow: &Allowlist, path: &str, out: &mut Vec<Violation>) {
    for (ln, line) in f.code.iter().enumerate() {
        if f.is_test[ln] {
            continue;
        }
        let Some(tok) = PAR_TOKENS.iter().find(|t| line.contains(*t)) else {
            continue;
        };
        if line.contains("par_enabled(") || opener_chain_gated(f, ln) {
            continue;
        }
        let func = f.enclosing_fn(ln);
        let pardoned = func.is_some_and(|fun| {
            f.comment_block_above_contains(fun.sig_line, PRAGMA_NESTED)
                || allow.allows_nested(path, &fun.name)
        });
        if !pardoned {
            out.push(Violation {
                path: path.to_owned(),
                line: ln + 1,
                rule: Rule::NestedPar,
                msg: format!(
                    "`{tok}` not gated by `par_enabled(..)`: inside a \
                     scheduler worker this stacks kernel fan-out on the \
                     global rayon pool (nested parallelism); dispatch on \
                     `if par_enabled(..)` with a serial else-branch"
                ),
            });
        }
    }
}

/// Walks the block-opener chain from `line` up to the enclosing fn (or
/// file top) looking for a `par_enabled(` dispatch.
fn opener_chain_gated(f: &SourceFile, line: usize) -> bool {
    let floor = f.enclosing_fn(line).map_or(0, |fun| fun.body.0);
    let mut at = line;
    while let Some(op) = f.block_opener(at) {
        if f.code[op].contains("par_enabled(") {
            return true;
        }
        if op <= floor {
            return false;
        }
        at = op;
    }
    false
}

/// R9 (workers): registered worker entry points must establish the
/// serial-kernel scope.
fn check_worker_scopes(f: &SourceFile, reg: &Registry, path: &str, out: &mut Vec<Violation>) {
    for (wfile, wfn) in &reg.workers {
        if !crate::rules::suffix_match(path, wfile) {
            continue;
        }
        let Some(fun) = f.fns.iter().find(|fun| &fun.name == wfn) else {
            out.push(Violation {
                path: path.to_owned(),
                line: 1,
                rule: Rule::NestedPar,
                msg: format!(
                    "lock_order.toml registers worker `{wfn}` but no such \
                     fn exists here; update the [r9] workers list"
                ),
            });
            continue;
        };
        let scoped = (fun.body.0..=fun.body.1).any(|ln| f.code[ln].contains("enter_worker_scope"));
        if !scoped {
            out.push(Violation {
                path: path.to_owned(),
                line: fun.sig_line + 1,
                rule: Rule::NestedPar,
                msg: format!(
                    "worker entry `{wfn}` never calls \
                     `linalg::enter_worker_scope()`; kernels it invokes \
                     would fan out on the global rayon pool"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(path: &str, src: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from(path), src)
    }

    fn run(path: &str, src: &str, reg: &Registry) -> Vec<Violation> {
        let f = scan(path, src);
        let mut out = Vec::new();
        check_concurrency(&f, &Allowlist::default(), reg, path, &mut out);
        out
    }

    fn reg() -> Registry {
        Registry::parse(
            "order = [\"queue\", \"trace\"]\n[locks]\n\
             \"sched/src/x.rs::state\" = \"queue\"\n\
             \"sched/src/x.rs::events\" = \"trace\"\n",
        )
        .unwrap()
    }

    #[test]
    fn guard_across_gemm_flagged_and_wait_idiom_exempt() {
        let src = "\
fn bad(&self) {
    let g = relock(self.state.lock());
    gemm(1.0, &a, &b, &mut c);
}
fn good(&self) {
    let mut s = relock(self.state.lock());
    s = relock(self.cv.wait(s));
}
";
        let v = run("sched/src/x.rs", src, &reg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::GuardAcrossCall);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let src = "\
fn ok(&self) {
    let g = relock(self.state.lock());
    drop(g);
    gemm(1.0, &a, &b, &mut c);
}
";
        assert!(run("sched/src/x.rs", src, &reg()).is_empty());
    }

    #[test]
    fn out_of_order_and_unregistered_locks_flagged() {
        let src = "\
fn bad(&self) {
    let t = relock(self.events.lock());
    let q = relock(self.state.lock());
}
fn unregistered(&self) {
    let g = relock(self.mystery.lock());
}
";
        let v = run("sched/src/x.rs", src, &reg());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::LockOrder));
        assert_eq!(v[0].line, 6); // unregistered receiver
        assert_eq!(v[1].line, 3); // trace before queue
    }

    #[test]
    fn correctly_ordered_nesting_is_silent() {
        let src = "\
fn good(&self) {
    let q = relock(self.state.lock());
    let t = relock(self.events.lock());
}
";
        assert!(run("sched/src/x.rs", src, &reg()).is_empty());
    }

    #[test]
    fn nondet_tokens_only_flag_registered_files() {
        let mut r = reg();
        r.observables.push("core/src/obs.rs".into());
        let src = "fn f() { let m = HashMap::new(); }\n";
        assert_eq!(run("core/src/obs.rs", src, &r).len(), 1);
        assert!(run("core/src/other.rs", src, &r).is_empty());
    }

    #[test]
    fn ungated_par_flagged_gated_par_silent() {
        let src = "\
fn kernel(par: bool) {
    if par_enabled(par) {
        a.par_chunks_mut(8).for_each(work);
    } else {
        a.chunks_mut(8).for_each(work);
    }
    b.par_iter().sum::<f64>();
}
";
        let v = run("linalg/src/k.rs", src, &reg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NestedPar);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn worker_without_scope_flagged() {
        let mut r = reg();
        r.workers
            .push(("sched/src/x.rs".into(), "worker_loop".into()));
        let good = "fn worker_loop() {\n    let _s = linalg::enter_worker_scope();\n}\n";
        let bad = "fn worker_loop() {\n    let x = 1;\n}\n";
        assert!(run("sched/src/x.rs", good, &r).is_empty());
        let v = run("sched/src/x.rs", bad, &r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NestedPar);
    }
}
