//! Workspace automation tasks. Currently one: `cargo xtask lint`.
//!
//! `lint` is the dqmc-lint static-analysis pass: a dependency-free token
//! walk over the workspace sources enforcing the numerical-kernel hygiene
//! rules documented in [`rules`]. Run it as
//!
//! ```text
//! cargo xtask lint              # lint the workspace (CI does this)
//! cargo xtask lint --root DIR   # lint every .rs under DIR (self-tests)
//! ```
//!
//! Exit status: 0 when clean, 1 when violations are found, 2 on usage or
//! I/O errors. The allowlist lives in `crates/xtask/lint.allow`; the
//! concurrency registry (lock hierarchy, observable-bytes files, worker
//! entry points) in the workspace-root `lock_order.toml`. A lint run also
//! fails when an allowlist entry pardoned nothing (stale-allow): dead
//! entries would silently pardon whatever appears in that file next.

mod conc;
mod lexer;
mod registry;
mod rules;

use lexer::SourceFile;
use registry::Registry;
use rules::{check_file, display_path, Allowlist, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--root DIR] [--allowlist FILE]";

fn run_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a value"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let explicit_root = root.is_some();
    let root = root.unwrap_or_else(workspace_root);
    let allow = match load_allowlist(&root, allow_path, explicit_root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let reg = match load_registry(&root, explicit_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    let result = lint_tree(&root, &allow, &reg).map(|mut violations| {
        violations.extend(allow.stale_violations("crates/xtask/lint.allow"));
        violations
    });
    match result {
        Ok(violations) if violations.is_empty() => {
            println!("dqmc-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("dqmc-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("xtask lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Loads the allowlist: an explicit `--allowlist`, else the workspace's
/// `crates/xtask/lint.allow`. With an explicit `--root` (fixture mode) a
/// missing default allowlist degrades to an empty one.
fn load_allowlist(
    root: &Path,
    explicit: Option<PathBuf>,
    explicit_root: bool,
) -> Result<Allowlist, String> {
    let (path, required) = match explicit {
        Some(p) => (p, true),
        None => (root.join("crates/xtask/lint.allow"), !explicit_root),
    };
    match std::fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) if !required => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Loads the concurrency registry from `<root>/lock_order.toml`. Required
/// for a workspace run; with an explicit `--root` (fixture mode) a missing
/// registry degrades to an empty one (R7/R8 and the worker checks idle).
fn load_registry(root: &Path, explicit_root: bool) -> Result<Registry, String> {
    let path = root.join("lock_order.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Registry::parse(&text),
        Err(_) if explicit_root => Ok(Registry::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Lints the source tree under `root` and returns all findings.
///
/// For a workspace root (has a `crates/` directory) only `crates/*/src` and
/// `shims/*/src` are walked; otherwise every `.rs` under `root` is linted
/// (used by the fixture self-tests).
fn lint_tree(root: &Path, allow: &Allowlist, reg: &Registry) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    if root.join("crates").is_dir() {
        for tier in ["crates", "shims"] {
            let dir = root.join(tier);
            if !dir.is_dir() {
                continue;
            }
            for entry in read_dir(&dir)? {
                let src = entry.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut files)?;
                }
            }
        }
    } else {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = PathBuf::from(display_path(&path, root));
        let scanned = SourceFile::scan(rel, &text);
        out.extend(check_file(&scanned, allow, reg));
    }
    Ok(out)
}

fn read_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for e in rd {
        out.push(e.map_err(|e| e.to_string())?.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for p in read_dir(dir)? {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Rule;

    fn fixture_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    fn fixture_registry() -> Registry {
        let text = std::fs::read_to_string(fixture_dir().join("lock_order.toml"))
            .expect("fixture registry readable");
        Registry::parse(&text).expect("fixture registry parses")
    }

    fn lint_fixture(name: &str) -> Vec<Violation> {
        let path = fixture_dir().join(name);
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let scanned = SourceFile::scan(PathBuf::from(name), &text);
        check_file(&scanned, &Allowlist::default(), &fixture_registry())
    }

    #[test]
    fn fixture_r1_unsafe_without_safety_comment() {
        let v = lint_fixture("r1_unsafe.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UnsafeSite);
        assert_eq!(v[0].line, 7, "{}", v[0]);
    }

    #[test]
    fn fixture_r2_alloc_in_hot_module() {
        let v = lint_fixture("r2_alloc.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HotAlloc);
        assert_eq!(v[0].line, 7, "{}", v[0]);
    }

    #[test]
    fn fixture_r3_unchecked_public_kernel() {
        let v = lint_fixture("kernels/scale.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::UncheckedKernel);
        assert_eq!(v[0].line, 5, "{}", v[0]);
    }

    #[test]
    fn fixture_r4_rayon_over_raw_pointer() {
        let v = lint_fixture("r4_rayon.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RayonRawPtr);
        assert_eq!(v[0].line, 5, "{}", v[0]);
    }

    #[test]
    fn fixture_r5_panic_in_sched_scope() {
        // The scan path mirrors the fixture's location so R5's path
        // scoping (`sched/src/`) engages; the pragma'd fn and the
        // `#[cfg(test)]` mod must stay silent.
        let v = lint_fixture("sched/src/r5_panic.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PanicSite);
        assert_eq!(v[0].line, 5, "{}", v[0]);
    }

    #[test]
    fn fixture_r5_is_silent_outside_scope_and_when_allowlisted() {
        let path = fixture_dir().join("sched/src/r5_panic.rs");
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let reg = fixture_registry();
        // Same text scanned under a non-sched path: out of jurisdiction.
        let scanned = SourceFile::scan(PathBuf::from("linalg/src/r5_panic.rs"), &text);
        assert!(check_file(&scanned, &Allowlist::default(), &reg).is_empty());
        // In scope but file-allowlisted: pardoned wholesale.
        let scanned = SourceFile::scan(PathBuf::from("sched/src/r5_panic.rs"), &text);
        let allow = Allowlist::parse("panic-site sched/src/r5_panic.rs\n").unwrap();
        assert!(check_file(&scanned, &allow, &reg).is_empty());
        // And the consulted entry is not stale.
        assert!(allow.stale().is_empty());
    }

    #[test]
    fn fixture_r6_guard_across_expensive_calls() {
        // Two findings: guard across gemm, guard across pop_timeout. The
        // condvar-consuming wait and the dropped-guard fn stay silent.
        let v = lint_fixture("core/src/r6_guard.rs");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::GuardAcrossCall));
        assert_eq!(v[0].line, 10, "{}", v[0]);
        assert_eq!(v[1].line, 17, "{}", v[1]);
    }

    #[test]
    fn fixture_r7_lock_order_inversion() {
        let v = lint_fixture("sched/src/r7_order.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert_eq!(v[0].line, 11, "{}", v[0]);
    }

    #[test]
    fn fixture_r7_serve_scope_requires_registered_locks() {
        // The serve subsystem is in R6/R7 jurisdiction: an unregistered
        // receiver is flagged, the registered one and test code are not.
        let v = lint_fixture("serve/src/r7_unregistered.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::LockOrder);
        assert_eq!(v[0].line, 10, "{}", v[0]);
        assert!(v[0].msg.contains("not in the lock_order.toml"), "{}", v[0]);
    }

    #[test]
    fn fixture_r8_nondet_on_observable_path() {
        let v = lint_fixture("core/src/r8_nondet.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NondetSource);
        assert_eq!(v[0].line, 11, "{}", v[0]);
    }

    #[test]
    fn fixture_r9_ungated_fanout() {
        // One finding for the ungated par_iter; the par_enabled-dispatched
        // block is silent.
        let v = lint_fixture("linalg/src/r9_nested.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NestedPar);
        assert_eq!(v[0].line, 19, "{}", v[0]);
    }

    #[test]
    fn fixture_r9_batched_kernel_fanout_must_be_gated() {
        // The strided-batch shape: the gated tile grid is silent, the
        // unconditional per-entry batch loop is flagged.
        let v = lint_fixture("linalg/src/r9_batched.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NestedPar);
        assert_eq!(v[0].line, 27, "{}", v[0]);
    }

    #[test]
    fn fixture_r10_direct_fs() {
        // One finding — the bare `std::fs::write` publish; the vfs-routed
        // write, the pragma'd move, and the test mod stay silent.
        let v = lint_fixture("r10_fs.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::DirectFs);
        assert_eq!(v[0].line, 7, "{}", v[0]);
    }

    #[test]
    fn fixture_r10_exempts_vfs_and_honours_allowlist() {
        let path = fixture_dir().join("r10_fs.rs");
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let reg = fixture_registry();
        // The same text under the audited module's own path: exempt.
        let scanned = SourceFile::scan(PathBuf::from("util/src/vfs.rs"), &text);
        assert!(check_file(&scanned, &Allowlist::default(), &reg).is_empty());
        // File-allowlisted under its own path: pardoned, entry consulted.
        let scanned = SourceFile::scan(PathBuf::from("r10_fs.rs"), &text);
        let allow = Allowlist::parse("direct-fs r10_fs.rs\n").unwrap();
        assert!(check_file(&scanned, &allow, &reg).is_empty());
        assert!(allow.stale().is_empty());
    }

    #[test]
    fn fixture_tree_has_expected_violations_per_rule() {
        // The CLI path over the whole fixture tree: 13 findings.
        let allow = Allowlist::default();
        let v = lint_tree(&fixture_dir(), &allow, &fixture_registry()).unwrap();
        assert_eq!(v.len(), 13, "{v:?}");
        for (rule, n) in [
            (Rule::UnsafeSite, 1),
            (Rule::HotAlloc, 1),
            (Rule::UncheckedKernel, 1),
            (Rule::RayonRawPtr, 1),
            (Rule::PanicSite, 1),
            (Rule::GuardAcrossCall, 2),
            (Rule::LockOrder, 2),
            (Rule::NondetSource, 1),
            (Rule::NestedPar, 2),
            (Rule::DirectFs, 1),
        ] {
            assert_eq!(v.iter().filter(|x| x.rule == rule).count(), n, "{rule:?}");
        }
    }

    #[test]
    fn stale_allowlist_entries_become_violations() {
        // An entry for a file with nothing to pardon must be reported.
        let allow = Allowlist::parse("unsafe no/such/file.rs\n").unwrap();
        let v = lint_tree(&fixture_dir(), &allow, &fixture_registry()).unwrap();
        let stale = allow.stale_violations("lint.allow");
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].rule, Rule::StaleAllow);
        assert_eq!(stale[0].line, 1);
        assert!(stale[0].msg.contains("unsafe no/such/file.rs"));
        // The fixture findings themselves are unaffected.
        assert_eq!(v.len(), 13, "{v:?}");
    }

    #[test]
    fn workspace_is_clean_with_no_stale_entries() {
        // The real tree with the real allowlist and registry must lint
        // clean — this is the same invocation CI runs — and every
        // allowlist entry must have pardoned something.
        let root = workspace_root();
        let allow = load_allowlist(&root, None, false).unwrap();
        let reg = load_registry(&root, false).unwrap();
        let v = lint_tree(&root, &allow, &reg).unwrap();
        assert!(v.is_empty(), "workspace lint violations:\n{:#?}", v);
        assert!(
            allow.stale().is_empty(),
            "stale lint.allow entries: {:?}",
            allow.stale()
        );
    }

    #[test]
    fn allowlist_rejects_unknown_categories() {
        assert!(Allowlist::parse("unsafe a.rs\n").is_ok());
        assert!(Allowlist::parse("rayon-raw-ptr a.rs::f\n").is_ok());
        assert!(Allowlist::parse("panic-site a.rs\n").is_ok());
        assert!(Allowlist::parse("guard-across-call a.rs::f\n").is_ok());
        assert!(Allowlist::parse("lock-order a.rs::f\n").is_ok());
        assert!(Allowlist::parse("nondet-source a.rs\n").is_ok());
        assert!(Allowlist::parse("nested-par a.rs::f\n").is_ok());
        assert!(Allowlist::parse("direct-fs a.rs\n").is_ok());
        assert!(Allowlist::parse("frobnicate a.rs\n").is_err());
        assert!(Allowlist::parse("rayon-raw-ptr missing-fn.rs\n").is_err());
        assert!(Allowlist::parse("nested-par missing-fn.rs\n").is_err());
    }
}
