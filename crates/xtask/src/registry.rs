//! The concurrency registry: a checked-in `lock_order.toml` naming every
//! mutex in the scheduler/device-pool/core subsystems, the total order
//! they may be acquired in, the files whose bytes feed observables
//! (rule R8's jurisdiction), and the worker entry points that must pin
//! kernels to their serial branch (rule R9).
//!
//! The format is a small, hand-parsed subset of TOML — quoted strings,
//! single- or multi-line string arrays, `#` comments, and three tables —
//! because this build is offline and a full TOML crate would be the only
//! reason to want one.
//!
//! ```toml
//! order = ["queue.state", "pool.free"]    # coarse → fine
//!
//! [locks]
//! "sched/src/queue.rs::state" = "queue.state"
//!
//! [r8]
//! observables = ["core/src/checkpoint.rs"]
//!
//! [r9]
//! workers = ["sched/src/runner.rs::worker_loop"]
//! ```

/// Parsed `lock_order.toml`.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Lock names in acquisition order (coarse first). A thread holding
    /// lock `order[i]` may only acquire locks `order[j]` with `j > i`.
    pub order: Vec<String>,
    /// `(file-suffix, receiver-field, lock-name)`: which registry name a
    /// `<receiver>.lock()` in a given file refers to.
    pub locks: Vec<(String, String, String)>,
    /// File suffixes whose bytes feed observables or checkpoints (R8).
    pub observables: Vec<String>,
    /// `(file-suffix, fn)` worker entry points that must establish the
    /// serial-kernel scope (R9).
    pub workers: Vec<(String, String)>,
}

impl Registry {
    /// Rank of `name` in the acquisition order, if registered.
    pub fn rank(&self, name: &str) -> Option<usize> {
        self.order.iter().position(|n| n == name)
    }

    /// The registered lock name for field `field` of a file matching
    /// `path` (suffix match on path-component boundaries).
    pub fn lock_name(&self, path: &str, field: &str) -> Option<&str> {
        self.locks
            .iter()
            .find(|(file, f, _)| f == field && crate::rules::suffix_match(path, file))
            .map(|(_, _, name)| name.as_str())
    }

    /// Whether `path` is in R8's observable-bytes jurisdiction.
    pub fn is_observable_path(&self, path: &str) -> bool {
        self.observables
            .iter()
            .any(|p| crate::rules::suffix_match(path, p))
    }

    /// Parses the `lock_order.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Registry, String> {
        let mut out = Registry::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let (key, mut val) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
                .ok_or_else(|| format!("lock_order.toml:{}: expected key = value", i + 1))?;
            // Multi-line array: keep consuming until the closing bracket.
            while val.starts_with('[') && !val.ends_with(']') {
                let (j, cont) = lines
                    .next()
                    .ok_or_else(|| format!("lock_order.toml:{}: unterminated array", i + 1))?;
                let _ = j;
                val.push(' ');
                val.push_str(strip_comment(cont).trim());
            }
            match (section.as_str(), key.as_str()) {
                ("", "order") => out.order = parse_array(&val, i)?,
                ("locks", _) => {
                    let site = unquote(&key);
                    let (file, field) = site.rsplit_once("::").ok_or_else(|| {
                        format!("lock_order.toml:{}: lock key needs <file>::<field>", i + 1)
                    })?;
                    out.locks
                        .push((file.to_owned(), field.to_owned(), parse_string(&val, i)?));
                }
                ("r8", "observables") => out.observables = parse_array(&val, i)?,
                ("r9", "workers") => {
                    for w in parse_array(&val, i)? {
                        let (file, func) = w.rsplit_once("::").ok_or_else(|| {
                            format!("lock_order.toml:{}: worker needs <file>::<fn>", i + 1)
                        })?;
                        out.workers.push((file.to_owned(), func.to_owned()));
                    }
                }
                (s, k) => {
                    return Err(format!(
                        "lock_order.toml:{}: unknown entry `{k}` in section `[{s}]`",
                        i + 1
                    ))
                }
            }
        }
        for (_, _, name) in &out.locks {
            if out.rank(name).is_none() {
                return Err(format!(
                    "lock_order.toml: lock name `{name}` is not in `order`"
                ));
            }
        }
        Ok(out)
    }
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> &str {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
}

fn parse_string(val: &str, line: usize) -> Result<String, String> {
    let v = val.trim();
    if v.starts_with('"') && v.ends_with('"') && v.len() >= 2 {
        Ok(unquote(v).to_owned())
    } else {
        Err(format!(
            "lock_order.toml:{}: expected a quoted string, got `{v}`",
            line + 1
        ))
    }
}

fn parse_array(val: &str, line: usize) -> Result<Vec<String>, String> {
    let inner = val
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lock_order.toml:{}: expected an array", line + 1))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# hierarchy, coarse to fine
order = [
    "queue.state",   # the job queue
    "pool.free",
]

[locks]
"sched/src/queue.rs::state" = "queue.state"
"gpusim/src/pool.rs::free" = "pool.free"

[r8]
observables = ["core/src/checkpoint.rs", "util/src/codec.rs"]

[r9]
workers = ["sched/src/runner.rs::worker_loop"]
"#;

    #[test]
    fn parses_full_sample() {
        let r = Registry::parse(SAMPLE).unwrap();
        assert_eq!(r.order, ["queue.state", "pool.free"]);
        assert_eq!(r.rank("pool.free"), Some(1));
        assert_eq!(
            r.lock_name("crates/sched/src/queue.rs", "state"),
            Some("queue.state")
        );
        assert_eq!(r.lock_name("crates/sched/src/queue.rs", "heap"), None);
        assert!(r.is_observable_path("crates/util/src/codec.rs"));
        assert!(!r.is_observable_path("crates/util/src/rng2.rs"));
        assert_eq!(
            r.workers,
            [("sched/src/runner.rs".into(), "worker_loop".into())]
        );
    }

    #[test]
    fn rejects_unordered_lock_name_and_bad_shapes() {
        assert!(
            Registry::parse("order = [\"a\"]\n[locks]\n\"f.rs::x\" = \"b\"\n")
                .unwrap_err()
                .contains("not in `order`")
        );
        assert!(Registry::parse("order = \"a\"\n").is_err());
        assert!(Registry::parse("[locks]\n\"no-sep.rs\" = \"a\"\n").is_err());
        assert!(Registry::parse("garbage\n").is_err());
        assert!(Registry::parse("[r9]\nworkers = [\"no-sep.rs\"]\n").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let r = Registry::parse("order = [\"a#b\"]\n").unwrap();
        assert_eq!(r.order, ["a#b"]);
    }
}
