//! Minimal Rust source scanner for the lint pass.
//!
//! Not a parser: the rules only need (a) code text with comments and string
//! literals blanked out, (b) brace depth, (c) the span of each named `fn`,
//! and (d) which lines sit inside a `#[cfg(test)] mod`. A character-level
//! state machine provides all four; `syn` would be overkill and would drag
//! in dependencies this offline build cannot fetch.

use std::path::PathBuf;

/// Span of one named function (free function or method).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Identifier after the `fn` keyword.
    pub name: String,
    /// Declared with plain `pub` (not `pub(crate)` etc.).
    pub is_pub: bool,
    /// Declared at brace depth 0 (a module-level free function).
    pub free: bool,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive line range of the body, `{` through `}`.
    pub body: (usize, usize),
}

/// One scanned source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path as it should appear in reports.
    pub path: PathBuf,
    /// Raw lines (for comment-content checks: SAFETY notes, pragmas).
    pub raw: Vec<String>,
    /// Lines with comments and string/char literals blanked to spaces.
    pub code: Vec<String>,
    /// Per line: inside a `#[cfg(test)] mod` body.
    pub is_test: Vec<bool>,
    /// All named functions, in source order.
    pub fns: Vec<FnSpan>,
    /// Brace depth at the start of each line.
    pub depth_start: Vec<usize>,
    /// Brace depth after the last brace of each line.
    pub depth_end: Vec<usize>,
}

impl SourceFile {
    /// Scans `text` (the contents of `path`).
    pub fn scan(path: PathBuf, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code = blank_noncode(text);
        debug_assert_eq!(code.len(), raw.len());
        let fns = find_fns(&code);
        let is_test = mark_test_lines(&code);
        let (depth_start, depth_end) = line_depths(&code);
        SourceFile {
            path,
            raw,
            code,
            is_test,
            fns,
            depth_start,
            depth_end,
        }
    }

    /// The innermost function whose body contains `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= line && line <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// Last line of the block a statement on `line` lives in: the first
    /// subsequent line whose closing braces drop below the depth `line`
    /// starts at. A `let` guard bound on `line` is dropped there (absent an
    /// explicit `drop`). Returns the final line when the block never closes.
    pub fn scope_end(&self, line: usize) -> usize {
        let d = self.depth_start[line];
        for m in line..self.code.len() {
            if self.depth_end[m] < d {
                return m;
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// The line that opened the innermost block containing `line`: the
    /// nearest preceding line that starts at a shallower depth. Interior
    /// lines of earlier sibling blocks start *deeper*, so the first
    /// shallower line walking up is the opener (`if … {`, `for … {`, …).
    pub fn block_opener(&self, line: usize) -> Option<usize> {
        let d = self.depth_start[line];
        if d == 0 {
            return None;
        }
        (0..line).rev().find(|&j| self.depth_start[j] < d)
    }

    /// True if any raw line in the contiguous comment/attribute block
    /// directly above `line` (or `line` itself) contains `needle`.
    pub fn comment_block_above_contains(&self, line: usize, needle: &str) -> bool {
        if self.raw.get(line).is_some_and(|l| l.contains(needle)) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let t = self.raw[i].trim_start();
            let is_comment = t.starts_with("//");
            let is_attr = t.starts_with("#[") || t.starts_with("#![");
            if !(is_comment || is_attr) {
                break;
            }
            if t.contains(needle) {
                return true;
            }
        }
        false
    }
}

/// Blanks comments and string/char literals to spaces, preserving line
/// structure so line/column bookkeeping stays valid.
fn blank_noncode(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is 'x' or '\...'.
                    let is_char =
                        next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char {
                        st = St::Char;
                        out.push(' ');
                    } else {
                        out.push(c); // lifetime, leave as code
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
                continue;
            }
            St::BlockComment(d) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '*' && next == Some('/') {
                    st = if d == 1 {
                        St::Code
                    } else {
                        St::BlockComment(d - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
                i += 1;
                continue;
            }
            St::Str => {
                if c == '\\' {
                    // Keep an escaped newline (string line-continuation) so
                    // line bookkeeping survives.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Code;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        st = St::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    st = St::Code;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
        }
        i += 1;
    }
    out.lines().map(str::to_owned).collect()
}

/// Splits a blanked code line into identifier-ish word tokens.
pub fn words(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

/// Finds every named `fn` and its body line span by brace counting.
fn find_fns(code: &[String]) -> Vec<FnSpan> {
    struct Pending {
        name: String,
        is_pub: bool,
        free: bool,
        sig_line: usize,
    }
    let mut fns = Vec::new();
    let mut open: Vec<(usize, usize)> = Vec::new(); // (fns index, depth after open)
    let mut pending: Option<Pending> = None;
    let mut depth = 0usize;

    for (ln, line) in code.iter().enumerate() {
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                if word == "fn" {
                    // Must be followed by an identifier (not an `fn(..)` type).
                    let rest: String = bytes[i..].iter().collect();
                    let after = rest.trim_start();
                    let name: String = after
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        // `pub` must appear just before `fn` on this line
                        // (possibly with `unsafe`/`const`/`extern` between);
                        // `pub(crate)` and friends don't count as public API.
                        let before: String = bytes[..start].iter().collect();
                        let is_pub = words(&before).any(|w| w == "pub") && !before.contains("pub(");
                        pending = Some(Pending {
                            name,
                            is_pub,
                            free: depth == 0,
                            sig_line: ln,
                        });
                    }
                }
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    if let Some(p) = pending.take() {
                        fns.push(FnSpan {
                            name: p.name,
                            is_pub: p.is_pub,
                            free: p.free,
                            sig_line: p.sig_line,
                            body: (ln, ln),
                        });
                        open.push((fns.len() - 1, depth));
                    }
                }
                '}' => {
                    if let Some(&(idx, d)) = open.last() {
                        if d == depth {
                            fns[idx].body.1 = ln;
                            open.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // Bodiless declaration (trait method): cancel.
                    pending = None;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fns
}

/// Brace depth at the start and end of every blanked code line. Uses the
/// same counting discipline as [`find_fns`], so the two views agree.
fn line_depths(code: &[String]) -> (Vec<usize>, Vec<usize>) {
    let mut start = Vec::with_capacity(code.len());
    let mut end = Vec::with_capacity(code.len());
    let mut depth = 0usize;
    for line in code {
        start.push(depth);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        end.push(depth);
    }
    (start, end)
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` body.
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    let mut out = vec![false; code.len()];
    let mut ln = 0;
    while ln < code.len() {
        if code[ln].contains("#[cfg(test)]") {
            // The attribute must introduce a `mod` within the next few lines
            // (other cfg(test) targets — fns, use items — are not modules).
            let mut m = ln + 1;
            let mut found_mod = false;
            while m < code.len() && m <= ln + 3 {
                let t = code[m].trim_start();
                if t.starts_with("mod ") || t.starts_with("pub mod ") {
                    found_mod = true;
                    break;
                }
                if !(t.is_empty() || t.starts_with("#[")) {
                    break;
                }
                m += 1;
            }
            if found_mod {
                // Walk from the mod line to its matching close brace.
                let mut depth = 0i64;
                let mut opened = false;
                let mut l = m;
                'outer: while l < code.len() {
                    out[l] = true;
                    for c in code[l].chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => {
                                depth -= 1;
                                if opened && depth == 0 {
                                    break 'outer;
                                }
                            }
                            _ => {}
                        }
                    }
                    l += 1;
                }
                ln = l;
            }
        }
        ln += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(PathBuf::from("mem.rs"), src)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let s = \"vec![not code]\"; // vec! in comment\nlet v = 1;\n");
        assert!(!f.code[0].contains("vec!"));
        assert!(f.code[1].contains("let v = 1;"));
        assert!(f.raw[0].contains("vec! in comment"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("a /* one /* two */ still */ b\n/* open\n   close */ c\n");
        assert!(f.code[0].contains('a') && f.code[0].contains('b'));
        assert!(!f.code[0].contains("still"));
        assert!(!f.code[1].contains("open"));
        assert!(f.code[2].contains('c'));
    }

    #[test]
    fn char_vs_lifetime() {
        let f = scan("let c = 'x'; fn g<'a>(v: &'a [f64]) {}\n");
        assert!(!f.code[0].contains('x'));
        assert!(f.code[0].contains("'a"));
    }

    #[test]
    fn fn_spans_cover_bodies_and_nesting() {
        let src = "pub fn outer() {\n    let v = 1;\n    fn inner() {\n        let w = 2;\n    }\n}\nfn after() {}\n";
        let f = scan(src);
        let names: Vec<&str> = f.fns.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "after"]);
        assert_eq!(f.fns[0].body, (0, 5));
        assert_eq!(f.fns[1].body, (2, 4));
        assert!(f.fns[0].is_pub && f.fns[0].free);
        assert!(!f.fns[1].free);
        assert_eq!(f.enclosing_fn(3).unwrap().name, "inner");
        assert_eq!(f.enclosing_fn(1).unwrap().name, "outer");
    }

    #[test]
    fn impl_methods_are_not_free() {
        let f = scan("struct S;\nimpl S {\n    pub fn m(&self) {}\n}\n");
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].is_pub && !f.fns[0].free);
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v = vec![1]; }\n}\nfn tail() {}\n";
        let f = scan(src);
        assert!(!f.is_test[0]);
        assert!(f.is_test[3]);
        assert!(!f.is_test[5]);
    }

    #[test]
    fn depths_and_scope_helpers() {
        let src = "fn f() {\n    let g = m.lock();\n    if a {\n        x;\n    }\n    if b {\n        y;\n    }\n}\n";
        let f = scan(src);
        assert_eq!(f.depth_start, [0, 1, 1, 2, 2, 1, 2, 2, 1]);
        assert_eq!(f.depth_end, [1, 1, 2, 2, 1, 2, 2, 1, 0]);
        // The guard on line 1 lives until the fn's closing brace (line 8).
        assert_eq!(f.scope_end(1), 8);
        // Inner statements die at their own block's close.
        assert_eq!(f.scope_end(3), 4);
        // Opener of line 6's block is line 5, not sibling lines 2..4.
        assert_eq!(f.block_opener(6), Some(5));
        assert_eq!(f.block_opener(3), Some(2));
        assert_eq!(f.block_opener(1), Some(0));
        assert_eq!(f.block_opener(0), None);
    }

    #[test]
    fn comment_block_scan_stops_at_code() {
        let src = "let x = 1;\n// SAFETY: fine\n#[inline]\nunsafe { x }\nunsafe { x }\n";
        let f = scan(src);
        assert!(f.comment_block_above_contains(3, "SAFETY:"));
        assert!(!f.comment_block_above_contains(4, "SAFETY:"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random well-formed source from op codes, returning the
    /// text, the expected brace depth at the start of every line, and the
    /// number of named fns emitted. Strings and comments deliberately
    /// contain unbalanced braces and fake `fn` keywords.
    fn build(ops: &[u8]) -> (String, Vec<usize>, usize) {
        let mut src = String::new();
        let mut depth = 0usize;
        let mut starts = Vec::new();
        let mut nfns = 0usize;
        for (i, op) in ops.iter().enumerate() {
            starts.push(depth);
            match op {
                0 => {
                    src.push_str("if x {\n");
                    depth += 1;
                }
                1 if depth > 0 => {
                    src.push_str("}\n");
                    depth -= 1;
                }
                1 | 2 => src.push_str("let a = b + 1;\n"),
                3 => src.push_str("let s = \"} } fn bogus() { {\";\n"),
                4 => src.push_str("// } fn nope() { unsafe\n"),
                _ => {
                    src.push_str(&format!("fn f{i}() {{\n"));
                    depth += 1;
                    nfns += 1;
                }
            }
        }
        while depth > 0 {
            starts.push(depth);
            src.push_str("}\n");
            depth -= 1;
        }
        (src, starts, nfns)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn depths_track_braces_through_strings_and_comments(
            ops in proptest::collection::vec(0u8..=5, 1..=60),
        ) {
            let (src, starts, nfns) = build(&ops);
            let f = SourceFile::scan(PathBuf::from("gen.rs"), &src);
            prop_assert_eq!(&f.depth_start, &starts);
            // Start/end views agree line to line, and everything closes.
            for i in 1..f.code.len() {
                prop_assert_eq!(f.depth_start[i], f.depth_end[i - 1]);
            }
            prop_assert_eq!(*f.depth_end.last().unwrap(), 0);
            // Braces in strings and comments never minted a phantom fn.
            prop_assert_eq!(f.fns.len(), nfns);
        }

        #[test]
        fn spans_and_scope_helpers_stay_consistent(
            ops in proptest::collection::vec(0u8..=5, 1..=60),
        ) {
            let (src, _, _) = build(&ops);
            let f = SourceFile::scan(PathBuf::from("gen.rs"), &src);
            for fun in &f.fns {
                prop_assert!(fun.body.0 <= fun.body.1);
                prop_assert!(fun.body.1 < f.code.len());
                let mid = (fun.body.0 + fun.body.1) / 2;
                let enc = f.enclosing_fn(mid).expect("mid-body line has a fn");
                prop_assert!(enc.body.0 <= mid && mid <= enc.body.1);
            }
            for ln in 0..f.code.len() {
                let end = f.scope_end(ln);
                prop_assert!(end >= ln && end < f.code.len());
                if let Some(op) = f.block_opener(ln) {
                    prop_assert!(op < ln);
                    prop_assert!(f.depth_start[op] < f.depth_start[ln]);
                }
                // String contents are blanked wholesale.
                prop_assert!(!f.code[ln].contains('"'));
            }
        }
    }
}
