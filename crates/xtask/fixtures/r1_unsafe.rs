//! Fixture: R1 — an `unsafe` block in a file that is not on the unsafe
//! allowlist (and carries no SAFETY comment). Expected: one `unsafe-site`
//! violation on the dereference line.

pub fn peek(data: &[f64]) -> f64 {
    let p = 2usize;
    unsafe { *data.as_ptr().add(p) }
}
