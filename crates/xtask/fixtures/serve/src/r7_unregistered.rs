//! R7 fixture for the serve scope: an unregistered lock receiver in
//! `serve/src/` must be flagged (line 11); the registered receiver and
//! the test module stay silent.

struct S;

impl S {
    /// `inbox` is not in the fixture registry: one finding.
    fn unregistered(&self) {
        let g = relock(self.inbox.lock());
        consume(g);
    }

    /// `writer` is registered for this path — silent.
    fn registered(&self) {
        let g = relock(self.writer.lock());
        consume(g);
    }
}

#[cfg(test)]
mod tests {
    /// Test code is out of jurisdiction even for unregistered locks.
    fn in_test_scope(s: &super::S) {
        let g = relock(s.inbox.lock());
        consume(g);
    }
}
