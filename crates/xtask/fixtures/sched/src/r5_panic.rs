//! R5 fixture: one unpardoned panic site in scheduler-scoped code.
//! (Path matters: this file lives under `sched/src/`.)

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: flagged — classified errors, not unwinds
}

/// A documented invariant that genuinely cannot fail.
// dqmc-lint: allow(panic_site)
pub fn pardoned_expect(v: Option<u32>) -> u32 {
    v.expect("checked by the caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        super::bad_unwrap(None); // .unwrap() in tests is fine
        panic!("so is this");
    }
}
