//! R7 fixture: acquiring the queue lock while holding the trace lock
//! inverts the registered hierarchy (queue before trace). One finding on
//! line 11; the coarse-to-fine function is silent.

struct S;

impl S {
    /// Trace first, then queue: flagged on the queue acquisition line.
    fn inverted(&self) {
        let t = relock(self.events.lock());
        let q = relock(self.state.lock());
        consume(t, q);
    }

    /// Coarse-to-fine matches the registry order — silent.
    fn ordered(&self) {
        let q = relock(self.state.lock());
        let t = relock(self.events.lock());
        consume(t, q);
    }
}
