//! R6 fixture: mutex guards held across expensive calls. Two findings
//! (lines 10 and 17); the consuming condvar wait and the explicit-drop
//! pattern stay silent.

struct S;

impl S {
    fn bad_gemm(&self) {
        let g = relock(self.state.lock());
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
    }

    /// Waiting on a *different* primitive while the guard is live blocks
    /// every contender for the full timeout.
    fn bad_wait(&self) {
        let g = relock(self.state.lock());
        let job = self.queue.pop_timeout(budget);
        consume(g, job);
    }

    /// The sanctioned condvar idiom: the wait consumes this guard,
    /// releasing the lock for the duration of the block.
    fn good_wait(&self) {
        let mut s = relock(self.state.lock());
        s = relock(self.cv.wait(s));
        consume(s, ());
    }

    /// Dropping before the slow work is the fix R6 asks for.
    fn good_drop(&self) {
        let g = relock(self.state.lock());
        drop(g);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
    }
}
