//! R8 fixture: a map with randomized iteration order feeding the
//! observable byte encoder (this path is on the registry's [r8] list).
//! One finding, on the line that names the map type.

/// Encodes per-site occupancy into the checkpoint payload.
pub fn encode_occupancy(w: &mut ByteWriter, sites: &[f64]) {
    let mut acc = 0.0;
    for (i, v) in sites.iter().enumerate() {
        acc += v * i as f64;
    }
    let map = std::collections::HashMap::new();
    for (_k, v) in &map {
        w.write_f64(*v);
    }
    w.write_f64(acc);
}
