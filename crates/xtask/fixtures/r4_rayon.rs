//! Fixture: R4 — a rayon parallel iterator capturing a raw pointer in a
//! function that is not on the rayon-raw-ptr allowlist. Expected: one
//! `rayon-raw-ptr` violation on the function's signature line.

pub fn fill(data: &mut [f64]) {
    let base = data.as_mut_ptr() as usize;
    (0..data.len()).into_par_iter().for_each(|i| {
        let _ = (base as *mut f64).wrapping_add(i);
    });
}
