//! R9 fixture: strided-batch kernel fan-out sites. A batched kernel's
//! tile grid may fan out only under a `par_enabled(..)` dispatch — a
//! scheduler worker (or a crowd job pinned to one lease) runs inside the
//! serial scope, which must be able to switch the fan-out off. A loop
//! over batch entries that fans out unconditionally is flagged.

use rayon::prelude::*;

/// Gated: the batched tile grid sits under a par_enabled dispatch (the
/// `dgemm_strided_batched` shape).
pub fn gated_strided_batch(tiles: usize) {
    let tile = |t: usize| std::hint::black_box(t);
    if par_enabled(tiles >= 4) {
        (0..tiles).into_par_iter().for_each(|t| {
            tile(t);
        });
    } else {
        (0..tiles).for_each(|t| {
            tile(t);
        });
    }
}

/// Ungated: fans out across batch entries unconditionally — flagged.
pub fn ungated_batch_loop(entries: &mut [Vec<f64>]) {
    entries
        .par_iter_mut()
        .for_each(|e| e.iter_mut().for_each(|x| *x += 1.0));
}
