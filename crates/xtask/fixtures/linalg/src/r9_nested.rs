//! R9 fixture: rayon fan-out must dispatch through `par_enabled(..)` so
//! a scheduler worker's serial scope can switch it off. The gated
//! function is silent; the unconditional one is flagged.

use rayon::prelude::*;

/// Gated: the parallel branch sits under a par_enabled dispatch.
pub fn gated(a: &mut [f64]) {
    let work = |c: &mut [f64]| c.iter_mut().for_each(|x| *x += 1.0);
    if par_enabled(a.len() >= 1024) {
        a.par_chunks_mut(64).for_each(work);
    } else {
        a.chunks_mut(64).for_each(work);
    }
}

/// Ungated: fans out on the global pool unconditionally — flagged.
pub fn ungated(a: &[f64]) -> f64 {
    a.par_iter().sum()
}
