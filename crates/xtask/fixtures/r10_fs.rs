//! R10 fixture: direct filesystem mutation outside the audited write
//! path. Exactly one finding — the bare `std::fs::write` below; the
//! pragma'd move, the vfs-routed write, and the test-scoped scratch
//! files all stay silent.

fn bad_publish(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

/// Routed through the one audited write path: silent.
fn good_publish(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    util::vfs::write_atomic(path, bytes)
}

/// Moves an existing file rather than publishing new bytes.
// dqmc-lint: allow(direct_fs)
fn audited_move(from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(from, to)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_fine() {
        let _ = std::fs::File::create("scratch.bin");
        let _ = std::fs::write("scratch.json", "{}");
        let _ = std::fs::rename("scratch.bin", "scratch.old");
    }
}
