//! Fixture: R3 — a public entry point in a kernel-named file (`scale.rs`)
//! with neither an invariant-layer call nor an explicit opt-out pragma.
//! Expected: one `unchecked-kernel` violation on the `pub fn` line.

pub fn normalize(data: &mut [f64]) {
    let s: f64 = data.iter().sum();
    for x in data.iter_mut() {
        *x /= s;
    }
}
