//! Fixture: R2 — heap allocation inside a `deny_hot_alloc` module without
//! a pragma, outside any `#[cfg(test)]` block. Expected: one `hot-alloc`
//! violation on the `vec!` line.
#![cfg_attr(any(), deny_hot_alloc)]

pub fn scratch(n: usize) -> f64 {
    let buf = vec![0.0; n];
    buf.iter().sum()
}
