//! Translation averaging and momentum-space transforms.
//!
//! The paper's Figure 5/6 observable is the momentum distribution
//! `⟨n_k⟩ = (1/N) Σ_{r,r'} e^{ik·(r−r')} ⟨c†_{r'} c_r⟩`. On a periodic
//! lattice the double sum collapses: first translation-average the
//! correlation matrix into `C(d) = (1/N) Σ_r ⟨c†_r c_{r+d}⟩` (O(N²)), then
//! Fourier transform the `N`-vector `C` (O(N²) for all k). Real output is
//! guaranteed by the `d ↔ −d` symmetry of Hermitian observables.

use crate::geometry::Lattice;
use linalg::Matrix;

/// In-plane translation average of a site-pair function:
/// `out[(dx, dy)] = (1/N) Σ_sites m[site ⊞ (dx,dy), site]`, where `⊞` is the
/// periodic in-plane shift within the site's own layer and the sum runs over
/// all `N` sites (all layers).
pub fn translation_average(lat: &Lattice, m: &Matrix) -> Matrix {
    let n = lat.nsites();
    assert_eq!(m.nrows(), n, "translation_average: matrix/lattice mismatch");
    assert_eq!(m.ncols(), n, "translation_average: matrix/lattice mismatch");
    let (lx, ly) = (lat.lx(), lat.ly());
    let mut out = Matrix::zeros(lx, ly);
    for i in 0..n {
        let (x, y, z) = lat.coords(i);
        for dy in 0..ly {
            for dx in 0..lx {
                let j = lat.site((x + dx) % lx, (y + dy) % ly, z);
                out[(dx, dy)] += m[(j, i)];
            }
        }
    }
    out.scale(1.0 / n as f64);
    out
}

/// Discrete Fourier transform of a translation-averaged correlation:
/// `out[(nx, ny)] = Σ_d cos(k·d) C(d)` with `k = 2π(nx/Lx, ny/Ly)`.
///
/// The sine part vanishes for `C(d) = C(−d)`; it is dropped after a debug
/// check rather than silently, because a non-symmetric input signals a bug
/// in the caller's correlation assembly.
pub fn fourier_transform(lat: &Lattice, corr: &Matrix) -> Matrix {
    use std::f64::consts::PI;
    let (lx, ly) = (lat.lx(), lat.ly());
    assert_eq!(corr.nrows(), lx, "fourier_transform: corr shape");
    assert_eq!(corr.ncols(), ly, "fourier_transform: corr shape");
    let mut out = Matrix::zeros(lx, ly);
    for ny in 0..ly {
        for nx in 0..lx {
            let kx = 2.0 * PI * nx as f64 / lx as f64;
            let ky = 2.0 * PI * ny as f64 / ly as f64;
            let mut re = 0.0;
            let mut im = 0.0;
            for dy in 0..ly {
                for dx in 0..lx {
                    let phase = kx * dx as f64 + ky * dy as f64;
                    re += phase.cos() * corr[(dx, dy)];
                    im += phase.sin() * corr[(dx, dy)];
                }
            }
            debug_assert!(
                im.abs() < 1e-8 * (re.abs() + 1.0),
                "non-symmetric correlation: imaginary part {im}"
            );
            out[(nx, ny)] = re;
        }
    }
    out
}

/// Momentum distribution from a density correlation matrix
/// `dm[(r, r')] = ⟨c†_{r'} c_r⟩`: translation-average then transform.
pub fn momentum_distribution(lat: &Lattice, dm: &Matrix) -> Matrix {
    let c = translation_average(lat, dm);
    fourier_transform(lat, &c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_average_of_identity() {
        let lat = Lattice::square(4, 4, 1.0);
        let c = translation_average(&lat, &Matrix::identity(16));
        assert!((c[(0, 0)] - 1.0).abs() < 1e-15);
        for dy in 0..4 {
            for dx in 0..4 {
                if (dx, dy) != (0, 0) {
                    assert_eq!(c[(dx, dy)], 0.0);
                }
            }
        }
    }

    #[test]
    fn translation_average_of_shift_matrix() {
        // m[j, i] = 1 iff j = i shifted by (1, 0): average is δ_{d,(1,0)}.
        let lat = Lattice::square(4, 4, 1.0);
        let mut m = Matrix::zeros(16, 16);
        for i in 0..16 {
            let (x, y, z) = lat.coords(i);
            let j = lat.site((x + 1) % 4, y, z);
            m[(j, i)] = 1.0;
        }
        let c = translation_average(&lat, &m);
        assert!((c[(1, 0)] - 1.0).abs() < 1e-15);
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(2, 0)], 0.0);
    }

    #[test]
    fn fourier_of_delta_is_flat() {
        let lat = Lattice::square(4, 4, 1.0);
        let mut c = Matrix::zeros(4, 4);
        c[(0, 0)] = 1.0;
        let nk = fourier_transform(&lat, &c);
        for ny in 0..4 {
            for nx in 0..4 {
                assert!((nk[(nx, ny)] - 1.0).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn fourier_of_cosine_is_peak() {
        // C(d) = cos(2π dx / L): transform peaks at nx = ±1 with weight L²/2.
        let lat = Lattice::square(8, 8, 1.0);
        use std::f64::consts::PI;
        let c = Matrix::from_fn(8, 8, |dx, _| (2.0 * PI * dx as f64 / 8.0).cos());
        let nk = fourier_transform(&lat, &c);
        assert!((nk[(1, 0)] - 32.0).abs() < 1e-10);
        assert!((nk[(7, 0)] - 32.0).abs() < 1e-10);
        assert!(nk[(0, 0)].abs() < 1e-10);
        assert!(nk[(2, 0)].abs() < 1e-10);
    }

    #[test]
    fn momentum_distribution_total_density_sum_rule() {
        // Σ_k n_k = Σ_r ⟨c†_r c_r⟩ = N·ρ for dm = ρ·I (up to the 1/N in the
        // translation average and the N k-points: Σ_k n_k = N · C(0) = N·ρ).
        let lat = Lattice::square(4, 4, 1.0);
        let mut dm = Matrix::identity(16);
        dm.scale(0.5);
        let nk = momentum_distribution(&lat, &dm);
        let total: f64 = nk.as_slice().iter().sum();
        assert!((total - 16.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn multilayer_translation_average_stays_in_layer() {
        let lat = Lattice::multilayer(2, 2, 2, 1.0, 0.5);
        // Pair function connecting different layers only: in-plane average
        // must be zero everywhere.
        let mut m = Matrix::zeros(8, 8);
        for x in 0..2 {
            for y in 0..2 {
                m[(lat.site(x, y, 1), lat.site(x, y, 0))] = 1.0;
            }
        }
        let c = translation_average(&lat, &m);
        assert_eq!(c.max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let lat = Lattice::square(4, 4, 1.0);
        let _ = translation_average(&lat, &Matrix::identity(9));
    }
}
