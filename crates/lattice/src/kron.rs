//! Kronecker products.
//!
//! The hopping matrix of a separable lattice is a Kronecker sum,
//! `K = Kz ⊕ Ky ⊕ Kx`, so its exponential factorises as
//! `e^{sK} = e^{sKz} ⊗ e^{sKy} ⊗ e^{sKx}`. Building `e^{−ΔτK}` this way is
//! exact (no Trotter error between commuting terms) and costs O(N²) instead
//! of an O(N³) dense eigensolve.

use linalg::Matrix;

/// Kronecker product `A ⊗ B`.
///
/// With x-fastest site indexing `site = a_index·nB + b_index`, the product
/// acts as `(A ⊗ B)[(ia·nB+ib),(ja·nB+jb)] = A[ia,ja]·B[ib,jb]`.
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (ma, na) = (a.nrows(), a.ncols());
    let (mb, nb) = (b.nrows(), b.ncols());
    let mut out = Matrix::zeros(ma * mb, na * nb);
    for ja in 0..na {
        for ia in 0..ma {
            let av = a[(ia, ja)];
            if av == 0.0 {
                continue;
            }
            for jb in 0..nb {
                let dst_col = ja * nb + jb;
                let src_col = b.col(jb);
                let dst = out.col_mut(dst_col);
                let row0 = ia * mb;
                for ib in 0..mb {
                    dst[row0 + ib] += av * src_col[ib];
                }
            }
        }
    }
    out
}

/// Kronecker sum `A ⊕ B = A ⊗ I + I ⊗ B` (both square).
pub fn kron_sum(a: &Matrix, b: &Matrix) -> Matrix {
    assert!(
        a.is_square() && b.is_square(),
        "kron_sum: operands must be square"
    );
    let ia = Matrix::identity(a.nrows());
    let ib = Matrix::identity(b.nrows());
    let mut out = kron(a, &ib);
    let second = kron(&ia, b);
    out.axpy(1.0, &second);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::blas3::matmul;
    use linalg::{sym_expm, Op};
    use util::Rng;

    #[test]
    fn kron_known_2x2() {
        let a = Matrix::from_col_major(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let b = Matrix::identity(2);
        let k = kron(&a, &b);
        assert_eq!(k.nrows(), 4);
        assert_eq!(k[(0, 0)], 1.0);
        assert_eq!(k[(1, 1)], 1.0);
        assert_eq!(k[(0, 2)], 2.0);
        assert_eq!(k[(2, 0)], 3.0);
        assert_eq!(k[(0, 1)], 0.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let mut rng = Rng::new(1);
        let a = Matrix::random(3, 3, &mut rng);
        let b = Matrix::random(2, 2, &mut rng);
        let c = Matrix::random(3, 3, &mut rng);
        let d = Matrix::random(2, 2, &mut rng);
        let lhs = matmul(&kron(&a, &b), Op::NoTrans, &kron(&c, &d), Op::NoTrans);
        let rhs = kron(
            &matmul(&a, Op::NoTrans, &c, Op::NoTrans),
            &matmul(&b, Op::NoTrans, &d, Op::NoTrans),
        );
        assert!(lhs.max_abs_diff(&rhs) < 1e-13);
    }

    #[test]
    fn kron_rectangular_shapes() {
        let mut rng = Rng::new(2);
        let a = Matrix::random(2, 3, &mut rng);
        let b = Matrix::random(4, 2, &mut rng);
        let k = kron(&a, &b);
        assert_eq!(k.nrows(), 8);
        assert_eq!(k.ncols(), 6);
        assert!((k[(5, 4)] - a[(1, 2)] * b[(1, 0)]).abs() < 1e-15);
    }

    #[test]
    fn kron_sum_exponential_identity() {
        // e^{A⊕B} = e^A ⊗ e^B for symmetric A, B.
        let mut rng = Rng::new(3);
        let mk_sym = |n: usize, rng: &mut Rng| {
            let m = Matrix::random(n, n, rng);
            let mut s = m.clone();
            s.axpy(1.0, &m.transpose());
            s.scale(0.5);
            s
        };
        let a = mk_sym(3, &mut rng);
        let b = mk_sym(2, &mut rng);
        let sum = kron_sum(&a, &b);
        let lhs = sym_expm(&sum, 0.37).unwrap();
        let rhs = kron(&sym_expm(&a, 0.37).unwrap(), &sym_expm(&b, 0.37).unwrap());
        assert!(lhs.max_abs_diff(&rhs) < 1e-11, "{}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn kron_with_identity_is_block_structure() {
        let a = Matrix::from_diag(&[2.0, 3.0]);
        let i3 = Matrix::identity(3);
        let k = kron(&a, &i3);
        for r in 0..3 {
            assert_eq!(k[(r, r)], 2.0);
            assert_eq!(k[(3 + r, 3 + r)], 3.0);
        }
    }
}
