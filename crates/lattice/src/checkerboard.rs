//! Checkerboard (split-bond) decomposition of the kinetic exponential.
//!
//! QUEST's large-lattice mode approximates `e^{−ΔτK}` by a product of
//! *bond-color* factors: the bonds are partitioned into matchings
//! (no two bonds of a color share a site), each color's exponential is an
//! exact product of independent 2×2 hyperbolic rotations, and
//!
//! ```text
//! e^{−ΔτK} ≈ e^{Δτμ̃} · Π_c e^{−ΔτK_c}
//! ```
//!
//! with the same O(Δτ²) Trotter error the DQMC discretisation already
//! carries. The payoff is an O(N·bonds-per-site) application cost per
//! column instead of a dense O(N²) row — the difference between GEMM-bound
//! and bandwidth-bound B-multiplies at large N.
//!
//! The decomposition is *exactly invertible*: the inverse applies the
//! colors in reverse order with the opposite sign, so wrapping stays an
//! exact similarity transform.

use crate::geometry::Lattice;
use linalg::{par_enabled, Matrix};
use rayon::prelude::*;

/// One hopping bond: `(site_i, site_j, amplitude)` with `amplitude` the
/// positive hopping strength `t·multiplicity`.
pub type Bond = (usize, usize, f64);

/// Bond-colored kinetic operator.
#[derive(Clone, Debug)]
pub struct Checkerboard {
    n: usize,
    /// Colors: each a matching of disjoint bonds.
    colors: Vec<Vec<Bond>>,
}

impl Checkerboard {
    /// Builds a bond coloring of the lattice by greedy matching (colors are
    /// matchings; the count is small: 4 for a periodic square lattice with
    /// even extents, +2 per stacking direction).
    pub fn new(lat: &Lattice) -> Self {
        let n = lat.nsites();
        // Collect each undirected bond once.
        let mut bonds: Vec<Bond> = Vec::new();
        let k = lat.kinetic_matrix(0.0);
        for i in 0..n {
            for (j, _mult) in lat.neighbor_bonds(i) {
                if i < j {
                    bonds.push((i, j, -k[(i, j)]));
                }
            }
        }
        // Greedy edge coloring: first color whose matching stays disjoint.
        let mut colors: Vec<Vec<Bond>> = Vec::new();
        let mut busy: Vec<Vec<bool>> = Vec::new();
        for &(i, j, t) in &bonds {
            let mut placed = false;
            for (c, color) in colors.iter_mut().enumerate() {
                if !busy[c][i] && !busy[c][j] {
                    color.push((i, j, t));
                    busy[c][i] = true;
                    busy[c][j] = true;
                    placed = true;
                    break;
                }
            }
            if !placed {
                let mut b = vec![false; n];
                b[i] = true;
                b[j] = true;
                colors.push(vec![(i, j, t)]);
                busy.push(b);
            }
        }
        Checkerboard { n, colors }
    }

    /// Number of sites.
    pub fn nsites(&self) -> usize {
        self.n
    }

    /// Number of colors (exponential factors).
    pub fn ncolors(&self) -> usize {
        self.colors.len()
    }

    /// Total bond count.
    pub fn nbonds(&self) -> usize {
        self.colors.iter().map(|c| c.len()).sum()
    }

    /// The colors (read-only view).
    pub fn colors(&self) -> &[Vec<Bond>] {
        &self.colors
    }

    /// `M ← e^{s·K_hop}_cb · M` where `s = ±Δτ`-style scalar: applies the
    /// color factors left-to-right for `s` as given; the exact inverse is
    /// obtained by calling with `−s` and `reverse = true`.
    pub fn apply_left(&self, s: f64, reverse: bool, m: &mut Matrix) {
        assert_eq!(m.nrows(), self.n, "checkerboard: row mismatch");
        let nrows = self.n;
        let order: Vec<usize> = if reverse {
            (0..self.colors.len()).rev().collect()
        } else {
            (0..self.colors.len()).collect()
        };
        // Parallel over columns; bonds within a color are disjoint rows.
        // Serial inside a scheduler worker (the worker is the coarse
        // grain); both branches are bit-identical per column.
        let colors = &self.colors;
        let work = |col: &mut [f64]| {
            for &c in &order {
                for &(i, j, t) in &colors[c] {
                    // K_hop[i][j] = −t ⇒ e^{sK} bond block =
                    // [[cosh(st·(−1))…]]: e^{s·(−t)σx} = cosh(st)·I − sinh(st)·σx.
                    let (ch, sh) = ((s * t).cosh(), -(s * t).sinh());
                    let (a, b) = (col[i], col[j]);
                    col[i] = ch * a + sh * b;
                    col[j] = sh * a + ch * b;
                }
            }
        };
        if par_enabled(true) {
            m.as_mut_slice().par_chunks_mut(nrows).for_each(work);
        } else {
            m.as_mut_slice().chunks_mut(nrows).for_each(work);
        }
    }

    /// `M ← M · e^{s·K_hop}_cb` (column operations; `reverse` as above).
    ///
    /// The logical operator is the same `E = E_last ⋯ E_1` that
    /// [`Checkerboard::apply_left`] applies, so right-multiplication visits
    /// the colors in the *opposite* iteration order:
    /// `M·E = ((M·E_last)·E_{last−1})⋯E_1`.
    pub fn apply_right(&self, s: f64, reverse: bool, m: &mut Matrix) {
        assert_eq!(m.ncols(), self.n, "checkerboard: column mismatch");
        let order: Vec<usize> = if reverse {
            (0..self.colors.len()).collect()
        } else {
            (0..self.colors.len()).rev().collect()
        };
        for &c in &order {
            for &(i, j, t) in &self.colors[c] {
                let (ch, sh) = ((s * t).cosh(), -(s * t).sinh());
                let (ci, cj) = m.two_cols_mut(i, j);
                for r in 0..ci.len() {
                    let (a, b) = (ci[r], cj[r]);
                    ci[r] = ch * a + sh * b;
                    cj[r] = sh * a + ch * b;
                }
            }
        }
    }

    /// Materialises the full checkerboard kinetic exponential
    /// `e^{Δτμ̃}·Π_c e^{−ΔτK_c}` (forward) and its exact inverse.
    ///
    /// Feeding these to [`dqmc`'s B-matrix factory] gives a simulation whose
    /// kinetic operator *is* the checkerboard product — a legitimate Trotter
    /// kinetic term in its own right.
    pub fn dense_pair(&self, dtau: f64, mu_tilde: f64) -> (Matrix, Matrix) {
        let mut fwd = Matrix::identity(self.n);
        self.apply_left(-dtau, false, &mut fwd);
        fwd.scale((dtau * mu_tilde).exp());
        let mut inv = Matrix::identity(self.n);
        self.apply_left(dtau, true, &mut inv);
        inv.scale((-dtau * mu_tilde).exp());
        (fwd, inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::blas3::{matmul, Op};

    #[test]
    fn coloring_is_valid_matching() {
        let lat = Lattice::square(6, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        // Every color: no site appears twice.
        for color in cb.colors() {
            let mut seen = vec![false; cb.nsites()];
            for &(i, j, _) in color {
                assert!(!seen[i] && !seen[j], "color is not a matching");
                seen[i] = true;
                seen[j] = true;
            }
        }
        // All bonds present: 2 per site for a periodic square lattice.
        assert_eq!(cb.nbonds(), 2 * 24);
        // Even-extent square lattice: exactly 4 colors.
        assert_eq!(cb.ncolors(), 4);
    }

    #[test]
    fn odd_extent_coloring_valid_and_complete() {
        // A 5-ring cannot be 2-colored per direction, but greedy may share
        // colors across directions; only validity and coverage are promised.
        let lat = Lattice::square(5, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        assert!(cb.ncolors() >= 3);
        let mut covered = 0;
        for color in cb.colors() {
            let mut seen = vec![false; cb.nsites()];
            for &(i, j, _) in color {
                assert!(!seen[i] && !seen[j]);
                seen[i] = true;
                seen[j] = true;
                covered += 1;
            }
        }
        assert_eq!(covered, 2 * 20, "every bond exactly once");
        // The materialised product must still invert exactly.
        let (fwd, inv) = cb.dense_pair(0.1, 0.0);
        let prod = matmul(&fwd, Op::NoTrans, &inv, Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(20)) < 1e-13);
    }

    #[test]
    fn single_bond_exponential_exact() {
        // 2-site chain (open via 1D multilayer trick): use a 2×1 lattice —
        // periodic gives a double bond (amplitude 2t); the 2×2 block must be
        // exactly cosh/sinh of 2tΔτ.
        let lat = Lattice::square(2, 1, 1.0);
        let cb = Checkerboard::new(&lat);
        assert_eq!(cb.ncolors(), 1);
        let (fwd, _) = cb.dense_pair(0.1, 0.0);
        let arg: f64 = 0.1 * 2.0;
        assert!((fwd[(0, 0)] - arg.cosh()).abs() < 1e-14);
        assert!((fwd[(0, 1)] - arg.sinh()).abs() < 1e-14);
        // Exact match to the dense exponential for a single commuting bond.
        let (dense, _) = lat.expk(0.1, 0.0);
        assert!(fwd.max_abs_diff(&dense) < 1e-13);
    }

    #[test]
    fn forward_inverse_exactly_cancel() {
        let lat = Lattice::multilayer(4, 3, 2, 1.0, 0.5);
        let cb = Checkerboard::new(&lat);
        let (fwd, inv) = cb.dense_pair(0.125, 0.3);
        let prod = matmul(&fwd, Op::NoTrans, &inv, Op::NoTrans);
        assert!(
            prod.max_abs_diff(&Matrix::identity(24)) < 1e-13,
            "{}",
            prod.max_abs_diff(&Matrix::identity(24))
        );
    }

    #[test]
    fn approaches_dense_exponential_as_dtau_shrinks() {
        // Trotter error of the splitting is O(Δτ²): halving Δτ must shrink
        // the difference by ~4×. (Use 6×6 — on a 4-ring the even/odd
        // matchings happen to commute exactly and the error vanishes!)
        let lat = Lattice::square(6, 6, 1.0);
        let cb = Checkerboard::new(&lat);
        let diff = |dtau: f64| {
            let (cbm, _) = cb.dense_pair(dtau, 0.0);
            let (dense, _) = lat.expk(dtau, 0.0);
            cbm.max_abs_diff(&dense)
        };
        let ratio = diff(0.1) / diff(0.05);
        assert!(
            (3.0..5.5).contains(&ratio),
            "expected ~O(Δτ²) convergence, got ratio {ratio}"
        );
    }

    #[test]
    fn four_ring_matchings_commute_exactly() {
        // The L = 4 curiosity above, pinned as a regression test: zero
        // splitting error on 4×4.
        let lat = Lattice::square(4, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        let (cbm, _) = cb.dense_pair(0.4, 0.0);
        let (dense, _) = lat.expk(0.4, 0.0);
        assert!(cbm.max_abs_diff(&dense) < 1e-13);
    }

    #[test]
    fn apply_left_matches_dense_product() {
        let lat = Lattice::square(4, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        let mut rng = util::Rng::new(3);
        let m0 = Matrix::random(16, 5, &mut rng);
        let mut m = m0.clone();
        cb.apply_left(-0.125, false, &mut m);
        let (fwd, _) = cb.dense_pair(0.125, 0.0);
        let expect = matmul(&fwd, Op::NoTrans, &m0, Op::NoTrans);
        assert!(m.max_abs_diff(&expect) < 1e-13);
    }

    #[test]
    fn apply_right_matches_dense_product() {
        let lat = Lattice::square(4, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        let mut rng = util::Rng::new(4);
        let m0 = Matrix::random(5, 16, &mut rng);
        let mut m = m0.clone();
        cb.apply_right(-0.125, false, &mut m);
        let (fwd, _) = cb.dense_pair(0.125, 0.0);
        let expect = matmul(&m0, Op::NoTrans, &fwd, Op::NoTrans);
        assert!(
            m.max_abs_diff(&expect) < 1e-13,
            "{}",
            m.max_abs_diff(&expect)
        );
    }

    #[test]
    fn checkerboard_preserves_orthogonality_structure() {
        // Each factor is symplectic-orthogonal-ish: det = 1 per bond block
        // (cosh² − sinh² = 1), so det(e^{−ΔτK}_cb) = 1 at μ̃ = 0.
        let lat = Lattice::square(4, 4, 1.0);
        let cb = Checkerboard::new(&lat);
        let (fwd, _) = cb.dense_pair(0.2, 0.0);
        let det = linalg::lu::lu_in_place(fwd).unwrap().det();
        assert!((det - 1.0).abs() < 1e-10, "det = {det}");
    }
}
