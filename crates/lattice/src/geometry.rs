//! Lattice geometry: site indexing, bonds, and the hopping matrix.
//!
//! Site order is x-fastest: `site = (z·Ly + y)·Lx + x`. In-plane directions
//! are always periodic (QUEST's default); the stacking direction is open —
//! the multilayer/interface geometry the paper's introduction motivates —
//! unless constructed with [`Lattice::multilayer_periodic`].

use crate::kron;
use linalg::{expm, Matrix};

/// A rectangular lattice of `Lx × Ly` sites stacked in `Lz` layers.
#[derive(Clone, Debug, PartialEq)]
pub struct Lattice {
    lx: usize,
    ly: usize,
    lz: usize,
    t: f64,
    ty: f64,
    tz: f64,
    periodic_z: bool,
}

impl Lattice {
    /// Single 2D periodic rectangular lattice with hopping `t`.
    pub fn square(lx: usize, ly: usize, t: f64) -> Self {
        assert!(lx >= 1 && ly >= 1, "lattice dimensions must be positive");
        Lattice {
            lx,
            ly,
            lz: 1,
            t,
            ty: t,
            tz: 0.0,
            periodic_z: false,
        }
    }

    /// Single 2D periodic lattice with direction-dependent hopping
    /// (`tx` along x, `ty` along y) — anisotropic couplings as QUEST's
    /// configurable geometry allows.
    pub fn anisotropic(lx: usize, ly: usize, tx: f64, ty: f64) -> Self {
        assert!(lx >= 1 && ly >= 1, "lattice dimensions must be positive");
        Lattice {
            lx,
            ly,
            lz: 1,
            t: tx,
            ty,
            tz: 0.0,
            periodic_z: false,
        }
    }

    /// `layers` stacked `lx × ly` planes: in-plane hopping `t` (periodic),
    /// inter-layer hopping `tz` (open boundary — an interface stack).
    pub fn multilayer(lx: usize, ly: usize, layers: usize, t: f64, tz: f64) -> Self {
        assert!(lx >= 1 && ly >= 1 && layers >= 1);
        Lattice {
            lx,
            ly,
            lz: layers,
            t,
            ty: t,
            tz,
            periodic_z: false,
        }
    }

    /// Multilayer with periodic stacking (a 3D torus), for finite-size studies.
    pub fn multilayer_periodic(lx: usize, ly: usize, layers: usize, t: f64, tz: f64) -> Self {
        assert!(lx >= 1 && ly >= 1 && layers >= 1);
        Lattice {
            lx,
            ly,
            lz: layers,
            t,
            ty: t,
            tz,
            periodic_z: true,
        }
    }

    /// Extent in x.
    pub fn lx(&self) -> usize {
        self.lx
    }

    /// Extent in y.
    pub fn ly(&self) -> usize {
        self.ly
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.lz
    }

    /// In-plane hopping amplitude along x.
    pub fn t(&self) -> f64 {
        self.t
    }

    /// In-plane hopping amplitude along y (equals `t()` unless built with
    /// [`Lattice::anisotropic`]).
    pub fn ty(&self) -> f64 {
        self.ty
    }

    /// Inter-layer hopping amplitude.
    pub fn tz(&self) -> f64 {
        self.tz
    }

    /// Total number of sites `N = Lx·Ly·Lz`.
    pub fn nsites(&self) -> usize {
        self.lx * self.ly * self.lz
    }

    /// True for a single-plane lattice.
    pub fn is_single_layer(&self) -> bool {
        self.lz == 1
    }

    /// Site index of coordinates `(x, y, z)`.
    #[inline]
    pub fn site(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.lx && y < self.ly && z < self.lz);
        (z * self.ly + y) * self.lx + x
    }

    /// Coordinates `(x, y, z)` of a site index.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        debug_assert!(i < self.nsites());
        let x = i % self.lx;
        let y = (i / self.lx) % self.ly;
        let z = i / (self.lx * self.ly);
        (x, y, z)
    }

    /// Nearest neighbours of site `i` (periodic in-plane, open/periodic in z).
    ///
    /// Neighbours are deduplicated (relevant for extents of 1 or 2 where
    /// wrapping makes both directions land on the same site), but the bond
    /// *multiplicity* is preserved in [`Lattice::kinetic_matrix`].
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(6);
        for (j, _mult) in self.neighbor_bonds(i) {
            if !out.contains(&j) {
                out.push(j);
            }
        }
        out
    }

    /// Neighbour bonds of site `i` with multiplicity (an extent-2 ring has a
    /// double bond: hopping left and right reach the same site).
    pub fn neighbor_bonds(&self, i: usize) -> Vec<(usize, usize)> {
        let (x, y, z) = self.coords(i);
        let mut raw: Vec<usize> = Vec::with_capacity(6);
        if self.lx > 1 {
            raw.push(self.site((x + 1) % self.lx, y, z));
            raw.push(self.site((x + self.lx - 1) % self.lx, y, z));
        }
        if self.ly > 1 {
            raw.push(self.site(x, (y + 1) % self.ly, z));
            raw.push(self.site(x, (y + self.ly - 1) % self.ly, z));
        }
        if self.lz > 1 {
            if z + 1 < self.lz {
                raw.push(self.site(x, y, z + 1));
            } else if self.periodic_z {
                raw.push(self.site(x, y, 0));
            }
            if z > 0 {
                raw.push(self.site(x, y, z - 1));
            } else if self.periodic_z {
                raw.push(self.site(x, y, self.lz - 1));
            }
        }
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(raw.len());
        for j in raw {
            if let Some(e) = out.iter_mut().find(|(jj, _)| *jj == j) {
                e.1 += 1;
            } else {
                out.push((j, 1));
            }
        }
        out
    }

    /// The hopping matrix `K`: `K[i][j] = −t·(bond multiplicity)` for
    /// nearest neighbours and `K[i][i] = −μ̃` (the paper folds the chemical
    /// potential into K's diagonal).
    ///
    /// In-plane bonds use `t`, inter-layer bonds use `tz`.
    pub fn kinetic_matrix(&self, mu_tilde: f64) -> Matrix {
        let n = self.nsites();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k[(i, i)] = -mu_tilde;
            let (_, yi, zi) = self.coords(i);
            for (j, mult) in self.neighbor_bonds(i) {
                let (_, yj, zj) = self.coords(j);
                let amp = if zi != zj {
                    self.tz
                } else if yi != yj {
                    self.ty
                } else {
                    self.t
                };
                k[(i, j)] = -amp * mult as f64;
            }
        }
        k
    }

    /// Computes the pair `(e^{−ΔτK}, e^{+ΔτK})`.
    ///
    /// For this separable geometry `K = Kz ⊕ Ky ⊕ Kx − μ̃ I`, so the
    /// exponential factorises exactly into a Kronecker product of 1D ring /
    /// chain exponentials times the scalar `e^{Δτμ̃}` — no dense eigensolve
    /// needed. Tested against [`linalg::sym_expm`].
    pub fn expk(&self, dtau: f64, mu_tilde: f64) -> (Matrix, Matrix) {
        let fwd = self.expk_one(-dtau, mu_tilde);
        let bwd = self.expk_one(dtau, mu_tilde);
        (fwd, bwd)
    }

    /// `e^{s·K}` for this lattice via the separable (Kronecker) construction.
    fn expk_one(&self, s: f64, mu_tilde: f64) -> Matrix {
        // K = −μ̃ I + (hopping); e^{sK} = e^{−sμ̃} · e^{s·hopping}.
        let ex = ring_exp(self.lx, self.t, s, true);
        let ey = ring_exp(self.ly, self.ty, s, true);
        let ez = ring_exp(self.lz, self.tz, s, self.periodic_z);
        // Site index is x-fastest: full = Ez ⊗ Ey ⊗ Ex.
        let eyx = kron::kron(&ey, &ex);
        let mut full = kron::kron(&ez, &eyx);
        full.scale((-s * mu_tilde).exp());
        full
    }

    /// Wrapped displacement `(dx, dy)` from site `i` to site `j` within one
    /// layer image, each component folded into `0..L`; `dz = zj − zi`
    /// (unwrapped for open stacking).
    pub fn displacement(&self, i: usize, j: usize) -> (usize, usize, isize) {
        let (xi, yi, zi) = self.coords(i);
        let (xj, yj, zj) = self.coords(j);
        let dx = (xj + self.lx - xi) % self.lx;
        let dy = (yj + self.ly - yi) % self.ly;
        (dx, dy, zj as isize - zi as isize)
    }

    /// Signed minimal-image displacement for plotting `C_zz(r)`
    /// (components in `−L/2..L/2`).
    pub fn min_image(&self, dx: usize, dy: usize) -> (isize, isize) {
        let fold = |d: usize, l: usize| -> isize {
            let d = d as isize;
            let l = l as isize;
            if d > l / 2 {
                d - l
            } else {
                d
            }
        };
        (fold(dx, self.lx), fold(dy, self.ly))
    }

    /// All momentum points of one plane: `k = 2π(nx/Lx, ny/Ly)`.
    pub fn kpoints(&self) -> Vec<(f64, f64)> {
        use std::f64::consts::PI;
        let mut out = Vec::with_capacity(self.lx * self.ly);
        for ny in 0..self.ly {
            for nx in 0..self.lx {
                out.push((
                    2.0 * PI * nx as f64 / self.lx as f64,
                    2.0 * PI * ny as f64 / self.ly as f64,
                ));
            }
        }
        out
    }
}

/// `e^{s·H}` for a 1D chain/ring of length `l` with hopping amplitude `t`
/// (`H[i,i±1] = −t`, wrapped when `periodic`). Uses the analytic plane-wave
/// spectrum for rings and a dense symmetric solve for open chains.
fn ring_exp(l: usize, t: f64, s: f64, periodic: bool) -> Matrix {
    if l == 1 {
        return Matrix::identity(1);
    }
    let mut h = Matrix::zeros(l, l);
    for i in 0..l {
        if i + 1 < l {
            h[(i, i + 1)] += -t;
            h[(i + 1, i)] += -t;
        } else if periodic {
            h[(i, 0)] += -t;
            h[(0, i)] += -t;
        }
    }
    if periodic {
        // Analytic: (e^{sH})_{ij} = (1/l) Σ_k e^{ik(i−j)} e^{−2st·cos k}…
        // with ε_k = −2t cos(2πk/l); the imaginary parts cancel by symmetry.
        use std::f64::consts::PI;
        let eps: Vec<f64> = (0..l)
            .map(|k| -2.0 * t * (2.0 * PI * k as f64 / l as f64).cos())
            .collect();
        Matrix::from_fn(l, l, |i, j| {
            let d = (i as isize - j as isize) as f64;
            let mut sum = 0.0;
            for (k, &e) in eps.iter().enumerate() {
                let phase = 2.0 * PI * k as f64 * d / l as f64;
                sum += phase.cos() * (s * e).exp();
            }
            sum / l as f64
        })
    } else {
        expm::sym_expm(&h, s).expect("chain exponential")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::sym_expm;

    #[test]
    fn indexing_round_trip() {
        let lat = Lattice::multilayer(4, 3, 2, 1.0, 0.5);
        for i in 0..lat.nsites() {
            let (x, y, z) = lat.coords(i);
            assert_eq!(lat.site(x, y, z), i);
        }
        assert_eq!(lat.nsites(), 24);
    }

    #[test]
    fn square_lattice_has_four_neighbors() {
        let lat = Lattice::square(4, 4, 1.0);
        for i in 0..16 {
            assert_eq!(lat.neighbors(i).len(), 4);
        }
        // neighbours of site (0,0): (1,0), (3,0), (0,1), (0,3)
        let n = lat.neighbors(0);
        assert!(n.contains(&lat.site(1, 0, 0)));
        assert!(n.contains(&lat.site(3, 0, 0)));
        assert!(n.contains(&lat.site(0, 1, 0)));
        assert!(n.contains(&lat.site(0, 3, 0)));
    }

    #[test]
    fn multilayer_neighbor_counts() {
        let lat = Lattice::multilayer(4, 4, 3, 1.0, 0.5);
        // middle layer: 4 in-plane + 2 vertical
        assert_eq!(lat.neighbors(lat.site(0, 0, 1)).len(), 6);
        // boundary layers: 4 + 1
        assert_eq!(lat.neighbors(lat.site(0, 0, 0)).len(), 5);
        assert_eq!(lat.neighbors(lat.site(0, 0, 2)).len(), 5);
    }

    #[test]
    fn kinetic_matrix_symmetric_with_correct_entries() {
        let lat = Lattice::multilayer(4, 4, 2, 1.0, 0.3);
        let k = lat.kinetic_matrix(0.25);
        assert!(linalg::eig::is_symmetric(&k, 1e-14));
        let i = lat.site(1, 1, 0);
        assert_eq!(k[(i, i)], -0.25);
        assert_eq!(k[(i, lat.site(2, 1, 0))], -1.0);
        assert_eq!(k[(i, lat.site(1, 1, 1))], -0.3);
        assert_eq!(k[(i, lat.site(3, 3, 1))], 0.0);
    }

    #[test]
    fn extent_two_ring_double_bond() {
        let lat = Lattice::square(2, 1, 1.0);
        let k = lat.kinetic_matrix(0.0);
        // Both hops reach the same site: matrix element −2t.
        assert_eq!(k[(0, 1)], -2.0);
        assert_eq!(k[(1, 0)], -2.0);
    }

    #[test]
    fn expk_matches_dense_eigensolve_square() {
        let lat = Lattice::square(4, 3, 1.0);
        let k = lat.kinetic_matrix(0.1);
        let (fwd, bwd) = lat.expk(0.125, 0.1);
        let dense_f = sym_expm(&k, -0.125).unwrap();
        let dense_b = sym_expm(&k, 0.125).unwrap();
        assert!(
            fwd.max_abs_diff(&dense_f) < 1e-12,
            "{}",
            fwd.max_abs_diff(&dense_f)
        );
        assert!(bwd.max_abs_diff(&dense_b) < 1e-12);
    }

    #[test]
    fn expk_matches_dense_eigensolve_multilayer() {
        let lat = Lattice::multilayer(3, 3, 3, 1.0, 0.4);
        let k = lat.kinetic_matrix(-0.2);
        let (fwd, _) = lat.expk(0.1, -0.2);
        let dense = sym_expm(&k, -0.1).unwrap();
        assert!(fwd.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn expk_matches_dense_eigensolve_periodic_z() {
        let lat = Lattice::multilayer_periodic(3, 2, 4, 1.0, 0.7);
        let k = lat.kinetic_matrix(0.0);
        let (fwd, _) = lat.expk(0.2, 0.0);
        let dense = sym_expm(&k, -0.2).unwrap();
        assert!(fwd.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn expk_forward_backward_inverse() {
        let lat = Lattice::square(4, 4, 1.0);
        let (fwd, bwd) = lat.expk(0.125, 0.3);
        let prod = linalg::blas3::matmul(&fwd, linalg::Op::NoTrans, &bwd, linalg::Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(16)) < 1e-12);
    }

    #[test]
    fn anisotropic_hopping_matrix_and_exponential() {
        let lat = Lattice::anisotropic(4, 3, 1.0, 0.5);
        let k = lat.kinetic_matrix(0.2);
        let i = lat.site(1, 1, 0);
        assert_eq!(k[(i, lat.site(2, 1, 0))], -1.0, "x bond uses tx");
        assert_eq!(k[(i, lat.site(1, 2, 0))], -0.5, "y bond uses ty");
        let (fwd, bwd) = lat.expk(0.125, 0.2);
        let dense = sym_expm(&k, -0.125).unwrap();
        assert!(fwd.max_abs_diff(&dense) < 1e-12);
        let prod = linalg::blas3::matmul(&fwd, linalg::Op::NoTrans, &bwd, linalg::Op::NoTrans);
        assert!(prod.max_abs_diff(&Matrix::identity(12)) < 1e-12);
        assert_eq!(lat.ty(), 0.5);
    }

    #[test]
    fn displacement_wraps() {
        let lat = Lattice::square(4, 4, 1.0);
        let i = lat.site(3, 3, 0);
        let j = lat.site(0, 0, 0);
        assert_eq!(lat.displacement(i, j), (1, 1, 0));
        assert_eq!(lat.displacement(j, i), (3, 3, 0));
    }

    #[test]
    fn min_image_folds() {
        let lat = Lattice::square(8, 8, 1.0);
        assert_eq!(lat.min_image(5, 3), (-3, 3));
        assert_eq!(lat.min_image(4, 4), (4, 4)); // exactly half keeps +L/2
        assert_eq!(lat.min_image(0, 7), (0, -1));
    }

    #[test]
    fn kpoints_grid() {
        let lat = Lattice::square(2, 2, 1.0);
        let ks = lat.kpoints();
        assert_eq!(ks.len(), 4);
        assert!((ks[0].0 - 0.0).abs() < 1e-15);
        assert!((ks[3].0 - std::f64::consts::PI).abs() < 1e-15);
        assert!((ks[3].1 - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn single_site_lattice() {
        let lat = Lattice::square(1, 1, 1.0);
        assert_eq!(lat.nsites(), 1);
        assert!(lat.neighbors(0).is_empty());
        let (fwd, _) = lat.expk(0.1, 0.5);
        assert!((fwd[(0, 0)] - (0.05f64).exp()).abs() < 1e-14);
    }
}
