//! Momentum-space symmetry path for square lattices.
//!
//! Figure 5 of the paper plots ⟨n_k⟩ along
//! `(0,0) → (π,π) → (π,0) → (0,0)`, the standard Γ→M→X→Γ circuit of the
//! square-lattice Brillouin zone. Only lattices with even `L` contain the
//! corner points exactly.

use crate::geometry::Lattice;

/// One point on the symmetry path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KPathPoint {
    /// Grid index along x (`kx = 2π nx / L`).
    pub nx: usize,
    /// Grid index along y.
    pub ny: usize,
    /// Momentum component in radians.
    pub kx: f64,
    /// Momentum component in radians.
    pub ky: f64,
    /// Arc length from Γ along the path (for the plot's x-axis).
    pub arc: f64,
}

/// Builds the Γ→M→X→Γ path on the momentum grid of a square `L × L` lattice.
///
/// Panics unless the lattice is square in-plane with even extent (so that
/// (π,π) and (π,0) are grid points), matching the lattices in the paper
/// (12², 16², …, 32²).
pub fn symmetry_path(lat: &Lattice) -> Vec<KPathPoint> {
    use std::f64::consts::PI;
    let l = lat.lx();
    assert_eq!(
        lat.lx(),
        lat.ly(),
        "symmetry path requires a square lattice"
    );
    assert_eq!(l % 2, 0, "symmetry path requires even lattice extent");
    let h = l / 2; // index of k = π
    let step = 2.0 * PI / l as f64;
    let mut out = Vec::new();
    let mut arc = 0.0;
    let mut push = |nx: usize, ny: usize, arc: f64| {
        out.push(KPathPoint {
            nx,
            ny,
            kx: step * nx as f64,
            ky: step * ny as f64,
            arc,
        });
    };
    // Γ = (0,0) → M = (π,π): diagonal, step length √2·(2π/L).
    for i in 0..=h {
        push(i, i, arc + (i as f64) * step * std::f64::consts::SQRT_2);
    }
    arc += h as f64 * step * std::f64::consts::SQRT_2;
    // M = (π,π) → X = (π,0): ky decreasing (skip the repeated M point).
    for i in 1..=h {
        push(h, h - i, arc + i as f64 * step);
    }
    arc += h as f64 * step;
    // X = (π,0) → Γ = (0,0): kx decreasing (skip the repeated X point).
    for i in 1..=h {
        push(h - i, 0, arc + i as f64 * step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn path_endpoints_and_corners() {
        let lat = Lattice::square(8, 8, 1.0);
        let path = symmetry_path(&lat);
        let first = path.first().unwrap();
        let last = path.last().unwrap();
        assert_eq!((first.nx, first.ny), (0, 0));
        assert_eq!((last.nx, last.ny), (0, 0));
        // M and X present exactly once each.
        let m_count = path.iter().filter(|p| p.nx == 4 && p.ny == 4).count();
        let x_count = path.iter().filter(|p| p.nx == 4 && p.ny == 0).count();
        assert_eq!(m_count, 1);
        assert_eq!(x_count, 1);
    }

    #[test]
    fn path_length_formula() {
        // Segments have h+1, h, h points: total 3h + 1.
        for &l in &[4usize, 8, 12, 16, 32] {
            let lat = Lattice::square(l, l, 1.0);
            assert_eq!(symmetry_path(&lat).len(), 3 * (l / 2) + 1);
        }
    }

    #[test]
    fn momenta_match_indices() {
        let lat = Lattice::square(12, 12, 1.0);
        for p in symmetry_path(&lat) {
            assert!((p.kx - 2.0 * PI * p.nx as f64 / 12.0).abs() < 1e-15);
            assert!((p.ky - 2.0 * PI * p.ny as f64 / 12.0).abs() < 1e-15);
        }
    }

    #[test]
    fn arc_is_strictly_increasing() {
        let lat = Lattice::square(16, 16, 1.0);
        let path = symmetry_path(&lat);
        for w in path.windows(2) {
            assert!(w[1].arc > w[0].arc);
        }
        // Total arc = √2·π + π + π.
        let total = path.last().unwrap().arc;
        assert!((total - PI * (2.0 + std::f64::consts::SQRT_2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_lattice_rejected() {
        let lat = Lattice::square(5, 5, 1.0);
        let _ = symmetry_path(&lat);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rectangular_lattice_rejected() {
        let lat = Lattice::square(4, 6, 1.0);
        let _ = symmetry_path(&lat);
    }
}
