//! Hubbard lattice geometry for DQMC.
//!
//! QUEST's default geometry is a two-dimensional periodic rectangular
//! lattice; the paper's motivation is stacks of such planes (six to eight
//! layers) modelling material interfaces. This crate provides both, plus
//! everything the simulation needs from geometry:
//!
//! - [`Lattice`]: site indexing, neighbour lists, and the hopping matrix
//!   `K` (with the chemical potential on its diagonal, as in the paper),
//! - [`kron`]: Kronecker products used to build `e^{−ΔτK}` analytically for
//!   separable lattices (exact and much faster than a dense eigensolve),
//! - [`fourier`]: translation-averaged real-space correlations and their
//!   momentum-space transforms (the ⟨n_k⟩ measurement),
//! - [`kpath`]: the (0,0) → (π,π) → (π,0) → (0,0) symmetry path of Figure 5.

pub mod checkerboard;
pub mod fourier;
pub mod geometry;
pub mod kpath;
pub mod kron;

pub use checkerboard::Checkerboard;
pub use fourier::{momentum_distribution, translation_average};
pub use geometry::Lattice;
pub use kpath::{symmetry_path, KPathPoint};
