//! Property-based tests of the lattice substrate.

use lattice::{Checkerboard, Lattice};
use linalg::blas3::{matmul, Op};
use linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn site_coords_roundtrip(lx in 1usize..7, ly in 1usize..7, lz in 1usize..4) {
        let lat = Lattice::multilayer(lx, ly, lz, 1.0, 0.5);
        for i in 0..lat.nsites() {
            let (x, y, z) = lat.coords(i);
            prop_assert_eq!(lat.site(x, y, z), i);
        }
    }

    #[test]
    fn kinetic_matrix_always_symmetric(
        lx in 1usize..6, ly in 1usize..6, lz in 1usize..3,
        t in 0.1f64..2.0, tz in 0.0f64..2.0, mu in -1.0f64..1.0,
    ) {
        let lat = Lattice::multilayer(lx, ly, lz, t, tz);
        let k = lat.kinetic_matrix(mu);
        prop_assert!(linalg::eig::is_symmetric(&k, 1e-13));
        // Diagonal is exactly −μ̃.
        for i in 0..lat.nsites() {
            prop_assert_eq!(k[(i, i)], -mu);
        }
    }

    #[test]
    fn expk_pair_are_exact_inverses(
        lx in 1usize..6, ly in 1usize..6,
        dtau in 0.01f64..0.5, mu in -1.0f64..1.0,
    ) {
        let lat = Lattice::square(lx, ly, 1.0);
        let (fwd, bwd) = lat.expk(dtau, mu);
        let prod = matmul(&fwd, Op::NoTrans, &bwd, Op::NoTrans);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(lat.nsites())) < 1e-11);
    }

    #[test]
    fn expk_matches_dense_eigensolve(
        lx in 2usize..5, ly in 2usize..5, dtau in 0.05f64..0.3,
    ) {
        let lat = Lattice::square(lx, ly, 1.0);
        let k = lat.kinetic_matrix(0.3);
        let (fwd, _) = lat.expk(dtau, 0.3);
        let dense = linalg::sym_expm(&k, -dtau).unwrap();
        prop_assert!(fwd.max_abs_diff(&dense) < 1e-11);
    }

    #[test]
    fn checkerboard_valid_and_invertible(
        lx in 2usize..7, ly in 2usize..7, dtau in 0.05f64..0.4,
    ) {
        let lat = Lattice::square(lx, ly, 1.0);
        let cb = Checkerboard::new(&lat);
        // Colors are matchings covering every bond exactly once.
        let mut covered = 0usize;
        for color in cb.colors() {
            let mut seen = vec![false; cb.nsites()];
            for &(i, j, _) in color {
                prop_assert!(!seen[i] && !seen[j]);
                seen[i] = true;
                seen[j] = true;
                covered += 1;
            }
        }
        let expect_bonds: usize = (0..lat.nsites())
            .map(|i| lat.neighbor_bonds(i).len())
            .sum::<usize>() / 2;
        // Multiplicity folds double bonds into one entry.
        prop_assert_eq!(covered, expect_bonds);
        // Exact inverse.
        let (fwd, inv) = cb.dense_pair(dtau, 0.2);
        let prod = matmul(&fwd, Op::NoTrans, &inv, Op::NoTrans);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(lat.nsites())) < 1e-12);
    }

    #[test]
    fn translation_average_of_symmetric_input_is_symmetric(
        lx in 2usize..6, ly in 2usize..6, seed in 0u64..1000,
    ) {
        let lat = Lattice::square(lx, ly, 1.0);
        let n = lat.nsites();
        let mut rng = util::Rng::new(seed);
        let m0 = Matrix::random(n, n, &mut rng);
        let mut m = m0.clone();
        m.axpy(1.0, &m0.transpose());
        let c = lattice::translation_average(&lat, &m);
        // C(d) = C(−d) for symmetric m.
        for dy in 0..ly {
            for dx in 0..lx {
                let (mx, my) = ((lx - dx) % lx, (ly - dy) % ly);
                prop_assert!((c[(dx, dy)] - c[(mx, my)]).abs() < 1e-10);
            }
        }
    }
}
