//! DQSF client: submit grids to a running `dqmc-serve`, stream the
//! per-point frames, and collect the final document.

use crate::protocol::{read_frame, write_frame, Frame, WireError};
use std::net::TcpStream;
use std::time::Duration;

/// Ceiling on one exponential-backoff sleep in [`Client::connect_retry`]
/// and [`Client::submit_resilient`].
pub const CONNECT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// One streamed point as the client saw it.
#[derive(Clone, Debug)]
pub struct StreamedPoint {
    /// Canonical point index.
    pub index: u64,
    /// True when served from the result cache.
    pub cached: bool,
    /// The point's observables-JSON fragment.
    pub json: String,
}

/// Everything a completed submission returned.
#[derive(Clone, Debug)]
pub struct SubmitOutcome {
    /// Points in arrival order (cached points come first).
    pub points: Vec<StreamedPoint>,
    /// The full observables document.
    pub observables: String,
    /// Jobs the server enqueued for this request (0 = full warm hit).
    pub jobs_run: u64,
    /// Points served from cache.
    pub cached_points: u64,
    /// Points computed this request.
    pub computed_points: u64,
    /// Chains that permanently failed.
    pub failed_chains: u64,
    /// Recovery-ladder actions over the computed points.
    pub recovery_events: u64,
}

/// Service counters, as returned by `StatsRequest`.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Jobs enqueued since the service started.
    pub jobs_submitted: u64,
    /// Campaigns fully completed.
    pub campaigns_completed: u64,
    /// Campaigns currently in flight.
    pub active_campaigns: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Cache entries evicted as corrupt.
    pub cache_corrupt: u64,
}

/// A connected DQSF client. One submission at a time per connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server address like `127.0.0.1:7070`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Connects with retries — for racing a server that is still binding
    /// or briefly away. Deterministic bounded exponential backoff: the
    /// n-th failure sleeps `min(delay * 2^n, CONNECT_BACKOFF_CAP)`, no
    /// jitter, no sleep after the last attempt.
    pub fn connect_retry(addr: &str, attempts: u32, delay: Duration) -> std::io::Result<Client> {
        let attempts = attempts.max(1);
        let mut backoff = delay;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            match TcpStream::connect(addr) {
                Ok(stream) => return Ok(Client { stream }),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "no connection attempts made")
        }))
    }

    /// Submits a grid, transparently reconnecting and resubmitting after
    /// a mid-stream disconnect (a dropped connection, a bounced server).
    ///
    /// Resubmission is idempotent by construction: point summaries are
    /// pure functions of (grid, seeds) and the server's content-addressed
    /// cache already holds every point the lost stream completed, so a
    /// retried campaign recomputes nothing and returns the same bytes.
    /// Only transport errors ([`WireError::Io`]) trigger a retry;
    /// rejections and protocol violations surface immediately. `on_point`
    /// may observe the same point more than once across attempts (the
    /// re-streamed prefix arrives cache-flagged); the returned outcome is
    /// entirely from the attempt that completed.
    pub fn submit_resilient(
        addr: &str,
        tenant: &str,
        priority: u8,
        grid: &str,
        attempts: u32,
        delay: Duration,
        mut on_point: impl FnMut(&StreamedPoint),
    ) -> Result<SubmitOutcome, WireError> {
        let attempts = attempts.max(1);
        let mut backoff = delay;
        let mut last: Option<WireError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(CONNECT_BACKOFF_CAP);
            }
            let mut client = match Client::connect_retry(addr, attempts, delay) {
                Ok(c) => c,
                Err(e) => {
                    last = Some(WireError::Io(e));
                    continue;
                }
            };
            match client.submit_with(tenant, priority, grid, &mut on_point) {
                Ok(outcome) => return Ok(outcome),
                Err(WireError::Io(e)) => last = Some(WireError::Io(e)),
                Err(fatal) => return Err(fatal),
            }
        }
        Err(last.unwrap_or_else(|| {
            WireError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no submission attempts made",
            ))
        }))
    }

    /// Submits a grid and drives the stream to completion, invoking
    /// `on_point` for every streamed point as it arrives.
    ///
    /// Returns [`WireError::Rejected`] when the server refuses the
    /// submission (the connection stays usable).
    pub fn submit_with(
        &mut self,
        tenant: &str,
        priority: u8,
        grid: &str,
        mut on_point: impl FnMut(&StreamedPoint),
    ) -> Result<SubmitOutcome, WireError> {
        write_frame(
            &mut self.stream,
            &Frame::Submit {
                tenant: tenant.to_string(),
                priority,
                grid: grid.to_string(),
            },
        )?;
        match read_frame(&mut self.stream)? {
            Frame::Accepted { .. } => {}
            Frame::Rejected { reason } => return Err(WireError::Rejected(reason)),
            other => {
                return Err(WireError::Protocol(format!(
                    "expected Accepted/Rejected, got frame kind {}",
                    other.kind()
                )))
            }
        }
        let mut points = Vec::new();
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Point {
                    index,
                    cached,
                    json,
                } => {
                    let p = StreamedPoint {
                        index,
                        cached,
                        json,
                    };
                    on_point(&p);
                    points.push(p);
                }
                Frame::Done {
                    observables,
                    jobs_run,
                    cached_points,
                    computed_points,
                    failed_chains,
                    recovery_events,
                } => {
                    return Ok(SubmitOutcome {
                        points,
                        observables,
                        jobs_run,
                        cached_points,
                        computed_points,
                        failed_chains,
                        recovery_events,
                    })
                }
                other => {
                    return Err(WireError::Protocol(format!(
                        "expected Point/Done, got frame kind {}",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// [`Client::submit_with`] without a streaming callback.
    pub fn submit(
        &mut self,
        tenant: &str,
        priority: u8,
        grid: &str,
    ) -> Result<SubmitOutcome, WireError> {
        self.submit_with(tenant, priority, grid, |_| {})
    }

    /// Fetches the service counters.
    pub fn stats(&mut self) -> Result<Stats, WireError> {
        write_frame(&mut self.stream, &Frame::StatsRequest)?;
        match read_frame(&mut self.stream)? {
            Frame::StatsReply {
                jobs_submitted,
                campaigns_completed,
                active_campaigns,
                cache_hits,
                cache_misses,
                cache_corrupt,
            } => Ok(Stats {
                jobs_submitted,
                campaigns_completed,
                active_campaigns,
                cache_hits,
                cache_misses,
                cache_corrupt,
            }),
            other => Err(WireError::Protocol(format!(
                "expected StatsReply, got frame kind {}",
                other.kind()
            ))),
        }
    }

    /// Asks the server to drain and exit; resolves on its acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        write_frame(&mut self.stream, &Frame::Shutdown)?;
        match read_frame(&mut self.stream)? {
            Frame::ShutdownAck => Ok(()),
            other => Err(WireError::Protocol(format!(
                "expected ShutdownAck, got frame kind {}",
                other.kind()
            ))),
        }
    }
}
