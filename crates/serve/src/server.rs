//! The resident `dqmc-serve` server: accepts DQSF submissions over TCP,
//! multiplexes tenants into the shared [`sched::SweepService`], streams
//! per-point observables as they complete, and short-circuits repeat
//! requests through the content-addressed [`ResultCache`].
//!
//! One thread per connection; one resident worker pool for the whole
//! process. A connection may carry many submissions in sequence. Writes to
//! a connection go through a mutex shared with the streaming observer, so
//! an in-flight point frame and the submission bookkeeping never interleave
//! bytes. A client that disconnects mid-stream flips the connection's dead
//! flag: its campaign runs to completion (results still land in the cache)
//! and the queue is never poisoned.
//!
//! Sockets also answer plain HTTP: `GET /healthz` and `GET /stats` return
//! JSON, so a curl probe works without speaking DQSF.

use crate::cache::{point_key, Lookup, ResultCache};
use crate::protocol::{read_frame, write_frame, Frame, WireError};
use fleet::{ChildCommand, FleetConfig};
use sched::{
    AdmitError, CampaignRequest, GridSpec, PointObserver, PointSummary, ServiceConfig, SubmitError,
    SweepService,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use util::sync::{relock, Condvar, Mutex};

/// Machine-readable prefix on a `Rejected` reason when the shared job
/// queue was full. The wire carries only a reason string, so clients that
/// need to distinguish back-pressure from shutdown (distinct exit codes,
/// retry policies) match on these stable prefixes rather than on prose.
pub const REASON_QUEUE_FULL: &str = "queue-full: ";
/// Machine-readable prefix on a `Rejected` reason when the queue was
/// closed (the service is draining for shutdown).
pub const REASON_QUEUE_CLOSED: &str = "queue-closed: ";

/// Multi-process execution policy for a fleet-enabled server.
#[derive(Clone, Debug)]
pub struct FleetPolicy {
    /// Shard processes per campaign.
    pub procs: usize,
    /// How to launch shard children (usually the server binary re-entered
    /// in `shard-child` mode).
    pub child: ChildCommand,
    /// Scratch root for per-request shard files.
    pub dir: PathBuf,
}

/// Server configuration: the shared execution resources plus service
/// policy.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Worker/device/queue configuration of the resident service.
    pub service: ServiceConfig,
    /// Result-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Campaigns one tenant may have in flight; `0` = unlimited.
    pub max_tenant_campaigns: usize,
    /// When set, cache-missed points execute on a local process fleet
    /// instead of the in-process service; the DQRC cache stays shared at
    /// the server, which probes before and backfills after each fleet
    /// run. Byte output is identical either way — that is the fleet
    /// merge's contract.
    pub fleet: Option<FleetPolicy>,
}

struct ServerInner {
    service: SweepService,
    cache: Option<ResultCache>,
    fleet: Option<FleetPolicy>,
    shutdown: AtomicBool,
    /// (tenant, campaigns in flight) — linear scan; tenant counts are
    /// small and the Vec keeps iteration deterministic.
    tenants: Mutex<Vec<(String, usize)>>,
    max_tenant: usize,
    requests: AtomicU64,
    addr: SocketAddr,
}

impl ServerInner {
    fn stats_frame(&self) -> Frame {
        Frame::StatsReply {
            jobs_submitted: self.service.jobs_submitted(),
            campaigns_completed: self.service.campaigns_completed(),
            active_campaigns: self.service.active_campaigns() as u64,
            cache_hits: self.cache.as_ref().map_or(0, |c| c.hits()),
            cache_misses: self.cache.as_ref().map_or(0, |c| c.misses()),
            cache_corrupt: self.cache.as_ref().map_or(0, |c| c.corrupt()),
        }
    }

    fn stats_json(&self) -> String {
        format!(
            "{{\"jobs_submitted\":{},\"campaigns_completed\":{},\"active_campaigns\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_corrupt\":{},\
             \"cache_scrubbed_debris\":{},\"cache_scrubbed_corrupt\":{}}}",
            self.service.jobs_submitted(),
            self.service.campaigns_completed(),
            self.service.active_campaigns(),
            self.cache.as_ref().map_or(0, |c| c.hits()),
            self.cache.as_ref().map_or(0, |c| c.misses()),
            self.cache.as_ref().map_or(0, |c| c.corrupt()),
            self.cache.as_ref().map_or(0, |c| c.scrubbed_debris()),
            self.cache.as_ref().map_or(0, |c| c.scrubbed_corrupt()),
        )
    }

    /// Wakes the accept loop so it can observe the shutdown flag.
    fn wake_accept(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// In-process view of a running server — the counters the service tests
/// watch, plus a programmatic shutdown trigger.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<ServerInner>,
}

impl ServerHandle {
    /// Jobs enqueued since start (flat across a warm hit).
    pub fn jobs_submitted(&self) -> u64 {
        self.inner.service.jobs_submitted()
    }

    /// Campaigns fully completed.
    pub fn campaigns_completed(&self) -> u64 {
        self.inner.service.campaigns_completed()
    }

    /// Campaigns currently in flight.
    pub fn active_campaigns(&self) -> usize {
        self.inner.service.active_campaigns()
    }

    /// Result-cache hit count.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache.as_ref().map_or(0, |c| c.hits())
    }

    /// Result-cache miss count.
    pub fn cache_misses(&self) -> u64 {
        self.inner.cache.as_ref().map_or(0, |c| c.misses())
    }

    /// Cache entries evicted as corrupt.
    pub fn cache_corrupt(&self) -> u64 {
        self.inner.cache.as_ref().map_or(0, |c| c.corrupt())
    }

    /// Asks the accept loop to exit after draining current connections.
    pub fn request_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake_accept();
    }
}

/// The resident server. [`Server::bind`] it, read
/// [`Server::local_addr`], then [`Server::run`] the accept loop (usually
/// on its own thread).
pub struct Server {
    inner: Arc<ServerInner>,
    listener: TcpListener,
}

impl Server {
    /// Binds the listener and starts the resident worker pool.
    pub fn bind(addr: &str, cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let inner = Arc::new(ServerInner {
            service: SweepService::start(&cfg.service),
            cache,
            fleet: cfg.fleet.clone(),
            shutdown: AtomicBool::new(false),
            tenants: Mutex::new(Vec::new()),
            max_tenant: cfg.max_tenant_campaigns,
            requests: AtomicU64::new(0),
            addr: local,
        });
        Ok(Server { inner, listener })
    }

    /// The bound address (read it back after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// An in-process handle for counters and programmatic shutdown.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the accept loop until a `Shutdown` frame (or
    /// [`ServerHandle::request_shutdown`]) arrives, then joins every
    /// connection thread and drains the service.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.inner.shutdown.load(Ordering::SeqCst) => break,
                Err(e) => return Err(e),
            };
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            conns.push(std::thread::spawn(move || handle_conn(inner, stream)));
            conns.retain(|h| !h.is_finished());
        }
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Decrements the tenant's in-flight count when a submission finishes,
/// whatever path it exits by.
struct TenantSlot {
    inner: Arc<ServerInner>,
    tenant: String,
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        let mut t = relock(self.inner.tenants.lock());
        if let Some(i) = t.iter().position(|(name, _)| *name == self.tenant) {
            t[i].1 = t[i].1.saturating_sub(1);
            if t[i].1 == 0 {
                t.swap_remove(i);
            }
        }
    }
}

/// Sends a frame through the shared write lane; false once the peer is
/// gone.
fn send(writer: &Mutex<TcpStream>, frame: &Frame) -> bool {
    let mut g = relock(writer.lock());
    write_frame(&mut *g, frame).is_ok()
}

fn handle_conn(inner: Arc<ServerInner>, mut stream: TcpStream) {
    // One socket, two protocols: an HTTP GET for probes, DQSF for work.
    let mut probe = [0u8; 4];
    if let Ok(n) = stream.peek(&mut probe) {
        if n == 4 && &probe == b"GET " {
            handle_http(&inner, stream);
            return;
        }
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    loop {
        match read_frame(&mut stream) {
            Ok(Frame::Submit {
                tenant,
                priority,
                grid,
            }) => handle_submit(&inner, &writer, tenant, priority, &grid),
            Ok(Frame::StatsRequest) => {
                if !send(&writer, &inner.stats_frame()) {
                    return;
                }
            }
            Ok(Frame::Shutdown) => {
                inner.shutdown.store(true, Ordering::SeqCst);
                let _ = send(&writer, &Frame::ShutdownAck);
                inner.wake_accept();
                return;
            }
            Ok(other) => {
                let reject = Frame::Rejected {
                    reason: format!("unexpected frame kind {}", other.kind()),
                };
                if !send(&writer, &reject) {
                    return;
                }
            }
            // A clean disconnect or any undecodable stream ends the
            // connection; undecodable bytes get a reason if the socket
            // still listens.
            Err(WireError::Io(_)) => return,
            Err(e) => {
                let _ = send(
                    &writer,
                    &Frame::Rejected {
                        reason: e.to_string(),
                    },
                );
                return;
            }
        }
    }
}

fn handle_submit(
    inner: &Arc<ServerInner>,
    writer: &Arc<Mutex<TcpStream>>,
    tenant: String,
    priority: u8,
    grid: &str,
) {
    let spec = match GridSpec::parse(grid) {
        Ok(s) => s,
        Err(e) => {
            send(
                writer,
                &Frame::Rejected {
                    reason: e.to_string(),
                },
            );
            return;
        }
    };
    if !spec.slot_faults.is_empty() {
        send(
            writer,
            &Frame::Rejected {
                reason: "slot_faults configure the shared device pool; \
                         not accepted per-campaign"
                    .into(),
            },
        );
        return;
    }

    // Fair admission: one tenant may not monopolise the queue with
    // unbounded concurrent campaigns.
    let _slot = if inner.max_tenant > 0 {
        let mut t = relock(inner.tenants.lock());
        let count = t
            .iter()
            .find(|(name, _)| *name == tenant)
            .map_or(0, |(_, n)| *n);
        if count >= inner.max_tenant {
            drop(t);
            send(
                writer,
                &Frame::Rejected {
                    reason: format!("tenant '{tenant}' at campaign capacity ({count} in flight)"),
                },
            );
            return;
        }
        match t.iter_mut().find(|(name, _)| *name == tenant) {
            Some(entry) => entry.1 += 1,
            None => t.push((tenant.clone(), 1)),
        }
        drop(t);
        Some(TenantSlot {
            inner: Arc::clone(inner),
            tenant,
        })
    } else {
        None
    };

    // Probe the cache point by point: hits stream immediately, misses
    // become the campaign.
    let points = spec.points();
    let mut cached: Vec<PointSummary> = Vec::new();
    let mut missed: Vec<usize> = Vec::new();
    let mut keys: Vec<(usize, u64)> = Vec::new();
    for point in &points {
        match &inner.cache {
            Some(cache) => {
                let key = point_key(&spec, point);
                match cache.lookup(key) {
                    Lookup::Hit(summary) => cached.push(*summary),
                    Lookup::Miss | Lookup::Evicted => {
                        missed.push(point.index);
                        keys.push((point.index, key));
                    }
                }
            }
            None => missed.push(point.index),
        }
    }
    let request = inner.requests.fetch_add(1, Ordering::Relaxed) + 1;
    let npoints = points.len() as u64;
    let ncached = cached.len() as u64;

    if missed.is_empty() {
        // Full warm hit: no campaign, no jobs — disk bytes only.
        stream_accept_and_cached(writer, request, npoints, ncached, 0, &cached);
        let observables =
            sched::observables_json_for(spec.seed, spec.chains, spec.warmup, spec.sweeps, &cached);
        send(
            writer,
            &Frame::Done {
                observables,
                jobs_run: 0,
                cached_points: ncached,
                computed_points: 0,
                failed_chains: 0,
                recovery_events: 0,
            },
        );
        return;
    }

    if let Some(policy) = &inner.fleet {
        handle_submit_fleet(
            inner, writer, policy, &spec, grid, request, &cached, missed, &keys,
        );
        return;
    }

    // The observer streams each computed point and backfills the cache.
    // It runs on worker threads: the dead flag keeps a lost client from
    // turning every later point into a blocking write attempt.
    let dead = Arc::new(AtomicBool::new(false));
    // Streamed-point gate: campaign completion (handle.wait) does not
    // order the *other* workers' in-flight observer calls, so without it
    // the Done frame could overtake a computed Point frame still queued
    // on the write lane. Each observer call counts itself in after its
    // write; Done waits for the full count.
    let streamed = Arc::new((Mutex::new(0usize), Condvar::new()));
    let observer: Arc<PointObserver> = {
        let inner = Arc::clone(inner);
        let writer = Arc::clone(writer);
        let dead = Arc::clone(&dead);
        let streamed = Arc::clone(&streamed);
        let keys = keys.clone();
        Arc::new(move |p: &PointSummary| {
            if let Some(cache) = &inner.cache {
                if p.chains_failed == 0 {
                    if let Some(&(_, key)) = keys.iter().find(|(i, _)| *i == p.point) {
                        // Backfill rides out transient disk trouble with
                        // the deterministic bounded backoff; a write that
                        // still fails only costs a future recompute.
                        if let Err(e) = cache.store_retry(key, p) {
                            eprintln!("cache backfill for point {} failed: {e}", p.point);
                        }
                    }
                }
            }
            if !dead.load(Ordering::Relaxed) {
                let frame = Frame::Point {
                    index: p.point as u64,
                    cached: false,
                    json: p.observables_json(),
                };
                let mut g = relock(writer.lock());
                if write_frame(&mut *g, &frame).is_err() {
                    dead.store(true, Ordering::Relaxed);
                }
            }
            let (count, cv) = &*streamed;
            let mut n = relock(count.lock());
            *n += 1;
            drop(n);
            cv.notify_all();
        })
    };

    let req = CampaignRequest {
        spec: spec.clone(),
        priority,
        points: Some(missed),
    };
    // Hold the write lane across admission so the Accepted frame and the
    // cached points land before any streamed Point frame: the observer
    // blocks on the same mutex until the preamble is out.
    let handle = {
        let mut g = relock(writer.lock());
        match inner.service.submit(&req, Some(observer)) {
            Ok(h) => {
                let accepted = Frame::Accepted {
                    request,
                    points: npoints,
                    cached: ncached,
                    jobs: h.jobs as u64,
                };
                if write_frame(&mut *g, &accepted).is_err() {
                    dead.store(true, Ordering::Relaxed);
                }
                for p in &cached {
                    let frame = Frame::Point {
                        index: p.point as u64,
                        cached: true,
                        json: p.observables_json(),
                    };
                    if write_frame(&mut *g, &frame).is_err() {
                        dead.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                h
            }
            Err(e) => {
                let _ = write_frame(
                    &mut *g,
                    &Frame::Rejected {
                        reason: rejection_reason(&e),
                    },
                );
                return;
            }
        }
    };

    let jobs_run = handle.jobs as u64;
    let expected_points = handle.points;
    let outcome = handle.wait();
    // Every computed Point frame is on the wire (or the connection is
    // dead) before the Done frame follows it.
    {
        let (count, cv) = &*streamed;
        let mut n = relock(count.lock());
        while *n < expected_points {
            n = relock(cv.wait(n));
        }
    }
    let computed = outcome.points.len() as u64;
    let t = &outcome.recovery_tallies;
    let recovery_events = t.retries + t.shrinks + t.fallbacks + t.repairs + t.escalations;

    let mut all = cached;
    all.extend(outcome.points);
    all.sort_by_key(|p| p.point);
    let observables =
        sched::observables_json_for(spec.seed, spec.chains, spec.warmup, spec.sweeps, &all);
    send(
        writer,
        &Frame::Done {
            observables,
            jobs_run,
            cached_points: ncached,
            computed_points: computed,
            failed_chains: outcome.failed_chains as u64,
            recovery_events,
        },
    );
}

/// Renders a submission failure as a `Rejected` reason, prefixing the
/// queue-pressure cases with their stable machine-readable codes.
fn rejection_reason(e: &SubmitError) -> String {
    match e {
        SubmitError::Queue(AdmitError::Full { .. }) => format!("{REASON_QUEUE_FULL}{e}"),
        SubmitError::Queue(AdmitError::Closed) => format!("{REASON_QUEUE_CLOSED}{e}"),
        other => other.to_string(),
    }
}

/// Executes a submission's cache-missed points on a local process fleet.
///
/// The preamble (Accepted + cached points) goes out first; the fleet then
/// runs the missed points to completion, after which each computed point
/// streams in canonical order and backfills the shared DQRC cache.
/// Because the fleet merge is byte-deterministic, the Done document is
/// identical to what the in-process service path would have produced —
/// only the streaming cadence differs (per-merge rather than per-point).
#[allow(clippy::too_many_arguments)]
fn handle_submit_fleet(
    inner: &Arc<ServerInner>,
    writer: &Arc<Mutex<TcpStream>>,
    policy: &FleetPolicy,
    spec: &GridSpec,
    grid: &str,
    request: u64,
    cached: &[PointSummary],
    missed: Vec<usize>,
    keys: &[(usize, u64)],
) {
    let jobs = (missed.len() * spec.chains) as u64;
    stream_accept_and_cached(
        writer,
        request,
        spec.points().len() as u64,
        cached.len() as u64,
        jobs,
        cached,
    );
    let cfg = FleetConfig::new(
        policy.procs,
        policy.child.clone(),
        policy.dir.join(format!("req-{request}")),
    );
    let outcome = match fleet::run_fleet_subset(grid, Some(&missed), &cfg) {
        Ok(o) => o,
        Err(e) => {
            send(
                writer,
                &Frame::Rejected {
                    reason: format!("fleet execution failed: {e}"),
                },
            );
            return;
        }
    };
    {
        let mut g = relock(writer.lock());
        for p in &outcome.merged.points {
            if let Some(cache) = &inner.cache {
                if p.chains_failed == 0 {
                    if let Some(&(_, key)) = keys.iter().find(|(i, _)| *i == p.point) {
                        // Backfill rides out transient disk trouble with
                        // the deterministic bounded backoff; a write that
                        // still fails only costs a future recompute.
                        if let Err(e) = cache.store_retry(key, p) {
                            eprintln!("cache backfill for point {} failed: {e}", p.point);
                        }
                    }
                }
            }
            let frame = Frame::Point {
                index: p.point as u64,
                cached: false,
                json: p.observables_json(),
            };
            if write_frame(&mut *g, &frame).is_err() {
                break;
            }
        }
    }
    let computed = outcome.merged.points.len() as u64;
    let failed_chains = outcome.merged.failed_chains as u64;
    let mut all: Vec<PointSummary> = cached.to_vec();
    all.extend(outcome.merged.points);
    all.sort_by_key(|p| p.point);
    let observables =
        sched::observables_json_for(spec.seed, spec.chains, spec.warmup, spec.sweeps, &all);
    send(
        writer,
        &Frame::Done {
            observables,
            jobs_run: jobs,
            cached_points: cached.len() as u64,
            computed_points: computed,
            failed_chains,
            // Recovery tallies are schedule-layer diagnostics the shard
            // report codec deliberately omits; the fleet path reports none.
            recovery_events: 0,
        },
    );
}

/// Streams the submission preamble for the all-cached path.
fn stream_accept_and_cached(
    writer: &Mutex<TcpStream>,
    request: u64,
    points: u64,
    cached: u64,
    jobs: u64,
    summaries: &[PointSummary],
) {
    let mut g = relock(writer.lock());
    let accepted = Frame::Accepted {
        request,
        points,
        cached,
        jobs,
    };
    if write_frame(&mut *g, &accepted).is_err() {
        return;
    }
    for p in summaries {
        let frame = Frame::Point {
            index: p.point as u64,
            cached: true,
            json: p.observables_json(),
        };
        if write_frame(&mut *g, &frame).is_err() {
            return;
        }
    }
}

/// Minimal HTTP/1.1 for probes: `GET /healthz`, `GET /stats`.
fn handle_http(inner: &ServerInner, mut stream: TcpStream) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    // Read until the header terminator; cap the request at 8 KiB.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "{\"ok\":true}".to_string()),
        "/stats" => ("200 OK", inner.stats_json()),
        _ => ("404 Not Found", "{\"error\":\"not found\"}".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
