//! Content-addressed on-disk result cache for per-point observables.
//!
//! The determinism contract (tests/sched_determinism.rs) makes a point's
//! pooled observables a pure function of its physics: the model, every
//! algorithmic knob, the per-chain seeds, and how many chains pool into
//! the point. [`point_key`] fingerprints exactly that closure — each
//! chain's [`dqmc::params_fingerprint`] (which covers the model, seed and
//! sweep counts) plus the chain count and crowd width — so two requests
//! collide only when the engine guarantees byte-identical results, and a
//! grid differing in any seed, sweep count or crowd width keys elsewhere.
//!
//! Entries are `DQRC` frames under the checkpoint discipline: magic,
//! version, key echo, payload, CRC-32 trailer. Writes go through a
//! process-unique temp file, `fsync`, then atomic rename — concurrent
//! writers race benignly (last rename wins, every intermediate state is a
//! complete entry) and readers never observe a torn write. Any entry that
//! fails validation is evicted on sight and the caller recomputes.

use sched::{GridPoint, GridSpec, PointSummary};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use util::codec::{crc32, ByteReader, ByteWriter, CodecError, Fnv1a};

/// Entry magic: "DQRC" (DQmc Result Cache).
const MAGIC: &[u8; 4] = b"DQRC";
/// Entry format version.
const ENTRY_VERSION: u32 = 1;

/// What a cache probe found.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// A valid entry; schedule-layer fields of the summary are zeroed.
    Hit(Box<PointSummary>),
    /// No entry on disk.
    Miss,
    /// An entry existed but failed validation; it has been deleted and
    /// the caller must recompute.
    Evicted,
}

/// Content address of one grid point's pooled observables.
///
/// Folds the physics closure only: per-chain parameter fingerprints
/// (model + knobs + hash-split seed + warmup/measure sweeps), the chain
/// count, and the crowd width. Scheduling inputs — workers, devices,
/// quanta, fault plans — are deliberately excluded: the determinism tier
/// proves they cannot move observable bytes. Crowd width *is* included:
/// the engine proves it unobservable too, but the cache stays conservative
/// about the one knob that changes which backend executes the chains.
pub fn point_key(spec: &GridSpec, point: &GridPoint) -> u64 {
    let mut f = Fnv1a::new();
    f.update(b"dqmc-serve-point-v1");
    f.update_u64(spec.chains as u64);
    f.update_u64(spec.crowd.max(1) as u64);
    for chain in 0..spec.chains {
        f.update_u64(dqmc::params_fingerprint(&spec.chain_params(point, chain)));
    }
    f.finish()
}

/// A directory of `DQRC` entries, one per point key.
pub struct ResultCache {
    dir: PathBuf,
    /// Temp-file sequence; with the pid it makes writer names unique.
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<ResultCache> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    /// The entry path for a key.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.dqrc"))
    }

    /// Probes the cache for `key`, evicting any invalid entry it finds.
    pub fn lookup(&self, key: u64) -> Lookup {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
        };
        match decode_entry(key, &bytes) {
            Ok(summary) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Box::new(summary))
            }
            Err(_) => {
                // A corrupt entry must not shadow the recompute path; the
                // remove may itself fail (already evicted by a racer) and
                // that is fine.
                let _ = std::fs::remove_file(&path);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Lookup::Evicted
            }
        }
    }

    /// Stores a point summary under `key`: temp file, fsync, atomic
    /// rename. Concurrent writers of the same key race benignly — the
    /// entries they write are byte-identical by the determinism contract.
    pub fn store(&self, key: u64, summary: &PointSummary) -> std::io::Result<()> {
        let bytes = encode_entry(key, summary);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        match std::fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Valid entries served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted as corrupt.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }
}

/// Serialises one entry: header, key echo, observables payload, CRC.
fn encode_entry(key: u64, summary: &PointSummary) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u32(ENTRY_VERSION);
    w.put_u64(key);
    summary.encode_observables(&mut w);
    let body = w.into_bytes();
    let mut out = ByteWriter::new();
    out.put_bytes(&body);
    out.put_u32(crc32(&body));
    out.into_bytes()
}

/// Validates and decodes one entry; any failure means eviction.
fn decode_entry(key: u64, bytes: &[u8]) -> Result<PointSummary, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            remaining: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    let mut r = ByteReader::new(body);
    if r.get_bytes(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != ENTRY_VERSION {
        return Err(CodecError::BadVersion {
            found: version,
            expected: ENTRY_VERSION,
        });
    }
    let echoed = r.get_u64()?;
    if echoed != key {
        return Err(CodecError::Invalid(format!(
            "entry keyed {echoed:#018x} found under {key:#018x}"
        )));
    }
    let summary = PointSummary::decode_observables(&mut r)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid(format!(
            "{} trailing entry bytes",
            r.remaining()
        )));
    }
    Ok(summary)
}
